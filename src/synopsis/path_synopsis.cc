#include "synopsis/path_synopsis.h"

#include <algorithm>
#include <functional>

#include "common/string_util.h"

namespace vitex::synopsis {

namespace {
constexpr char kTruncMarker[] = "/...";
}  // namespace

Status PathSynopsis::StartElement(const xml::StartElementEvent& event) {
  stack_.emplace_back(event.name);
  ++total_elements_;
  std::string key;
  if (max_depth_ > 0 && static_cast<int>(stack_.size()) > max_depth_) {
    truncated_ = true;
    for (int i = 0; i < max_depth_; ++i) {
      key += '/';
      key += stack_[i];
    }
    key += kTruncMarker;
  } else {
    for (const std::string& tag : stack_) {
      key += '/';
      key += tag;
    }
  }
  ++counts_[key];
  return Status::OK();
}

Status PathSynopsis::EndElement(std::string_view name, int depth) {
  (void)name;
  (void)depth;
  if (!stack_.empty()) stack_.pop_back();
  return Status::OK();
}

Result<PathSynopsis> PathSynopsis::Build(std::string_view document,
                                         int max_depth) {
  PathSynopsis synopsis(max_depth);
  VITEX_RETURN_IF_ERROR(xml::ParseString(document, &synopsis));
  return synopsis;
}

uint64_t PathSynopsis::PathCount(std::string_view path) const {
  auto it = counts_.find(std::string(path));
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> PathSynopsis::Rows() const {
  return std::vector<std::pair<std::string, uint64_t>>(counts_.begin(),
                                                       counts_.end());
}

size_t PathSynopsis::memory_bytes() const {
  size_t bytes = 0;
  for (const auto& [path, count] : counts_) {
    (void)count;
    bytes += path.size() + sizeof(uint64_t) + 32;  // node overhead estimate
  }
  return bytes;
}

bool PathSynopsis::PathMatchesQuery(
    const std::vector<std::string_view>& tags, const xpath::Query& query) {
  // Collect the main-path element steps (the chain the estimator prices);
  // an attribute/text output contributes its owner chain only.
  struct StepInfo {
    bool descendant;
    bool wildcard;
    std::string_view name;
  };
  std::vector<StepInfo> steps;
  for (const xpath::QueryNode* q = query.root(); q != nullptr;) {
    if (q->IsElementNode()) {
      steps.push_back(StepInfo{q->axis == xpath::Axis::kDescendant,
                               q->test == xpath::NodeTestKind::kWildcard,
                               q->name});
    }
    const xpath::QueryNode* next = nullptr;
    for (const xpath::QueryNode* c : q->children) {
      if (c->on_main_path) next = c;
    }
    q = next;
  }
  if (steps.empty()) return false;

  size_t m = steps.size(), n = tags.size();
  if (n < m) return false;
  // match[i][j]: steps[i..] can embed into tags with step i at a position
  // constrained to start at j (== j for child, >= j for descendant), and
  // the final step landing exactly on the last tag.
  std::vector<std::vector<int8_t>> memo(m + 1,
                                        std::vector<int8_t>(n + 1, -1));
  // Recursive lambda with memoization.
  std::function<bool(size_t, size_t)> fits = [&](size_t i, size_t j) -> bool {
    if (i == m) return j == n;  // all steps placed; consumed through the end
    if (j >= n) return false;
    int8_t& slot = memo[i][j];
    if (slot >= 0) return slot == 1;
    bool ok = false;
    if (steps[i].descendant) {
      for (size_t p = j; p < n && !ok; ++p) {
        if ((steps[i].wildcard || steps[i].name == tags[p]) &&
            fits(i + 1, p + 1)) {
          ok = true;
        }
      }
    } else {
      if ((steps[i].wildcard || steps[i].name == tags[j]) && fits(i + 1, j + 1)) {
        ok = true;
      }
    }
    slot = ok ? 1 : 0;
    return ok;
  };
  // The last step must land on the last tag: encode by requiring full
  // consumption — fits(i==m) checks j == n, and intermediate steps advance
  // one tag each, so descendant gaps absorb the slack *before* each
  // descendant step. A trailing gap would violate "output = last tag".
  return fits(0, 0);
}

uint64_t PathSynopsis::EstimateCardinality(const xpath::Query& query) const {
  uint64_t total = 0;
  for (const auto& [path, count] : counts_) {
    if (EndsWith(path, kTruncMarker)) {
      // Depth-capped bucket: we no longer know the full path; count it in
      // as an upper bound.
      total += count;
      continue;
    }
    std::vector<std::string_view> tags = SplitString(path, '/');
    // Leading '/' produces one empty piece; drop it.
    if (!tags.empty() && tags.front().empty()) tags.erase(tags.begin());
    if (PathMatchesQuery(tags, query)) total += count;
  }
  return total;
}

double PathSynopsis::EstimateSelectivity(const xpath::Query& query) const {
  if (total_elements_ == 0) return 0.0;
  return static_cast<double>(EstimateCardinality(query)) /
         static_cast<double>(total_elements_);
}

std::string PathSynopsis::ExplainEstimate(const xpath::Query& query) const {
  // Rebuild the main-path prefixes as standalone queries and price each.
  std::string out;
  std::string prefix_text;
  int step_index = 0;
  bool has_predicates = false;
  for (const xpath::QueryNode* q = query.root(); q != nullptr;) {
    for (const xpath::QueryNode* c : q->children) {
      if (!c->on_main_path) has_predicates = true;
    }
    if (q->IsElementNode()) {
      ++step_index;
      prefix_text += q->axis == xpath::Axis::kDescendant ? "//" : "/";
      if (q->test == xpath::NodeTestKind::kWildcard) {
        prefix_text += "*";
      } else {
        prefix_text += q->name;
      }
      auto compiled = xpath::ParseAndCompile(prefix_text);
      out += "step " + std::to_string(step_index) + ": " + prefix_text +
             "  ~ ";
      if (compiled.ok()) {
        out += WithThousandsSeparators(EstimateCardinality(compiled.value()));
        out += " elements";
      } else {
        out += "?";
      }
      out += "\n";
    }
    const xpath::QueryNode* next = nullptr;
    for (const xpath::QueryNode* c : q->children) {
      if (c->on_main_path) next = c;
    }
    q = next;
  }
  if (has_predicates) {
    out += "(query has predicates: final estimate is an upper bound)\n";
  }
  if (truncated()) {
    out += "(synopsis depth-capped: estimates include truncated buckets)\n";
  }
  return out;
}

}  // namespace vitex::synopsis
