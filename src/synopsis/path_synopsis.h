// PathSynopsis: a streaming structural summary of an XML document, and a
// cardinality estimator for twig queries over it.
//
// Query processors around engines like ViteX need cardinality estimates —
// to order standing queries, to budget candidate buffers (the B term in
// O(|D|·|Q|·(|Q|+B))), and to warn about exploding result sets. The
// synopsis is the classic "path table": one counter per distinct rooted tag
// path (optionally depth-capped), built in the same single pass the engine
// already makes. For predicate-free path queries whose depth fits the cap,
// the estimate is exact; predicates make it an upper bound (existence
// predicates only shrink results).

#ifndef VITEX_SYNOPSIS_PATH_SYNOPSIS_H_
#define VITEX_SYNOPSIS_PATH_SYNOPSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xpath/query.h"

namespace vitex::synopsis {

/// Builds and stores per-rooted-path element counts. Also a ContentHandler,
/// so it can be built from any event source (or tee'd next to TwigM).
class PathSynopsis : public xml::ContentHandler {
 public:
  /// @param max_depth paths longer than this are truncated into their
  ///        depth-max_depth prefix bucket ("..." marker); 0 = unlimited.
  explicit PathSynopsis(int max_depth = 0) : max_depth_(max_depth) {}

  // --- construction ---------------------------------------------------------
  Status StartElement(const xml::StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;

  /// Builds a synopsis from a whole document.
  static Result<PathSynopsis> Build(std::string_view document,
                                    int max_depth = 0);

  // --- introspection --------------------------------------------------------
  /// Count of elements with exactly this rooted path, e.g. "/book/section".
  uint64_t PathCount(std::string_view path) const;
  /// Total elements summarized.
  uint64_t total_elements() const { return total_elements_; }
  /// Number of distinct rooted paths.
  size_t distinct_paths() const { return counts_.size(); }
  /// True if some paths were truncated by the depth cap (estimates for
  /// deeper queries become approximate).
  bool truncated() const { return truncated_; }

  /// All (path, count) rows, lexicographically ordered.
  std::vector<std::pair<std::string, uint64_t>> Rows() const;

  // --- estimation -----------------------------------------------------------
  /// Estimated number of elements selected by the query's *main path*
  /// (predicates are ignored, making this an upper bound; exact for
  /// predicate-free element queries within the depth cap). Attribute and
  /// text() outputs estimate as their owner element's count (an upper bound
  /// on owners, a proxy for values).
  uint64_t EstimateCardinality(const xpath::Query& query) const;

  /// Selectivity = estimate / total elements (0 if the document is empty).
  double EstimateSelectivity(const xpath::Query& query) const;

  /// Planner-style explanation: one line per main-path step prefix with its
  /// estimated cardinality, e.g. for //a//b[c]:
  ///   step 1: //a        ~ 120 elements
  ///   step 2: //a//b     ~ 14 elements  (+ predicates, upper bound)
  std::string ExplainEstimate(const xpath::Query& query) const;

  /// Approximate bytes held by the synopsis.
  size_t memory_bytes() const;

 private:
  // True if the rooted path (tag sequence) matches the query's main path
  // under child/descendant/wildcard semantics.
  static bool PathMatchesQuery(const std::vector<std::string_view>& tags,
                               const xpath::Query& query);

  int max_depth_;
  bool truncated_ = false;
  std::vector<std::string> stack_;
  std::map<std::string, uint64_t> counts_;  // "/a/b/c" -> count
  uint64_t total_elements_ = 0;
};

}  // namespace vitex::synopsis

#endif  // VITEX_SYNOPSIS_PATH_SYNOPSIS_H_
