// Low-overhead metrics core for the streaming pipeline (DESIGN.md §10).
//
// The design constraint is the match hot path: a shard replaying millions
// of events per second cannot afford a lock, an allocation, or a hash
// lookup per update. So:
//
//   * Counter / Gauge are single relaxed atomics; Histogram::Record is one
//     relaxed increment into a power-of-two bucket (plus a relaxed sum add
//     and a CAS-loop max) — a handful of nanoseconds, no fences.
//   * All registration happens up front (service construction); the hot
//     path holds raw pointers into the Registry and never touches the
//     registry lock again. Instances are arena'd in deques, so pointers
//     stay stable as later registrations happen.
//   * Contended writers get their OWN instance: each shard/stream
//     registers a private Histogram under a shared name, and the Registry
//     merges same-name instances at snapshot/render time. Hot-path updates
//     therefore never share a cache line across threads by construction
//     (beyond what false sharing of neighboring instances costs — each
//     Histogram is cacheline-padded to avoid even that).
//
// Histogram buckets are logarithmic base 2: bucket 0 holds value 0, bucket
// i >= 1 holds [2^(i-1), 2^i - 1], bucket 63 tops out at UINT64_MAX. One
// `Record(ns)` is exactly one increment; quantiles (p50/p90/p99) are
// reconstructed from the bucket counts at snapshot time with linear
// interpolation inside the winning bucket — accurate to the bucket's
// factor-of-two width, which is plenty for latency telemetry.
//
// Readers (stats snapshots, the /statsz exposition) may run concurrently
// with writers: all fields are relaxed atomics, so a snapshot is a
// possibly-slightly-torn but race-free view. A snapshot taken after the
// writers have quiesced (thread join) is exact — pinned by the TSan test
// in tests/obs/metrics_test.cc.

#ifndef VITEX_OBS_METRICS_H_
#define VITEX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace vitex::obs {

/// Monotonic counter. Hot-path safe: one relaxed atomic add.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge with a monotonic-max helper (high watermarks).
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` is larger (relaxed CAS loop).
  void UpdateMax(uint64_t v) {
    uint64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev &&
           !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Read-side view of one histogram (or a merge of several instances).
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  uint64_t buckets[kBuckets] = {};
  uint64_t sum = 0;  ///< total of recorded values (mean = sum / count())
  uint64_t max = 0;  ///< largest recorded value (0 when empty)

  /// Total recordings. Derived from the buckets, so it is always
  /// consistent with them even when the snapshot raced a writer.
  uint64_t count() const;

  /// q-quantile (q in (0, 1]) of the recorded distribution, linearly
  /// interpolated inside the winning power-of-two bucket and clamped to
  /// the observed max. Returns 0 when empty.
  double Quantile(double q) const;

  /// Adds another instance's counts into this one (per-shard merge).
  void MergeFrom(const HistogramSnapshot& other);
};

/// Log-bucketed (base-2) histogram. Record is wait-free: one relaxed
/// bucket increment, one relaxed sum add, one relaxed max CAS loop.
class alignas(64) Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket index of `v`: 0 -> 0, else bit_width(v) clamped to 63.
  /// Bucket i >= 1 spans [2^(i-1), 2^i - 1]; bucket 63 spans up to
  /// UINT64_MAX.
  static int BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    int width = 64 - __builtin_clzll(v);
    return width > kBuckets - 1 ? kBuckets - 1 : width;
  }

  /// Inclusive upper bound of bucket `i` (the Prometheus `le` value).
  static uint64_t BucketUpperBound(int i) {
    if (i <= 0) return 0;
    if (i >= kBuckets - 1) return ~static_cast<uint64_t>(0);
    return (static_cast<uint64_t>(1) << i) - 1;
  }

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Prometheus-style labels, e.g. {{"shard", "0"}}. Order is preserved
/// into the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// A registry of named metrics rendered to Prometheus text exposition
/// format by RenderText() (src/obs/prometheus.*).
///
/// Registration model: Add* may be called multiple times with the same
/// name — counters and gauges must then differ in labels (separate
/// series); histogram instances with the SAME name and labels are merged
/// into one series at render time (the per-shard/per-stream pattern:
/// every writer thread owns a private instance, readers see the union).
/// Returned pointers stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* AddCounter(std::string name, std::string help, Labels labels = {});
  Gauge* AddGauge(std::string name, std::string help, Labels labels = {});
  Histogram* AddHistogram(std::string name, std::string help,
                          Labels labels = {});

  /// Renders every registered metric in Prometheus text exposition
  /// format: counters/gauges as typed series, histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count` and p50/p90/p99/max
  /// summary gauges. Same-name histogram instances are merged first.
  std::string RenderText() const;

 private:
  friend class PrometheusWriter;

  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    MetricType type = MetricType::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  // Deques: stable addresses under growth, no per-metric allocation after
  // the node itself. mu_ guards registration and render-time iteration;
  // the metric instances themselves are lock-free by design (hot-path
  // writers hold raw pointers and never touch the registry again).
  mutable Mutex mu_;
  std::deque<Counter> counters_ GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ GUARDED_BY(mu_);
  std::vector<Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace vitex::obs

#endif  // VITEX_OBS_METRICS_H_
