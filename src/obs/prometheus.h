// Prometheus text-exposition serializer (DESIGN.md §10).
//
// PrometheusWriter appends series in the Prometheus text format
// (https://prometheus.io/docs/instrumenting/exposition_formats/): one
// `# HELP` / `# TYPE` header per metric name, then `name{labels} value`
// lines. Histograms render as cumulative `name_bucket{le="..."}` series
// plus `name_sum` / `name_count`, followed by p50/p90/p99/max summary
// gauges under `name_p50` etc. — separate metric names, so the output
// stays strictly parseable while putting the latency headline on one
// greppable line.
//
// The writer is deliberately independent of Registry: StreamService uses
// it directly to expose snapshot-derived values (ServiceStats counters,
// per-shard DispatchStats, queue watermarks) alongside the registry's
// hot-path metrics in one /statsz payload.

#ifndef VITEX_OBS_PROMETHEUS_H_
#define VITEX_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace vitex::obs {

class PrometheusWriter {
 public:
  /// Appends one counter series. The HELP/TYPE header is emitted the
  /// first time each metric name is written; pass `help` consistently.
  void WriteCounter(std::string_view name, std::string_view help,
                    const Labels& labels, uint64_t value);

  void WriteGauge(std::string_view name, std::string_view help,
                  const Labels& labels, double value);

  /// Appends a full histogram: cumulative buckets (only bounds where the
  /// cumulative count changes, plus the mandatory +Inf), _sum, _count,
  /// then name_p50/name_p90/name_p99/name_max summary gauges.
  void WriteHistogram(std::string_view name, std::string_view help,
                      const Labels& labels, const HistogramSnapshot& snapshot);

  /// The exposition text accumulated so far.
  const std::string& text() const { return out_; }
  std::string TakeText() { return std::move(out_); }

 private:
  void Header(std::string_view name, std::string_view help,
              std::string_view type);
  void Series(std::string_view name, const Labels& labels, double value);
  void SeriesInt(std::string_view name, const Labels& labels, uint64_t value);
  void SeriesPrefix(std::string_view name, const Labels& labels);

  std::string out_;
  std::string last_header_;  // metric name the last HELP/TYPE was for
};

}  // namespace vitex::obs

#endif  // VITEX_OBS_PROMETHEUS_H_
