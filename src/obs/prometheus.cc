#include "obs/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace vitex::obs {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Integral doubles print as integers (queue depths, counts); everything
// else as shortest-ish %g — deterministic, so golden tests can pin it.
void AppendValue(std::string* out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    *out += buf;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    *out += buf;
  }
}

}  // namespace

void PrometheusWriter::Header(std::string_view name, std::string_view help,
                              std::string_view type) {
  if (last_header_ == name) return;  // one header per run of series
  last_header_.assign(name);
  if (!help.empty()) {
    out_ += "# HELP ";
    out_.append(name);
    out_ += ' ';
    out_.append(help);
    out_ += '\n';
  }
  out_ += "# TYPE ";
  out_.append(name);
  out_ += ' ';
  out_.append(type);
  out_ += '\n';
}

void PrometheusWriter::SeriesPrefix(std::string_view name,
                                    const Labels& labels) {
  out_.append(name);
  if (!labels.empty()) {
    out_ += '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out_ += ',';
      out_ += labels[i].first;
      out_ += "=\"";
      AppendEscaped(&out_, labels[i].second);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
}

void PrometheusWriter::Series(std::string_view name, const Labels& labels,
                              double value) {
  SeriesPrefix(name, labels);
  AppendValue(&out_, value);
  out_ += '\n';
}

void PrometheusWriter::SeriesInt(std::string_view name, const Labels& labels,
                                 uint64_t value) {
  SeriesPrefix(name, labels);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  out_ += '\n';
}

void PrometheusWriter::WriteCounter(std::string_view name,
                                    std::string_view help,
                                    const Labels& labels, uint64_t value) {
  Header(name, help, "counter");
  SeriesInt(name, labels, value);
}

void PrometheusWriter::WriteGauge(std::string_view name, std::string_view help,
                                  const Labels& labels, double value) {
  Header(name, help, "gauge");
  Series(name, labels, value);
}

void PrometheusWriter::WriteHistogram(std::string_view name,
                                      std::string_view help,
                                      const Labels& labels,
                                      const HistogramSnapshot& snapshot) {
  Header(name, help, "histogram");
  std::string base(name);
  uint64_t cum = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    if (snapshot.buckets[i] == 0) continue;  // cumulative value unchanged
    cum += snapshot.buckets[i];
    char bound[32];
    std::snprintf(bound, sizeof(bound), "%" PRIu64,
                  Histogram::BucketUpperBound(i));
    bucket_labels.back().second = bound;
    SeriesInt(base + "_bucket", bucket_labels, cum);
  }
  bucket_labels.back().second = "+Inf";
  SeriesInt(base + "_bucket", bucket_labels, cum);
  SeriesInt(base + "_sum", labels, snapshot.sum);
  SeriesInt(base + "_count", labels, cum);
  // Summary lines: separate gauge-typed metric names, so the exposition
  // stays strictly valid while p50/p90/p99/max read off one line each.
  struct {
    const char* suffix;
    double value;
  } summaries[] = {
      {"_p50", snapshot.Quantile(0.50)},
      {"_p90", snapshot.Quantile(0.90)},
      {"_p99", snapshot.Quantile(0.99)},
      {"_max", static_cast<double>(snapshot.max)},
  };
  for (const auto& summary : summaries) {
    std::string qname = base + summary.suffix;
    Header(qname, "", "gauge");
    Series(qname, labels, summary.value);
  }
}

}  // namespace vitex::obs
