#include "obs/metrics.h"

#include <cassert>
#include <cmath>

#include "obs/prometheus.h"

namespace vitex::obs {

uint64_t HistogramSnapshot::count() const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  return total;
}

double HistogramSnapshot::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank with interpolation: find the bucket holding the target
  // rank, then place the quantile linearly inside its [2^(i-1), 2^i - 1]
  // span. Clamped to the observed max so p99/max never exceed reality.
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (target < 1) target = 1;
  if (target > n) target = n;
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t b = buckets[i];
    if (b > 0 && cum + b >= target) {
      double lower = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      double upper = i == 0 ? 0.0 : std::ldexp(1.0, i) - 1.0;
      double within =
          b == 0 ? 1.0 : static_cast<double>(target - cum) / static_cast<double>(b);
      double value = lower + (upper - lower) * within;
      double observed_max = static_cast<double>(max);
      return value > observed_max ? observed_max : value;
    }
    cum += b;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  sum += other.sum;
  if (other.max > max) max = other.max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

Counter* Registry::AddCounter(std::string name, std::string help,
                              Labels labels) {
  MutexLock lock(mu_);
  counters_.emplace_back();
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.labels = std::move(labels);
  entry.type = MetricType::kCounter;
  entry.counter = &counters_.back();
  entries_.push_back(std::move(entry));
  return &counters_.back();
}

Gauge* Registry::AddGauge(std::string name, std::string help, Labels labels) {
  MutexLock lock(mu_);
  gauges_.emplace_back();
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.labels = std::move(labels);
  entry.type = MetricType::kGauge;
  entry.gauge = &gauges_.back();
  entries_.push_back(std::move(entry));
  return &gauges_.back();
}

Histogram* Registry::AddHistogram(std::string name, std::string help,
                                  Labels labels) {
  MutexLock lock(mu_);
  histograms_.emplace_back();
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.labels = std::move(labels);
  entry.type = MetricType::kHistogram;
  entry.histogram = &histograms_.back();
  entries_.push_back(std::move(entry));
  return &histograms_.back();
}

std::string Registry::RenderText() const {
  MutexLock lock(mu_);
  PrometheusWriter writer;
  // Registration order, grouped by name: series of one name stay together
  // under a single HELP/TYPE header, and same-name+same-labels histogram
  // instances (the per-shard pattern) merge into one exposition series.
  std::vector<bool> done(entries_.size(), false);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (done[i]) continue;
    const Entry& head = entries_[i];
    for (size_t j = i; j < entries_.size(); ++j) {
      if (done[j] || entries_[j].name != head.name) continue;
      const Entry& entry = entries_[j];
      assert(entry.type == head.type && "one name, one metric type");
      done[j] = true;
      switch (entry.type) {
        case MetricType::kCounter:
          writer.WriteCounter(entry.name, entry.help, entry.labels,
                              entry.counter->value());
          break;
        case MetricType::kGauge:
          writer.WriteGauge(entry.name, entry.help, entry.labels,
                            static_cast<double>(entry.gauge->value()));
          break;
        case MetricType::kHistogram: {
          HistogramSnapshot merged = entry.histogram->Snapshot();
          for (size_t k = j + 1; k < entries_.size(); ++k) {
            if (done[k] || entries_[k].name != head.name ||
                entries_[k].labels != entry.labels) {
              continue;
            }
            merged.MergeFrom(entries_[k].histogram->Snapshot());
            done[k] = true;
          }
          writer.WriteHistogram(entry.name, entry.help, entry.labels, merged);
          break;
        }
      }
    }
  }
  return writer.TakeText();
}

}  // namespace vitex::obs
