#include "xpath/ast.h"

namespace vitex::xpath {

std::string_view AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
  }
  return "?";
}

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kNone:
      return "";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

void AppendStep(const Step& step, bool first, bool absolute,
                std::string* out) {
  bool descendant = step.axis == Axis::kDescendant ||
                    (step.axis == Axis::kAttribute && step.descendant_attribute);
  if (first) {
    if (absolute) {
      out->append(descendant ? "//" : "/");
    } else if (descendant) {
      out->append(".//");
    }
  } else {
    out->append(descendant ? "//" : "/");
  }
  if (step.axis == Axis::kAttribute) out->push_back('@');
  switch (step.test) {
    case NodeTestKind::kName:
      out->append(step.name);
      break;
    case NodeTestKind::kWildcard:
      out->push_back('*');
      break;
    case NodeTestKind::kText:
      out->append("text()");
      break;
  }
  for (const auto& pred : step.predicates) {
    out->push_back('[');
    out->append(PredExprToString(*pred));
    out->push_back(']');
  }
}

}  // namespace

std::string PathToString(const Path& path) {
  if (path.steps.empty()) return ".";
  std::string out;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    AppendStep(path.steps[i], i == 0, path.absolute, &out);
  }
  return out;
}

std::string PredExprToString(const PredExpr& e) {
  switch (e.kind) {
    case PredExpr::Kind::kPath:
      return PathToString(e.path);
    case PredExpr::Kind::kCompare: {
      std::string out = PathToString(e.path);
      out.push_back(' ');
      out.append(CompareOpToString(e.op));
      out.push_back(' ');
      if (e.literal_is_number) {
        out.append(e.literal);
      } else {
        out.push_back('\'');
        out.append(e.literal);
        out.push_back('\'');
      }
      return out;
    }
    case PredExpr::Kind::kAnd:
      return "(" + PredExprToString(*e.left) + " and " +
             PredExprToString(*e.right) + ")";
    case PredExpr::Kind::kOr:
      return "(" + PredExprToString(*e.left) + " or " +
             PredExprToString(*e.right) + ")";
    case PredExpr::Kind::kNot:
      return "not(" + PredExprToString(*e.left) + ")";
  }
  return "?";
}

Path ClonePath(const Path& path) {
  Path out;
  out.absolute = path.absolute;
  out.steps.reserve(path.steps.size());
  for (const Step& s : path.steps) {
    Step copy;
    copy.axis = s.axis;
    copy.test = s.test;
    copy.name = s.name;
    copy.descendant_attribute = s.descendant_attribute;
    for (const auto& p : s.predicates) {
      copy.predicates.push_back(ClonePredExpr(*p));
    }
    out.steps.push_back(std::move(copy));
  }
  return out;
}

std::unique_ptr<PredExpr> ClonePredExpr(const PredExpr& e) {
  auto out = std::make_unique<PredExpr>();
  out->kind = e.kind;
  out->path = ClonePath(e.path);
  out->op = e.op;
  out->literal = e.literal;
  out->number = e.number;
  out->literal_is_number = e.literal_is_number;
  if (e.left != nullptr) out->left = ClonePredExpr(*e.left);
  if (e.right != nullptr) out->right = ClonePredExpr(*e.right);
  return out;
}

}  // namespace vitex::xpath
