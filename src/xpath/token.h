// Token vocabulary for the XPath fragment XP{/,//,*,[]} plus attributes,
// text() tests and value comparisons.

#ifndef VITEX_XPATH_TOKEN_H_
#define VITEX_XPATH_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace vitex::xpath {

enum class TokenKind : uint8_t {
  kSlash,        // /
  kDoubleSlash,  // //
  kStar,         // *
  kAt,           // @
  kLBracket,     // [
  kRBracket,     // ]
  kLParen,       // (
  kRParen,       // )
  kDot,          // .
  kEq,           // =
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kPipe,         // | (union of queries)
  kName,         // XML name (also carries the keywords and/or/not/text)
  kString,       // 'literal' or "literal" (value in text)
  kNumber,       // numeric literal (value in number)
  kEnd,          // end of input
};

/// Canonical spelling for error messages, e.g. "'//'" or "name".
std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Name text or decoded string-literal content.
  std::string text;
  /// Value of a kNumber token.
  double number = 0.0;
  /// Byte offset of the token start in the query string (for diagnostics).
  size_t offset = 0;

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kName && text == kw;
  }
};

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_TOKEN_H_
