// Query canonicalization for shared-plan compilation (DESIGN.md §7).
//
// Pub/sub workloads register thousands of structurally identical queries
// that differ only in comparison literals: `//quote[@symbol = 'ACME']/price`
// for every ticker. Canonicalize() projects a compiled Query onto its
// *skeleton* — axes, name tests, predicate formulas, comparison operators,
// output marking — and extracts the comparison literals as an ordered
// parameter vector. Two queries with equal skeletons can share one compiled
// TwigMachine whose per-event structural work is paid once; only the
// parameter comparisons are evaluated per subscriber group.
//
// The skeleton is rendered as an unambiguous byte string (the cache key)
// plus a 64-bit FNV-1a hash of it for bucket lookup. Equality is on the key
// string, so hash collisions cannot alias plans.
//
// Parameter slots are numbered in preorder of the value-tested query nodes,
// the same order TwigMachine derives from the query, so a parameter vector
// produced here binds positionally to any machine compiled from any query
// of the same skeleton.

#ifndef VITEX_XPATH_CANONICAL_H_
#define VITEX_XPATH_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xpath/query.h"

namespace vitex::xpath {

/// One comparison literal lifted out of the skeleton: the RHS of a value
/// predicate with its compile-time numeric coercions. The operator is NOT
/// part of the parameter — it stays in the skeleton, so `[@s = 'A']` and
/// `[@s != 'A']` never share a plan.
struct ValueParam {
  std::string literal;
  double number = 0.0;
  bool literal_is_number = false;
  bool literal_numeric = false;

  /// Applies the slot's skeleton operator `op` against a node value.
  bool Matches(CompareOp op, std::string_view value) const {
    return CompareAgainstLiteral(op, literal, number, literal_is_number,
                                 literal_numeric, value);
  }

  /// Group identity: two subscribers with equal parameter vectors share one
  /// evaluation group. `literal_is_number` changes comparison semantics
  /// (numeric-token vs string-literal equality), so it is part of identity;
  /// `number`/`literal_numeric` are derived from the other two.
  bool operator==(const ValueParam& other) const {
    return literal == other.literal &&
           literal_is_number == other.literal_is_number;
  }
  bool operator!=(const ValueParam& other) const { return !(*this == other); }
};

/// The canonical form of one compiled query.
struct CanonicalQuery {
  /// Unambiguous serialization of the skeleton (value literals excluded).
  std::string key;
  /// FNV-1a of `key`. Stable across Query moves/copies and across processes
  /// (no pointers are hashed).
  uint64_t hash = 0;
  /// Comparison literals in slot order (preorder of value-tested nodes).
  std::vector<ValueParam> params;
  /// Query node id carrying each slot (parallel to `params`).
  std::vector<int> slot_node_ids;
};

/// Projects `query` onto its skeleton. Deterministic: depends only on the
/// twig's structure, never on source spelling (`//a [ b ]` and `//a[b]`
/// canonicalize identically because both compile to the same twig).
CanonicalQuery Canonicalize(const Query& query);

/// FNV-1a, exposed so callers composing derived cache keys (e.g. skeleton +
/// engine options) hash them the same way.
uint64_t FnvHash64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_CANONICAL_H_
