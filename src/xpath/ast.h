// Abstract syntax tree produced by the XPath parser.
//
// The AST mirrors the surface syntax; the twig compiler (query.h) normalizes
// it into the form TwigM executes. The DOM baseline evaluates the AST
// directly, so the AST supports the full parsed language (including or/not)
// even where the streaming fragment is narrower.

#ifndef VITEX_XPATH_AST_H_
#define VITEX_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace vitex::xpath {

/// Axes of the supported fragment.
enum class Axis : uint8_t {
  kChild,       // /
  kDescendant,  // //
  kAttribute,   // /@ or //@
  kSelf,        // . (only inside predicates)
};

/// Node tests.
enum class NodeTestKind : uint8_t {
  kName,      // an element (or attribute) name
  kWildcard,  // *
  kText,      // text()
};

/// Comparison operators in value predicates.
enum class CompareOp : uint8_t {
  kNone,  // existence only
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

std::string_view AxisToString(Axis axis);
std::string_view CompareOpToString(CompareOp op);

struct PredExpr;

/// One location step: axis, node test, and zero or more predicates.
struct Step {
  Axis axis = Axis::kChild;
  NodeTestKind test = NodeTestKind::kName;
  std::string name;  // for kName tests
  /// For attribute steps reached via '//': the attribute may belong to the
  /// context element or any descendant (descendant-or-self semantics).
  bool descendant_attribute = false;
  std::vector<std::unique_ptr<PredExpr>> predicates;
};

/// A (relative or absolute) location path.
struct Path {
  /// True for a top-level query (always starts at the document root).
  /// Relative paths inside predicates start at the context node.
  bool absolute = false;
  std::vector<Step> steps;
};

/// Predicate expression node.
struct PredExpr {
  enum class Kind : uint8_t {
    kPath,        // existence of a relative path
    kCompare,     // path-or-self  op  literal
    kAnd,         // left and right
    kOr,          // left or right
    kNot,         // not(child) — stored in left
  };

  Kind kind = Kind::kPath;

  /// For kPath and kCompare: the relative path (empty steps == '.').
  Path path;

  /// For kCompare.
  CompareOp op = CompareOp::kNone;
  std::string literal;     // string operand text
  double number = 0.0;     // numeric operand value
  bool literal_is_number = false;

  /// For kAnd/kOr/kNot.
  std::unique_ptr<PredExpr> left;
  std::unique_ptr<PredExpr> right;
};

/// Renders the AST back to XPath syntax (canonical form; used in tests and
/// debug output).
std::string PathToString(const Path& path);
std::string PredExprToString(const PredExpr& expr);

/// Deep copies (the AST is move-only by default because of unique_ptr).
Path ClonePath(const Path& path);
std::unique_ptr<PredExpr> ClonePredExpr(const PredExpr& expr);

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_AST_H_
