#include "xpath/parser.h"

#include <memory>
#include <vector>

#include "xpath/lexer.h"

namespace vitex::xpath {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Path> ParseQuery() {
    Path path;
    path.absolute = true;
    VITEX_RETURN_IF_ERROR(ParseSteps(&path, /*top_level=*/true));
    if (At(TokenKind::kPipe)) {
      return Error("'|' union queries must be parsed with ParseXPathUnion");
    }
    if (!At(TokenKind::kEnd)) {
      return Error("unexpected trailing tokens");
    }
    if (path.steps.empty()) {
      return Status::ParseError("XPath query has no steps");
    }
    return path;
  }

  Result<std::vector<Path>> ParseUnion() {
    std::vector<Path> out;
    while (true) {
      Path path;
      path.absolute = true;
      VITEX_RETURN_IF_ERROR(ParseSteps(&path, /*top_level=*/true));
      if (path.steps.empty()) {
        return Status::ParseError("XPath query has no steps");
      }
      out.push_back(std::move(path));
      if (Accept(TokenKind::kPipe)) continue;
      if (!At(TokenKind::kEnd)) {
        return Error("unexpected trailing tokens");
      }
      return out;
    }
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }

  bool Accept(TokenKind k) {
    if (!At(k)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind k) {
    if (Accept(k)) return Status::OK();
    return Error(std::string("expected ") + std::string(TokenKindToString(k)) +
                 " but found " + std::string(TokenKindToString(Cur().kind)));
  }

  Status Error(std::string msg) const {
    return Status::ParseError("XPath parser: " + msg + " at offset " +
                              std::to_string(Cur().offset));
  }

  // Parses ('/'|'//') Step ... for a top-level query, or
  // [('.'] ['/' | '//'] Step ... for a relative path in a predicate.
  Status ParseSteps(Path* path, bool top_level) {
    Axis axis;
    if (top_level) {
      if (Accept(TokenKind::kSlash)) {
        axis = Axis::kChild;
      } else if (Accept(TokenKind::kDoubleSlash)) {
        axis = Axis::kDescendant;
      } else {
        return Error("query must start with '/' or '//'");
      }
    } else {
      // Relative: optional '.' then optional separator.
      if (Accept(TokenKind::kDot)) {
        if (Accept(TokenKind::kSlash)) {
          axis = Axis::kChild;
        } else if (Accept(TokenKind::kDoubleSlash)) {
          axis = Axis::kDescendant;
        } else {
          // Bare '.' — the caller handles self comparison; reaching here
          // means '.' followed by something unexpected.
          return Error("'.' must be followed by '/' or '//' in a path");
        }
      } else if (Accept(TokenKind::kDoubleSlash)) {
        axis = Axis::kDescendant;  // leading // == .// inside predicates
      } else if (Accept(TokenKind::kSlash)) {
        return Error("absolute paths are not allowed inside predicates");
      } else {
        axis = Axis::kChild;
      }
    }
    while (true) {
      VITEX_RETURN_IF_ERROR(ParseStep(axis, path));
      if (Accept(TokenKind::kSlash)) {
        axis = Axis::kChild;
      } else if (Accept(TokenKind::kDoubleSlash)) {
        axis = Axis::kDescendant;
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseStep(Axis axis, Path* path) {
    if (!path->steps.empty()) {
      const Step& prev = path->steps.back();
      if (prev.axis == Axis::kAttribute) {
        return Error("no steps may follow an attribute step");
      }
      if (prev.test == NodeTestKind::kText) {
        return Error("no steps may follow text()");
      }
    }
    Step step;
    if (Accept(TokenKind::kAt)) {
      // `//@id` keeps descendant-or-self semantics (XPath 1.0's
      // descendant-or-self::node()/@id): the attribute may belong to the
      // context element itself or to any descendant. `/@id` is the plain
      // child-axis form (attributes of the context element only).
      step.axis = Axis::kAttribute;
      step.descendant_attribute = axis == Axis::kDescendant;
      if (Accept(TokenKind::kStar)) {
        step.test = NodeTestKind::kWildcard;
      } else if (At(TokenKind::kName)) {
        step.test = NodeTestKind::kName;
        step.name = Cur().text;
        ++pos_;
      } else {
        return Error("expected attribute name or '*' after '@'");
      }
      path->steps.push_back(std::move(step));
      return Status::OK();
    }
    step.axis = axis;
    if (Accept(TokenKind::kStar)) {
      step.test = NodeTestKind::kWildcard;
    } else if (At(TokenKind::kName)) {
      std::string name = Cur().text;
      ++pos_;
      if (name == "text" && Accept(TokenKind::kLParen)) {
        VITEX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        step.test = NodeTestKind::kText;
      } else {
        step.test = NodeTestKind::kName;
        step.name = std::move(name);
      }
    } else {
      return Error(std::string("expected a node test but found ") +
                   std::string(TokenKindToString(Cur().kind)));
    }
    // Predicates.
    while (Accept(TokenKind::kLBracket)) {
      if (step.test == NodeTestKind::kText) {
        return Error("predicates are not allowed on text()");
      }
      VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> pred, ParseOrExpr());
      VITEX_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      step.predicates.push_back(std::move(pred));
    }
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  Result<std::unique_ptr<PredExpr>> ParseOrExpr() {
    VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> left, ParseAndExpr());
    while (Cur().IsKeyword("or")) {
      ++pos_;
      VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> right, ParseAndExpr());
      auto node = std::make_unique<PredExpr>();
      node->kind = PredExpr::Kind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<PredExpr>> ParseAndExpr() {
    VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> left, ParseUnaryExpr());
    while (Cur().IsKeyword("and")) {
      ++pos_;
      VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> right, ParseUnaryExpr());
      auto node = std::make_unique<PredExpr>();
      node->kind = PredExpr::Kind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<PredExpr>> ParseUnaryExpr() {
    if (Cur().IsKeyword("not") && tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      pos_ += 2;
      VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> inner, ParseOrExpr());
      VITEX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      auto node = std::make_unique<PredExpr>();
      node->kind = PredExpr::Kind::kNot;
      node->left = std::move(inner);
      return node;
    }
    if (Accept(TokenKind::kLParen)) {
      VITEX_ASSIGN_OR_RETURN(std::unique_ptr<PredExpr> inner, ParseOrExpr());
      VITEX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    // Literal-first comparison: '5 < price' normalizes to 'price > 5'.
    if (At(TokenKind::kString) || At(TokenKind::kNumber)) {
      Token lit = Cur();
      ++pos_;
      CompareOp op;
      VITEX_ASSIGN_OR_RETURN(op, ParseCompareOp());
      VITEX_ASSIGN_OR_RETURN(Path operand, ParseOperandPath());
      auto node = std::make_unique<PredExpr>();
      node->kind = PredExpr::Kind::kCompare;
      node->path = std::move(operand);
      node->op = FlipOp(op);
      FillLiteral(lit, node.get());
      return node;
    }
    // Path (existence) or path-first comparison.
    VITEX_ASSIGN_OR_RETURN(Path operand, ParseOperandPath());
    if (At(TokenKind::kEq) || At(TokenKind::kNe) || At(TokenKind::kLt) ||
        At(TokenKind::kLe) || At(TokenKind::kGt) || At(TokenKind::kGe)) {
      CompareOp op;
      VITEX_ASSIGN_OR_RETURN(op, ParseCompareOp());
      if (!At(TokenKind::kString) && !At(TokenKind::kNumber)) {
        return Error("comparison right-hand side must be a literal");
      }
      Token lit = Cur();
      ++pos_;
      auto node = std::make_unique<PredExpr>();
      node->kind = PredExpr::Kind::kCompare;
      node->path = std::move(operand);
      node->op = op;
      FillLiteral(lit, node.get());
      return node;
    }
    if (operand.steps.empty()) {
      return Error("bare '.' predicate requires a comparison");
    }
    auto node = std::make_unique<PredExpr>();
    node->kind = PredExpr::Kind::kPath;
    node->path = std::move(operand);
    return node;
  }

  // Parses a predicate operand: '.', or a relative path.
  Result<Path> ParseOperandPath() {
    Path path;
    path.absolute = false;
    if (At(TokenKind::kDot)) {
      // '.' alone (self string-value) or './...' path.
      if (tokens_[pos_ + 1].kind == TokenKind::kSlash ||
          tokens_[pos_ + 1].kind == TokenKind::kDoubleSlash) {
        VITEX_RETURN_IF_ERROR(ParseSteps(&path, /*top_level=*/false));
        return path;
      }
      ++pos_;
      return path;  // empty steps == self
    }
    VITEX_RETURN_IF_ERROR(ParseSteps(&path, /*top_level=*/false));
    return path;
  }

  Result<CompareOp> ParseCompareOp() {
    switch (Cur().kind) {
      case TokenKind::kEq:
        ++pos_;
        return CompareOp::kEq;
      case TokenKind::kNe:
        ++pos_;
        return CompareOp::kNe;
      case TokenKind::kLt:
        ++pos_;
        return CompareOp::kLt;
      case TokenKind::kLe:
        ++pos_;
        return CompareOp::kLe;
      case TokenKind::kGt:
        ++pos_;
        return CompareOp::kGt;
      case TokenKind::kGe:
        ++pos_;
        return CompareOp::kGe;
      default:
        return Error("expected a comparison operator");
    }
  }

  static CompareOp FlipOp(CompareOp op) {
    switch (op) {
      case CompareOp::kLt:
        return CompareOp::kGt;
      case CompareOp::kLe:
        return CompareOp::kGe;
      case CompareOp::kGt:
        return CompareOp::kLt;
      case CompareOp::kGe:
        return CompareOp::kLe;
      default:
        return op;  // = and != are symmetric
    }
  }

  static void FillLiteral(const Token& lit, PredExpr* node) {
    node->literal = lit.text;
    node->literal_is_number = lit.kind == TokenKind::kNumber;
    node->number = lit.number;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Path> ParseXPath(std::string_view query) {
  VITEX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<std::vector<Path>> ParseXPathUnion(std::string_view query) {
  VITEX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.ParseUnion();
}

}  // namespace vitex::xpath
