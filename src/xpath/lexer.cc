#include "xpath/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace vitex::xpath {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDoubleSlash:
      return "'//'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kName:
      return "name";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "unknown token";
}

namespace {

Status LexError(size_t offset, std::string msg) {
  return Status::ParseError("XPath lexer: " + msg + " at offset " +
                            std::to_string(offset));
}

bool IsNumberStart(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view q) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < q.size()) {
    char c = q[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    switch (c) {
      case '/':
        if (i + 1 < q.size() && q[i + 1] == '/') {
          tok.kind = TokenKind::kDoubleSlash;
          i += 2;
        } else {
          tok.kind = TokenKind::kSlash;
          ++i;
        }
        break;
      case '*':
        tok.kind = TokenKind::kStar;
        ++i;
        break;
      case '@':
        tok.kind = TokenKind::kAt;
        ++i;
        break;
      case '[':
        tok.kind = TokenKind::kLBracket;
        ++i;
        break;
      case ']':
        tok.kind = TokenKind::kRBracket;
        ++i;
        break;
      case '(':
        tok.kind = TokenKind::kLParen;
        ++i;
        break;
      case ')':
        tok.kind = TokenKind::kRParen;
        ++i;
        break;
      case '|':
        tok.kind = TokenKind::kPipe;
        ++i;
        break;
      case '=':
        tok.kind = TokenKind::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 >= q.size() || q[i + 1] != '=') {
          return LexError(i, "'!' must be followed by '='");
        }
        tok.kind = TokenKind::kNe;
        i += 2;
        break;
      case '<':
        if (i + 1 < q.size() && q[i + 1] == '=') {
          tok.kind = TokenKind::kLe;
          i += 2;
        } else {
          tok.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < q.size() && q[i + 1] == '=') {
          tok.kind = TokenKind::kGe;
          i += 2;
        } else {
          tok.kind = TokenKind::kGt;
          ++i;
        }
        break;
      case '\'':
      case '"': {
        size_t end = q.find(c, i + 1);
        if (end == std::string_view::npos) {
          return LexError(i, "unterminated string literal");
        }
        tok.kind = TokenKind::kString;
        tok.text = std::string(q.substr(i + 1, end - i - 1));
        i = end + 1;
        break;
      }
      case '.': {
        // '.' is self unless it begins a number like ".5".
        if (i + 1 < q.size() && IsNumberStart(q[i + 1])) {
          size_t start = i;
          ++i;
          while (i < q.size() &&
                 std::isdigit(static_cast<unsigned char>(q[i])) != 0) {
            ++i;
          }
          tok.kind = TokenKind::kNumber;
          tok.text = std::string(q.substr(start, i - start));
          tok.number = std::strtod(tok.text.c_str(), nullptr);
        } else {
          tok.kind = TokenKind::kDot;
          ++i;
        }
        break;
      }
      default: {
        if (IsNumberStart(c) ||
            (c == '-' && i + 1 < q.size() && IsNumberStart(q[i + 1]))) {
          size_t start = i;
          if (c == '-') ++i;
          while (i < q.size() &&
                 std::isdigit(static_cast<unsigned char>(q[i])) != 0) {
            ++i;
          }
          if (i < q.size() && q[i] == '.') {
            ++i;
            while (i < q.size() &&
                   std::isdigit(static_cast<unsigned char>(q[i])) != 0) {
              ++i;
            }
          }
          tok.kind = TokenKind::kNumber;
          tok.text = std::string(q.substr(start, i - start));
          tok.number = std::strtod(tok.text.c_str(), nullptr);
          break;
        }
        if (IsNameStartChar(static_cast<unsigned char>(c))) {
          size_t start = i;
          ++i;
          while (i < q.size() &&
                 IsNameChar(static_cast<unsigned char>(q[i]))) {
            ++i;
          }
          tok.kind = TokenKind::kName;
          tok.text = std::string(q.substr(start, i - start));
          break;
        }
        return LexError(i, std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = q.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace vitex::xpath
