// The compiled query twig: the normalized tree form of an XPath query that
// the TwigM builder consumes (one machine node per query node), and that the
// DOM baseline evaluates as the correctness oracle.
//
// Normalizations performed by the compiler:
//   * every predicate becomes a subtree of query nodes plus a boolean
//     formula over "child i matched" atoms (AND/OR/NOT);
//   * a value comparison on an element path (`[price > 10]`) is desugared to
//     a comparison on the element's direct text (`[price/text() > 10]`),
//     and `[. = 'x']` to `[text() = 'x']` — the data-centric reading, see
//     DESIGN.md;
//   * the final main-path step is marked as the output node.

#ifndef VITEX_XPATH_QUERY_H_
#define VITEX_XPATH_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xpath/ast.h"

namespace vitex::xpath {

/// Boolean formula over the children of one query node.
///
/// Leaves are kTrue or kAtom (child i matched); internal nodes are
/// kAnd/kOr (n-ary) and kNot (unary). Formulas are evaluated when the
/// corresponding XML element closes, at which point every child-match bit is
/// final — which is why NOT is safe in a single streaming pass.
struct Formula {
  enum class Kind : uint8_t { kTrue, kAtom, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  int atom_child = -1;            ///< kAtom: index into QueryNode::children.
  std::vector<Formula> operands;  ///< kAnd/kOr (>=2), kNot (exactly 1).

  static Formula True() { return Formula{}; }
  static Formula Atom(int child_index);
  static Formula And(std::vector<Formula> fs);
  static Formula Or(std::vector<Formula> fs);
  static Formula Not(Formula f);

  /// Evaluates against a bitset of child-match bits (bit i == child i
  /// matched at least once).
  bool Evaluate(uint64_t bits) const;

  /// True if any kNot appears in the tree (disables monotone shortcuts).
  bool ContainsNot() const;

  std::string ToString() const;
};

/// One node of the compiled twig.
struct QueryNode {
  /// Preorder index, also the machine-node index in TwigM.
  int id = 0;
  /// Incoming edge from the parent: kChild, kDescendant or kAttribute.
  /// The compiled twig root uses its own axis relative to the document root.
  Axis axis = Axis::kChild;
  /// For attribute nodes reached via '//': descendant-or-self semantics.
  bool descendant_attribute = false;
  NodeTestKind test = NodeTestKind::kName;
  std::string name;

  /// Value comparison, only on text and attribute nodes (kNone otherwise).
  CompareOp value_op = CompareOp::kNone;
  std::string literal;
  /// Numeric value of the RHS, resolved ONCE at compile time (never
  /// re-parsed per event): the lexer's value for a numeric token, or the
  /// XPath number() coercion of a string literal. Valid iff literal_numeric.
  double number = 0.0;
  /// The RHS was written as a numeric token (`[a = 10]`). Equality against
  /// it is numeric when the node value coerces to a number, with a string
  /// fallback otherwise (applied consistently for = and !=).
  bool literal_is_number = false;
  /// The RHS coerces to a number (numeric token, or string literal like
  /// '10'); relational comparisons require this and a numeric node value.
  bool literal_numeric = false;

  /// True for the single node whose matches are the query solutions.
  bool is_output = false;
  /// True for nodes on the root-to-output main path.
  bool on_main_path = false;

  QueryNode* parent = nullptr;
  int index_in_parent = -1;
  std::vector<QueryNode*> children;

  /// Satisfaction condition over `children` (includes the main-path child
  /// atom, so "satisfied" means the whole subquery rooted here matched).
  Formula formula;

  bool IsAttributeNode() const { return axis == Axis::kAttribute; }
  bool IsTextNode() const { return test == NodeTestKind::kText; }
  bool IsElementNode() const { return !IsAttributeNode() && !IsTextNode(); }

  /// Name test against an element tag (elements only).
  bool MatchesTag(std::string_view tag) const {
    return test == NodeTestKind::kWildcard || name == tag;
  }
  /// Name test against an attribute name (attribute nodes only).
  bool MatchesAttributeName(std::string_view attr) const {
    return test == NodeTestKind::kWildcard || name == attr;
  }
  /// Applies the value comparison to a text/attribute value. kNone accepts
  /// everything.
  bool CompareValue(std::string_view value) const;
};

/// A compiled, immutable query twig.
class Query {
 public:
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;
  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  /// Compiles a parsed AST. Fails with Unsupported for constructs outside
  /// the executable fragment (positional predicates, >64 children per node).
  static Result<Query> Compile(const Path& ast, std::string source_text);

  const QueryNode* root() const { return root_; }
  const QueryNode* output() const { return output_; }
  /// All nodes in preorder; node ids index this vector.
  const std::vector<std::unique_ptr<QueryNode>>& nodes() const {
    return nodes_;
  }
  size_t size() const { return nodes_.size(); }
  const std::string& source() const { return source_; }
  /// True if any predicate uses not() (monotone-only optimizations off).
  bool has_negation() const { return has_negation_; }

  /// Multi-line debug rendering of the twig.
  std::string ToString() const;

 private:
  Query() = default;

  std::vector<std::unique_ptr<QueryNode>> nodes_;
  QueryNode* root_ = nullptr;
  QueryNode* output_ = nullptr;
  std::string source_;
  bool has_negation_ = false;

  friend class TwigCompiler;
};

/// One-call convenience: lex + parse + compile.
Result<Query> ParseAndCompile(std::string_view query_text);

/// The value-comparison kernel shared by QueryNode::CompareValue and the
/// shared-plan parameter evaluators (canonical.h): applies `op` between a
/// node value and a literal whose numeric coercions were resolved once at
/// compile time. Keeping one definition guarantees a parameterized plan
/// compares exactly like a privately compiled query.
bool CompareAgainstLiteral(CompareOp op, std::string_view literal,
                           double number, bool literal_is_number,
                           bool literal_numeric, std::string_view value);

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_QUERY_H_
