// Lexer for XPath queries.

#ifndef VITEX_XPATH_LEXER_H_
#define VITEX_XPATH_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "xpath/token.h"

namespace vitex::xpath {

/// Tokenizes the whole query up front (queries are tiny relative to data, so
/// there is no reason to lex lazily). The returned vector always ends with a
/// kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_LEXER_H_
