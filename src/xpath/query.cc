#include "xpath/query.h"

#include "common/string_util.h"
#include "xpath/parser.h"

namespace vitex::xpath {

Formula Formula::Atom(int child_index) {
  Formula f;
  f.kind = Kind::kAtom;
  f.atom_child = child_index;
  return f;
}

Formula Formula::And(std::vector<Formula> fs) {
  if (fs.empty()) return True();
  if (fs.size() == 1) return std::move(fs[0]);
  Formula f;
  f.kind = Kind::kAnd;
  f.operands = std::move(fs);
  return f;
}

Formula Formula::Or(std::vector<Formula> fs) {
  if (fs.empty()) return True();
  if (fs.size() == 1) return std::move(fs[0]);
  Formula f;
  f.kind = Kind::kOr;
  f.operands = std::move(fs);
  return f;
}

Formula Formula::Not(Formula inner) {
  Formula f;
  f.kind = Kind::kNot;
  f.operands.push_back(std::move(inner));
  return f;
}

bool Formula::Evaluate(uint64_t bits) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kAtom:
      return (bits >> atom_child) & 1u;
    case Kind::kAnd:
      for (const Formula& f : operands) {
        if (!f.Evaluate(bits)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Formula& f : operands) {
        if (f.Evaluate(bits)) return true;
      }
      return false;
    case Kind::kNot:
      return !operands[0].Evaluate(bits);
  }
  return false;
}

bool Formula::ContainsNot() const {
  if (kind == Kind::kNot) return true;
  for (const Formula& f : operands) {
    if (f.ContainsNot()) return true;
  }
  return false;
}

std::string Formula::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kAtom:
      return "c" + std::to_string(atom_child);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < operands.size(); ++i) {
        if (i > 0) out += kind == Kind::kAnd ? " & " : " | ";
        out += operands[i].ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "!" + operands[0].ToString();
  }
  return "?";
}

bool CompareAgainstLiteral(CompareOp op, std::string_view literal,
                           double number, bool literal_is_number,
                           bool literal_numeric, std::string_view value) {
  switch (op) {
    case CompareOp::kNone:
      return true;
    case CompareOp::kEq:
    case CompareOp::kNe: {
      bool eq;
      double v;
      if (literal_is_number && ParseXPathNumber(value, &v)) {
        // Numeric equality per XPath 1.0 when both sides coerce (node text
        // is whitespace-trimmed by ParseXPathNumber, so " 10 " = 10).
        eq = v == number;
      } else {
        // String comparison otherwise — including non-numeric text against
        // a numeric literal, so = and != stay exact complements.
        eq = value == literal;
      }
      return op == CompareOp::kEq ? eq : !eq;
    }
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // Relational comparison is numeric; a non-numeric side never
      // satisfies (NaN semantics). The literal side was coerced at compile
      // time (literal_numeric / number).
      double v;
      if (!literal_numeric || !ParseXPathNumber(value, &v)) return false;
      switch (op) {
        case CompareOp::kLt:
          return v < number;
        case CompareOp::kLe:
          return v <= number;
        case CompareOp::kGt:
          return v > number;
        case CompareOp::kGe:
          return v >= number;
        default:
          return false;
      }
    }
  }
  return false;
}

bool QueryNode::CompareValue(std::string_view value) const {
  return CompareAgainstLiteral(value_op, literal, number, literal_is_number,
                               literal_numeric, value);
}

/// Builds Query objects from ASTs. Separate class so Query's constructor
/// stays private and the recursion state is contained.
class TwigCompiler {
 public:
  Result<Query> Run(const Path& ast, std::string source_text) {
    if (ast.steps.empty()) {
      return Status::InvalidArgument("query has no steps");
    }
    query_.source_ = std::move(source_text);
    // Main path.
    QueryNode* prev = nullptr;
    for (size_t i = 0; i < ast.steps.size(); ++i) {
      const Step& step = ast.steps[i];
      VITEX_ASSIGN_OR_RETURN(QueryNode * node, MakeNode(step, prev));
      node->on_main_path = true;
      std::vector<Formula> conjuncts;
      for (const auto& pred : step.predicates) {
        VITEX_ASSIGN_OR_RETURN(Formula f, CompilePred(*pred, node));
        conjuncts.push_back(std::move(f));
      }
      if (prev != nullptr) {
        // The previous main-path node requires this one.
        prev_conjuncts_.push_back(Formula::Atom(node->index_in_parent));
        prev->formula = Formula::And(std::move(prev_conjuncts_));
        prev_conjuncts_.clear();
      } else {
        query_.root_ = node;
      }
      prev_conjuncts_ = std::move(conjuncts);
      prev = node;
    }
    prev->formula = Formula::And(std::move(prev_conjuncts_));
    prev_conjuncts_.clear();
    prev->is_output = true;
    query_.output_ = prev;
    // Renumber in preorder so ids are stable and parents precede children.
    RenumberPreorder();
    for (const auto& n : query_.nodes_) {
      if (n->formula.ContainsNot()) {
        query_.has_negation_ = true;
        break;
      }
    }
    return std::move(query_);
  }

 private:
  Result<QueryNode*> MakeNode(const Step& step, QueryNode* parent) {
    auto owned = std::make_unique<QueryNode>();
    QueryNode* node = owned.get();
    node->axis = step.axis;
    node->descendant_attribute = step.descendant_attribute;
    node->test = step.test;
    node->name = step.name;
    node->parent = parent;
    if (parent != nullptr) {
      if (parent->children.size() >= 64) {
        return Status::Unsupported(
            "a query node may have at most 64 children");
      }
      if (parent->IsAttributeNode() || parent->IsTextNode()) {
        return Status::Unsupported(
            "attribute and text() nodes cannot have children");
      }
      node->index_in_parent = static_cast<int>(parent->children.size());
      parent->children.push_back(node);
    }
    query_.nodes_.push_back(std::move(owned));
    return node;
  }

  // Compiles a predicate expression in the context of `ctx` (the query node
  // the predicate is attached to); returns the formula contribution.
  Result<Formula> CompilePred(const PredExpr& e, QueryNode* ctx) {
    switch (e.kind) {
      case PredExpr::Kind::kAnd: {
        VITEX_ASSIGN_OR_RETURN(Formula l, CompilePred(*e.left, ctx));
        VITEX_ASSIGN_OR_RETURN(Formula r, CompilePred(*e.right, ctx));
        std::vector<Formula> fs;
        fs.push_back(std::move(l));
        fs.push_back(std::move(r));
        return Formula::And(std::move(fs));
      }
      case PredExpr::Kind::kOr: {
        VITEX_ASSIGN_OR_RETURN(Formula l, CompilePred(*e.left, ctx));
        VITEX_ASSIGN_OR_RETURN(Formula r, CompilePred(*e.right, ctx));
        std::vector<Formula> fs;
        fs.push_back(std::move(l));
        fs.push_back(std::move(r));
        return Formula::Or(std::move(fs));
      }
      case PredExpr::Kind::kNot: {
        VITEX_ASSIGN_OR_RETURN(Formula inner, CompilePred(*e.left, ctx));
        return Formula::Not(std::move(inner));
      }
      case PredExpr::Kind::kPath:
        return CompilePathPred(e.path, CompareOp::kNone, e, ctx);
      case PredExpr::Kind::kCompare:
        return CompilePathPred(e.path, e.op, e, ctx);
    }
    return Status::Internal("unknown predicate kind");
  }

  // Builds the chain of query nodes for a relative path under `ctx` and
  // returns the atom for its first node. For comparisons, the final node of
  // the chain carries the value test; element-final chains get a text()
  // child appended (the documented desugaring).
  Result<Formula> CompilePathPred(const Path& path, CompareOp op,
                                  const PredExpr& e, QueryNode* ctx) {
    if (path.steps.empty()) {
      // Self comparison `[. = 'x']` desugars to `[text() = 'x']`.
      if (op == CompareOp::kNone) {
        return Status::Unsupported("bare '.' predicate");
      }
      Step text_step;
      text_step.axis = Axis::kChild;
      text_step.test = NodeTestKind::kText;
      VITEX_ASSIGN_OR_RETURN(QueryNode * tn, MakeNode(text_step, ctx));
      SetValueTest(tn, op, e);
      tn->formula = Formula::True();
      return Formula::Atom(tn->index_in_parent);
    }
    QueryNode* parent = ctx;
    QueryNode* first = nullptr;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const Step& step = path.steps[i];
      VITEX_ASSIGN_OR_RETURN(QueryNode * node, MakeNode(step, parent));
      if (first == nullptr) first = node;
      std::vector<Formula> conjuncts;
      for (const auto& pred : step.predicates) {
        VITEX_ASSIGN_OR_RETURN(Formula f, CompilePred(*pred, node));
        conjuncts.push_back(std::move(f));
      }
      // The chain requirement to the next step is added on the next
      // iteration; stash conjuncts on the node now and extend below.
      node->formula = Formula::And(std::move(conjuncts));
      if (parent != ctx) {
        // Parent (previous chain node) additionally requires this node.
        ExtendWithAtom(parent, node->index_in_parent);
      }
      parent = node;
    }
    QueryNode* last = parent;
    if (op != CompareOp::kNone) {
      if (last->IsAttributeNode() || last->IsTextNode()) {
        SetValueTest(last, op, e);
      } else {
        // Element comparison desugars to direct-text comparison.
        Step text_step;
        text_step.axis = Axis::kChild;
        text_step.test = NodeTestKind::kText;
        VITEX_ASSIGN_OR_RETURN(QueryNode * tn, MakeNode(text_step, last));
        SetValueTest(tn, op, e);
        tn->formula = Formula::True();
        ExtendWithAtom(last, tn->index_in_parent);
      }
    }
    return Formula::Atom(first->index_in_parent);
  }

  static void SetValueTest(QueryNode* node, CompareOp op, const PredExpr& e) {
    node->value_op = op;
    node->literal = e.literal;
    node->literal_is_number = e.literal_is_number;
    // Coerce the RHS once, at compile time; CompareValue never re-parses
    // the literal per event.
    if (e.literal_is_number) {
      node->number = e.number;
      node->literal_numeric = true;
    } else {
      node->literal_numeric = ParseXPathNumber(e.literal, &node->number);
    }
  }

  // Adds "child atom" as a further conjunct of node->formula.
  static void ExtendWithAtom(QueryNode* node, int child_index) {
    std::vector<Formula> fs;
    if (node->formula.kind != Formula::Kind::kTrue) {
      fs.push_back(std::move(node->formula));
    }
    fs.push_back(Formula::Atom(child_index));
    node->formula = Formula::And(std::move(fs));
  }

  void RenumberPreorder() {
    std::vector<std::unique_ptr<QueryNode>> ordered;
    ordered.reserve(query_.nodes_.size());
    // Index current storage by pointer for extraction.
    int next_id = 0;
    NumberRec(query_.root_, &next_id);
    // Rebuild storage in id order.
    ordered.resize(query_.nodes_.size());
    for (auto& n : query_.nodes_) {
      int id = n->id;
      ordered[id] = std::move(n);
    }
    query_.nodes_ = std::move(ordered);
  }

  void NumberRec(QueryNode* node, int* next_id) {
    node->id = (*next_id)++;
    for (QueryNode* c : node->children) NumberRec(c, next_id);
  }

  Query query_;
  std::vector<Formula> prev_conjuncts_;
};

Result<Query> Query::Compile(const Path& ast, std::string source_text) {
  TwigCompiler compiler;
  return compiler.Run(ast, std::move(source_text));
}

namespace {
void TwigToStringRec(const QueryNode* node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (node->axis) {
    case Axis::kChild:
      out->append("/");
      break;
    case Axis::kDescendant:
      out->append("//");
      break;
    case Axis::kAttribute:
      out->append(node->descendant_attribute ? "//@" : "/@");
      break;
    case Axis::kSelf:
      out->append(".");
      break;
  }
  if (node->test == NodeTestKind::kWildcard) {
    out->append("*");
  } else if (node->test == NodeTestKind::kText) {
    out->append("text()");
  } else {
    out->append(node->name);
  }
  if (node->value_op != CompareOp::kNone) {
    out->push_back(' ');
    out->append(CompareOpToString(node->value_op));
    out->append(" '");
    out->append(node->literal);
    out->push_back('\'');
  }
  out->append("  [id=" + std::to_string(node->id));
  if (node->is_output) out->append(", OUTPUT");
  if (node->on_main_path) out->append(", main");
  if (node->formula.kind != Formula::Kind::kTrue) {
    out->append(", sat=" + node->formula.ToString());
  }
  out->append("]\n");
  for (const QueryNode* c : node->children) {
    TwigToStringRec(c, indent + 1, out);
  }
}
}  // namespace

std::string Query::ToString() const {
  std::string out;
  TwigToStringRec(root_, 0, &out);
  return out;
}

Result<Query> ParseAndCompile(std::string_view query_text) {
  VITEX_ASSIGN_OR_RETURN(Path ast, ParseXPath(query_text));
  return Query::Compile(ast, std::string(query_text));
}

}  // namespace vitex::xpath
