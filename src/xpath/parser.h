// Recursive-descent parser for the ViteX XPath fragment.
//
// Supported grammar (XP{/,//,*,[]} of the paper, plus the attribute and
// text() features the paper's own example queries use):
//
//   Query      := ('/' | '//') Step ( ('/' | '//') Step )*
//   Step       := '@' (Name | '*') | NodeTest Predicate*
//   NodeTest   := Name | '*' | 'text' '(' ')'
//   Predicate  := '[' OrExpr ']'
//   OrExpr     := AndExpr ( 'or' AndExpr )*
//   AndExpr    := Unary ( 'and' Unary )*
//   Unary      := 'not' '(' OrExpr ')' | '(' OrExpr ')' | Cmp
//   Cmp        := Operand ( CmpOp (String | Number) )?
//              |  (String | Number) CmpOp Operand
//   Operand    := RelPath | '.'
//   RelPath    := ('.')? ('/' | '//')? Step ( ('/' | '//') Step )*
//
// Inside predicates, a leading '//' is interpreted relative to the context
// node (as './/'), which matches user intent in streaming queries; truly
// absolute predicate paths are outside the fragment.

#ifndef VITEX_XPATH_PARSER_H_
#define VITEX_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace vitex::xpath {

/// Parses a complete XPath query. The result is always an absolute path with
/// at least one step. Rejects '|' unions (use ParseXPathUnion).
Result<Path> ParseXPath(std::string_view query);

/// Parses a union query `p1 | p2 | ...` into its branch paths (one or more).
Result<std::vector<Path>> ParseXPathUnion(std::string_view query);

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_PARSER_H_
