#include "xpath/canonical.h"

namespace vitex::xpath {

uint64_t FnvHash64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

char AxisTag(const QueryNode& n) {
  switch (n.axis) {
    case Axis::kChild:
      return 'c';
    case Axis::kDescendant:
      return 'd';
    case Axis::kAttribute:
      return n.descendant_attribute ? 'A' : 'a';
    case Axis::kSelf:
      return 's';  // compiled away; kept for totality
  }
  return '?';
}

// One node's skeleton record. Every variable-length field is length- or
// delimiter-framed so distinct twigs can never serialize to the same key
// (e.g. names "ab"+"c" vs "a"+"bc").
void AppendNode(const QueryNode& n, std::string* out) {
  out->push_back(AxisTag(n));
  switch (n.test) {
    case NodeTestKind::kWildcard:
      out->push_back('*');
      break;
    case NodeTestKind::kText:
      out->push_back('t');
      break;
    case NodeTestKind::kName:
      out->push_back('n');
      out->append(std::to_string(n.name.size()));
      out->push_back(':');
      out->append(n.name);
      break;
  }
  // The comparison operator is structural; the literal is a parameter and
  // deliberately absent.
  out->push_back('0' + static_cast<char>(n.value_op));
  if (n.is_output) out->push_back('O');
  // The satisfaction formula (atoms reference child indices, so its string
  // form is position-stable across queries of one skeleton).
  out->push_back('[');
  out->append(n.formula.ToString());
  out->push_back(']');
  out->append(std::to_string(n.children.size()));
  out->push_back(';');
}

}  // namespace

CanonicalQuery Canonicalize(const Query& query) {
  CanonicalQuery out;
  out.key.reserve(query.size() * 16);
  // nodes() is preorder (ids are preorder indices), so the key and the slot
  // numbering are both preorder-stable.
  for (const auto& node : query.nodes()) {
    AppendNode(*node, &out.key);
    if (node->value_op != CompareOp::kNone) {
      ValueParam p;
      p.literal = node->literal;
      p.number = node->number;
      p.literal_is_number = node->literal_is_number;
      p.literal_numeric = node->literal_numeric;
      out.params.push_back(std::move(p));
      out.slot_node_ids.push_back(node->id);
    }
  }
  out.hash = FnvHash64(out.key);
  return out;
}

}  // namespace vitex::xpath
