#include "xpath/rewrite.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "xpath/parser.h"

namespace vitex::xpath {

namespace {

class Rewriter {
 public:
  explicit Rewriter(RewriteStats* stats) : stats_(stats) {}

  Path RewritePathRec(const Path& path) {
    Path out;
    out.absolute = path.absolute;
    for (const Step& step : path.steps) {
      out.steps.push_back(RewriteStep(step));
    }
    return out;
  }

 private:
  void Count(uint64_t* field) {
    if (stats_ != nullptr) ++*field;
  }

  Step RewriteStep(const Step& step) {
    Step out;
    out.axis = step.axis;
    out.test = step.test;
    out.name = step.name;
    out.descendant_attribute = step.descendant_attribute;
    std::vector<std::string> seen;
    for (const auto& pred : step.predicates) {
      std::unique_ptr<PredExpr> rewritten = RewriteExpr(*pred);
      std::string key = PredExprToString(*rewritten);
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
        Count(&stats_->duplicate_predicates_removed);
        continue;
      }
      seen.push_back(std::move(key));
      out.predicates.push_back(std::move(rewritten));
    }
    return out;
  }

  std::unique_ptr<PredExpr> RewriteExpr(const PredExpr& e) {
    switch (e.kind) {
      case PredExpr::Kind::kPath: {
        auto out = std::make_unique<PredExpr>();
        out->kind = PredExpr::Kind::kPath;
        out->path = RewritePathRec(e.path);
        return out;
      }
      case PredExpr::Kind::kCompare: {
        auto out = ClonePredExpr(e);
        out->path = RewritePathRec(e.path);
        return out;
      }
      case PredExpr::Kind::kNot: {
        std::unique_ptr<PredExpr> inner = RewriteExpr(*e.left);
        if (inner->kind == PredExpr::Kind::kNot) {
          // not(not(x)) -> x
          Count(&stats_->double_negations_removed);
          return std::move(inner->left);
        }
        auto out = std::make_unique<PredExpr>();
        out->kind = PredExpr::Kind::kNot;
        out->left = std::move(inner);
        return out;
      }
      case PredExpr::Kind::kAnd:
      case PredExpr::Kind::kOr:
        return RewriteBoolean(e);
    }
    return ClonePredExpr(e);
  }

  // Flattens an and/or chain into operands, dedups, applies absorption,
  // then rebuilds a left-leaning tree.
  std::unique_ptr<PredExpr> RewriteBoolean(const PredExpr& e) {
    PredExpr::Kind kind = e.kind;
    std::vector<std::unique_ptr<PredExpr>> operands;
    Flatten(e, kind, &operands);

    // Dedup (idempotence): x and x -> x.
    std::vector<std::unique_ptr<PredExpr>> unique;
    std::vector<std::string> keys;
    for (auto& op : operands) {
      std::string key = PredExprToString(*op);
      if (std::find(keys.begin(), keys.end(), key) != keys.end()) {
        Count(&stats_->idempotent_operands_removed);
        continue;
      }
      keys.push_back(std::move(key));
      unique.push_back(std::move(op));
    }

    // Absorption: for AND, an operand (x or ...) containing another whole
    // operand x is redundant; dually for OR.
    PredExpr::Kind dual = kind == PredExpr::Kind::kAnd ? PredExpr::Kind::kOr
                                                       : PredExpr::Kind::kAnd;
    std::vector<bool> absorbed(unique.size(), false);
    for (size_t i = 0; i < unique.size(); ++i) {
      if (unique[i]->kind != dual) continue;
      std::vector<std::string> inner_keys;
      CollectKeys(*unique[i], dual, &inner_keys);
      for (size_t j = 0; j < unique.size(); ++j) {
        if (j == i || absorbed[j]) continue;
        std::string key = PredExprToString(*unique[j]);
        if (std::find(inner_keys.begin(), inner_keys.end(), key) !=
            inner_keys.end()) {
          absorbed[i] = true;
          Count(&stats_->absorptions);
          break;
        }
      }
    }
    std::vector<std::unique_ptr<PredExpr>> kept;
    for (size_t i = 0; i < unique.size(); ++i) {
      if (!absorbed[i]) kept.push_back(std::move(unique[i]));
    }

    if (kept.size() == 1) return std::move(kept[0]);
    std::unique_ptr<PredExpr> out = std::move(kept[0]);
    for (size_t i = 1; i < kept.size(); ++i) {
      auto node = std::make_unique<PredExpr>();
      node->kind = kind;
      node->left = std::move(out);
      node->right = std::move(kept[i]);
      out = std::move(node);
    }
    return out;
  }

  // Recursively rewrites and collects the operands of a same-kind chain.
  void Flatten(const PredExpr& e, PredExpr::Kind kind,
               std::vector<std::unique_ptr<PredExpr>>* out) {
    if (e.kind == kind) {
      Flatten(*e.left, kind, out);
      Flatten(*e.right, kind, out);
      return;
    }
    out->push_back(RewriteExpr(e));
  }

  static void CollectKeys(const PredExpr& e, PredExpr::Kind kind,
                          std::vector<std::string>* keys) {
    if (e.kind == kind) {
      CollectKeys(*e.left, kind, keys);
      CollectKeys(*e.right, kind, keys);
      return;
    }
    keys->push_back(PredExprToString(e));
  }

  RewriteStats* stats_;
};

}  // namespace

Path RewritePath(const Path& path, RewriteStats* stats) {
  RewriteStats local;
  Rewriter rewriter(stats != nullptr ? stats : &local);
  return rewriter.RewritePathRec(path);
}

Result<std::string> RewriteQueryText(std::string_view query,
                                     RewriteStats* stats) {
  VITEX_ASSIGN_OR_RETURN(Path path, ParseXPath(query));
  return PathToString(RewritePath(path, stats));
}

}  // namespace vitex::xpath
