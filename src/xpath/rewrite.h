// Query rewriting: semantics-preserving simplifications applied to the AST
// before twig compilation.
//
// Streaming cost is O(|D|·|Q|·(|Q|+B)), so shrinking |Q| pays on every
// event of the stream. The rewriter performs the classic normalizations:
//
//   * duplicate-predicate elimination:        a[b][b]        -> a[b]
//   * idempotent boolean operands:            [b and b]      -> [b]
//                                             [b or b]       -> [b]
//   * double negation:                        [not(not(b))]  -> [b]
//   * De Morgan push-down is NOT applied (it does not shrink the twig).
//   * absorption:                             [b and (b or c)] -> [b]
//                                             [b or (b and c)] -> [b]
//
// Equality of subexpressions is syntactic (canonical rendering), which is
// sound: syntactically equal predicates are trivially equivalent.

#ifndef VITEX_XPATH_REWRITE_H_
#define VITEX_XPATH_REWRITE_H_

#include <cstdint>

#include "common/result.h"
#include "xpath/ast.h"

namespace vitex::xpath {

/// Counters describing what the rewriter did.
struct RewriteStats {
  uint64_t duplicate_predicates_removed = 0;
  uint64_t idempotent_operands_removed = 0;
  uint64_t double_negations_removed = 0;
  uint64_t absorptions = 0;

  uint64_t total() const {
    return duplicate_predicates_removed + idempotent_operands_removed +
           double_negations_removed + absorptions;
  }
};

/// Returns a simplified copy of `path`. The result selects exactly the same
/// nodes on every document.
Path RewritePath(const Path& path, RewriteStats* stats = nullptr);

/// Convenience: parse, rewrite, render back to XPath text.
Result<std::string> RewriteQueryText(std::string_view query,
                                     RewriteStats* stats = nullptr);

}  // namespace vitex::xpath

#endif  // VITEX_XPATH_REWRITE_H_
