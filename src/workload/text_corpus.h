// Small deterministic text corpus shared by the data generators.

#ifndef VITEX_WORKLOAD_TEXT_CORPUS_H_
#define VITEX_WORKLOAD_TEXT_CORPUS_H_

#include <string>

#include "common/random.h"

namespace vitex::workload {

/// Returns a pseudo-English sentence of `words` words.
std::string RandomSentence(Random* rng, int words);

/// Returns a random word from the corpus.
const char* RandomWord(Random* rng);

/// Returns a random person name like "J. Smith".
std::string RandomPersonName(Random* rng);

/// Returns a random protein-style amino-acid sequence of `length` residues.
std::string RandomResidues(Random* rng, int length);

}  // namespace vitex::workload

#endif  // VITEX_WORKLOAD_TEXT_CORPUS_H_
