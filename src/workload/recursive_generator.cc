#include "workload/recursive_generator.h"

#include "common/random.h"

namespace vitex::workload {

Status GenerateRecursive(const RecursiveOptions& options,
                         xml::OutputSink* sink) {
  Random rng(options.seed);
  xml::XmlWriter writer(sink);
  VITEX_RETURN_IF_ERROR(writer.StartElement("root"));
  for (int s = 0; s < options.width; ++s) {
    for (int d = 0; d < options.depth; ++d) {
      VITEX_RETURN_IF_ERROR(writer.StartElement("a"));
      if (rng.OneIn(options.marker_probability)) {
        VITEX_RETURN_IF_ERROR(writer.TextElement("p", "m"));
      }
    }
    VITEX_RETURN_IF_ERROR(writer.TextElement("v", "leaf"));
    for (int d = 0; d < options.depth; ++d) {
      VITEX_RETURN_IF_ERROR(writer.EndElement());
    }
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());
  return writer.Finish();
}

Result<std::string> GenerateRecursiveString(const RecursiveOptions& options) {
  std::string out;
  xml::StringSink sink(&out);
  VITEX_RETURN_IF_ERROR(GenerateRecursive(options, &sink));
  return out;
}

std::string RecursiveChainQuery(int steps, bool with_marker_predicate) {
  std::string q;
  for (int i = 0; i < steps; ++i) {
    q += with_marker_predicate ? "//a[p]" : "//a";
  }
  q += "//v";
  return q;
}

}  // namespace vitex::workload
