#include "workload/book_generator.h"

#include "common/random.h"
#include "workload/text_corpus.h"

namespace vitex::workload {

namespace {

Status WriteTables(xml::XmlWriter* w, Random* rng, const BookOptions& options,
                   int remaining) {
  if (remaining == 0) return Status::OK();
  VITEX_RETURN_IF_ERROR(w->StartElement("table"));
  if (remaining == 1) {
    for (int c = 0; c < options.cells; ++c) {
      VITEX_RETURN_IF_ERROR(w->TextElement("cell", RandomWord(rng)));
    }
  } else {
    VITEX_RETURN_IF_ERROR(WriteTables(w, rng, options, remaining - 1));
  }
  if (rng->OneIn(options.position_probability)) {
    VITEX_RETURN_IF_ERROR(w->TextElement("position", RandomWord(rng)));
  }
  return w->EndElement();
}

Status WriteSections(xml::XmlWriter* w, Random* rng,
                     const BookOptions& options, int remaining) {
  if (remaining == 0) return Status::OK();
  VITEX_RETURN_IF_ERROR(w->StartElement("section"));
  VITEX_RETURN_IF_ERROR(w->TextElement("title", RandomSentence(rng, 3)));
  if (remaining == 1) {
    VITEX_RETURN_IF_ERROR(WriteTables(w, rng, options, options.table_depth));
  } else {
    VITEX_RETURN_IF_ERROR(WriteSections(w, rng, options, remaining - 1));
  }
  if (rng->OneIn(options.author_probability)) {
    VITEX_RETURN_IF_ERROR(w->TextElement("author", RandomPersonName(rng)));
  }
  return w->EndElement();
}

// Figure 1, tags only: position in the outermost table (after its nested
// tables), author in the outermost section (after its nested sections).
Status WriteFigure1(xml::XmlWriter* w) {
  VITEX_RETURN_IF_ERROR(w->StartElement("book"));
  VITEX_RETURN_IF_ERROR(w->StartElement("section"));    // line 2
  VITEX_RETURN_IF_ERROR(w->StartElement("section"));    // line 3
  VITEX_RETURN_IF_ERROR(w->StartElement("section"));    // line 4
  VITEX_RETURN_IF_ERROR(w->StartElement("table"));      // line 5
  VITEX_RETURN_IF_ERROR(w->StartElement("table"));      // line 6
  VITEX_RETURN_IF_ERROR(w->StartElement("table"));      // line 7
  VITEX_RETURN_IF_ERROR(w->TextElement("cell", "A"));   // line 8
  VITEX_RETURN_IF_ERROR(w->EndElement());               // line 9  </table>
  VITEX_RETURN_IF_ERROR(w->EndElement());               // line 10 </table>
  VITEX_RETURN_IF_ERROR(w->TextElement("position", "B"));  // line 11
  VITEX_RETURN_IF_ERROR(w->EndElement());               // line 12 </table>
  VITEX_RETURN_IF_ERROR(w->EndElement());               // line 13 </section>
  VITEX_RETURN_IF_ERROR(w->EndElement());               // line 14 </section>
  VITEX_RETURN_IF_ERROR(w->TextElement("author", "C"));  // line 15
  VITEX_RETURN_IF_ERROR(w->EndElement());               // line 16 </section>
  return w->EndElement();                               // line 17 </book>
}

}  // namespace

Status GenerateBook(const BookOptions& options, xml::OutputSink* sink) {
  xml::XmlWriter writer(sink);
  if (options.figure1_exact) {
    VITEX_RETURN_IF_ERROR(WriteFigure1(&writer));
    return writer.Finish();
  }
  Random rng(options.seed);
  VITEX_RETURN_IF_ERROR(writer.StartElement("book"));
  for (int i = 0; i < options.chains; ++i) {
    VITEX_RETURN_IF_ERROR(
        WriteSections(&writer, &rng, options, options.section_depth));
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());
  return writer.Finish();
}

Result<std::string> GenerateBookString(const BookOptions& options) {
  std::string out;
  xml::StringSink sink(&out);
  VITEX_RETURN_IF_ERROR(GenerateBook(options, &sink));
  return out;
}

std::string Figure1Document() {
  BookOptions options;
  options.figure1_exact = true;
  Result<std::string> doc = GenerateBookString(options);
  return doc.ok() ? std::move(doc).value() : std::string();
}

}  // namespace vitex::workload
