// XMarkGenerator: a simplified version of the XMark auction benchmark
// document (site/regions/items, people, open and closed auctions). XMark is
// the standard data-centric XML benchmark contemporaneous with the paper;
// we use it for the DOM-vs-streaming comparison (experiment E9) and for
// realistic twig queries with value predicates.

#ifndef VITEX_WORKLOAD_XMARK_GENERATOR_H_
#define VITEX_WORKLOAD_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "xml/writer.h"

namespace vitex::workload {

struct XmarkOptions {
  /// Scale knob: items per region (6 regions), persons = 4×, auctions = 2×.
  uint64_t items_per_region = 50;
  uint64_t seed = 1234;
};

Status GenerateXmark(const XmarkOptions& options, xml::OutputSink* sink);
Result<std::string> GenerateXmarkString(const XmarkOptions& options);

}  // namespace vitex::workload

#endif  // VITEX_WORKLOAD_XMARK_GENERATOR_H_
