#include "workload/random_generator.h"

#include <cstdio>

#include "xml/escape.h"

namespace vitex::workload {

namespace {

std::string Tag(int i) { return "t" + std::to_string(i); }

std::string Value(const int vocabulary, Random* rng) {
  return std::to_string(rng->Uniform(static_cast<uint64_t>(vocabulary)));
}

struct DocBuilder {
  const RandomDocOptions& options;
  Random* rng;
  std::string out;
  int elements = 0;

  // Emits one text piece, optionally dressed up in the markup variants the
  // differential fuzzer wants to stress: CDATA wrapping, entity escaping,
  // surrounding whitespace. The logical content after parsing is the same
  // value (modulo deliberate padding), so predicates still hit.
  void Text() {
    std::string value = Value(options.value_vocabulary, rng);
    if (rng->OneIn(options.padded_text_probability)) {
      value = " " + value + " ";
    }
    if (rng->OneIn(options.cdata_probability)) {
      out += "<![CDATA[" + value + "]]>";
      return;
    }
    if (rng->OneIn(options.entity_probability)) {
      // Escape the first character as a numeric character reference (and
      // sometimes as the hex form) — decoded content is unchanged.
      char c = value[0];
      bool hex = rng->OneIn(0.5);
      char buf[16];
      if (hex) {
        std::snprintf(buf, sizeof(buf), "&#x%x;", static_cast<int>(c));
      } else {
        std::snprintf(buf, sizeof(buf), "&#%d;", static_cast<int>(c));
      }
      out += buf + value.substr(1);
      return;
    }
    out += value;
  }

  void Decoration() {
    if (rng->OneIn(options.comment_probability)) {
      out += "<!-- c" + Value(options.value_vocabulary, rng) + " -->";
    }
    if (rng->OneIn(options.whitespace_text_probability)) {
      out += rng->OneIn(0.5) ? "  " : "\n\t";
    }
  }

  void Element(int depth) {
    if (elements >= options.max_elements) return;
    ++elements;
    std::string tag = Tag(static_cast<int>(
        rng->Uniform(static_cast<uint64_t>(options.alphabet))));
    out += "<" + tag;
    if (rng->OneIn(options.attribute_probability)) {
      out += " x=\"" + Value(options.value_vocabulary, rng) + "\"";
    }
    if (rng->OneIn(options.attribute_probability * 0.5)) {
      out += " y=\"" + Value(options.value_vocabulary, rng) + "\"";
    }
    out += ">";
    Decoration();
    if (rng->OneIn(options.text_probability)) {
      Text();
    }
    if (depth < options.max_depth) {
      // Geometric-ish branching: flip a coin weighted to mean_children.
      double continue_p =
          options.mean_children / (options.mean_children + 1.0);
      while (rng->OneIn(continue_p) && elements < options.max_elements) {
        Element(depth + 1);
        Decoration();
        if (rng->OneIn(options.text_probability * 0.5)) {
          Text();
        }
      }
    }
    out += "</" + tag + ">";
  }
};

struct QueryBuilder {
  const RandomQueryOptions& options;
  Random* rng;

  std::string RandomTag() {
    if (rng->OneIn(options.wildcard_probability)) return "*";
    return Tag(static_cast<int>(
        rng->Uniform(static_cast<uint64_t>(options.alphabet))));
  }

  std::string CompareSuffix() {
    const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
    std::string op = ops[rng->Uniform(6)];
    return " " + op + " " +
           (rng->OneIn(0.5)
                ? Value(options.value_vocabulary, rng)
                : "'" + Value(options.value_vocabulary, rng) + "'");
  }

  // A relative path for use inside a predicate.
  std::string RelativePath(int depth) {
    std::string out;
    int steps = 1 + static_cast<int>(rng->Uniform(2));
    for (int i = 0; i < steps; ++i) {
      bool descendant = rng->OneIn(options.descendant_probability);
      if (i == 0) {
        if (descendant) out += "//";
      } else {
        out += descendant ? "//" : "/";
      }
      out += RandomTag();
      if (depth < options.max_predicate_depth &&
          rng->OneIn(options.predicate_probability * 0.5)) {
        out += "[" + Predicate(depth + 1) + "]";
      }
    }
    // Possibly end in an attribute or text().
    double r = rng->NextDouble();
    if (r < 0.2) {
      out += rng->OneIn(options.descendant_probability) ? "//@" : "/@";
      out += rng->OneIn(0.5) ? "x" : "y";
    } else if (r < 0.35) {
      out += rng->OneIn(options.descendant_probability) ? "//text()"
                                                        : "/text()";
    }
    return out;
  }

  std::string Predicate(int depth) {
    double r = rng->NextDouble();
    if (depth < options.max_predicate_depth) {
      if (r < options.not_probability) {
        return "not(" + Predicate(depth + 1) + ")";
      }
      if (r < options.not_probability + options.or_probability) {
        return Predicate(depth + 1) + " or " + Predicate(depth + 1);
      }
      if (r < options.not_probability + 2 * options.or_probability) {
        return Predicate(depth + 1) + " and " + Predicate(depth + 1);
      }
    }
    std::string path = RelativePath(depth);
    if (rng->OneIn(options.value_predicate_probability)) {
      return path + CompareSuffix();
    }
    return path;
  }

  std::string Query() {
    std::string out;
    int steps = 1 + static_cast<int>(rng->Uniform(
                        static_cast<uint64_t>(options.max_main_steps)));
    for (int i = 0; i < steps; ++i) {
      out += rng->OneIn(options.descendant_probability) ? "//" : "/";
      out += RandomTag();
      if (rng->OneIn(options.predicate_probability)) {
        out += "[" + Predicate(0) + "]";
      }
      if (rng->OneIn(options.predicate_probability * 0.4)) {
        out += "[" + Predicate(0) + "]";
      }
    }
    if (rng->OneIn(options.attribute_output_probability)) {
      out += rng->OneIn(0.5) ? "//@" : "/@";
      out += rng->OneIn(0.5) ? "x" : "y";
    } else if (rng->OneIn(0.1)) {
      out += rng->OneIn(0.5) ? "//text()" : "/text()";
    }
    return out;
  }
};

}  // namespace

std::string GenerateRandomDocument(const RandomDocOptions& options,
                                   Random* rng) {
  DocBuilder builder{options, rng, {}, 0};
  // A fixed root keeps documents single-rooted regardless of the cap.
  builder.out += "<root>";
  int top = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < top; ++i) builder.Element(1);
  builder.out += "</root>";
  return builder.out;
}

std::string GenerateRandomQuery(const RandomQueryOptions& options,
                                Random* rng) {
  QueryBuilder builder{options, rng};
  return builder.Query();
}

}  // namespace vitex::workload
