// BookGenerator: recursive book/section/table data shaped like the paper's
// Figure 1 — the workload where descendant axes meet recursive structure and
// pattern matches multiply.
//
// A book contains a chain (or tree) of nested sections; sections contain
// nested tables; tables contain cells; `position` elements appear inside
// some tables and `author` elements inside some sections. The paper's
// walkthrough query //section[author]//table[position]//cell is maximally
// ambiguous on this shape: a single cell has (#open sections × #open
// tables) pattern matches.

#ifndef VITEX_WORKLOAD_BOOK_GENERATOR_H_
#define VITEX_WORKLOAD_BOOK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "xml/writer.h"

namespace vitex::workload {

struct BookOptions {
  /// Nesting depth of sections (the paper's figure uses 3).
  int section_depth = 3;
  /// Nesting depth of tables inside the innermost section (figure: 3).
  int table_depth = 3;
  /// Number of independent section chains under the book root.
  int chains = 1;
  /// Cells inside the innermost table.
  int cells = 1;
  /// Probability that a table directly contains a `position` element
  /// (placed after its nested table, mirroring the figure where only the
  /// outermost table has one).
  double position_probability = 0.3;
  /// Probability that a section directly contains an `author` element.
  double author_probability = 0.3;
  /// When true, reproduce Figure 1 exactly: 3 nested sections, 3 nested
  /// tables, one cell, `position` only in the outermost table, `author`
  /// only in the outermost section. Other knobs are ignored.
  bool figure1_exact = false;
  uint64_t seed = 7;
};

Status GenerateBook(const BookOptions& options, xml::OutputSink* sink);
Result<std::string> GenerateBookString(const BookOptions& options);

/// The exact document of paper Figure 1 (whitespace-free equivalent).
std::string Figure1Document();

}  // namespace vitex::workload

#endif  // VITEX_WORKLOAD_BOOK_GENERATOR_H_
