// ProteinGenerator: a synthetic stand-in for the Georgetown PIR Protein
// Sequence Database (psd7003.xml) used in the paper's headline experiment.
//
// The real 75 MB dataset is not redistributable here; this generator
// reproduces its *shape* — a long, shallow run of ProteinEntry subtrees with
// id attributes, headers, organism/classification metadata, reference
// blocks (present in most entries), and amino-acid sequences — so the
// paper's query //ProteinEntry[reference]/@id exercises the same code paths
// with the same selectivity. See DESIGN.md §1 for the substitution note.

#ifndef VITEX_WORKLOAD_PROTEIN_GENERATOR_H_
#define VITEX_WORKLOAD_PROTEIN_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "xml/writer.h"

namespace vitex::workload {

struct ProteinOptions {
  /// Number of ProteinEntry elements. Roughly 1.1 KB per entry; ~70,000
  /// entries yield the paper's ~75 MB.
  uint64_t entries = 1000;
  /// Probability that an entry has at least one reference block (the paper
  /// query's predicate). The real PSD has references on nearly all entries.
  double reference_probability = 0.9;
  /// Mean residues per sequence element.
  int sequence_length = 320;
  uint64_t seed = 42;
};

/// Streams the dataset into `sink`. O(1) memory in the document size.
Status GenerateProtein(const ProteinOptions& options, xml::OutputSink* sink);

/// Convenience: generates into a string.
Result<std::string> GenerateProteinString(const ProteinOptions& options);

/// Generates a dataset of at least `target_bytes` into `path`; returns the
/// number of ProteinEntry elements written.
Result<uint64_t> GenerateProteinFile(const std::string& path,
                                     uint64_t target_bytes, uint64_t seed);

/// Approximate bytes per entry with default options (for sizing sweeps).
constexpr uint64_t kApproxProteinEntryBytes = 1100;

}  // namespace vitex::workload

#endif  // VITEX_WORKLOAD_PROTEIN_GENERATOR_H_
