#include "workload/text_corpus.h"

namespace vitex::workload {

namespace {

const char* const kWords[] = {
    "stream",   "query",    "protein",  "binding", "structure", "analysis",
    "pattern",  "match",    "sequence", "cell",    "table",     "section",
    "data",     "result",   "index",    "engine",  "stack",     "machine",
    "node",     "element",  "predicate", "axis",   "candidate", "solution",
    "market",   "ticker",   "auction",  "bidder",  "category",  "region",
    "report",   "summary",  "article",  "author",  "journal",   "volume",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

const char* const kSurnames[] = {
    "Smith", "Chen",  "Davidson", "Zheng",  "Garcia", "Kim",
    "Patel", "Okafor", "Novak",   "Tanaka", "Singh",  "Muller",
};
constexpr size_t kSurnameCount = sizeof(kSurnames) / sizeof(kSurnames[0]);

const char kResidueAlphabet[] = "ACDEFGHIKLMNPQRSTVWY";

}  // namespace

const char* RandomWord(Random* rng) {
  return kWords[rng->Uniform(kWordCount)];
}

std::string RandomSentence(Random* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out.push_back(' ');
    out.append(RandomWord(rng));
  }
  return out;
}

std::string RandomPersonName(Random* rng) {
  std::string out;
  out.push_back(static_cast<char>('A' + rng->Uniform(26)));
  out.append(". ");
  out.append(kSurnames[rng->Uniform(kSurnameCount)]);
  return out;
}

std::string RandomResidues(Random* rng, int length) {
  std::string out;
  out.reserve(length);
  for (int i = 0; i < length; ++i) {
    out.push_back(kResidueAlphabet[rng->Uniform(sizeof(kResidueAlphabet) - 1)]);
  }
  return out;
}

}  // namespace vitex::workload
