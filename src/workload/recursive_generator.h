// RecursiveGenerator: the adversarial workload for match explosion.
//
// Emits `width` independent spines, each a chain of `depth` nested <a>
// elements; every <a> carries a <p> marker child with probability
// marker_probability, and the innermost <a> holds a <v> leaf. Against the
// chain query //a[p]//a[p]//...//a[p]//v, the number of explicit pattern
// matches grows as C(depth, k) — binomially, i.e. exponential in the query
// size k — while TwigM's stacks hold at most depth·k entries (experiments
// E3 and E7).

#ifndef VITEX_WORKLOAD_RECURSIVE_GENERATOR_H_
#define VITEX_WORKLOAD_RECURSIVE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "xml/writer.h"

namespace vitex::workload {

struct RecursiveOptions {
  int depth = 16;
  int width = 1;
  /// Probability that an <a> level carries the <p> marker. 1.0 makes every
  /// level eligible and maximizes the match count.
  double marker_probability = 1.0;
  uint64_t seed = 11;
};

Status GenerateRecursive(const RecursiveOptions& options,
                         xml::OutputSink* sink);
Result<std::string> GenerateRecursiveString(const RecursiveOptions& options);

/// Builds the chain query //a[p]//a[p]//...//a[p]//v with `steps` a-steps.
std::string RecursiveChainQuery(int steps, bool with_marker_predicate = true);

}  // namespace vitex::workload

#endif  // VITEX_WORKLOAD_RECURSIVE_GENERATOR_H_
