// Random document and query generators over a shared small tag alphabet —
// the property-test workhorse. A random document and a random query drawn
// from the same alphabet collide often enough that differential testing
// (TwigM vs DOM oracle vs naive matcher) exercises real matching, not just
// empty result sets.

#ifndef VITEX_WORKLOAD_RANDOM_GENERATOR_H_
#define VITEX_WORKLOAD_RANDOM_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace vitex::workload {

struct RandomDocOptions {
  /// Element names are drawn from {t0, t1, ..., t(alphabet-1)}.
  int alphabet = 4;
  int max_depth = 8;
  /// Expected children per element (geometric-ish branching).
  double mean_children = 2.0;
  double attribute_probability = 0.3;
  double text_probability = 0.4;
  /// Attribute names are drawn from {x, y}; values and texts from a small
  /// numeric vocabulary so value predicates hit.
  int value_vocabulary = 5;
  /// Hard cap on total elements to keep documents bounded.
  int max_elements = 400;

  /// Markup-variety knobs for the differential fuzzer: probabilities of
  /// injecting a comment between children, wrapping a text piece in CDATA,
  /// entity-escaping a text piece, padding text with surrounding
  /// whitespace, or emitting a whitespace-only text node. All default to 0
  /// so existing seeded documents keep their exact byte streams (a draw is
  /// only consumed when the probability is positive).
  double comment_probability = 0.0;
  double cdata_probability = 0.0;
  double entity_probability = 0.0;
  double padded_text_probability = 0.0;
  double whitespace_text_probability = 0.0;
};

/// Generates a random well-formed document.
std::string GenerateRandomDocument(const RandomDocOptions& options,
                                   Random* rng);

struct RandomQueryOptions {
  int alphabet = 4;       ///< must match the document generator's alphabet
  int max_main_steps = 4;
  double descendant_probability = 0.5;
  double wildcard_probability = 0.15;
  double predicate_probability = 0.5;
  /// Maximum nesting of predicates within predicates.
  int max_predicate_depth = 2;
  double value_predicate_probability = 0.3;
  double attribute_output_probability = 0.15;
  double or_probability = 0.2;
  double not_probability = 0.15;
  int value_vocabulary = 5;
};

/// Generates a random XPath query inside the ViteX fragment. The result
/// always parses and compiles.
std::string GenerateRandomQuery(const RandomQueryOptions& options,
                                Random* rng);

}  // namespace vitex::workload

#endif  // VITEX_WORKLOAD_RANDOM_GENERATOR_H_
