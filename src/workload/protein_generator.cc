#include "workload/protein_generator.h"

#include <cstdio>

#include "common/random.h"
#include "workload/text_corpus.h"

namespace vitex::workload {

namespace {

Status WriteEntry(xml::XmlWriter* w, Random* rng, uint64_t index,
                  const ProteinOptions& options) {
  char idbuf[32];
  std::snprintf(idbuf, sizeof(idbuf), "PE%07llu",
                static_cast<unsigned long long>(index));
  VITEX_RETURN_IF_ERROR(w->StartElement("ProteinEntry"));
  VITEX_RETURN_IF_ERROR(w->AddAttribute("id", idbuf));

  VITEX_RETURN_IF_ERROR(w->StartElement("header"));
  char uid[32];
  std::snprintf(uid, sizeof(uid), "%llu",
                static_cast<unsigned long long>(9000000 + index));
  VITEX_RETURN_IF_ERROR(w->TextElement("uid", uid));
  char acc[32];
  std::snprintf(acc, sizeof(acc), "A%06llu",
                static_cast<unsigned long long>(index % 999983));
  VITEX_RETURN_IF_ERROR(w->TextElement("accession", acc));
  VITEX_RETURN_IF_ERROR(w->TextElement("created_date", "01-Jan-2001"));
  VITEX_RETURN_IF_ERROR(w->EndElement());  // header

  VITEX_RETURN_IF_ERROR(w->StartElement("protein"));
  VITEX_RETURN_IF_ERROR(w->TextElement("name", RandomSentence(rng, 3)));
  VITEX_RETURN_IF_ERROR(w->StartElement("classification"));
  VITEX_RETURN_IF_ERROR(
      w->TextElement("superfamily", RandomSentence(rng, 2)));
  VITEX_RETURN_IF_ERROR(w->EndElement());  // classification
  VITEX_RETURN_IF_ERROR(w->EndElement());  // protein

  VITEX_RETURN_IF_ERROR(w->StartElement("organism"));
  VITEX_RETURN_IF_ERROR(w->TextElement("source", RandomSentence(rng, 2)));
  VITEX_RETURN_IF_ERROR(w->TextElement("common", RandomWord(rng)));
  VITEX_RETURN_IF_ERROR(w->EndElement());  // organism

  if (rng->OneIn(options.reference_probability)) {
    int refs = 1 + static_cast<int>(rng->Uniform(3));
    for (int r = 0; r < refs; ++r) {
      VITEX_RETURN_IF_ERROR(w->StartElement("reference"));
      VITEX_RETURN_IF_ERROR(w->StartElement("refinfo"));
      char refid[48];
      std::snprintf(refid, sizeof(refid), "R%07llu.%d",
                    static_cast<unsigned long long>(index), r);
      VITEX_RETURN_IF_ERROR(w->AddAttribute("refid", refid));
      VITEX_RETURN_IF_ERROR(w->StartElement("authors"));
      int authors = 1 + static_cast<int>(rng->Uniform(4));
      for (int a = 0; a < authors; ++a) {
        VITEX_RETURN_IF_ERROR(
            w->TextElement("author", RandomPersonName(rng)));
      }
      VITEX_RETURN_IF_ERROR(w->EndElement());  // authors
      VITEX_RETURN_IF_ERROR(
          w->TextElement("citation", RandomSentence(rng, 5)));
      char year[8];
      std::snprintf(year, sizeof(year), "%d",
                    1985 + static_cast<int>(rng->Uniform(20)));
      VITEX_RETURN_IF_ERROR(w->TextElement("year", year));
      VITEX_RETURN_IF_ERROR(w->EndElement());  // refinfo
      VITEX_RETURN_IF_ERROR(w->EndElement());  // reference
    }
  }

  VITEX_RETURN_IF_ERROR(w->StartElement("genetics"));
  VITEX_RETURN_IF_ERROR(w->TextElement("gene", RandomWord(rng)));
  VITEX_RETURN_IF_ERROR(w->EndElement());  // genetics

  int len = options.sequence_length / 2 +
            static_cast<int>(rng->Uniform(
                static_cast<uint64_t>(options.sequence_length) + 1));
  VITEX_RETURN_IF_ERROR(w->StartElement("summary"));
  char lenbuf[16];
  std::snprintf(lenbuf, sizeof(lenbuf), "%d", len);
  VITEX_RETURN_IF_ERROR(w->TextElement("length", lenbuf));
  VITEX_RETURN_IF_ERROR(w->TextElement("type", "complete"));
  VITEX_RETURN_IF_ERROR(w->EndElement());  // summary

  VITEX_RETURN_IF_ERROR(w->TextElement("sequence", RandomResidues(rng, len)));
  return w->EndElement();  // ProteinEntry
}

}  // namespace

Status GenerateProtein(const ProteinOptions& options, xml::OutputSink* sink) {
  Random rng(options.seed);
  xml::XmlWriter writer(sink);
  VITEX_RETURN_IF_ERROR(writer.StartElement("ProteinDatabase"));
  for (uint64_t i = 0; i < options.entries; ++i) {
    VITEX_RETURN_IF_ERROR(WriteEntry(&writer, &rng, i, options));
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());
  return writer.Finish();
}

Result<std::string> GenerateProteinString(const ProteinOptions& options) {
  std::string out;
  xml::StringSink sink(&out);
  VITEX_RETURN_IF_ERROR(GenerateProtein(options, &sink));
  return out;
}

Result<uint64_t> GenerateProteinFile(const std::string& path,
                                     uint64_t target_bytes, uint64_t seed) {
  xml::FileSink sink;
  VITEX_RETURN_IF_ERROR(sink.Open(path));
  Random rng(seed);
  ProteinOptions options;
  options.seed = seed;
  xml::XmlWriter writer(&sink);
  VITEX_RETURN_IF_ERROR(writer.StartElement("ProteinDatabase"));
  uint64_t entries = 0;
  while (sink.bytes_written() < target_bytes) {
    VITEX_RETURN_IF_ERROR(WriteEntry(&writer, &rng, entries, options));
    ++entries;
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());
  VITEX_RETURN_IF_ERROR(writer.Finish());
  VITEX_RETURN_IF_ERROR(sink.Close());
  return entries;
}

}  // namespace vitex::workload
