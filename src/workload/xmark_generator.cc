#include "workload/xmark_generator.h"

#include <cstdio>

#include "common/random.h"
#include "workload/text_corpus.h"

namespace vitex::workload {

namespace {

const char* const kRegions[] = {"africa",        "asia",   "australia",
                                "europe",        "namerica", "samerica"};
constexpr int kRegionCount = 6;

std::string Id(const char* prefix, uint64_t n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%llu", prefix,
                static_cast<unsigned long long>(n));
  return buf;
}

Status WriteItem(xml::XmlWriter* w, Random* rng, uint64_t id) {
  VITEX_RETURN_IF_ERROR(w->StartElement("item"));
  VITEX_RETURN_IF_ERROR(w->AddAttribute("id", Id("item", id)));
  VITEX_RETURN_IF_ERROR(w->TextElement("name", RandomSentence(rng, 2)));
  VITEX_RETURN_IF_ERROR(w->StartElement("description"));
  VITEX_RETURN_IF_ERROR(w->StartElement("parlist"));
  int listitems = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < listitems; ++i) {
    VITEX_RETURN_IF_ERROR(
        w->TextElement("listitem", RandomSentence(rng, 6)));
  }
  VITEX_RETURN_IF_ERROR(w->EndElement());  // parlist
  VITEX_RETURN_IF_ERROR(w->EndElement());  // description
  int cats = 1 + static_cast<int>(rng->Uniform(3));
  for (int c = 0; c < cats; ++c) {
    VITEX_RETURN_IF_ERROR(w->StartElement("incategory"));
    VITEX_RETURN_IF_ERROR(
        w->AddAttribute("category", Id("category", rng->Uniform(100))));
    VITEX_RETURN_IF_ERROR(w->EndElement());
  }
  char qty[8];
  std::snprintf(qty, sizeof(qty), "%d", 1 + static_cast<int>(rng->Uniform(9)));
  VITEX_RETURN_IF_ERROR(w->TextElement("quantity", qty));
  return w->EndElement();  // item
}

Status WritePerson(xml::XmlWriter* w, Random* rng, uint64_t id) {
  VITEX_RETURN_IF_ERROR(w->StartElement("person"));
  VITEX_RETURN_IF_ERROR(w->AddAttribute("id", Id("person", id)));
  VITEX_RETURN_IF_ERROR(w->TextElement("name", RandomPersonName(rng)));
  VITEX_RETURN_IF_ERROR(w->TextElement(
      "emailaddress", "mailto:" + std::string(RandomWord(rng)) + "@example.org"));
  if (rng->OneIn(0.6)) {
    VITEX_RETURN_IF_ERROR(w->StartElement("profile"));
    char income[16];
    std::snprintf(income, sizeof(income), "%d",
                  20000 + static_cast<int>(rng->Uniform(80000)));
    VITEX_RETURN_IF_ERROR(w->TextElement("income", income));
    if (rng->OneIn(0.5)) {
      VITEX_RETURN_IF_ERROR(w->StartElement("interest"));
      VITEX_RETURN_IF_ERROR(
          w->AddAttribute("category", Id("category", rng->Uniform(100))));
      VITEX_RETURN_IF_ERROR(w->EndElement());
    }
    VITEX_RETURN_IF_ERROR(w->EndElement());  // profile
  }
  return w->EndElement();  // person
}

Status WriteOpenAuction(xml::XmlWriter* w, Random* rng, uint64_t id,
                        uint64_t item_count, uint64_t person_count) {
  VITEX_RETURN_IF_ERROR(w->StartElement("open_auction"));
  VITEX_RETURN_IF_ERROR(w->AddAttribute("id", Id("open_auction", id)));
  char amount[16];
  double initial = 1.0 + rng->NextDouble() * 200.0;
  std::snprintf(amount, sizeof(amount), "%.2f", initial);
  VITEX_RETURN_IF_ERROR(w->TextElement("initial", amount));
  int bidders = static_cast<int>(rng->Uniform(5));
  double current = initial;
  for (int b = 0; b < bidders; ++b) {
    VITEX_RETURN_IF_ERROR(w->StartElement("bidder"));
    VITEX_RETURN_IF_ERROR(w->StartElement("personref"));
    VITEX_RETURN_IF_ERROR(
        w->AddAttribute("person", Id("person", rng->Uniform(person_count))));
    VITEX_RETURN_IF_ERROR(w->EndElement());  // personref
    double inc = 1.0 + rng->NextDouble() * 20.0;
    current += inc;
    std::snprintf(amount, sizeof(amount), "%.2f", inc);
    VITEX_RETURN_IF_ERROR(w->TextElement("increase", amount));
    VITEX_RETURN_IF_ERROR(w->EndElement());  // bidder
  }
  std::snprintf(amount, sizeof(amount), "%.2f", current);
  VITEX_RETURN_IF_ERROR(w->TextElement("current", amount));
  VITEX_RETURN_IF_ERROR(w->StartElement("itemref"));
  VITEX_RETURN_IF_ERROR(
      w->AddAttribute("item", Id("item", rng->Uniform(item_count))));
  VITEX_RETURN_IF_ERROR(w->EndElement());  // itemref
  return w->EndElement();                  // open_auction
}

}  // namespace

Status GenerateXmark(const XmarkOptions& options, xml::OutputSink* sink) {
  Random rng(options.seed);
  xml::XmlWriter writer(sink);
  uint64_t item_count = options.items_per_region * kRegionCount;
  uint64_t person_count = options.items_per_region * 4;
  uint64_t auction_count = options.items_per_region * 2;

  VITEX_RETURN_IF_ERROR(writer.StartElement("site"));
  VITEX_RETURN_IF_ERROR(writer.StartElement("regions"));
  uint64_t item_id = 0;
  for (int r = 0; r < kRegionCount; ++r) {
    VITEX_RETURN_IF_ERROR(writer.StartElement(kRegions[r]));
    for (uint64_t i = 0; i < options.items_per_region; ++i) {
      VITEX_RETURN_IF_ERROR(WriteItem(&writer, &rng, item_id++));
    }
    VITEX_RETURN_IF_ERROR(writer.EndElement());
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());  // regions

  VITEX_RETURN_IF_ERROR(writer.StartElement("people"));
  for (uint64_t p = 0; p < person_count; ++p) {
    VITEX_RETURN_IF_ERROR(WritePerson(&writer, &rng, p));
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());  // people

  VITEX_RETURN_IF_ERROR(writer.StartElement("open_auctions"));
  for (uint64_t a = 0; a < auction_count; ++a) {
    VITEX_RETURN_IF_ERROR(
        WriteOpenAuction(&writer, &rng, a, item_count, person_count));
  }
  VITEX_RETURN_IF_ERROR(writer.EndElement());  // open_auctions

  VITEX_RETURN_IF_ERROR(writer.EndElement());  // site
  return writer.Finish();
}

Result<std::string> GenerateXmarkString(const XmarkOptions& options) {
  std::string out;
  xml::StringSink sink(&out);
  VITEX_RETURN_IF_ERROR(GenerateXmark(options, &sink));
  return out;
}

}  // namespace vitex::workload
