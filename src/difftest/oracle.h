// Differential oracle: evaluates one (query, document) pair through five
// independent routes and cross-checks the results byte-for-byte.
//
//   1. dom-baseline — baseline::DomEvaluator over a materialized DOM:
//      random access + memoization, the paper's §1 non-streaming evaluator.
//      Ground truth.
//   2. twigm — a single twigm::Engine (SAX → TwigMachine), one pass.
//   3. multi-query — twigm::MultiQueryEngine with the checked queries and K
//      extra decoy queries co-registered, so the dispatch index, broadcast
//      fallbacks and central text coalescing are in play. Plan sharing is
//      explicitly OFF: one private machine per query, pinning the
//      pre-sharing execution path as a reference.
//   4. service — service::StreamService end to end: per-stream parser
//      threads (the document is published once on EACH of 1..max_streams
//      streams, so concurrent parses and the epoch merge are in play) into
//      an EventLog, replay across 1..max_shards shard threads, delivery
//      through per-subscriber sinks. Expected results are the DOM set
//      replicated once per stream: a lost or duplicated stream copy is a
//      divergence.
//   5. shared-plan — the same MultiQueryEngine registration with plan
//      sharing ON (hash-consed skeletons, per-group parameter masks,
//      subscriber fan-out; DESIGN.md §7). Routes 3 and 5 differ only in
//      Options::share_plans, so any divergence between them indicts the
//      plan cache directly.
//
// Results are normalized to the sorted set of (sequence number, serialized
// output node) pairs. Sequence numbers are stamped once by the SAX parser
// and carried verbatim through every route (EventLog replay, dispatch,
// DomBuilder adoption), so two routes agree iff they selected exactly the
// same document nodes — no positional or formatting slack. See DESIGN.md §6.
//
// On divergence the oracle shrinks the document (greedy subtree/attribute/
// text deletion while the same route pair still disagrees) and reports a
// self-contained repro: query, decoys, shard and stream counts, minimized
// document.

#ifndef VITEX_DIFFTEST_ORACLE_H_
#define VITEX_DIFFTEST_ORACLE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace vitex::difftest {

/// The five evaluation routes.
enum class Route : uint8_t { kDom, kTwigM, kMultiQuery, kService,
                             kSharedPlan };
std::string_view RouteName(Route route);

/// Normal form of one route's answer: (document-order sequence number,
/// serialized output node), sorted. Element results are canonical subtree
/// XML; attribute and text results are raw values.
using ResultSet = std::vector<std::pair<uint64_t, std::string>>;

struct OracleOptions {
  /// The service route cycles shard_count over 1..max_shards (0 disables
  /// the service route, e.g. for sanitizer runs that forbid threads).
  size_t max_shards = 4;
  /// The service route also cycles its publisher stream count over
  /// 1..max_streams (advancing each time the shard cycle wraps, so sweeps
  /// cover the full stream×shard grid). <= 1 pins a single stream.
  size_t max_streams = 4;
  /// When > 0, the twigm route feeds the document in chunks of this many
  /// bytes instead of one RunString, stressing parser chunking too.
  size_t feed_chunk_bytes = 0;
  /// Shrink failing documents before reporting (costs extra evaluations of
  /// the two diverging routes; bounded by max_minimize_probes).
  bool minimize = true;
  size_t max_minimize_probes = 200;
};

/// A cross-check failure: two routes answered differently (or one errored).
struct Divergence {
  Route route_a = Route::kDom;
  Route route_b = Route::kTwigM;
  std::string query;
  /// Decoy queries co-registered when the divergence appeared (part of the
  /// repro: dispatch-index divergences can depend on them).
  std::vector<std::string> decoys;
  size_t shard_count = 1;
  size_t stream_count = 1;
  /// Minimized document (the original when minimization is off or failed).
  std::string document;
  size_t original_document_bytes = 0;
  /// First differing entry / error status, human-readable.
  std::string detail;

  /// Self-contained multi-line repro report.
  std::string ToString() const;
};

class Oracle {
 public:
  explicit Oracle(OracleOptions options = OracleOptions());

  /// Cross-checks one query; equivalent to CheckBatch({query}, {}, doc).
  std::optional<Divergence> Check(const std::string& query,
                                  const std::string& document);

  /// Cross-checks every query in `queries` over one document. All queries
  /// plus `decoys` are co-registered in the multi-query and service routes
  /// (each checked query perturbs the others' dispatch); decoy results are
  /// not checked. Returns the first divergence found, if any.
  std::optional<Divergence> CheckBatch(const std::vector<std::string>& queries,
                                       const std::vector<std::string>& decoys,
                                       const std::string& document);

  /// Individual routes, exposed for tests and targeted repro replay.
  static Result<ResultSet> RunDom(const std::string& query,
                                  const std::string& document);
  Result<ResultSet> RunTwigM(const std::string& query,
                             const std::string& document) const;
  /// `share_plans` selects route 3 (false: one private machine per query)
  /// or route 5 (true: hash-consed shared plans).
  static Result<std::vector<ResultSet>> RunMultiQuery(
      const std::vector<std::string>& queries,
      const std::vector<std::string>& decoys, const std::string& document,
      bool share_plans = false);
  static Result<std::vector<ResultSet>> RunSharedPlan(
      const std::vector<std::string>& queries,
      const std::vector<std::string>& decoys, const std::string& document) {
    return RunMultiQuery(queries, decoys, document, /*share_plans=*/true);
  }
  /// Publishes the document once per stream; each query's ResultSet is
  /// therefore the single-document set replicated `stream_count` times.
  static Result<std::vector<ResultSet>> RunService(
      const std::vector<std::string>& queries,
      const std::vector<std::string>& decoys, const std::string& document,
      size_t shard_count, size_t stream_count = 1);

  /// (query, document) pairs cross-checked so far.
  uint64_t checks_run() const { return checks_; }
  const OracleOptions& options() const { return options_; }

 private:
  // Evaluates only the two routes of `d` on `document`; true if they still
  // disagree (the acceptance test for a minimization step).
  bool PairStillDiverges(const Divergence& d, const std::string& document) const;
  Result<ResultSet> RunRoute(Route route, const Divergence& d,
                             const std::string& document) const;
  void Minimize(Divergence* d) const;

  OracleOptions options_;
  uint64_t checks_ = 0;
};

/// Greedy document shrinking: parses `document` into a DOM and repeatedly
/// deletes one element subtree, attribute or text node (largest subtrees
/// first) as long as `still_fails` accepts the reduced serialization.
/// `still_fails` is invoked at most `max_probes` times. The oracle uses
/// the diverging route pair as the predicate; exposed for reuse and tests.
std::string MinimizeDocument(
    const std::string& document,
    const std::function<bool(const std::string&)>& still_fails,
    size_t max_probes);

/// Writes `divergence` as repro files into `dir` (created if needed):
/// NNN-report.txt, NNN-query.txt, NNN-document.xml. Returns the report
/// path. CI uploads these as workflow artifacts.
Result<std::string> WriteReproFiles(const Divergence& divergence,
                                    const std::string& dir, int index);

}  // namespace vitex::difftest

#endif  // VITEX_DIFFTEST_ORACLE_H_
