#include "difftest/workload_corpus.h"

#include "workload/book_generator.h"
#include "workload/protein_generator.h"
#include "workload/random_generator.h"
#include "workload/recursive_generator.h"
#include "workload/xmark_generator.h"

namespace vitex::difftest {

const std::vector<WorkloadKind>& AllWorkloads() {
  static const std::vector<WorkloadKind> kAll = {
      WorkloadKind::kProtein, WorkloadKind::kBooks, WorkloadKind::kXmark,
      WorkloadKind::kRecursive, WorkloadKind::kRandom};
  return kAll;
}

std::string_view WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kProtein:
      return "protein";
    case WorkloadKind::kBooks:
      return "books";
    case WorkloadKind::kXmark:
      return "xmark";
    case WorkloadKind::kRecursive:
      return "recursive";
    case WorkloadKind::kRandom:
      return "random";
  }
  return "?";
}

bool WorkloadFromName(std::string_view name, WorkloadKind* out) {
  for (WorkloadKind kind : AllWorkloads()) {
    if (WorkloadName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

QueryFuzzerOptions WorkloadAlphabet(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kProtein:
      return ProteinAlphabet();
    case WorkloadKind::kBooks:
      return BookAlphabet();
    case WorkloadKind::kXmark:
      return XmarkAlphabet();
    case WorkloadKind::kRecursive:
      return RecursiveAlphabet();
    case WorkloadKind::kRandom:
      return RandomDocAlphabet();
  }
  return RandomDocAlphabet();
}

std::string GenerateWorkloadDocument(WorkloadKind kind, uint64_t seed,
                                     Random* rng) {
  switch (kind) {
    case WorkloadKind::kProtein: {
      workload::ProteinOptions o;
      o.entries = 2 + rng->Uniform(4);
      o.seed = seed;
      return workload::GenerateProteinString(o).value_or("<ProteinDatabase/>");
    }
    case WorkloadKind::kBooks: {
      workload::BookOptions o;
      o.seed = seed;
      o.section_depth = 2 + static_cast<int>(rng->Uniform(3));
      o.table_depth = 2 + static_cast<int>(rng->Uniform(2));
      o.chains = 1 + static_cast<int>(rng->Uniform(2));
      o.author_probability = 0.5;
      o.position_probability = 0.5;
      return workload::GenerateBookString(o).value_or("<book/>");
    }
    case WorkloadKind::kXmark: {
      workload::XmarkOptions o;
      o.seed = seed;
      o.items_per_region = 1 + rng->Uniform(2);
      return workload::GenerateXmarkString(o).value_or("<site/>");
    }
    case WorkloadKind::kRecursive: {
      // Deep recursion is where candidate-stack bugs hide: bias toward
      // depth, occasionally with multiple spines.
      workload::RecursiveOptions o;
      o.seed = seed;
      o.depth = 8 + static_cast<int>(rng->Uniform(10));
      o.width = 1 + static_cast<int>(rng->Uniform(2));
      o.marker_probability = 0.7;
      return workload::GenerateRecursiveString(o).value_or("<root/>");
    }
    case WorkloadKind::kRandom: {
      workload::RandomDocOptions o;
      o.max_elements = 80;
      // Full markup variety: comments, CDATA, entities, padded and
      // whitespace-only text — the constructs that stress text coalescing
      // and sequence stamping across routes.
      o.comment_probability = 0.1;
      o.cdata_probability = 0.15;
      o.entity_probability = 0.15;
      o.padded_text_probability = 0.2;
      o.whitespace_text_probability = 0.1;
      return workload::GenerateRandomDocument(o, rng);
    }
  }
  return "<root/>";
}

}  // namespace vitex::difftest
