#include "difftest/oracle.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "baseline/dom_evaluator.h"
#include "service/stream_service.h"
#include "twigm/engine.h"
#include "twigm/multi_query.h"
#include "twigm/result.h"
#include "xml/dom.h"
#include "xml/escape.h"
#include "xpath/query.h"

namespace vitex::difftest {

namespace {

using xml::DomNode;

ResultSet Normalize(const std::vector<twigm::VectorResultCollector::Entry>&
                        entries) {
  ResultSet out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.emplace_back(e.sequence, e.fragment);
  std::sort(out.begin(), out.end());
  return out;
}

// Each entry repeated `copies` times (adjacent, so a sorted input stays
// sorted): the expected answer when the service route publishes the same
// document on `copies` streams.
ResultSet Replicate(const ResultSet& set, size_t copies) {
  if (copies <= 1) return set;
  ResultSet out;
  out.reserve(set.size() * copies);
  for (const auto& e : set) {
    for (size_t c = 0; c < copies; ++c) out.push_back(e);
  }
  return out;
}

std::string Truncate(const std::string& s, size_t limit = 160) {
  if (s.size() <= limit) return s;
  return s.substr(0, limit) + "... (" + std::to_string(s.size()) + " bytes)";
}

// Human-readable first difference between two normalized sets.
std::string FirstDifference(std::string_view name_a, const ResultSet& a,
                            std::string_view name_b, const ResultSet& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return "entry #" + std::to_string(i) + ": " + std::string(name_a) +
             " has (seq " + std::to_string(a[i].first) + ", \"" +
             Truncate(a[i].second) + "\"), " + std::string(name_b) +
             " has (seq " + std::to_string(b[i].first) + ", \"" +
             Truncate(b[i].second) + "\")";
    }
  }
  std::string out = std::string(name_a) + " returned " +
                    std::to_string(a.size()) + " results, " +
                    std::string(name_b) + " returned " +
                    std::to_string(b.size());
  const ResultSet& longer = a.size() > b.size() ? a : b;
  std::string_view longer_name = a.size() > b.size() ? name_a : name_b;
  if (longer.size() > n) {
    out += "; first extra in " + std::string(longer_name) + ": (seq " +
           std::to_string(longer[n].first) + ", \"" +
           Truncate(longer[n].second) + "\")";
  }
  return out;
}

// Serializes the document while skipping one node (element subtree,
// attribute, or text node) — the single reduction step of the minimizer.
void SerializeSkippingRec(const DomNode* node, const DomNode* skip,
                          std::string* out) {
  if (node == skip) return;
  switch (node->kind) {
    case xml::NodeKind::kText:
      out->append(xml::EscapeText(node->value));
      return;
    case xml::NodeKind::kAttribute:
      return;  // attributes are emitted by their element below
    case xml::NodeKind::kDocument:
      for (const DomNode* c = node->first_child; c != nullptr;
           c = c->next_sibling) {
        SerializeSkippingRec(c, skip, out);
      }
      return;
    case xml::NodeKind::kElement:
      break;
  }
  out->push_back('<');
  out->append(node->name);
  for (const DomNode* a = node->first_attribute; a != nullptr;
       a = a->next_sibling) {
    if (a == skip) continue;
    out->push_back(' ');
    out->append(a->name);
    out->append("=\"");
    out->append(xml::EscapeAttribute(a->value));
    out->push_back('"');
  }
  if (node->first_child == nullptr ||
      (node->first_child == skip && node->first_child->next_sibling == nullptr)) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (const DomNode* c = node->first_child; c != nullptr;
       c = c->next_sibling) {
    SerializeSkippingRec(c, skip, out);
  }
  out->append("</");
  out->append(node->name);
  out->push_back('>');
}

size_t SubtreeSize(const DomNode* node,
                   std::unordered_map<const DomNode*, size_t>* memo) {
  size_t total = 1;
  for (const DomNode* c = node->first_child; c != nullptr;
       c = c->next_sibling) {
    total += SubtreeSize(c, memo);
  }
  (*memo)[node] = total;
  return total;
}

// Deletable nodes of the document, largest subtree first, so the greedy
// minimizer takes big cuts before nibbling.
std::vector<const DomNode*> DeletionCandidates(const xml::Document& doc) {
  std::unordered_map<const DomNode*, size_t> sizes;
  SubtreeSize(doc.document_node(), &sizes);
  std::vector<const DomNode*> out;
  // Preorder walk collecting everything but the document node and the root
  // element (a document with no root is not well-formed).
  std::vector<const DomNode*> stack{doc.document_node()};
  while (!stack.empty()) {
    const DomNode* n = stack.back();
    stack.pop_back();
    if (n->kind != xml::NodeKind::kDocument && n != doc.root()) {
      out.push_back(n);
    }
    for (const DomNode* a = n->first_attribute; a != nullptr;
         a = a->next_sibling) {
      out.push_back(a);
    }
    for (const DomNode* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [&sizes](const DomNode* a, const DomNode* b) {
                     return sizes[a] > sizes[b];
                   });
  return out;
}

}  // namespace

std::string_view RouteName(Route route) {
  switch (route) {
    case Route::kDom:
      return "dom-baseline";
    case Route::kTwigM:
      return "twigm";
    case Route::kMultiQuery:
      return "multi-query";
    case Route::kService:
      return "service";
    case Route::kSharedPlan:
      return "shared-plan";
  }
  return "?";
}

std::string Divergence::ToString() const {
  std::string out = "DIVERGENCE between " + std::string(RouteName(route_a)) +
                    " and " + std::string(RouteName(route_b)) + "\n";
  out += "query: " + query + "\n";
  for (const std::string& d : decoys) out += "decoy: " + d + "\n";
  out += "shards: " + std::to_string(shard_count) + "\n";
  out += "streams: " + std::to_string(stream_count) + "\n";
  out += "detail: " + detail + "\n";
  out += "document (" + std::to_string(document.size()) + " bytes";
  if (original_document_bytes > document.size()) {
    out += ", minimized from " + std::to_string(original_document_bytes);
  }
  out += "):\n" + document + "\n";
  return out;
}

Oracle::Oracle(OracleOptions options) : options_(options) {}

Result<ResultSet> Oracle::RunDom(const std::string& query,
                                 const std::string& document) {
  VITEX_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseIntoDom(document));
  VITEX_ASSIGN_OR_RETURN(xpath::Query compiled, xpath::ParseAndCompile(query));
  baseline::DomEvaluator eval(&doc);
  ResultSet out = eval.EvaluateToSequencedFragments(compiled);
  std::sort(out.begin(), out.end());
  return out;
}

Result<ResultSet> Oracle::RunTwigM(const std::string& query,
                                   const std::string& document) const {
  twigm::VectorResultCollector results;
  VITEX_ASSIGN_OR_RETURN(twigm::Engine engine,
                         twigm::Engine::Create(query, &results));
  if (options_.feed_chunk_bytes == 0) {
    VITEX_RETURN_IF_ERROR(engine.RunString(document));
  } else {
    std::string_view rest = document;
    while (!rest.empty()) {
      size_t n = std::min(options_.feed_chunk_bytes, rest.size());
      VITEX_RETURN_IF_ERROR(engine.Feed(rest.substr(0, n)));
      rest.remove_prefix(n);
    }
    VITEX_RETURN_IF_ERROR(engine.Finish());
  }
  return Normalize(results.results());
}

Result<std::vector<ResultSet>> Oracle::RunMultiQuery(
    const std::vector<std::string>& queries,
    const std::vector<std::string>& decoys, const std::string& document,
    bool share_plans) {
  std::vector<twigm::VectorResultCollector> collectors(queries.size());
  twigm::MultiQueryEngine::Options options;
  options.share_plans = share_plans;
  twigm::MultiQueryEngine engine{xml::SaxParserOptions(), options};
  for (size_t i = 0; i < queries.size(); ++i) {
    VITEX_RETURN_IF_ERROR(engine.AddQuery(queries[i], &collectors[i]).status());
  }
  for (const std::string& d : decoys) {
    VITEX_RETURN_IF_ERROR(engine.AddQuery(d, nullptr).status());
  }
  VITEX_RETURN_IF_ERROR(engine.RunString(document));
  std::vector<ResultSet> out;
  out.reserve(queries.size());
  for (const auto& c : collectors) out.push_back(Normalize(c.results()));
  return out;
}

Result<std::vector<ResultSet>> Oracle::RunService(
    const std::vector<std::string>& queries,
    const std::vector<std::string>& decoys, const std::string& document,
    size_t shard_count, size_t stream_count) {
  if (stream_count < 1) stream_count = 1;
  service::StreamServiceOptions options;
  options.shard_count = shard_count;
  options.stream_count = stream_count;
  service::StreamService service(options);
  std::vector<service::SubscriptionId> ids;
  ids.reserve(queries.size());
  for (const std::string& q : queries) {
    VITEX_ASSIGN_OR_RETURN(service::SubscriptionId id, service.Subscribe(q));
    ids.push_back(id);
  }
  for (const std::string& d : decoys) {
    VITEX_RETURN_IF_ERROR(service.Subscribe(d).status());
  }
  // One copy per stream: every parser thread parses the document
  // concurrently and every shard merges stream_count lanes, so each query
  // must deliver its result set exactly stream_count times — no copy lost
  // to the merge, none duplicated.
  for (size_t s = 0; s < stream_count; ++s) {
    VITEX_RETURN_IF_ERROR(service.PublishToStream(s, document));
  }
  VITEX_RETURN_IF_ERROR(service.Flush());
  std::vector<ResultSet> out;
  out.reserve(queries.size());
  for (service::SubscriptionId id : ids) {
    VITEX_ASSIGN_OR_RETURN(std::vector<service::Delivery> deliveries,
                           service.Drain(id));
    ResultSet set;
    set.reserve(deliveries.size());
    for (auto& d : deliveries) {
      set.emplace_back(d.sequence, std::move(d.fragment));
    }
    std::sort(set.begin(), set.end());
    out.push_back(std::move(set));
  }
  VITEX_RETURN_IF_ERROR(service.Stop());
  return out;
}

std::optional<Divergence> Oracle::Check(const std::string& query,
                                        const std::string& document) {
  return CheckBatch({query}, {}, document);
}

std::optional<Divergence> Oracle::CheckBatch(
    const std::vector<std::string>& queries,
    const std::vector<std::string>& decoys, const std::string& document) {
  if (queries.empty()) return std::nullopt;
  size_t shard_count =
      options_.max_shards == 0 ? 0 : 1 + checks_ % options_.max_shards;
  // Streams advance when the shard cycle wraps: consecutive checks sweep
  // the whole (shard × stream) grid instead of a diagonal through it.
  size_t stream_count =
      options_.max_streams <= 1
          ? 1
          : 1 + (checks_ / std::max<size_t>(1, options_.max_shards)) %
                    options_.max_streams;
  checks_ += queries.size();

  // Assembles the repro context for query i: the other checked queries act
  // as decoys alongside the explicit ones (a dispatch divergence can depend
  // on the whole co-registered set).
  auto make_divergence = [&](size_t i, Route a, Route b, std::string detail) {
    Divergence d;
    d.route_a = a;
    d.route_b = b;
    d.query = queries[i];
    for (size_t j = 0; j < queries.size(); ++j) {
      if (j != i) d.decoys.push_back(queries[j]);
    }
    d.decoys.insert(d.decoys.end(), decoys.begin(), decoys.end());
    d.shard_count = shard_count == 0 ? 1 : shard_count;
    d.stream_count = stream_count;
    d.document = document;
    d.original_document_bytes = document.size();
    d.detail = std::move(detail);
    Minimize(&d);
    return d;
  };

  // Ground truth.
  std::vector<ResultSet> expected;
  expected.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<ResultSet> r = RunDom(queries[i], document);
    if (!r.ok()) {
      return make_divergence(i, Route::kDom, Route::kDom,
                             "dom-baseline error: " + r.status().ToString());
    }
    expected.push_back(std::move(r).value());
  }

  auto check_against = [&](size_t i, Route route,
                           const Result<ResultSet>& got)
      -> std::optional<Divergence> {
    if (!got.ok()) {
      return make_divergence(i, Route::kDom, route,
                             std::string(RouteName(route)) +
                                 " error: " + got.status().ToString());
    }
    if (got.value() != expected[i]) {
      return make_divergence(
          i, Route::kDom, route,
          FirstDifference(RouteName(Route::kDom), expected[i],
                          RouteName(route), got.value()));
    }
    return std::nullopt;
  };

  for (size_t i = 0; i < queries.size(); ++i) {
    if (auto d = check_against(i, Route::kTwigM,
                               RunTwigM(queries[i], document))) {
      return d;
    }
  }

  {
    Result<std::vector<ResultSet>> got =
        RunMultiQuery(queries, decoys, document);
    if (!got.ok()) {
      return make_divergence(0, Route::kDom, Route::kMultiQuery,
                             "multi-query error: " + got.status().ToString());
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      if (got.value()[i] != expected[i]) {
        return make_divergence(
            i, Route::kDom, Route::kMultiQuery,
            FirstDifference(RouteName(Route::kDom), expected[i],
                            RouteName(Route::kMultiQuery), got.value()[i]));
      }
    }
  }

  {
    // Fifth route: identical registration, plan sharing ON. Differs from
    // the kMultiQuery run only in Options::share_plans, so a divergence
    // here (against DOM, with route 3 already validated) indicts the
    // hash-consed plan cache and the per-group parameter masks.
    Result<std::vector<ResultSet>> got =
        RunMultiQuery(queries, decoys, document, /*share_plans=*/true);
    if (!got.ok()) {
      return make_divergence(0, Route::kDom, Route::kSharedPlan,
                             "shared-plan error: " + got.status().ToString());
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      if (got.value()[i] != expected[i]) {
        return make_divergence(
            i, Route::kDom, Route::kSharedPlan,
            FirstDifference(RouteName(Route::kDom), expected[i],
                            RouteName(Route::kSharedPlan), got.value()[i]));
      }
    }
  }

  if (shard_count > 0) {
    Result<std::vector<ResultSet>> got =
        RunService(queries, decoys, document, shard_count, stream_count);
    if (!got.ok()) {
      return make_divergence(0, Route::kDom, Route::kService,
                             "service error: " + got.status().ToString());
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      // The service saw stream_count copies of the document, so its answer
      // must be the DOM set replicated per stream — exactly.
      ResultSet want = Replicate(expected[i], stream_count);
      if (got.value()[i] != want) {
        return make_divergence(
            i, Route::kDom, Route::kService,
            FirstDifference(RouteName(Route::kDom), want,
                            RouteName(Route::kService), got.value()[i]));
      }
    }
  }
  return std::nullopt;
}

Result<ResultSet> Oracle::RunRoute(Route route, const Divergence& d,
                                   const std::string& document) const {
  switch (route) {
    case Route::kDom:
      return RunDom(d.query, document);
    case Route::kTwigM:
      return RunTwigM(d.query, document);
    case Route::kMultiQuery: {
      VITEX_ASSIGN_OR_RETURN(std::vector<ResultSet> sets,
                             RunMultiQuery({d.query}, d.decoys, document));
      return std::move(sets[0]);
    }
    case Route::kSharedPlan: {
      VITEX_ASSIGN_OR_RETURN(std::vector<ResultSet> sets,
                             RunSharedPlan({d.query}, d.decoys, document));
      return std::move(sets[0]);
    }
    case Route::kService: {
      VITEX_ASSIGN_OR_RETURN(std::vector<ResultSet> sets,
                             RunService({d.query}, d.decoys, document,
                                        d.shard_count, d.stream_count));
      return std::move(sets[0]);
    }
  }
  return Status::Internal("unknown route");
}

bool Oracle::PairStillDiverges(const Divergence& d,
                               const std::string& document) const {
  Result<ResultSet> a = RunRoute(d.route_a, d, document);
  Result<ResultSet> b = RunRoute(d.route_b, d, document);
  if (a.ok() != b.ok()) return true;  // status divergence
  if (!a.ok()) return false;          // both broken: not a usable repro
  // The service route answers once per stream; scale a single-shot peer's
  // set up before comparing (both-service and neither-service need none).
  ResultSet a_set = std::move(a).value();
  ResultSet b_set = std::move(b).value();
  bool a_is_service = d.route_a == Route::kService;
  bool b_is_service = d.route_b == Route::kService;
  if (a_is_service && !b_is_service) {
    b_set = Replicate(b_set, d.stream_count);
  } else if (b_is_service && !a_is_service) {
    a_set = Replicate(a_set, d.stream_count);
  }
  return a_set != b_set;
}

std::string MinimizeDocument(
    const std::string& document,
    const std::function<bool(const std::string&)>& still_fails,
    size_t max_probes) {
  size_t probes = 0;
  std::string current = document;
  bool improved = true;
  while (improved && probes < max_probes) {
    improved = false;
    Result<xml::Document> dom = xml::ParseIntoDom(current);
    if (!dom.ok()) break;
    for (const DomNode* candidate : DeletionCandidates(dom.value())) {
      std::string reduced;
      SerializeSkippingRec(dom.value().document_node(), candidate, &reduced);
      if (reduced.size() >= current.size()) continue;
      if (++probes > max_probes) break;
      if (still_fails(reduced)) {
        current = std::move(reduced);
        improved = true;
        break;  // the tree changed; recollect candidates
      }
    }
  }
  return current;
}

void Oracle::Minimize(Divergence* d) const {
  if (!options_.minimize || d->route_a == d->route_b) return;
  d->document = MinimizeDocument(
      d->document,
      [this, d](const std::string& reduced) {
        return PairStillDiverges(*d, reduced);
      },
      options_.max_minimize_probes);
}

Result<std::string> WriteReproFiles(const Divergence& divergence,
                                    const std::string& dir, int index) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create repro dir '" + dir +
                           "': " + ec.message());
  }
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%03d", index);
  auto write = [&](const std::string& name,
                   const std::string& content) -> Result<std::string> {
    std::string path = dir + "/" + prefix + "-" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
    size_t n = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (n != content.size()) {
      return Status::IoError("short write to '" + path + "'");
    }
    return path;
  };
  VITEX_RETURN_IF_ERROR(write("query.txt", divergence.query + "\n").status());
  VITEX_RETURN_IF_ERROR(write("document.xml", divergence.document).status());
  return write("report.txt", divergence.ToString());
}

}  // namespace vitex::difftest
