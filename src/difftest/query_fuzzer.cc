#include "difftest/query_fuzzer.h"

#include <cassert>

#include "common/string_util.h"
#include "xpath/query.h"

namespace vitex::difftest {

namespace {

QueryFuzzerOptions WithAlphabet(std::vector<std::string> tags,
                                std::vector<std::string> attributes,
                                std::vector<std::string> values) {
  QueryFuzzerOptions o;
  o.tags = std::move(tags);
  o.attributes = std::move(attributes);
  o.values = std::move(values);
  return o;
}

}  // namespace

QueryFuzzerOptions ProteinAlphabet() {
  return WithAlphabet(
      {"ProteinEntry", "protein", "header", "reference", "refinfo", "authors",
       "author", "citation", "organism", "classification", "superfamily",
       "sequence", "gene", "genetics", "source", "year", "accession"},
      {"id", "refid", "type"},
      {"1990", "2000", "320", "PIR1", "complete"});
}

QueryFuzzerOptions BookAlphabet() {
  QueryFuzzerOptions o = WithAlphabet(
      {"book", "section", "table", "cell", "position", "title", "author"},
      {},
      {"A", "B", "C"});
  // Book documents are deeply recursive; lean on descendant chains.
  o.descendant_probability = 0.65;
  return o;
}

QueryFuzzerOptions XmarkAlphabet() {
  return WithAlphabet(
      {"site", "regions", "item", "name", "description", "listitem",
       "parlist", "incategory", "people", "person", "profile", "interest",
       "income", "open_auction", "bidder", "increase", "initial", "current",
       "itemref", "quantity", "category", "emailaddress"},
      {"id", "category", "person", "item"},
      {"10", "100", "1.50", "40000", "person0", "item3", "category7"});
}

QueryFuzzerOptions RecursiveAlphabet() {
  QueryFuzzerOptions o = WithAlphabet({"root", "a", "p", "v", "m", "leaf"},
                                      {}, {"0", "1", "2"});
  // The adversarial shape: long //a chains with marker predicates, where
  // candidate-stack bookkeeping is under the most pressure.
  o.descendant_probability = 0.75;
  o.max_main_steps = 5;
  return o;
}

QueryFuzzerOptions RandomDocAlphabet(int alphabet_size, int value_vocabulary) {
  std::vector<std::string> tags;
  for (int i = 0; i < alphabet_size; ++i) {
    tags.push_back("t" + std::to_string(i));
  }
  tags.push_back("root");
  std::vector<std::string> values;
  for (int i = 0; i < value_vocabulary; ++i) {
    values.push_back(std::to_string(i));
  }
  return WithAlphabet(std::move(tags), {"x", "y"}, std::move(values));
}

QueryFuzzer::QueryFuzzer(QueryFuzzerOptions options)
    : options_(std::move(options)) {
  assert(!options_.tags.empty());
  if (options_.values.empty()) options_.values.push_back("0");
}

namespace {
// Template placeholder bytes for SharedSkeletonBatch (never valid XPath, so
// an un-instantiated template cannot accidentally parse).
constexpr char kLiteralMarker = '\x01';
constexpr char kTagMarker = '\x02';
}  // namespace

std::string QueryFuzzer::RandomTag(Random* rng) {
  if (template_mode_ && want_tag_marker_ && !tag_marker_emitted_ &&
      rng->OneIn(0.35)) {
    tag_marker_emitted_ = true;
    return std::string(1, kTagMarker);
  }
  if (rng->OneIn(options_.wildcard_probability)) return "*";
  return options_.tags[rng->Uniform(options_.tags.size())];
}

std::string QueryFuzzer::RandomAttribute(Random* rng) {
  return options_.attributes[rng->Uniform(options_.attributes.size())];
}

std::string QueryFuzzer::CompareSuffix(Random* rng) {
  static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  std::string op = kOps[rng->Uniform(6)];
  if (template_mode_) {
    // The operator is part of the skeleton; the literal is the per-variant
    // parameter.
    return " " + op + " " + std::string(1, kLiteralMarker);
  }
  const std::string& value = options_.values[rng->Uniform(options_.values.size())];
  // Numeric spellings go out unquoted half the time, so both numeric-token
  // and string-literal comparison paths are fuzzed.
  double unused;
  bool numeric = ParseXPathNumber(value, &unused);
  if (numeric && rng->OneIn(0.5)) {
    return " " + op + " " + value;
  }
  return " " + op + " '" + value + "'";
}

std::string QueryFuzzer::RelativePath(int depth, Random* rng) {
  std::string out;
  int steps = 1 + static_cast<int>(rng->Uniform(2));
  for (int i = 0; i < steps; ++i) {
    bool descendant = rng->OneIn(options_.descendant_probability);
    if (i == 0) {
      if (descendant) out += "//";
    } else {
      out += descendant ? "//" : "/";
    }
    out += RandomTag(rng);
    if (depth < options_.max_predicate_depth &&
        rng->OneIn(options_.predicate_probability * 0.5)) {
      out += "[" + Predicate(depth + 1, rng) + "]";
    }
  }
  // Possibly end in an attribute or text() step (attribute/text query nodes
  // cannot have further children, so this is always the tail).
  double r = rng->NextDouble();
  if (r < options_.attribute_step_probability && !options_.attributes.empty()) {
    out += rng->OneIn(options_.descendant_probability) ? "//@" : "/@";
    out += RandomAttribute(rng);
  } else if (r < options_.attribute_step_probability +
                     options_.text_step_probability) {
    out += rng->OneIn(options_.descendant_probability) ? "//text()"
                                                       : "/text()";
  }
  return out;
}

std::string QueryFuzzer::Predicate(int depth, Random* rng) {
  double r = rng->NextDouble();
  if (depth < options_.max_predicate_depth) {
    if (r < options_.not_probability) {
      return "not(" + Predicate(depth + 1, rng) + ")";
    }
    r -= options_.not_probability;
    if (r < options_.or_probability) {
      return Predicate(depth + 1, rng) + " or " + Predicate(depth + 1, rng);
    }
    r -= options_.or_probability;
    if (r < options_.and_probability) {
      return Predicate(depth + 1, rng) + " and " + Predicate(depth + 1, rng);
    }
  }
  // `[. = 'v']` self comparison (bare '.' without a comparison is outside
  // the fragment, so the suffix is mandatory here).
  if (rng->OneIn(options_.self_compare_probability)) {
    return "." + CompareSuffix(rng);
  }
  std::string path = RelativePath(depth, rng);
  if (rng->OneIn(options_.value_predicate_probability)) {
    return path + CompareSuffix(rng);
  }
  return path;
}

std::string QueryFuzzer::Generate(Random* rng) {
  std::string out;
  int steps = 1 + static_cast<int>(
                      rng->Uniform(static_cast<uint64_t>(options_.max_main_steps)));
  for (int i = 0; i < steps; ++i) {
    out += rng->OneIn(options_.descendant_probability) ? "//" : "/";
    out += RandomTag(rng);
    if (rng->OneIn(options_.predicate_probability)) {
      out += "[" + Predicate(0, rng) + "]";
      if (rng->OneIn(options_.second_predicate_probability)) {
        out += "[" + Predicate(0, rng) + "]";
      }
    }
  }
  double r = rng->NextDouble();
  if (r < options_.attribute_output_probability &&
      !options_.attributes.empty()) {
    out += rng->OneIn(options_.descendant_probability) ? "//@" : "/@";
    out += RandomAttribute(rng);
  } else if (r < options_.attribute_output_probability +
                     options_.text_output_probability) {
    out += rng->OneIn(options_.descendant_probability) ? "//text()"
                                                       : "/text()";
  }
  return out;
}

std::string QueryFuzzer::Instantiate(const std::string& tmpl, Random* rng) {
  std::string out;
  out.reserve(tmpl.size() + 16);
  for (char c : tmpl) {
    if (c == kLiteralMarker) {
      const std::string& value =
          options_.values[rng->Uniform(options_.values.size())];
      double unused;
      // Both literal spellings per variant, as in CompareSuffix: unquoted
      // numeric tokens and quoted strings land in *different* parameter
      // groups of one plan (different comparison semantics).
      if (ParseXPathNumber(value, &unused) && rng->OneIn(0.5)) {
        out += value;
      } else {
        out += "'" + value + "'";
      }
    } else if (c == kTagMarker) {
      out += options_.tags[rng->Uniform(options_.tags.size())];
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> QueryFuzzer::NextSharedBatch(int count, Random* rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    template_mode_ = true;
    want_tag_marker_ = rng->OneIn(options_.tag_variant_probability);
    tag_marker_emitted_ = false;
    std::string tmpl = Generate(rng);
    template_mode_ = false;
    // A template without any marker is a fixed query; identical members
    // still share a plan (one group, many subscribers), so it stays a
    // valid — just less interesting — batch. Prefer parameterized ones.
    if (attempt < 8 && tmpl.find(kLiteralMarker) == std::string::npos &&
        tmpl.find(kTagMarker) == std::string::npos) {
      continue;
    }
    std::vector<std::string> batch;
    bool all_ok = true;
    for (int i = 0; i < count && all_ok; ++i) {
      std::string query = Instantiate(tmpl, rng);
      all_ok = xpath::ParseAndCompile(query).ok();
      batch.push_back(std::move(query));
    }
    if (all_ok) return batch;
  }
  return std::vector<std::string>(static_cast<size_t>(count),
                                  "//" + options_.tags[0]);
}

std::string QueryFuzzer::Next(Random* rng) {
  // The grammar stays inside the fragment by construction; the retry loop
  // is a safety net so a generator bug degrades to skew, not to a crash in
  // every consumer.
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::string query = Generate(rng);
    if (xpath::ParseAndCompile(query).ok()) return query;
  }
  return "//" + options_.tags[0];
}

}  // namespace vitex::difftest
