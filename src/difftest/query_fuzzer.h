// QueryFuzzer: seeded random XPath generator for the differential oracle.
//
// Draws queries from a configurable tag/attribute/value alphabet so they
// collide with a workload's documents often enough that cross-checking
// exercises real matching (not just empty result sets): child/descendant
// mixes, '*' tests, attribute steps (child and descendant-or-self forms),
// text() steps, and nested [ ] predicates combining and/or/not() with value
// comparisons on elements, attributes, text and '.'. Every generated query
// parses and compiles inside the ViteX fragment.
//
// Unlike workload::GenerateRandomQuery (fixed t0..tN alphabet, a narrower
// shape grammar), the fuzzer targets the real workload vocabularies —
// ProteinAlphabet()/BookAlphabet()/XmarkAlphabet()/RecursiveAlphabet() ship
// the tag sets of the corresponding generators — and leans harder on the
// constructs where streaming bugs historically hide: recursive descendant
// chains, predicates nested in predicates, negation over value tests.

#ifndef VITEX_DIFFTEST_QUERY_FUZZER_H_
#define VITEX_DIFFTEST_QUERY_FUZZER_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace vitex::difftest {

struct QueryFuzzerOptions {
  /// Element-name alphabet (never empty; Validate() enforces).
  std::vector<std::string> tags;
  /// Attribute-name alphabet; empty disables attribute steps.
  std::vector<std::string> attributes;
  /// Literal vocabulary for value comparisons. Numeric spellings are
  /// sometimes emitted unquoted (numeric literals), sometimes quoted
  /// (string literals), so both comparison forms are fuzzed.
  std::vector<std::string> values;

  int max_main_steps = 4;
  int max_predicate_depth = 2;
  /// Steps may carry two predicates back to back: a[p][q].
  double second_predicate_probability = 0.15;
  double descendant_probability = 0.5;
  double wildcard_probability = 0.1;
  double predicate_probability = 0.55;
  double and_probability = 0.15;
  double or_probability = 0.15;
  double not_probability = 0.12;
  double value_predicate_probability = 0.35;
  /// Predicate paths ending in @attr / text(); `[. = 'v']` self comparisons.
  double attribute_step_probability = 0.2;
  double text_step_probability = 0.15;
  double self_compare_probability = 0.05;
  /// Query output node: @attr / text() suffix probabilities.
  double attribute_output_probability = 0.12;
  double text_output_probability = 0.08;

  /// SharedSkeletonBatch: probability that the batch template marks one
  /// name test for per-variant substitution too (tags drawn from the
  /// alphabet), so a batch mixes literal-only siblings (one shared plan)
  /// with tag siblings (neighboring plans in the cache).
  double tag_variant_probability = 0.35;
};

/// Alphabets matching the workload generators (see src/workload/).
QueryFuzzerOptions ProteinAlphabet();
QueryFuzzerOptions BookAlphabet();
QueryFuzzerOptions XmarkAlphabet();
QueryFuzzerOptions RecursiveAlphabet();
/// Matches workload::RandomDocOptions with the given alphabet size.
QueryFuzzerOptions RandomDocAlphabet(int alphabet_size = 4,
                                     int value_vocabulary = 5);

class QueryFuzzer {
 public:
  explicit QueryFuzzer(QueryFuzzerOptions options);

  /// Returns a random query; the result always parses and compiles (the
  /// generator stays inside the fragment and retries defensively).
  std::string Next(Random* rng);

  /// SharedSkeletonBatch mode: `count` queries instantiated from ONE random
  /// query template, differing only in comparison literals (and, with
  /// options().tag_variant_probability, one name test) drawn from the
  /// workload alphabet — the shape a pub/sub subscriber population has
  /// (`//quote[@symbol = 'X']/price` for every ticker X). Feeding a batch
  /// to Oracle::CheckBatch makes the shared-plan route hash-cons the
  /// members into one (or a few sibling) plan machines while the other
  /// routes stay per-query, which is exactly the differential the plan
  /// cache must survive. Every member parses and compiles.
  std::vector<std::string> NextSharedBatch(int count, Random* rng);

  const QueryFuzzerOptions& options() const { return options_; }

 private:
  std::string Generate(Random* rng);
  std::string Predicate(int depth, Random* rng);
  std::string RelativePath(int depth, Random* rng);
  std::string CompareSuffix(Random* rng);
  std::string RandomTag(Random* rng);
  std::string RandomAttribute(Random* rng);
  // SharedSkeletonBatch internals: templates carry kLiteralMarker /
  // kTagMarker bytes where variants substitute fresh draws.
  std::string Instantiate(const std::string& tmpl, Random* rng);

  QueryFuzzerOptions options_;
  // True while Generate() emits a batch template (markers instead of
  // literals; at most one tag marker).
  bool template_mode_ = false;
  bool want_tag_marker_ = false;
  bool tag_marker_emitted_ = false;
};

}  // namespace vitex::difftest

#endif  // VITEX_DIFFTEST_QUERY_FUZZER_H_
