// Workload corpus for the differential oracle: one place that knows, for
// each workload generator, how to draw a document and which query alphabet
// matches its vocabulary. Shared by the difftest gtest suite and the
// long-running difftest_main fuzz tool so both sample the same space.

#ifndef VITEX_DIFFTEST_WORKLOAD_CORPUS_H_
#define VITEX_DIFFTEST_WORKLOAD_CORPUS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "difftest/query_fuzzer.h"

namespace vitex::difftest {

enum class WorkloadKind : uint8_t {
  kProtein,    // long shallow ProteinEntry runs, attribute-heavy
  kBooks,      // recursive section/table nesting (paper Figure 1 shape)
  kXmark,      // auction data, value predicates
  kRecursive,  // adversarial //a chains — candidate-stack pressure
  kRandom,     // small-alphabet random trees with full markup variety
};

/// The four paper workloads plus the random generator.
const std::vector<WorkloadKind>& AllWorkloads();
std::string_view WorkloadName(WorkloadKind kind);
/// Resolves a name ("protein", "books", ...) back to a kind; false if
/// unknown.
bool WorkloadFromName(std::string_view name, WorkloadKind* out);

/// Query-fuzzer alphabet matching the workload's document vocabulary.
QueryFuzzerOptions WorkloadAlphabet(WorkloadKind kind);

/// Draws one document. `seed` picks the generator's own seed; `rng` drives
/// the size/shape knobs (kept small: the oracle's DOM ground truth
/// materializes every document).
std::string GenerateWorkloadDocument(WorkloadKind kind, uint64_t seed,
                                     Random* rng);

}  // namespace vitex::difftest

#endif  // VITEX_DIFFTEST_WORKLOAD_CORPUS_H_
