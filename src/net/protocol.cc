#include "net/protocol.h"

namespace vitex::net {

Status StatusFromWire(uint8_t wire_code, std::string_view message) {
  if (wire_code == 0) return Status::OK();
  StatusCode code = wire_code <= kStatusCodeWireMax
                        ? static_cast<StatusCode>(wire_code)
                        : StatusCode::kInternal;
  return Status(code, std::string(message));
}

namespace {

// Every encoder follows the same shape: serialize the payload, then
// append header + payload. Payloads are small (MATCH, the hot one, has a
// dedicated in-place encoder below), so the intermediate WireWriter
// string is fine here.
void AppendMessage(std::string* out, FrameType type, WireWriter* payload) {
  std::string bytes = payload->Take();
  AppendFrame(out, static_cast<uint8_t>(type), bytes);
}

}  // namespace

void EncodeHello(std::string* out, const HelloMsg& msg) {
  WireWriter w;
  w.PutU32(msg.magic);
  w.PutU32(msg.version);
  w.PutString(msg.auth_token);
  AppendMessage(out, FrameType::kHello, &w);
}

void EncodeWelcome(std::string* out, const WelcomeMsg& msg) {
  WireWriter w;
  w.PutU32(msg.version);
  w.PutString(msg.server_banner);
  AppendMessage(out, FrameType::kWelcome, &w);
}

void EncodeSubscribe(std::string* out, const SubscribeMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  w.PutString(msg.xpath);
  AppendMessage(out, FrameType::kSubscribe, &w);
}

void EncodeSubscribed(std::string* out, const SubscribedMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  w.PutU64(msg.subscription_id);
  AppendMessage(out, FrameType::kSubscribed, &w);
}

void EncodeUnsubscribe(std::string* out, const UnsubscribeMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  w.PutU64(msg.subscription_id);
  AppendMessage(out, FrameType::kUnsubscribe, &w);
}

void EncodePublish(std::string* out, const PublishMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  w.PutU32(msg.stream);
  w.PutString(msg.document);
  AppendMessage(out, FrameType::kPublish, &w);
}

void EncodeAck(std::string* out, const AckMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  AppendMessage(out, FrameType::kAck, &w);
}

void EncodeError(std::string* out, const ErrorMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  w.PutU8(msg.code);
  w.PutString(msg.message);
  AppendMessage(out, FrameType::kError, &w);
}

size_t MatchFrameSize(std::string_view fragment) {
  // header + sub_id + sequence + (u32 length + bytes)
  return kFrameHeaderSize + 8 + 8 + 4 + fragment.size();
}

void EncodeMatch(std::string* out, uint64_t subscription_id,
                 uint64_t sequence, std::string_view fragment) {
  const size_t payload_size = 8 + 8 + 4 + fragment.size();
  out->reserve(out->size() + kFrameHeaderSize + payload_size);
  AppendFrameHeader(out, static_cast<uint8_t>(FrameType::kMatch),
                    payload_size);
  WireWriter w;
  w.PutU64(subscription_id);
  w.PutU64(sequence);
  w.PutString(fragment);
  out->append(w.data());
}

void EncodePing(std::string* out, const PingMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  AppendMessage(out, FrameType::kPing, &w);
}

void EncodePong(std::string* out, const PongMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  AppendMessage(out, FrameType::kPong, &w);
}

void EncodeStats(std::string* out, const StatsMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  AppendMessage(out, FrameType::kStats, &w);
}

void EncodeStatsText(std::string* out, const StatsTextMsg& msg) {
  WireWriter w;
  w.PutU64(msg.request_id);
  w.PutString(msg.text);
  AppendMessage(out, FrameType::kStatsText, &w);
}

void EncodeBye(std::string* out, const ByeMsg& msg) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(msg.reason));
  w.PutString(msg.detail);
  AppendMessage(out, FrameType::kBye, &w);
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  WireReader r(payload);
  HelloMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.magic, r.U32());
  VITEX_ASSIGN_OR_RETURN(msg.version, r.U32());
  std::string_view token;
  VITEX_ASSIGN_OR_RETURN(token, r.String());
  msg.auth_token.assign(token);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<WelcomeMsg> DecodeWelcome(std::string_view payload) {
  WireReader r(payload);
  WelcomeMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.version, r.U32());
  std::string_view banner;
  VITEX_ASSIGN_OR_RETURN(banner, r.String());
  msg.server_banner.assign(banner);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<SubscribeMsg> DecodeSubscribe(std::string_view payload) {
  WireReader r(payload);
  SubscribeMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  std::string_view xpath;
  VITEX_ASSIGN_OR_RETURN(xpath, r.String());
  msg.xpath.assign(xpath);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<SubscribedMsg> DecodeSubscribed(std::string_view payload) {
  WireReader r(payload);
  SubscribedMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_ASSIGN_OR_RETURN(msg.subscription_id, r.U64());
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<UnsubscribeMsg> DecodeUnsubscribe(std::string_view payload) {
  WireReader r(payload);
  UnsubscribeMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_ASSIGN_OR_RETURN(msg.subscription_id, r.U64());
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<PublishMsg> DecodePublish(std::string_view payload) {
  WireReader r(payload);
  PublishMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_ASSIGN_OR_RETURN(msg.stream, r.U32());
  std::string_view document;
  VITEX_ASSIGN_OR_RETURN(document, r.String());
  msg.document.assign(document);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<AckMsg> DecodeAck(std::string_view payload) {
  WireReader r(payload);
  AckMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  WireReader r(payload);
  ErrorMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_ASSIGN_OR_RETURN(msg.code, r.U8());
  std::string_view message;
  VITEX_ASSIGN_OR_RETURN(message, r.String());
  msg.message.assign(message);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<MatchMsg> DecodeMatch(std::string_view payload) {
  WireReader r(payload);
  MatchMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.subscription_id, r.U64());
  VITEX_ASSIGN_OR_RETURN(msg.sequence, r.U64());
  std::string_view fragment;
  VITEX_ASSIGN_OR_RETURN(fragment, r.String());
  msg.fragment.assign(fragment);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<PingMsg> DecodePing(std::string_view payload) {
  WireReader r(payload);
  PingMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<PongMsg> DecodePong(std::string_view payload) {
  WireReader r(payload);
  PongMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<StatsMsg> DecodeStats(std::string_view payload) {
  WireReader r(payload);
  StatsMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<StatsTextMsg> DecodeStatsText(std::string_view payload) {
  WireReader r(payload);
  StatsTextMsg msg;
  VITEX_ASSIGN_OR_RETURN(msg.request_id, r.U64());
  std::string_view text;
  VITEX_ASSIGN_OR_RETURN(text, r.String());
  msg.text.assign(text);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Result<ByeMsg> DecodeBye(std::string_view payload) {
  WireReader r(payload);
  ByeMsg msg;
  uint8_t reason = 0;
  VITEX_ASSIGN_OR_RETURN(reason, r.U8());
  if (reason < static_cast<uint8_t>(ByeReason::kShutdown) ||
      reason > static_cast<uint8_t>(ByeReason::kAuthFailed)) {
    return Status::ParseError("unknown BYE reason " + std::to_string(reason));
  }
  msg.reason = static_cast<ByeReason>(reason);
  std::string_view detail;
  VITEX_ASSIGN_OR_RETURN(detail, r.String());
  msg.detail.assign(detail);
  VITEX_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

}  // namespace vitex::net
