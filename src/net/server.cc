#include "net/server.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/protocol.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace vitex::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " +
                         std::strerror(errno));
}

}  // namespace

void Server::WakeState::MarkDirty(int fd) {
  MutexLock lock(mu);
  if (wake_fd < 0) return;  // server is gone; nobody will ever drain
  dirty.push_back(fd);
#if defined(__linux__)
  uint64_t one = 1;
  // Best effort: EAGAIN means the counter is already hot and a wakeup is
  // coming anyway.
  (void)!::write(wake_fd, &one, sizeof(one));
#endif
}

// ---------------------------------------------------------------------------
// ConnectionSink: the bounded per-connection output buffer, and the only
// object shard threads share with a connection. OnMatch/OnOverflow run on
// shard threads (match_sink.h contract: non-blocking, refusal = drop);
// everything else runs on the epoll thread. The sink can outlive both its
// connection and the Server (the service holds it until the unsubscribe
// marker lands), so after Close() every entry point is a same-mutex no-op
// that touches nothing outside the sink.
// ---------------------------------------------------------------------------

class Server::ConnectionSink : public MatchSink {
 public:
  enum class FlushResult { kDrained, kBlocked, kError };

  ConnectionSink(int fd, size_t max_outbuf, SlowConsumerPolicy policy,
                 std::shared_ptr<WakeState> wake, const Metrics* metrics)
      : fd_(fd),
        max_outbuf_(max_outbuf),
        policy_(policy),
        wake_(std::move(wake)),
        metrics_(metrics) {}

  // --- shard-thread entry points -------------------------------------------

  bool OnMatch(SubscriptionId id, const Delivery& delivery) override {
    bool signal = false;
    {
      MutexLock lock(mu_);
      if (closed_ || evict_requested_) return false;
      if (pending_bytes() + MatchFrameSize(delivery.fragment) >
          max_outbuf_) {
        // Refusal: the service counts the overflow and calls OnOverflow,
        // where the slow-consumer policy decides the connection's fate.
        return false;
      }
      const bool was_idle = pending_bytes() == 0;
      EncodeMatch(&outbuf_, id, delivery.sequence, delivery.fragment);
      metrics_->matches_sent->Increment();
      metrics_->frames_out->Increment();
      metrics_->outbuf_high_watermark->UpdateMax(pending_bytes());
      signal = was_idle;
    }
    // Only the idle->pending transition needs a wakeup: while bytes are
    // already pending the epoll thread is either draining or has EPOLLOUT
    // armed, and will see these bytes too.
    if (signal) wake_->MarkDirty(fd_);
    return true;
  }

  void OnOverflow(SubscriptionId /*id*/, uint64_t /*dropped_total*/) override {
    bool signal = false;
    {
      MutexLock lock(mu_);
      if (closed_) return;
      metrics_->matches_dropped->Increment();
      if (policy_ == SlowConsumerPolicy::kDropMatches) return;
      if (evict_requested_) return;  // eviction already signaled
      evict_requested_ = true;
      signal = true;
    }
    if (signal) wake_->MarkDirty(fd_);
  }

  // --- epoll-thread entry points -------------------------------------------

  /// Appends a response/control frame; exempt from the outbuf cap (see
  /// server.h). The caller flushes afterwards, so no wakeup is needed.
  void AppendControl(std::string_view bytes) {
    MutexLock lock(mu_);
    if (closed_) return;
    outbuf_.append(bytes);
    metrics_->frames_out->Increment();
  }

  /// Discards everything queued and replaces it with `bytes` (the
  /// eviction BYE: a stalled reader's pending matches are forfeit).
  void ReplaceOutput(std::string bytes) {
    MutexLock lock(mu_);
    if (closed_) return;
    outbuf_ = std::move(bytes);
    write_offset_ = 0;
  }

  /// Writes as much pending output as the socket accepts.
  FlushResult Flush(int fd, uint64_t* bytes_written) {
    MutexLock lock(mu_);
    *bytes_written = 0;
    while (write_offset_ < outbuf_.size()) {
#if defined(__linux__)
      ssize_t n = ::send(fd, outbuf_.data() + write_offset_,
                         outbuf_.size() - write_offset_, MSG_NOSIGNAL);
#else
      ssize_t n = -1;
      errno = ENOSYS;
#endif
      if (n > 0) {
        write_offset_ += static_cast<size_t>(n);
        *bytes_written += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Keep the written prefix from being re-copied forever.
        if (write_offset_ > 262144) {
          outbuf_.erase(0, write_offset_);
          write_offset_ = 0;
        }
        return FlushResult::kBlocked;
      }
      return FlushResult::kError;
    }
    outbuf_.clear();
    write_offset_ = 0;
    return FlushResult::kDrained;
  }

  bool evict_requested() const {
    MutexLock lock(mu_);
    return evict_requested_;
  }

  bool has_pending() const {
    MutexLock lock(mu_);
    return pending_bytes() > 0;
  }

  /// Point of no return: shard threads appending after this is a no-op,
  /// and the sink never again touches metrics or the wake channel.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    outbuf_.clear();
    write_offset_ = 0;
  }

 private:
  size_t pending_bytes() const REQUIRES(mu_) {
    return outbuf_.size() - write_offset_;
  }

  const int fd_;
  const size_t max_outbuf_;
  const SlowConsumerPolicy policy_;
  const std::shared_ptr<WakeState> wake_;
  const Metrics* const metrics_;

  mutable Mutex mu_;
  std::string outbuf_ GUARDED_BY(mu_);
  size_t write_offset_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
  bool evict_requested_ GUARDED_BY(mu_) = false;
};

// ---------------------------------------------------------------------------
// Connection: epoll-thread-only session state.
// ---------------------------------------------------------------------------

struct Server::Connection {
  explicit Connection(size_t max_frame_size) : decoder(max_frame_size) {}

  int fd = -1;
  bool mode_decided = false;   // framed vs. HTTP, from the first 4 bytes
  bool http = false;
  bool awaiting_hello = true;
  bool want_write = false;     // EPOLLOUT currently armed
  bool close_after_flush = false;  // BYE / HTTP response queued
  FrameDecoder decoder;
  std::string prelude;         // bytes before mode_decided; HTTP request
  std::shared_ptr<ConnectionSink> sink;
  std::unordered_map<uint64_t, Subscription> subs;
};

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

Server::Server(Service* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  metrics_.connections_accepted = registry_.AddCounter(
      "vitex_net_connections_accepted_total", "TCP connections accepted");
  metrics_.connections_closed = registry_.AddCounter(
      "vitex_net_connections_closed_total", "TCP connections closed");
  metrics_.connections_evicted = registry_.AddCounter(
      "vitex_net_connections_evicted_total",
      "connections evicted as slow consumers (outbuf cap overflow under "
      "the disconnect policy)");
  metrics_.connections_active = registry_.AddGauge(
      "vitex_net_connections_active", "currently open TCP connections");
  metrics_.auth_failures = registry_.AddCounter(
      "vitex_net_auth_failures_total", "HELLO frames with a bad auth token");
  metrics_.protocol_errors = registry_.AddCounter(
      "vitex_net_protocol_errors_total",
      "connections failed for framing or protocol violations");
  metrics_.frames_in = registry_.AddCounter("vitex_net_frames_in_total",
                                            "frames received from clients");
  metrics_.frames_out = registry_.AddCounter(
      "vitex_net_frames_out_total", "frames queued for clients");
  metrics_.bytes_in =
      registry_.AddCounter("vitex_net_bytes_in_total", "bytes received");
  metrics_.bytes_out =
      registry_.AddCounter("vitex_net_bytes_out_total", "bytes sent");
  metrics_.matches_sent = registry_.AddCounter(
      "vitex_net_matches_sent_total", "MATCH frames queued for delivery");
  metrics_.matches_dropped = registry_.AddCounter(
      "vitex_net_matches_dropped_total",
      "MATCH frames dropped at the per-connection outbuf cap");
  metrics_.http_requests = registry_.AddCounter(
      "vitex_net_http_requests_total", "HTTP scrape requests served");
  metrics_.outbuf_high_watermark = registry_.AddGauge(
      "vitex_net_outbuf_high_watermark_bytes",
      "largest pending outbuf observed on any connection");
  wake_ = std::make_shared<WakeState>();
}

Result<std::unique_ptr<Server>> Server::Start(Service* service,
                                              ServerOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("Server::Start requires a Service");
  }
#if !defined(__linux__)
  return Status::Unsupported("the ViteX TCP server requires linux (epoll)");
#else
  std::unique_ptr<Server> server(new Server(service, std::move(options)));
  VITEX_RETURN_IF_ERROR(server->Init());
  server->thread_ = std::thread([raw = server.get()] { raw->Run(); });
  return server;
#endif
}

Server::~Server() { (void)Stop(); }

#if defined(__linux__)

Status Server::Init() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return Errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_read_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_read_fd_ < 0) return Errno("eventfd");
  {
    MutexLock lock(wake_->mu);
    wake_->wake_fd = wake_read_fd_;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listener)");
  }
  ev.data.fd = wake_read_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0) {
    return Errno("epoll_ctl(eventfd)");
  }
  return Status::OK();
}

Status Server::Stop() {
  {
    MutexLock lock(lifecycle_mu_);
    if (stopped_) return Status::OK();
    stopped_ = true;
  }
  stop_requested_.store(true, std::memory_order_release);
  {
    MutexLock lock(wake_->mu);
    if (wake_->wake_fd >= 0) {
      uint64_t one = 1;
      (void)!::write(wake_->wake_fd, &one, sizeof(one));
    }
  }
  if (thread_.joinable()) thread_.join();
  // After the join no connection (and so no live sink) remains; retire
  // the wake channel so any straggler sink call is a guaranteed no-op
  // before the eventfd number can be reused.
  {
    MutexLock lock(wake_->mu);
    wake_->wake_fd = -1;
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  wake_read_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Epoll loop.
// ---------------------------------------------------------------------------

void Server::Run() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_read_fd_) {
        uint64_t drained = 0;
        while (::read(wake_read_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainWakeups();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0) {
        HandleReadable(conn);
        if (connections_.find(fd) == connections_.end()) continue;
        conn = connections_.find(fd)->second.get();
      }
      if ((ev & EPOLLOUT) != 0) FlushOutbuf(conn);
    }
  }
  // Shutdown: BYE every session, then tear it down.
  while (!connections_.empty()) {
    Connection* conn = connections_.begin()->second.get();
    if (!conn->http) {
      std::string bye;
      EncodeBye(&bye, ByeMsg{ByeReason::kShutdown, "server stopping"});
      conn->sink->AppendControl(bye);
      uint64_t wrote = 0;
      (void)conn->sink->Flush(conn->fd, &wrote);  // best effort
      metrics_.bytes_out->Add(wrote);
    }
    CloseConnection(conn);
  }
}

void Server::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. Anything else (EMFILE under fd pressure, aborted
      // handshakes): drop this readiness edge and let epoll re-report.
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_unique<Connection>(options_.max_frame_size);
    conn->fd = fd;
    conn->sink = std::make_shared<ConnectionSink>(
        fd, options_.max_outbuf_bytes, options_.slow_consumer_policy, wake_,
        &metrics_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
    metrics_.connections_accepted->Increment();
    metrics_.connections_active->Set(connections_.size());
  }
}

void Server::DrainWakeups() {
  std::vector<int> dirty;
  {
    MutexLock lock(wake_->mu);
    dirty.swap(wake_->dirty);
  }
  for (int fd : dirty) {
    auto it = connections_.find(fd);
    // A stale entry (connection closed, fd possibly reused) at worst
    // flushes a healthy connection a little early — harmless.
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    if (conn->sink->evict_requested()) {
      Evict(conn);
      continue;
    }
    FlushOutbuf(conn);
  }
}

// ---------------------------------------------------------------------------
// Reads and request dispatch.
// ---------------------------------------------------------------------------

void Server::HandleReadable(Connection* conn) {
  const int fd = conn->fd;
  char buf[65536];
  bool progressed = false;
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {  // orderly EOF
      CloseConnection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn);
      return;
    }
    metrics_.bytes_in->Add(static_cast<uint64_t>(n));
    progressed = true;
    std::string_view bytes(buf, static_cast<size_t>(n));

    if (!conn->mode_decided) {
      conn->prelude.append(bytes);
      if (conn->prelude.size() < 4) continue;
      conn->mode_decided = true;
      conn->http = conn->prelude.compare(0, 4, "GET ") == 0;
      if (!conn->http) {
        std::string pending = std::move(conn->prelude);
        conn->prelude.clear();
        if (conn->decoder.Feed(pending).ok()) {
          while (auto frame = conn->decoder.Next()) {
            DispatchFrame(conn, *frame);
            if (connections_.find(fd) == connections_.end()) return;
          }
        }
        if (conn->decoder.failed()) {
          FailProtocol(conn, 0, conn->decoder.status());
          return;
        }
      } else {
        HandleHttp(conn, "");
        if (connections_.find(fd) == connections_.end()) return;
      }
      continue;
    }

    if (conn->http) {
      HandleHttp(conn, bytes);
      if (connections_.find(fd) == connections_.end()) return;
      continue;
    }

    if (conn->decoder.Feed(bytes).ok()) {
      while (auto frame = conn->decoder.Next()) {
        DispatchFrame(conn, *frame);
        if (connections_.find(fd) == connections_.end()) return;
      }
    }
    if (conn->decoder.failed()) {
      FailProtocol(conn, 0, conn->decoder.status());
      return;
    }
  }
  if (progressed) FlushOutbuf(conn);
}

void Server::HandleHttp(Connection* conn, std::string_view bytes) {
  conn->prelude.append(bytes);
  size_t end = conn->prelude.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (conn->prelude.size() > 16384) CloseConnection(conn);
    return;  // headers incomplete
  }
  metrics_.http_requests->Increment();
  // "GET <path> HTTP/1.x" — everything after the path is ignored.
  std::string_view line(conn->prelude);
  line = line.substr(0, line.find("\r\n"));
  std::string_view path = line.size() > 4 ? line.substr(4) : "";
  path = path.substr(0, path.find(' '));

  std::string body;
  std::string status_line;
  if (path == "/statsz" || path.rfind("/statsz?", 0) == 0) {
    status_line = "HTTP/1.1 200 OK";
    body = StatszText();
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "only /statsz is served here\n";
  }
  std::string response = status_line +
                         "\r\nContent-Type: text/plain; version=0.0.4"
                         "\r\nConnection: close"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  conn->sink->AppendControl(response);
  conn->close_after_flush = true;
  FlushOutbuf(conn);
}

void Server::DispatchFrame(Connection* conn, const Frame& frame) {
  metrics_.frames_in->Increment();
  if (conn->awaiting_hello) {
    HandleHello(conn, frame);
    return;
  }
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kSubscribe: {
      Result<SubscribeMsg> msg = DecodeSubscribe(frame.payload);
      if (!msg.ok()) {
        FailProtocol(conn, 0, msg.status());
        return;
      }
      SinkOptions sink_options;
      sink_options.mode = DeliveryMode::kPush;
      sink_options.sink = conn->sink;
      Result<Subscription> sub =
          service_->Subscribe(msg->xpath, std::move(sink_options));
      if (!sub.ok()) {
        SendError(conn, msg->request_id, sub.status());
        return;
      }
      const uint64_t id = sub->id();
      conn->subs.emplace(id, std::move(sub).value());
      std::string out;
      EncodeSubscribed(&out, SubscribedMsg{msg->request_id, id});
      SendControl(conn, std::move(out));
      return;
    }
    case FrameType::kUnsubscribe: {
      Result<UnsubscribeMsg> msg = DecodeUnsubscribe(frame.payload);
      if (!msg.ok()) {
        FailProtocol(conn, 0, msg.status());
        return;
      }
      auto it = conn->subs.find(msg->subscription_id);
      if (it == conn->subs.end()) {
        SendError(conn, msg->request_id,
                  Status::InvalidArgument(
                      "unknown subscription id on this connection"));
        return;
      }
      Status status = it->second.Unsubscribe();
      conn->subs.erase(it);
      if (!status.ok()) {
        SendError(conn, msg->request_id, status);
        return;
      }
      std::string out;
      EncodeAck(&out, AckMsg{msg->request_id});
      SendControl(conn, std::move(out));
      return;
    }
    case FrameType::kPublish: {
      Result<PublishMsg> decoded = DecodePublish(frame.payload);
      if (!decoded.ok()) {
        FailProtocol(conn, 0, decoded.status());
        return;
      }
      PublishMsg msg = std::move(decoded).value();
      // May block on ingest backpressure — intentionally: while blocked,
      // this thread reads no sockets and TCP pushes back on publishers.
      Status status =
          msg.stream == kAnyStream
              ? service_->Publish(std::move(msg.document))
              : service_->PublishToStream(msg.stream,
                                          std::move(msg.document));
      if (!status.ok()) {
        SendError(conn, msg.request_id, status);
        return;
      }
      std::string out;
      EncodeAck(&out, AckMsg{msg.request_id});
      SendControl(conn, std::move(out));
      return;
    }
    case FrameType::kPing: {
      Result<PingMsg> msg = DecodePing(frame.payload);
      if (!msg.ok()) {
        FailProtocol(conn, 0, msg.status());
        return;
      }
      std::string out;
      EncodePong(&out, PongMsg{msg->request_id});
      SendControl(conn, std::move(out));
      return;
    }
    case FrameType::kStats: {
      Result<StatsMsg> msg = DecodeStats(frame.payload);
      if (!msg.ok()) {
        FailProtocol(conn, 0, msg.status());
        return;
      }
      std::string out;
      EncodeStatsText(&out, StatsTextMsg{msg->request_id, StatszText()});
      SendControl(conn, std::move(out));
      return;
    }
    case FrameType::kHello:
      FailProtocol(conn, 0,
                   Status::InvalidArgument("HELLO after session start"));
      return;
    default:
      FailProtocol(conn, 0,
                   Status::ParseError("unexpected frame type " +
                                      std::to_string(frame.type)));
      return;
  }
}

void Server::HandleHello(Connection* conn, const Frame& frame) {
  if (static_cast<FrameType>(frame.type) != FrameType::kHello) {
    FailProtocol(conn, 0,
                 Status::InvalidArgument("expected HELLO, got frame type " +
                                         std::to_string(frame.type)));
    return;
  }
  Result<HelloMsg> msg = DecodeHello(frame.payload);
  if (!msg.ok()) {
    FailProtocol(conn, 0, msg.status());
    return;
  }
  if (msg->magic != kProtocolMagic) {
    FailProtocol(conn, 0, Status::InvalidArgument("bad protocol magic"));
    return;
  }
  if (msg->version != kProtocolVersion) {
    FailProtocol(conn, 0,
                 Status::InvalidArgument(
                     "unsupported protocol version " +
                     std::to_string(msg->version) + " (this server: " +
                     std::to_string(kProtocolVersion) + ")"));
    return;
  }
  if (!options_.auth_token.empty() &&
      msg->auth_token != options_.auth_token) {
    metrics_.auth_failures->Increment();
    Status status = Status::InvalidArgument("authentication failed");
    SendError(conn, 0, status);
    std::string bye;
    EncodeBye(&bye, ByeMsg{ByeReason::kAuthFailed, status.message()});
    conn->sink->AppendControl(bye);
    uint64_t wrote = 0;
    (void)conn->sink->Flush(conn->fd, &wrote);
    metrics_.bytes_out->Add(wrote);
    CloseConnection(conn);
    return;
  }
  conn->awaiting_hello = false;
  std::string out;
  EncodeWelcome(&out, WelcomeMsg{kProtocolVersion, options_.banner});
  SendControl(conn, std::move(out));
}

// ---------------------------------------------------------------------------
// Responses, writes, teardown.
// ---------------------------------------------------------------------------

void Server::SendControl(Connection* conn, std::string bytes) {
  conn->sink->AppendControl(bytes);
}

void Server::SendError(Connection* conn, uint64_t request_id,
                       const Status& status) {
  std::string out;
  EncodeError(&out, ErrorMsg{request_id, WireCode(status.code()),
                             status.message()});
  SendControl(conn, std::move(out));
}

void Server::FailProtocol(Connection* conn, uint64_t request_id,
                          const Status& status) {
  metrics_.protocol_errors->Increment();
  SendError(conn, request_id, status);
  std::string bye;
  EncodeBye(&bye, ByeMsg{ByeReason::kProtocolError, status.message()});
  conn->sink->AppendControl(bye);
  uint64_t wrote = 0;
  (void)conn->sink->Flush(conn->fd, &wrote);  // best effort, then close
  metrics_.bytes_out->Add(wrote);
  CloseConnection(conn);
}

void Server::FlushOutbuf(Connection* conn) {
  uint64_t wrote = 0;
  ConnectionSink::FlushResult result = conn->sink->Flush(conn->fd, &wrote);
  metrics_.bytes_out->Add(wrote);
  switch (result) {
    case ConnectionSink::FlushResult::kError:
      CloseConnection(conn);
      return;
    case ConnectionSink::FlushResult::kBlocked:
      UpdateWriteInterest(conn, true);
      return;
    case ConnectionSink::FlushResult::kDrained:
      if (conn->close_after_flush) {
        CloseConnection(conn);
        return;
      }
      UpdateWriteInterest(conn, false);
      return;
  }
}

void Server::Evict(Connection* conn) {
  metrics_.connections_evicted->Increment();
  std::string bye;
  EncodeBye(&bye,
            ByeMsg{ByeReason::kEvicted,
                   "slow consumer: output buffer exceeded " +
                       std::to_string(options_.max_outbuf_bytes) + " bytes"});
  conn->sink->ReplaceOutput(std::move(bye));
  uint64_t wrote = 0;
  (void)conn->sink->Flush(conn->fd, &wrote);  // best effort
  metrics_.bytes_out->Add(wrote);
  CloseConnection(conn);
}

void Server::CloseConnection(Connection* conn) {
  const int fd = conn->fd;
  // Order matters: close the sink FIRST so shard threads stop appending,
  // then let the Subscription handles issue their (asynchronous)
  // unsubscribes — the service keeps the closed sink alive until each
  // marker lands, and every late OnMatch is a cheap refused no-op.
  conn->sink->Close();
  conn->subs.clear();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);  // destroys conn
  metrics_.connections_closed->Increment();
  metrics_.connections_active->Set(connections_.size());
}

void Server::UpdateWriteInterest(Connection* conn, bool want_write) {
  if (conn->want_write == want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->want_write = want_write;
  }
}

#else  // !defined(__linux__)

Status Server::Init() {
  return Status::Unsupported("the ViteX TCP server requires linux (epoll)");
}
Status Server::Stop() { return Status::OK(); }
void Server::Run() {}
void Server::AcceptReady() {}
void Server::HandleReadable(Connection*) {}
void Server::HandleHttp(Connection*, std::string_view) {}
void Server::DispatchFrame(Connection*, const Frame&) {}
void Server::HandleHello(Connection*, const Frame&) {}
void Server::SendControl(Connection*, std::string) {}
void Server::SendError(Connection*, uint64_t, const Status&) {}
void Server::FailProtocol(Connection*, uint64_t, const Status&) {}
void Server::FlushOutbuf(Connection*) {}
void Server::Evict(Connection*) {}
void Server::CloseConnection(Connection*) {}
void Server::DrainWakeups() {}
void Server::UpdateWriteInterest(Connection*, bool) {}

#endif  // defined(__linux__)

NetStatsSnapshot Server::stats() const {
  NetStatsSnapshot s;
  s.connections_accepted = metrics_.connections_accepted->value();
  s.connections_closed = metrics_.connections_closed->value();
  s.connections_evicted = metrics_.connections_evicted->value();
  s.connections_active = metrics_.connections_active->value();
  s.auth_failures = metrics_.auth_failures->value();
  s.protocol_errors = metrics_.protocol_errors->value();
  s.frames_in = metrics_.frames_in->value();
  s.frames_out = metrics_.frames_out->value();
  s.bytes_in = metrics_.bytes_in->value();
  s.bytes_out = metrics_.bytes_out->value();
  s.matches_sent = metrics_.matches_sent->value();
  s.matches_dropped = metrics_.matches_dropped->value();
  s.http_requests = metrics_.http_requests->value();
  s.outbuf_high_watermark = metrics_.outbuf_high_watermark->value();
  return s;
}

std::string Server::StatszText() const {
  return service_->StatszText() + registry_.RenderText();
}

}  // namespace vitex::net
