// ViteX TCP serving surface (DESIGN.md §13): persistent framed sessions
// over the public facade (service/vitex.h).
//
// One epoll thread owns every socket: accept, read, frame decode, request
// dispatch, write flushing, connection teardown. Requests map 1:1 onto
// facade calls; MATCH delivery is the push-sink path — each connection
// registers ONE ConnectionSink (a vitex::MatchSink) shared by all of its
// subscriptions, and shard threads encode MATCH frames straight into that
// connection's bounded output buffer as matches are produced. The epoll
// thread never copies a match twice and shard threads never touch a
// socket.
//
// Backpressure discipline (the wire extension of the BoundedQueue rule —
// every buffer bounded, overflow explicit):
//
//   * ingest:  PUBLISH handling calls Service::Publish, which blocks on
//     the bounded ingest queues. While it blocks, the epoll thread is not
//     reading, so TCP flow control pushes back on publishers. Slow SHARDS
//     slow publishers down; they never balloon memory.
//   * egress:  each connection's outbuf is capped (max_outbuf_bytes). A
//     MATCH that would overflow the cap is REFUSED (OnMatch -> false) and
//     the service counts it as overflowed; what happens next is the
//     slow_consumer_policy:
//       - kDisconnect (default): the connection is evicted — pending
//         output is discarded, BYE(kEvicted) is sent best-effort, the
//         socket closes. One stalled reader costs O(max_outbuf_bytes) and
//         is then gone; ingest throughput for everyone else is unaffected.
//       - kDropMatches: the connection stays; overflowing MATCH frames
//         are dropped (counted in vitex_net_matches_dropped_total and the
//         service's results_overflowed). Sequence numbers let the client
//         see the gap.
//     Responses (ACK/SUBSCRIBED/PONG/...) are epoll-thread writes and
//     bypass the cap: they are small and bounded by the request rate the
//     server itself reads.
//
// The same port speaks HTTP GET for scrapes: a connection whose first
// bytes are "GET " is served /statsz (Prometheus text: service metrics +
// the vitex_net_* series below) and closed. Everything else on that
// connection grammar is the framed protocol (net/protocol.h).

#ifndef VITEX_NET_SERVER_H_
#define VITEX_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "service/vitex.h"

namespace vitex::net {

/// What to do with a connection whose outbuf cap a MATCH would overflow.
enum class SlowConsumerPolicy : uint8_t {
  kDisconnect = 0,  ///< evict: discard pending output, BYE(kEvicted), close
  kDropMatches = 1  ///< keep the session, drop overflowing MATCH frames
};

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; Server::port() reports the
  /// actual one (how tests and the load driver connect).
  uint16_t port = 0;
  /// Non-empty: HELLO must carry exactly this token or the connection is
  /// refused with BYE(kAuthFailed). Empty: open server, token ignored.
  std::string auth_token;
  /// Banner echoed in WELCOME (diagnostics only).
  std::string banner = "vitex";
  /// Per-frame payload ceiling for CLIENT frames (decoder bound).
  size_t max_frame_size = kDefaultMaxFrameSize;
  /// Per-connection output buffer cap — the slow-consumer bound.
  size_t max_outbuf_bytes = 4u * 1024 * 1024;
  SlowConsumerPolicy slow_consumer_policy = SlowConsumerPolicy::kDisconnect;
  int listen_backlog = 1024;
  /// When > 0, SO_SNDBUF for accepted sockets. Bounding the KERNEL's
  /// send buffer makes max_outbuf_bytes the real end-to-end bound per
  /// slow consumer (TCP autotuning would otherwise absorb megabytes
  /// before the outbuf cap ever filled); tests and the load driver use a
  /// small value to make eviction prompt and deterministic.
  int so_sndbuf = 0;
};

/// Counter snapshot of the vitex_net_* series (same numbers /statsz
/// exposes; struct form for tests and the load driver).
struct NetStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_evicted = 0;
  uint64_t connections_active = 0;
  uint64_t auth_failures = 0;
  uint64_t protocol_errors = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t matches_sent = 0;
  uint64_t matches_dropped = 0;
  uint64_t http_requests = 0;
  uint64_t outbuf_high_watermark = 0;
};

/// The TCP front end. Start() binds, listens and spawns the epoll thread;
/// Stop() (or destruction) closes every session with BYE(kShutdown) and
/// joins it. The Service must outlive the Server.
///
/// Thread safety: Start/Stop/port/stats/StatszText are safe from any
/// thread; all connection state is owned by the epoll thread.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(Service* service,
                                               ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, tears down every connection, joins the epoll
  /// thread. Idempotent.
  Status Stop();

  /// The bound TCP port (resolves ServerOptions::port == 0).
  uint16_t port() const { return port_; }

  NetStatsSnapshot stats() const;

  /// Service StatszText() plus the vitex_net_* series — the payload of
  /// both STATS frames and HTTP GET /statsz.
  std::string StatszText() const;

 private:
  struct Connection;
  class ConnectionSink;

  /// Cross-thread wakeup channel, shared (shared_ptr) by the server and
  /// every ConnectionSink. Sinks outlive their connection — the service
  /// keeps them alive until the unsubscribe marker is applied — and may
  /// outlive the Server itself, so everything a sink touches besides its
  /// own state lives here, and `wake_fd < 0` means "server gone, do
  /// nothing".
  struct WakeState {
    Mutex mu;
    int wake_fd GUARDED_BY(mu) = -1;  // eventfd; -1 once the server died
    std::vector<int> dirty GUARDED_BY(mu);  // connection fds to service

    /// Queues `fd` for the epoll thread and signals the eventfd. Safe
    /// from any thread, any time (no-op after server teardown).
    void MarkDirty(int fd);
  };

  /// Raw pointers into registry_ (registered once at Start).
  struct Metrics {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Counter* connections_evicted = nullptr;
    obs::Gauge* connections_active = nullptr;
    obs::Counter* auth_failures = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* matches_sent = nullptr;
    obs::Counter* matches_dropped = nullptr;
    obs::Counter* http_requests = nullptr;
    obs::Gauge* outbuf_high_watermark = nullptr;
  };

  Server(Service* service, ServerOptions options);

  Status Init();  // bind/listen/epoll/eventfd setup, called by Start
  void Run();     // the epoll loop (epoll thread body)

  // --- epoll-thread-only helpers (Connection state is single-threaded) ---
  void AcceptReady();
  void HandleReadable(Connection* conn);
  void HandleHttp(Connection* conn, std::string_view bytes);
  void DispatchFrame(Connection* conn, const Frame& frame);
  void HandleHello(Connection* conn, const Frame& frame);
  /// Appends a response frame to the connection's outbuf (cap-exempt).
  void SendControl(Connection* conn, std::string bytes);
  void SendError(Connection* conn, uint64_t request_id, const Status& status);
  void FailProtocol(Connection* conn, uint64_t request_id,
                    const Status& status);
  /// Flushes as much outbuf as the socket accepts; arms/disarms EPOLLOUT;
  /// closes the connection on write error or completed BYE flush.
  void FlushOutbuf(Connection* conn);
  void Evict(Connection* conn);
  void CloseConnection(Connection* conn);
  void DrainWakeups();
  void UpdateWriteInterest(Connection* conn, bool want_write);

  Service* const service_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  // Epoll thread's unlocked copy of wake_->wake_fd (same eventfd; the
  // locked field exists for sinks that may outlive the server).
  int wake_read_fd_ = -1;
  uint16_t port_ = 0;
  std::shared_ptr<WakeState> wake_;
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;

  Mutex lifecycle_mu_;
  bool stopped_ GUARDED_BY(lifecycle_mu_) = false;

  // Connection table — epoll thread only.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  obs::Registry registry_;
  Metrics metrics_;
};

}  // namespace vitex::net

#endif  // VITEX_NET_SERVER_H_
