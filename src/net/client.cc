#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace vitex::net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left <= 0) return 0;
  if (left > 3600 * 1000) return 3600 * 1000;
  return static_cast<int>(left);
}

Status SetBlocking(int fd, bool blocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  std::unique_ptr<Client> client(new Client(std::move(options)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host must be an IPv4 literal, got \"" +
                                   host + "\"");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  client->fd_ = fd;  // owned from here on; Close() on any error path

  if (client->options_.so_rcvbuf > 0) {
    // Before connect(): SO_RCVBUF set later would not shrink the already
    // advertised receive window.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &client->options_.so_rcvbuf,
                 sizeof(client->options_.so_rcvbuf));
  }

  // Connect with a deadline: non-blocking connect + poll, then back to a
  // blocking socket (reads are poll-gated, writes may block — the server
  // always reads).
  VITEX_RETURN_IF_ERROR(SetBlocking(fd, false));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    pollfd pfd{fd, POLLOUT, 0};
    int r = ::poll(&pfd, 1, client->options_.io_timeout_ms);
    if (r == 0) return Status::IoError("connect timed out");
    if (r < 0) return Errno("poll(connect)");
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IoError(std::string("connect: ") + std::strerror(err));
    }
  }
  VITEX_RETURN_IF_ERROR(SetBlocking(fd, true));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  VITEX_RETURN_IF_ERROR(client->Handshake());
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::ConnectionDied(const std::string& detail) {
  Close();
  std::string message = detail;
  if (bye_.has_value()) {
    message += " (server BYE: ";
    switch (bye_->reason) {
      case ByeReason::kShutdown:
        message += "shutdown";
        break;
      case ByeReason::kEvicted:
        message += "evicted";
        break;
      case ByeReason::kProtocolError:
        message += "protocol error";
        break;
      case ByeReason::kAuthFailed:
        message += "auth failed";
        break;
    }
    if (!bye_->detail.empty()) message += ", " + bye_->detail;
    message += ")";
  }
  return Status::IoError(message);
}

Status Client::SendAll(std::string_view bytes) {
  if (fd_ < 0) return ConnectionDied("connection is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, options_.io_timeout_ms) <= 0) {
        return ConnectionDied("send timed out");
      }
      continue;
    }
    return ConnectionDied(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<bool> Client::ReadSome(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r == 0) return false;
  if (r < 0) {
    if (errno == EINTR) return false;  // caller re-checks its deadline
    return Errno("poll");
  }
  char buf[65536];
  ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n > 0) {
    // A framing error is surfaced by NextFrame via decoder_.failed().
    (void)decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    return true;
  }
  if (n == 0) {
    eof_ = true;  // frames (e.g. the BYE) may still be buffered
    return true;
  }
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return false;
  return ConnectionDied(std::string("recv: ") + std::strerror(errno));
}

Result<std::optional<Frame>> Client::NextFrame(int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (std::optional<Frame> frame = decoder_.Next()) {
      return std::optional<Frame>(std::move(frame));
    }
    if (decoder_.failed()) {
      Status status = decoder_.status();
      (void)ConnectionDied("framing error");
      return status;
    }
    if (eof_ || fd_ < 0) {
      return ConnectionDied("connection closed by server");
    }
    // Always attempt at least one read: NextFrame(0) is the non-blocking
    // "drain whatever the socket already has" mode PollMatch(0) exposes.
    bool got = false;
    VITEX_ASSIGN_OR_RETURN(got, ReadSome(RemainingMs(deadline)));
    if (!got && RemainingMs(deadline) <= 0) {
      return std::optional<Frame>(std::nullopt);
    }
  }
}

Result<Frame> Client::Transact(std::string request, FrameType expected,
                               uint64_t request_id) {
  VITEX_RETURN_IF_ERROR(SendAll(request));
  while (true) {
    std::optional<Frame> frame;
    VITEX_ASSIGN_OR_RETURN(frame, NextFrame(options_.io_timeout_ms));
    if (!frame.has_value()) {
      return ConnectionDied("timed out waiting for response");
    }
    const FrameType type = static_cast<FrameType>(frame->type);
    if (type == FrameType::kMatch) {
      Result<MatchMsg> match = DecodeMatch(frame->payload);
      VITEX_RETURN_IF_ERROR(match.status());
      pending_matches_.push_back(Match{match->subscription_id,
                                       match->sequence,
                                       std::move(match->fragment)});
      continue;
    }
    if (type == FrameType::kBye) {
      Result<ByeMsg> bye = DecodeBye(frame->payload);
      if (bye.ok()) bye_ = std::move(bye).value();
      return ConnectionDied("server closed the connection");
    }
    if (type == FrameType::kError) {
      Result<ErrorMsg> err = DecodeError(frame->payload);
      VITEX_RETURN_IF_ERROR(err.status());
      if (err->request_id != request_id) {
        (void)ConnectionDied("protocol violation");
        return Status::Internal("ERROR response for request " +
                                std::to_string(err->request_id) +
                                ", expected " + std::to_string(request_id));
      }
      return StatusFromWire(err->code, err->message);
    }
    if (type != expected) {
      (void)ConnectionDied("protocol violation");
      return Status::Internal("unexpected response frame type " +
                              std::to_string(frame->type));
    }
    // Every response payload opens with the echoed request id.
    WireReader reader(frame->payload);
    Result<uint64_t> echoed = reader.U64();
    VITEX_RETURN_IF_ERROR(echoed.status());
    if (echoed.value() != request_id) {
      (void)ConnectionDied("protocol violation");
      return Status::Internal("response for request " +
                              std::to_string(echoed.value()) +
                              ", expected " + std::to_string(request_id));
    }
    return std::move(*frame);
  }
}

Status Client::Handshake() {
  HelloMsg hello;
  hello.auth_token = options_.auth_token;
  std::string request;
  EncodeHello(&request, hello);
  VITEX_RETURN_IF_ERROR(SendAll(request));
  std::optional<Frame> frame;
  VITEX_ASSIGN_OR_RETURN(frame, NextFrame(options_.io_timeout_ms));
  if (!frame.has_value()) {
    return ConnectionDied("timed out waiting for WELCOME");
  }
  switch (static_cast<FrameType>(frame->type)) {
    case FrameType::kWelcome: {
      Result<WelcomeMsg> welcome = DecodeWelcome(frame->payload);
      VITEX_RETURN_IF_ERROR(welcome.status());
      return Status::OK();
    }
    case FrameType::kError: {
      Result<ErrorMsg> err = DecodeError(frame->payload);
      VITEX_RETURN_IF_ERROR(err.status());
      Status refused = StatusFromWire(err->code, err->message);
      (void)ConnectionDied("handshake refused");
      return refused;
    }
    case FrameType::kBye: {
      Result<ByeMsg> bye = DecodeBye(frame->payload);
      if (bye.ok()) bye_ = std::move(bye).value();
      return ConnectionDied("handshake refused");
    }
    default:
      (void)ConnectionDied("protocol violation");
      return Status::Internal("unexpected handshake frame type " +
                              std::to_string(frame->type));
  }
}

Result<uint64_t> Client::Subscribe(std::string_view xpath) {
  const uint64_t request_id = next_request_id_++;
  std::string request;
  EncodeSubscribe(&request,
                  SubscribeMsg{request_id, std::string(xpath)});
  Frame response{};
  VITEX_ASSIGN_OR_RETURN(
      response, Transact(std::move(request), FrameType::kSubscribed,
                         request_id));
  Result<SubscribedMsg> msg = DecodeSubscribed(response.payload);
  VITEX_RETURN_IF_ERROR(msg.status());
  return msg->subscription_id;
}

Status Client::Unsubscribe(uint64_t subscription_id) {
  const uint64_t request_id = next_request_id_++;
  std::string request;
  EncodeUnsubscribe(&request,
                    UnsubscribeMsg{request_id, subscription_id});
  return Transact(std::move(request), FrameType::kAck, request_id).status();
}

Status Client::Publish(std::string_view document) {
  return PublishToStream(kAnyStream, document);
}

Status Client::PublishToStream(uint32_t stream, std::string_view document) {
  const uint64_t request_id = next_request_id_++;
  std::string request;
  EncodePublish(&request,
                PublishMsg{request_id, stream, std::string(document)});
  return Transact(std::move(request), FrameType::kAck, request_id).status();
}

Status Client::Ping() {
  const uint64_t request_id = next_request_id_++;
  std::string request;
  EncodePing(&request, PingMsg{request_id});
  return Transact(std::move(request), FrameType::kPong, request_id).status();
}

Result<std::string> Client::Statsz() {
  const uint64_t request_id = next_request_id_++;
  std::string request;
  EncodeStats(&request, StatsMsg{request_id});
  Frame response{};
  VITEX_ASSIGN_OR_RETURN(
      response,
      Transact(std::move(request), FrameType::kStatsText, request_id));
  Result<StatsTextMsg> msg = DecodeStatsText(response.payload);
  VITEX_RETURN_IF_ERROR(msg.status());
  return std::move(msg).value().text;
}

Result<std::optional<Match>> Client::PollMatch(int timeout_ms) {
  if (!pending_matches_.empty()) {
    Match match = std::move(pending_matches_.front());
    pending_matches_.pop_front();
    return std::optional<Match>(std::move(match));
  }
  if (fd_ < 0 && decoder_.buffered_bytes() < kFrameHeaderSize) {
    return ConnectionDied("connection is closed");
  }
  while (true) {
    std::optional<Frame> frame;
    VITEX_ASSIGN_OR_RETURN(frame, NextFrame(timeout_ms));
    if (!frame.has_value()) return std::optional<Match>(std::nullopt);
    switch (static_cast<FrameType>(frame->type)) {
      case FrameType::kMatch: {
        Result<MatchMsg> msg = DecodeMatch(frame->payload);
        VITEX_RETURN_IF_ERROR(msg.status());
        return std::optional<Match>(Match{msg->subscription_id,
                                          msg->sequence,
                                          std::move(msg->fragment)});
      }
      case FrameType::kBye: {
        Result<ByeMsg> bye = DecodeBye(frame->payload);
        if (bye.ok()) bye_ = std::move(bye).value();
        return ConnectionDied("server closed the connection");
      }
      default:
        (void)ConnectionDied("protocol violation");
        return Status::Internal("unsolicited frame type " +
                                std::to_string(frame->type) +
                                " while polling for MATCH");
    }
  }
}

}  // namespace vitex::net
