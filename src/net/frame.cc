#include "net/frame.h"

#include <cstring>

namespace vitex::net {

namespace {

void AppendU32LE(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

uint32_t ReadU32LE(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

void AppendFrameHeader(std::string* out, uint8_t type, size_t payload_size) {
  AppendU32LE(out, static_cast<uint32_t>(payload_size));
  out->push_back(static_cast<char>(type));
}

void AppendFrame(std::string* out, uint8_t type, std::string_view payload) {
  AppendFrameHeader(out, type, payload.size());
  out->append(payload);
}

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(&out, type, payload);
  return out;
}

Status FrameDecoder::Feed(std::string_view bytes) {
  if (!status_.ok()) return status_;
  buffer_.append(bytes.data(), bytes.size());
  // Validate the next header as soon as its 4 length bytes exist: an
  // oversized declaration fails the stream before any payload arrives,
  // independent of how the bytes were chunked.
  if (buffer_.size() - consumed_ >= 4) {
    uint32_t declared = ReadU32LE(buffer_.data() + consumed_);
    if (declared > max_frame_size_) {
      status_ = Status::ResourceExhausted(
          "frame payload of " + std::to_string(declared) +
          " bytes exceeds the " + std::to_string(max_frame_size_) +
          "-byte frame limit");
    }
  }
  return status_;
}

std::optional<Frame> FrameDecoder::Next() {
  if (!status_.ok()) return std::nullopt;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return std::nullopt;
  const char* head = buffer_.data() + consumed_;
  const uint32_t payload_size = ReadU32LE(head);
  // Feed() already poisoned oversized declarations for the FRONT frame,
  // but a burst of bytes can contain several frames; re-check here so a
  // later oversized header inside one Feed burst cannot slip through.
  if (payload_size > max_frame_size_) {
    status_ = Status::ResourceExhausted(
        "frame payload of " + std::to_string(payload_size) +
        " bytes exceeds the " + std::to_string(max_frame_size_) +
        "-byte frame limit");
    return std::nullopt;
  }
  if (available < kFrameHeaderSize + payload_size) return std::nullopt;
  Frame frame;
  frame.type = static_cast<uint8_t>(head[4]);
  frame.payload.assign(head + kFrameHeaderSize, payload_size);
  consumed_ += kFrameHeaderSize + payload_size;
  // Compact once the decoded prefix dominates the buffer: amortized O(1)
  // per byte, and a partially received frame is never copied repeatedly.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return frame;
}

void WireWriter::PutU32(uint32_t v) { AppendU32LE(&out_, v); }

void WireWriter::PutU64(uint64_t v) {
  AppendU32LE(&out_, static_cast<uint32_t>(v & 0xffffffffu));
  AppendU32LE(&out_, static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutString(std::string_view s) {
  AppendU32LE(&out_, static_cast<uint32_t>(s.size()));
  out_.append(s);
}

Result<uint8_t> WireReader::U8() {
  if (data_.size() - pos_ < 1) {
    return Status::ParseError("truncated payload: expected u8");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WireReader::U32() {
  if (data_.size() - pos_ < 4) {
    return Status::ParseError("truncated payload: expected u32");
  }
  uint32_t v = ReadU32LE(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  if (data_.size() - pos_ < 8) {
    return Status::ParseError("truncated payload: expected u64");
  }
  uint64_t lo = ReadU32LE(data_.data() + pos_);
  uint64_t hi = ReadU32LE(data_.data() + pos_ + 4);
  pos_ += 8;
  return lo | (hi << 32);
}

Result<std::string_view> WireReader::String() {
  Result<uint32_t> len = U32();
  VITEX_RETURN_IF_ERROR(len.status());
  if (data_.size() - pos_ < len.value()) {
    return Status::ParseError("truncated payload: string of " +
                              std::to_string(len.value()) +
                              " bytes declared, " +
                              std::to_string(data_.size() - pos_) +
                              " available");
  }
  std::string_view out = data_.substr(pos_, len.value());
  pos_ += len.value();
  return out;
}

Status WireReader::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::ParseError(std::to_string(data_.size() - pos_) +
                              " trailing byte(s) after message payload");
  }
  return Status::OK();
}

}  // namespace vitex::net
