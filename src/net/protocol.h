// ViteX wire protocol, message layer (DESIGN.md §13).
//
// Defined purely in terms of the public facade (service/vitex.h): every
// request frame corresponds to one facade operation, every response frame
// to its Status/Result, and streamed MATCH frames to push-mode deliveries
// (match_sink.h). The session grammar:
//
//   client: HELLO                       server: WELCOME | ERROR+close
//   client: SUBSCRIBE(xpath)            server: SUBSCRIBED(sub_id) | ERROR
//   client: UNSUBSCRIBE(sub_id)         server: ACK | ERROR
//   client: PUBLISH(stream?, doc)       server: ACK | ERROR
//   client: PING                        server: PONG
//   client: STATS                       server: STATS_TEXT(/statsz payload)
//   server: MATCH(sub_id, seq, frag)    (streamed, unsolicited, any time
//                                        after SUBSCRIBED)
//   server: BYE(reason, detail)         (connection is about to close:
//                                        shutdown, eviction, protocol
//                                        violation)
//
// Requests carry a client-chosen u64 request_id echoed verbatim in the
// response, so a client may pipeline requests; the server answers in
// receive order. ERROR responses carry the facade's StatusCode — the SAME
// enumeration, transported 1:1 (kStatusCodeWire below, static_asserted
// against common/status.h), plus the human-readable message. No
// stringly-typed errors cross the socket: net::Client rebuilds the exact
// Status the facade returned server-side.

#ifndef VITEX_NET_PROTOCOL_H_
#define VITEX_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/frame.h"

namespace vitex::net {

/// Protocol magic ("VTX\1") and version, both carried by HELLO and echoed
/// by WELCOME. A server refuses mismatches with kInvalidArgument.
inline constexpr uint32_t kProtocolMagic = 0x31585456u;  // "VTX1" LE
inline constexpr uint32_t kProtocolVersion = 1;

enum class FrameType : uint8_t {
  kHello = 1,
  kWelcome = 2,
  kSubscribe = 3,
  kSubscribed = 4,
  kUnsubscribe = 5,
  kPublish = 6,
  kAck = 7,
  kError = 8,
  kMatch = 9,
  kPing = 10,
  kPong = 11,
  kStats = 12,
  kStatsText = 13,
  kBye = 14,
};

/// PublishMsg::stream value meaning "any stream" (round-robin Publish).
inline constexpr uint32_t kAnyStream = 0xffffffffu;

/// Why the server is closing the connection (BYE frames).
enum class ByeReason : uint8_t {
  kShutdown = 1,        ///< server stopping
  kEvicted = 2,         ///< slow consumer, disconnect policy (DESIGN.md §13)
  kProtocolError = 3,   ///< framing/decoding violation
  kAuthFailed = 4,      ///< HELLO rejected
};

// ---------------------------------------------------------------------------
// StatusCode <-> wire. The wire value IS the facade enum value; the
// static_asserts freeze the correspondence so an enum reorder in
// common/status.h cannot silently change the protocol.
// ---------------------------------------------------------------------------

inline constexpr uint8_t kStatusCodeWireMax = 6;
static_assert(static_cast<uint8_t>(StatusCode::kOk) == 0);
static_assert(static_cast<uint8_t>(StatusCode::kInvalidArgument) == 1);
static_assert(static_cast<uint8_t>(StatusCode::kParseError) == 2);
static_assert(static_cast<uint8_t>(StatusCode::kUnsupported) == 3);
static_assert(static_cast<uint8_t>(StatusCode::kInternal) == 4);
static_assert(static_cast<uint8_t>(StatusCode::kIoError) == 5);
static_assert(static_cast<uint8_t>(StatusCode::kResourceExhausted) ==
              kStatusCodeWireMax);

inline uint8_t WireCode(StatusCode code) {
  return static_cast<uint8_t>(code);
}

/// Rebuilds the Status an ERROR frame transports. Unknown codes (a newer
/// peer) degrade to kInternal rather than failing the decode: the message
/// text still carries the detail.
Status StatusFromWire(uint8_t wire_code, std::string_view message);

// ---------------------------------------------------------------------------
// Messages. One struct per frame type; Encode appends the COMPLETE frame
// (header + payload) to `out`, Decode parses a frame payload.
// ---------------------------------------------------------------------------

struct HelloMsg {
  uint32_t magic = kProtocolMagic;
  uint32_t version = kProtocolVersion;
  std::string auth_token;
};

struct WelcomeMsg {
  uint32_t version = kProtocolVersion;
  std::string server_banner;
};

struct SubscribeMsg {
  uint64_t request_id = 0;
  std::string xpath;
};

struct SubscribedMsg {
  uint64_t request_id = 0;
  uint64_t subscription_id = 0;
};

struct UnsubscribeMsg {
  uint64_t request_id = 0;
  uint64_t subscription_id = 0;
};

struct PublishMsg {
  uint64_t request_id = 0;
  uint32_t stream = kAnyStream;
  std::string document;
};

struct AckMsg {
  uint64_t request_id = 0;
};

struct ErrorMsg {
  uint64_t request_id = 0;
  uint8_t code = 0;
  std::string message;
};

struct MatchMsg {
  uint64_t subscription_id = 0;
  uint64_t sequence = 0;
  std::string fragment;
};

struct PingMsg {
  uint64_t request_id = 0;
};

struct PongMsg {
  uint64_t request_id = 0;
};

struct StatsMsg {
  uint64_t request_id = 0;
};

struct StatsTextMsg {
  uint64_t request_id = 0;
  std::string text;
};

struct ByeMsg {
  ByeReason reason = ByeReason::kShutdown;
  std::string detail;
};

void EncodeHello(std::string* out, const HelloMsg& msg);
void EncodeWelcome(std::string* out, const WelcomeMsg& msg);
void EncodeSubscribe(std::string* out, const SubscribeMsg& msg);
void EncodeSubscribed(std::string* out, const SubscribedMsg& msg);
void EncodeUnsubscribe(std::string* out, const UnsubscribeMsg& msg);
void EncodePublish(std::string* out, const PublishMsg& msg);
void EncodeAck(std::string* out, const AckMsg& msg);
void EncodeError(std::string* out, const ErrorMsg& msg);
/// The hot frame: written straight into `out` (header + payload in one
/// append sequence, no intermediate message copy) — this runs on shard
/// threads for every delivery of every wire subscriber.
void EncodeMatch(std::string* out, uint64_t subscription_id,
                 uint64_t sequence, std::string_view fragment);
void EncodePing(std::string* out, const PingMsg& msg);
void EncodePong(std::string* out, const PongMsg& msg);
void EncodeStats(std::string* out, const StatsMsg& msg);
void EncodeStatsText(std::string* out, const StatsTextMsg& msg);
void EncodeBye(std::string* out, const ByeMsg& msg);

/// Exact byte size EncodeMatch will append for `fragment` (the server's
/// outbuf admission check runs before encoding).
size_t MatchFrameSize(std::string_view fragment);

Result<HelloMsg> DecodeHello(std::string_view payload);
Result<WelcomeMsg> DecodeWelcome(std::string_view payload);
Result<SubscribeMsg> DecodeSubscribe(std::string_view payload);
Result<SubscribedMsg> DecodeSubscribed(std::string_view payload);
Result<UnsubscribeMsg> DecodeUnsubscribe(std::string_view payload);
Result<PublishMsg> DecodePublish(std::string_view payload);
Result<AckMsg> DecodeAck(std::string_view payload);
Result<ErrorMsg> DecodeError(std::string_view payload);
Result<MatchMsg> DecodeMatch(std::string_view payload);
Result<PingMsg> DecodePing(std::string_view payload);
Result<PongMsg> DecodePong(std::string_view payload);
Result<StatsMsg> DecodeStats(std::string_view payload);
Result<StatsTextMsg> DecodeStatsText(std::string_view payload);
Result<ByeMsg> DecodeBye(std::string_view payload);

}  // namespace vitex::net

#endif  // VITEX_NET_PROTOCOL_H_
