// Blocking C++ client for the ViteX TCP protocol (net/protocol.h,
// DESIGN.md §13) — what tests, tools and embedding applications use to
// talk to a vitex_server.
//
// The client mirrors the facade (service/vitex.h) one call per request
// frame, and every call returns the SAME Status the facade produced on
// the server: ERROR frames carry the StatusCode 1:1, so e.g. a malformed
// XPath surfaces here as the identical kUnsupported/kParseError it would
// produce in-process. Transport-level failures (timeouts, resets, server
// BYE) are kIoError.
//
// MATCH frames are unsolicited: the server streams them whenever shards
// produce deliveries. Any blocking call that encounters MATCH frames
// while waiting for its response queues them; PollMatch() consumes the
// queue first and only then reads the socket. bye() reports the server's
// parting BYE (e.g. kEvicted under the slow-consumer disconnect policy)
// once the connection dies.
//
// Thread safety: none. One Client = one session = one owning thread (or
// external synchronization), like a file handle.

#ifndef VITEX_NET_CLIENT_H_
#define VITEX_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace vitex::net {

struct ClientOptions {
  /// Token presented in HELLO (must match the server's, if it has one).
  std::string auth_token;
  /// Ceiling for SERVER frames (a /statsz payload is the largest).
  size_t max_frame_size = kDefaultMaxFrameSize;
  /// Deadline for each blocking operation (connect, one request/response
  /// round trip). PollMatch takes its own timeout per call.
  int io_timeout_ms = 30000;
  /// When > 0, SO_RCVBUF for the socket (set before connect so the
  /// advertised receive window honors it). A deliberately slow consumer
  /// with a small rcvbuf pushes volume back into the server's outbuf —
  /// how the load driver makes slow-consumer eviction deterministic
  /// instead of racing TCP receive-window autotuning.
  int so_rcvbuf = 0;
};

/// One streamed MATCH delivery.
struct Match {
  uint64_t subscription_id = 0;
  uint64_t sequence = 0;
  std::string fragment;
};

class Client {
 public:
  /// Connects, performs the HELLO/WELCOME handshake, returns a live
  /// session. `host` is an IPv4 literal (e.g. "127.0.0.1").
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Registers a standing XPath subscription; MATCH frames for it stream
  /// until Unsubscribe. Returns the server-assigned subscription id.
  Result<uint64_t> Subscribe(std::string_view xpath);
  Status Unsubscribe(uint64_t subscription_id);

  /// Publishes one XML document (round-robin stream). Blocks until the
  /// server ACKs — i.e. until the document entered the ingest queues, the
  /// same backpressure point as the in-process facade.
  Status Publish(std::string_view document);
  Status PublishToStream(uint32_t stream, std::string_view document);

  Status Ping();

  /// The server's /statsz payload (service + vitex_net_* series).
  Result<std::string> Statsz();

  /// Next MATCH: from the local queue if one is pending, else waiting up
  /// to `timeout_ms` for the socket. nullopt = timeout (not an error).
  /// kIoError = connection died (check bye() for the server's reason).
  Result<std::optional<Match>> PollMatch(int timeout_ms);

  /// Closes the socket (the destructor does, too).
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// The underlying socket (-1 when closed). For callers that multiplex
  /// many sessions over their own poller (e.g. tools/net_load_driver.cc):
  /// wait for readability, then drain with PollMatch(0).
  int fd() const { return fd_; }

  /// The BYE the server sent before the connection died, if any.
  const std::optional<ByeMsg>& bye() const { return bye_; }

 private:
  explicit Client(ClientOptions options)
      : options_(std::move(options)), decoder_(options_.max_frame_size) {}

  Status Handshake();
  Status SendAll(std::string_view bytes);
  /// Reads once into the decoder, waiting up to `timeout_ms`. true =
  /// bytes arrived (or EOF was observed — eof_ is set), false = timeout.
  Result<bool> ReadSome(int timeout_ms);
  /// Next frame within `timeout_ms`; nullopt on timeout.
  Result<std::optional<Frame>> NextFrame(int timeout_ms);
  /// Runs one request/response round trip: sends `request`, queues any
  /// MATCH frames seen on the way, returns the response frame of
  /// `expected` type (after checking its echoed request id) or the
  /// reconstructed Status of an ERROR response for `request_id`.
  Result<Frame> Transact(std::string request, FrameType expected,
                         uint64_t request_id);
  Status ConnectionDied(const std::string& detail);

  ClientOptions options_;
  FrameDecoder decoder_;
  int fd_ = -1;
  bool eof_ = false;  // peer closed; frames may still be buffered
  uint64_t next_request_id_ = 1;
  std::deque<Match> pending_matches_;
  std::optional<ByeMsg> bye_;
};

}  // namespace vitex::net

#endif  // VITEX_NET_CLIENT_H_
