// Length-prefixed frame codec for the ViteX wire protocol (DESIGN.md §13).
//
// Every message on a ViteX connection is one frame:
//
//     +----------------+------+------------------------+
//     | payload length | type |        payload         |
//     |  u32 LE        | u8   |  `length` bytes        |
//     +----------------+------+------------------------+
//
// The length field counts ONLY the payload (not the 5-byte header), so an
// empty-payload frame is exactly 5 bytes on the wire. Integers are
// little-endian throughout — the protocol is explicitly byte-ordered, not
// host-ordered. Frame *types* and payload layouts live one layer up in
// net/protocol.h; this file is deliberately type-agnostic so the codec's
// correctness properties (split invariance, bounds enforcement) can be
// tested on raw bytes.
//
// FrameDecoder is an incremental decoder with the same contract the SAX
// parser honors for documents (tests/xml/feed_split_helpers.h): the
// decoded frame sequence — and any error — is IDENTICAL no matter how the
// byte stream is split across Feed calls. A declared payload length
// exceeding max_frame_size fails the stream immediately (before waiting
// for the bytes), which is what protects the server from a 4 GiB
// allocation conjured by a 4-byte header.

#ifndef VITEX_NET_FRAME_H_
#define VITEX_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace vitex::net {

/// Hard ceiling on one frame's payload, decoder default. Large enough for
/// any realistic published document or /statsz payload; small enough that
/// a malicious length field cannot balloon a connection's memory.
inline constexpr size_t kDefaultMaxFrameSize = 16u * 1024 * 1024;

/// Bytes of frame header: u32 payload length + u8 type.
inline constexpr size_t kFrameHeaderSize = 5;

/// One decoded frame. `type` is opaque at this layer (net/protocol.h
/// assigns meaning and rejects unknown values).
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Appends the frame header for `payload_size` bytes of type `type`.
void AppendFrameHeader(std::string* out, uint8_t type, size_t payload_size);

/// Appends one complete frame (header + payload copy).
void AppendFrame(std::string* out, uint8_t type, std::string_view payload);

/// One complete frame as a fresh string (convenience for tests/client).
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Incremental frame decoder. Feed() bytes as they arrive; Next() yields
/// completed frames in order. After any error the decoder is poisoned:
/// Feed keeps returning the same error and Next returns nothing — a
/// framing violation is not recoverable mid-stream (the connection must
/// be torn down).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_size = kDefaultMaxFrameSize)
      : max_frame_size_(max_frame_size) {}

  /// Consumes `bytes`. Returns the stream's (sticky) framing status.
  Status Feed(std::string_view bytes);

  /// Returns the next completed frame, or nullopt when more bytes are
  /// needed (or the stream is poisoned).
  std::optional<Frame> Next();

  /// Bytes buffered but not yet returned as frames (partial frame).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// True once Feed has reported an error (the stream is dead).
  bool failed() const { return !status_.ok(); }
  const Status& status() const { return status_; }

 private:
  const size_t max_frame_size_;
  // Undecoded input. `consumed_` is the fully-decoded prefix; the buffer
  // is compacted when the prefix dominates, so steady-state decoding does
  // not reallocate per frame and a half-received frame never copies.
  std::string buffer_;
  size_t consumed_ = 0;
  Status status_ = Status::OK();
};

// ---------------------------------------------------------------------------
// Payload (de)serialization primitives: explicit little-endian integers and
// u32-length-prefixed strings. WireReader returns Status-carrying results
// so truncated or trailing-garbage payloads surface as ParseError, never
// as out-of-bounds reads.
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// u32 byte length, then the bytes.
  void PutString(std::string_view s);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  /// Counterpart of WireWriter::PutString. The view aliases the payload
  /// buffer passed to the constructor.
  Result<std::string_view> String();

  bool AtEnd() const { return pos_ == data_.size(); }
  /// ParseError unless every payload byte was consumed — trailing bytes
  /// in a decoded message are a protocol violation, not padding.
  Status ExpectEnd() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace vitex::net

#endif  // VITEX_NET_FRAME_H_
