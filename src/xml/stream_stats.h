// StreamStatsHandler: one-pass structural statistics over an XML stream.
//
// Used to validate workload generators (tag distributions, depth profiles)
// and as a cheap diagnostic consumer; demonstrates that arbitrary analyses
// compose with the same ContentHandler interface TwigM uses.

#ifndef VITEX_XML_STREAM_STATS_H_
#define VITEX_XML_STREAM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "xml/sax_event.h"

namespace vitex::xml {

class StreamStatsHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    ++elements_;
    attributes_ += event.attributes.size();
    ++tag_counts_[std::string(event.name)];
    if (event.depth > max_depth_) max_depth_ = event.depth;
    depth_sum_ += event.depth;
    return Status::OK();
  }

  Status Characters(std::string_view text, int depth) override {
    (void)depth;
    ++text_nodes_;
    text_bytes_ += text.size();
    return Status::OK();
  }

  uint64_t elements() const { return elements_; }
  uint64_t attributes() const { return attributes_; }
  uint64_t text_nodes() const { return text_nodes_; }
  uint64_t text_bytes() const { return text_bytes_; }
  int max_depth() const { return max_depth_; }

  /// Mean element depth (0 for an empty document).
  double mean_depth() const {
    return elements_ == 0
               ? 0.0
               : static_cast<double>(depth_sum_) / static_cast<double>(elements_);
  }

  /// Occurrences of a specific tag.
  uint64_t tag_count(std::string_view tag) const {
    auto it = tag_counts_.find(std::string(tag));
    return it == tag_counts_.end() ? 0 : it->second;
  }

  /// Distinct tag names seen.
  size_t distinct_tags() const { return tag_counts_.size(); }

  /// The `limit` most frequent tags, descending.
  std::vector<std::pair<std::string, uint64_t>> TopTags(size_t limit) const;

  /// Multi-line human-readable report.
  std::string Report() const;

 private:
  uint64_t elements_ = 0;
  uint64_t attributes_ = 0;
  uint64_t text_nodes_ = 0;
  uint64_t text_bytes_ = 0;
  uint64_t depth_sum_ = 0;
  int max_depth_ = 0;
  std::map<std::string, uint64_t> tag_counts_;
};

}  // namespace vitex::xml

#endif  // VITEX_XML_STREAM_STATS_H_
