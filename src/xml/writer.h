// XmlWriter: serializes well-formed XML, used by the workload generators,
// the result emitter and the examples.

#ifndef VITEX_XML_WRITER_H_
#define VITEX_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vitex::xml {

/// Output sink abstraction so the same writer can fill a std::string (tests,
/// generators) or stream to a file (75 MB datasets) without buffering the
/// whole document.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual Status Write(std::string_view data) = 0;
};

/// Appends to a caller-owned std::string.
class StringSink : public OutputSink {
 public:
  explicit StringSink(std::string* out) : out_(out) {}
  Status Write(std::string_view data) override {
    out_->append(data);
    return Status::OK();
  }

 private:
  std::string* out_;
};

/// Writes to a file with an internal buffer.
class FileSink : public OutputSink {
 public:
  ~FileSink() override;

  /// Opens `path` for writing; returns IoError on failure.
  Status Open(const std::string& path);
  Status Write(std::string_view data) override;
  /// Flushes and closes; safe to call more than once.
  Status Close();

  /// Bytes written so far (buffered or flushed).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void* file_ = nullptr;  // std::FILE*, kept void* to avoid <cstdio> here
  uint64_t bytes_written_ = 0;
};

/// A push-style XML serializer with balanced-tag checking and optional
/// indentation.
class XmlWriter {
 public:
  struct Options {
    /// Spaces per indent level; negative disables all insignificant
    /// whitespace (compact output, the default for generated datasets).
    int indent = -1;
    /// Emit an XML declaration as the first bytes.
    bool declaration = true;
  };

  explicit XmlWriter(OutputSink* sink);
  XmlWriter(OutputSink* sink, Options options);

  /// Opens `<name ...>`; attributes are passed as alternating name/value
  /// pairs via AddAttribute before the tag is closed by the next content.
  Status StartElement(std::string_view name);
  /// Adds an attribute to the element opened by the last StartElement;
  /// invalid after any content has been written into it.
  Status AddAttribute(std::string_view name, std::string_view value);
  /// Writes entity-escaped character data.
  Status Text(std::string_view text);
  /// Writes a comment.
  Status Comment(std::string_view text);
  /// Closes the most recently opened element (as `</name>` or `<name/>`).
  Status EndElement();
  /// Convenience: StartElement + Text + EndElement.
  Status TextElement(std::string_view name, std::string_view text);
  /// Verifies all elements are closed and flushes.
  Status Finish();

  int depth() const { return static_cast<int>(open_.size()); }

 private:
  Status CloseStartTagIfOpen();
  Status Indent();

  OutputSink* sink_;
  Options options_;
  std::vector<std::string> open_;
  bool start_tag_open_ = false;
  bool wrote_declaration_ = false;
  bool last_was_text_ = false;
};

}  // namespace vitex::xml

#endif  // VITEX_XML_WRITER_H_
