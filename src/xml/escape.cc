#include "xml/escape.h"

#include <cstdint>

namespace vitex::xml {

void EscapeTextInto(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        *out += "&quot;";
        break;
      case '\'':
        *out += "&apos;";
        break;
      default:
        out->push_back(c);
    }
  }
}

void EscapeAttributeInto(std::string_view value, std::string* out) {
  // Attribute values additionally normalize tabs/newlines in full XML; for
  // our writer it suffices to escape specials (we always double-quote).
  EscapeTextInto(value, out);
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  EscapeTextInto(text, &out);
  return out;
}

std::string EscapeAttribute(std::string_view value) {
  return EscapeText(value);
}

bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7f) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7ff) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0xffff) {
    if (cp >= 0xd800 && cp <= 0xdfff) return false;  // surrogates
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0x10ffff) {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    return false;
  }
  return true;
}

namespace {

// Decodes the entity starting at text[pos] ('&'); on success appends the
// decoded bytes to *out and returns the index just past the ';'.
Result<size_t> DecodeOneEntity(std::string_view text, size_t pos,
                               std::string* out) {
  size_t end = text.find(';', pos);
  if (end == std::string_view::npos || end == pos + 1) {
    return Status::ParseError("unterminated or empty entity reference");
  }
  std::string_view body = text.substr(pos + 1, end - pos - 1);
  if (body == "amp") {
    out->push_back('&');
  } else if (body == "lt") {
    out->push_back('<');
  } else if (body == "gt") {
    out->push_back('>');
  } else if (body == "apos") {
    out->push_back('\'');
  } else if (body == "quot") {
    out->push_back('"');
  } else if (body.size() > 1 && body[0] == '#') {
    uint32_t cp = 0;
    bool hex = body.size() > 2 && (body[1] == 'x' || body[1] == 'X');
    std::string_view digits = body.substr(hex ? 2 : 1);
    if (digits.empty()) {
      return Status::ParseError("empty numeric character reference");
    }
    for (char c : digits) {
      uint32_t d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (hex && c >= 'a' && c <= 'f') {
        d = 10 + (c - 'a');
      } else if (hex && c >= 'A' && c <= 'F') {
        d = 10 + (c - 'A');
      } else {
        return Status::ParseError("bad digit in numeric character reference");
      }
      cp = cp * (hex ? 16 : 10) + d;
      if (cp > 0x10ffff) {
        return Status::ParseError("numeric character reference out of range");
      }
    }
    if (!AppendUtf8(cp, out)) {
      return Status::ParseError("numeric character reference out of range");
    }
  } else {
    return Status::ParseError("unknown entity reference '&" +
                              std::string(body) + ";'");
  }
  return end + 1;
}

}  // namespace

Result<std::string> DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t amp = text.find('&', pos);
    if (amp == std::string_view::npos) {
      out.append(text.substr(pos));
      break;
    }
    out.append(text.substr(pos, amp - pos));
    VITEX_ASSIGN_OR_RETURN(pos, DecodeOneEntity(text, amp, &out));
  }
  return out;
}

}  // namespace vitex::xml
