#include "xml/simd_scan.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "common/cpu_features.h"
#include "xml/simd_scan_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#define VITEX_SCAN_HAVE_SSE2 1
#include <emmintrin.h>
#else
#define VITEX_SCAN_HAVE_SSE2 0
#endif

namespace vitex::xml::scan {

// ---------------------------------------------------------------------------
// Scalar tier: the reference semantics. Every other tier must return
// bit-identical results — the vector tiers call these for their sub-window
// tails (so the byte sets are defined exactly once), and the parity sweeps
// in tests/xml/simd_scan_test.cc compare against independent re-statements
// of the same loops.
// ---------------------------------------------------------------------------

namespace scalar_ref {

namespace {

inline bool IsXmlWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

inline bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

inline bool IsNameEnd(char c) {
  return IsXmlWs(c) || c == '=' || c == '/' || c == '>';
}

}  // namespace

size_t FindMarkup(const char* d, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    if (d[i] == '<' || d[i] == '&') return i;
  }
  return kNotFound;
}

size_t FindQuoteOrAmp(const char* d, size_t n, size_t from, char quote) {
  for (size_t i = from; i < n; ++i) {
    if (d[i] == quote || d[i] == '&') return i;
  }
  return kNotFound;
}

size_t ScanNameEnd(const char* d, size_t n, size_t from) {
  size_t i = from;
  while (i < n && !IsNameEnd(d[i])) ++i;
  return i;
}

size_t ScanWhitespaceRun(const char* d, size_t n, size_t from) {
  size_t i = from;
  while (i < n && IsXmlWs(d[i])) ++i;
  return i;
}

size_t ScanAsciiSpaceRun(const char* d, size_t n, size_t from) {
  size_t i = from;
  while (i < n && IsAsciiSpace(d[i])) ++i;
  return i;
}

size_t FindByte(const char* d, size_t n, size_t from, char c) {
  for (size_t i = from; i < n; ++i) {
    if (d[i] == c) return i;
  }
  return kNotFound;
}

size_t FindGtOrQuote(const char* d, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    if (d[i] == '>' || d[i] == '"' || d[i] == '\'') return i;
  }
  return kNotFound;
}

}  // namespace scalar_ref

namespace {

constexpr ScanKernels kScalarKernels = {
    ScanMode::kScalar,
    scalar_ref::FindMarkup,
    scalar_ref::FindQuoteOrAmp,
    scalar_ref::ScanNameEnd,
    scalar_ref::ScanWhitespaceRun,
    scalar_ref::ScanAsciiSpaceRun,
    scalar_ref::FindByte,
    scalar_ref::FindGtOrQuote,
};

// ---------------------------------------------------------------------------
// SSE2 tier. 16-byte unaligned loads over full windows inside [from, n);
// the remainder (and any buffer shorter than one window — e.g. the seam
// fragments a byte-at-a-time Feed() produces) drops to the scalar loop, so
// no kernel ever reads outside [data, data+size).
// ---------------------------------------------------------------------------
#if VITEX_SCAN_HAVE_SSE2

inline size_t Ctz32(uint32_t x) {
  return static_cast<size_t>(__builtin_ctz(x));
}

inline __m128i Load16(const char* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

size_t FindMarkupSse2(const char* d, size_t n, size_t from) {
  const __m128i lt = _mm_set1_epi8('<');
  const __m128i amp = _mm_set1_epi8('&');
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    __m128i hit =
        _mm_or_si128(_mm_cmpeq_epi8(v, lt), _mm_cmpeq_epi8(v, amp));
    uint32_t m = static_cast<uint32_t>(_mm_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindMarkup(d, n, i);
}

size_t FindQuoteOrAmpSse2(const char* d, size_t n, size_t from, char quote) {
  const __m128i q = _mm_set1_epi8(quote);
  const __m128i amp = _mm_set1_epi8('&');
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    __m128i hit = _mm_or_si128(_mm_cmpeq_epi8(v, q), _mm_cmpeq_epi8(v, amp));
    uint32_t m = static_cast<uint32_t>(_mm_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindQuoteOrAmp(d, n, i, quote);
}

size_t ScanNameEndSse2(const char* d, size_t n, size_t from) {
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i tab = _mm_set1_epi8('\t');
  const __m128i lf = _mm_set1_epi8('\n');
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i eq = _mm_set1_epi8('=');
  const __m128i slash = _mm_set1_epi8('/');
  const __m128i gt = _mm_set1_epi8('>');
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    __m128i hit = _mm_or_si128(
        _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(v, sp), _mm_cmpeq_epi8(v, tab)),
            _mm_or_si128(_mm_cmpeq_epi8(v, lf), _mm_cmpeq_epi8(v, cr))),
        _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(v, eq), _mm_cmpeq_epi8(v, slash)),
            _mm_cmpeq_epi8(v, gt)));
    uint32_t m = static_cast<uint32_t>(_mm_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::ScanNameEnd(d, n, i);
}

size_t ScanWhitespaceRunSse2(const char* d, size_t n, size_t from) {
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i tab = _mm_set1_epi8('\t');
  const __m128i lf = _mm_set1_epi8('\n');
  const __m128i cr = _mm_set1_epi8('\r');
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    __m128i ws = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, sp), _mm_cmpeq_epi8(v, tab)),
        _mm_or_si128(_mm_cmpeq_epi8(v, lf), _mm_cmpeq_epi8(v, cr)));
    uint32_t m = static_cast<uint32_t>(_mm_movemask_epi8(ws));
    if (m != 0xFFFFu) return i + Ctz32(~m & 0xFFFFu);
  }
  return scalar_ref::ScanWhitespaceRun(d, n, i);
}

size_t ScanAsciiSpaceRunSse2(const char* d, size_t n, size_t from) {
  // The 6-byte set is ' ' plus the contiguous range 0x09..0x0D; the range
  // test is (c - 0x09) <= 4 unsigned, expressed as min(x, 4) == x.
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i nine = _mm_set1_epi8(0x09);
  const __m128i four = _mm_set1_epi8(4);
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    __m128i x = _mm_sub_epi8(v, nine);
    __m128i in_range = _mm_cmpeq_epi8(_mm_min_epu8(x, four), x);
    __m128i ws = _mm_or_si128(_mm_cmpeq_epi8(v, sp), in_range);
    uint32_t m = static_cast<uint32_t>(_mm_movemask_epi8(ws));
    if (m != 0xFFFFu) return i + Ctz32(~m & 0xFFFFu);
  }
  return scalar_ref::ScanAsciiSpaceRun(d, n, i);
}

size_t FindByteSse2(const char* d, size_t n, size_t from, char c) {
  const __m128i target = _mm_set1_epi8(c);
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    uint32_t m =
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, target)));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindByte(d, n, i, c);
}

size_t FindGtOrQuoteSse2(const char* d, size_t n, size_t from) {
  const __m128i gt = _mm_set1_epi8('>');
  const __m128i dq = _mm_set1_epi8('"');
  const __m128i sq = _mm_set1_epi8('\'');
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    __m128i v = Load16(d + i);
    __m128i hit = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, gt), _mm_cmpeq_epi8(v, dq)),
        _mm_cmpeq_epi8(v, sq));
    uint32_t m = static_cast<uint32_t>(_mm_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindGtOrQuote(d, n, i);
}

constexpr ScanKernels kSse2Kernels = {
    ScanMode::kSse2,       FindMarkupSse2,
    FindQuoteOrAmpSse2,    ScanNameEndSse2,
    ScanWhitespaceRunSse2, ScanAsciiSpaceRunSse2,
    FindByteSse2,          FindGtOrQuoteSse2,
};

#endif  // VITEX_SCAN_HAVE_SSE2

// ---------------------------------------------------------------------------
// Dispatch: resolved once, overridable for tests.
// ---------------------------------------------------------------------------

std::atomic<const ScanKernels*> g_kernels{nullptr};

bool ScalarForcedByEnv() {
  const char* env = std::getenv("VITEX_FORCE_SCALAR_SCAN");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

const ScanKernels* TierFor(ScanMode mode) {
  switch (mode) {
    case ScanMode::kScalar:
      return &kScalarKernels;
    case ScanMode::kSse2:
#if VITEX_SCAN_HAVE_SSE2
      if (common::GetCpuFeatures().sse2) return &kSse2Kernels;
#endif
      return nullptr;
    case ScanMode::kAvx2: {
      const ScanKernels* avx2 = Avx2Kernels();
      return (avx2 != nullptr && common::GetCpuFeatures().avx2) ? avx2
                                                                : nullptr;
    }
  }
  return nullptr;
}

const ScanKernels* Resolve() {
  if (ScalarForcedByEnv()) return &kScalarKernels;
  if (const ScanKernels* avx2 = TierFor(ScanMode::kAvx2)) return avx2;
  if (const ScanKernels* sse2 = TierFor(ScanMode::kSse2)) return sse2;
  return &kScalarKernels;
}

inline const ScanKernels& Active() {
  const ScanKernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: Resolve() is deterministic within one process run.
    k = Resolve();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

}  // namespace

ScanMode ActiveScanMode() { return Active().mode; }

std::string_view ScanModeName(ScanMode mode) {
  switch (mode) {
    case ScanMode::kScalar:
      return "scalar";
    case ScanMode::kSse2:
      return "sse2";
    case ScanMode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ForceScanMode(ScanMode mode) {
  const ScanKernels* k = TierFor(mode);
  if (k == nullptr) return false;
  g_kernels.store(k, std::memory_order_release);
  return true;
}

void ResetScanModeFromEnvironment() {
  g_kernels.store(Resolve(), std::memory_order_release);
}

size_t FindMarkup(std::string_view s, size_t from) {
  return Active().find_markup(s.data(), s.size(), from);
}

size_t FindQuoteOrAmp(std::string_view s, size_t from, char quote) {
  return Active().find_quote_or_amp(s.data(), s.size(), from, quote);
}

size_t ScanNameEnd(std::string_view s, size_t from) {
  return Active().scan_name_end(s.data(), s.size(), from);
}

size_t ScanWhitespaceRun(std::string_view s, size_t from) {
  return Active().scan_whitespace_run(s.data(), s.size(), from);
}

size_t ScanAsciiSpaceRun(std::string_view s, size_t from) {
  return Active().scan_ascii_space_run(s.data(), s.size(), from);
}

size_t FindByte(std::string_view s, size_t from, char c) {
  return Active().find_byte(s.data(), s.size(), from, c);
}

size_t FindGtOrQuote(std::string_view s, size_t from) {
  return Active().find_gt_or_quote(s.data(), s.size(), from);
}

}  // namespace vitex::xml::scan
