#include "xml/event_log.h"

#include "xml/sax_parser.h"

namespace vitex::xml {

uint32_t EventLog::Intern(std::string_view s) {
  uint32_t offset = static_cast<uint32_t>(heap_.size());
  heap_.append(s);
  return offset;
}

void EventLog::Clear() {
  heap_.clear();
  events_.clear();
  attrs_.clear();
}

Status EventLog::Replay(ContentHandler* handler) const {
  VITEX_RETURN_IF_ERROR(handler->StartDocument());
  // Pooled per-thread scratch: its attributes vector keeps its capacity
  // across documents, so steady-state replay allocates nothing
  // (DESIGN.md §12). Thread-local rather than a member because one log may
  // be replayed concurrently by several shard threads. Every field is
  // overwritten before use, so views left from a previous (possibly freed)
  // log are never read.
  thread_local StartElementEvent ev;
  for (const Event& e : events_) {
    switch (e.kind) {
      case Kind::kStart: {
        ev.name = HeapView(e.name_offset, e.name_size);
        ev.depth = e.depth;
        ev.byte_offset = e.byte_offset;
        ev.symbol = e.symbol;
        ev.sequence = e.sequence;
        ev.attributes.clear();
        for (uint32_t i = 0; i < e.attr_count; ++i) {
          const AttrRef& a = attrs_[e.first_attr + i];
          ev.attributes.push_back(
              Attribute{HeapView(a.name_offset, a.name_size),
                        HeapView(a.value_offset, a.value_size), a.symbol});
        }
        VITEX_RETURN_IF_ERROR(handler->StartElement(ev));
        break;
      }
      case Kind::kEnd:
        VITEX_RETURN_IF_ERROR(
            handler->EndElement(HeapView(e.name_offset, e.name_size), e.depth));
        break;
      case Kind::kText: {
        TextEvent text;
        text.text = HeapView(e.name_offset, e.name_size);
        text.depth = e.depth;
        text.sequence = e.sequence;
        VITEX_RETURN_IF_ERROR(handler->Text(text));
        break;
      }
    }
  }
  return handler->EndDocument();
}

Status EventRecorder::StartElement(const StartElementEvent& event) {
  EventLog::Event e;
  e.kind = EventLog::Kind::kStart;
  e.depth = event.depth;
  e.byte_offset = event.byte_offset;
  e.symbol = event.symbol;
  e.sequence = event.sequence;
  e.name_offset = log_->Intern(event.name);
  e.name_size = static_cast<uint32_t>(event.name.size());
  e.first_attr = static_cast<uint32_t>(log_->attrs_.size());
  e.attr_count = static_cast<uint32_t>(event.attributes.size());
  for (const Attribute& a : event.attributes) {
    EventLog::AttrRef ref;
    ref.name_offset = log_->Intern(a.name);
    ref.name_size = static_cast<uint32_t>(a.name.size());
    ref.value_offset = log_->Intern(a.value);
    ref.value_size = static_cast<uint32_t>(a.value.size());
    ref.symbol = a.symbol;
    log_->attrs_.push_back(ref);
  }
  log_->events_.push_back(e);
  return Status::OK();
}

Status EventRecorder::EndElement(std::string_view name, int depth) {
  EventLog::Event e;
  e.kind = EventLog::Kind::kEnd;
  e.depth = depth;
  e.byte_offset = 0;
  e.name_offset = log_->Intern(name);
  e.name_size = static_cast<uint32_t>(name.size());
  e.first_attr = 0;
  e.attr_count = 0;
  log_->events_.push_back(e);
  return Status::OK();
}

Status EventRecorder::Characters(std::string_view text, int depth) {
  TextEvent event;
  event.text = text;
  event.depth = depth;
  return Text(event);
}

Status EventRecorder::Text(const TextEvent& event) {
  EventLog::Event e;
  e.kind = EventLog::Kind::kText;
  e.depth = event.depth;
  e.byte_offset = 0;
  e.sequence = event.sequence;
  e.name_offset = log_->Intern(event.text);
  e.name_size = static_cast<uint32_t>(event.text.size());
  e.first_attr = 0;
  e.attr_count = 0;
  log_->events_.push_back(e);
  return Status::OK();
}

Result<EventLog> RecordEvents(std::string_view document,
                              SaxParserOptions options) {
  EventLog log;
  EventRecorder recorder(&log);
  VITEX_RETURN_IF_ERROR(ParseString(document, &recorder, options));
  return log;
}

}  // namespace vitex::xml
