// XML entity escaping and decoding.

#ifndef VITEX_XML_ESCAPE_H_
#define VITEX_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace vitex::xml {

/// Escapes the five XML special characters in text content
/// (& < > " ') with their predefined entities.
std::string EscapeText(std::string_view text);

/// Escapes text for use inside a double-quoted attribute value.
std::string EscapeAttribute(std::string_view value);

/// Appending variants for pooled buffers: escape `text` onto the end of
/// `*out` without creating a temporary string (the serialization hot path
/// reuses one scratch buffer per machine — DESIGN.md §12).
void EscapeTextInto(std::string_view text, std::string* out);
void EscapeAttributeInto(std::string_view value, std::string* out);

/// Decodes predefined entities (&amp; &lt; &gt; &apos; &quot;) and numeric
/// character references (&#ddd; / &#xhh;, emitted as UTF-8). Returns a
/// ParseError for unterminated or unknown references.
Result<std::string> DecodeEntities(std::string_view text);

/// Appends the UTF-8 encoding of `codepoint` to `out`. Returns false for
/// values outside the Unicode scalar range.
bool AppendUtf8(uint32_t codepoint, std::string* out);

}  // namespace vitex::xml

#endif  // VITEX_XML_ESCAPE_H_
