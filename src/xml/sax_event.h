// SAX event model: the contract between the SAX parser and every consumer
// (TwigM, the DOM builder, the baselines).
//
// This mirrors the expat/SAX2 event set the original ViteX consumed, reduced
// to what streaming XPath needs: start/end element with attributes and depth,
// character data, and document boundaries.

#ifndef VITEX_XML_SAX_EVENT_H_
#define VITEX_XML_SAX_EVENT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace vitex::xml {

/// "No sequence number": the producer did not stamp document-order sequence
/// numbers onto this event (consumers fall back to counting themselves).
inline constexpr uint64_t kNoSequence = static_cast<uint64_t>(-1);

/// One attribute of a start-element event. Views are valid only for the
/// duration of the callback; consumers that need the data longer must copy.
struct Attribute {
  std::string_view name;
  std::string_view value;
  /// Interned id of `name` when the producer resolves names against a
  /// SymbolTable (see SaxParserOptions::symbols); kNoSymbol otherwise.
  Symbol symbol = kNoSymbol;
};

/// A start-element event.
///
/// `depth` is the 1-based depth of the element (the document root element
/// has depth 1). TwigM's stack entries store this as the paper's "level".
struct StartElementEvent {
  std::string_view name;
  std::vector<Attribute> attributes;
  int depth = 0;
  /// Byte offset in the stream of the '<' that opened this tag (diagnostics
  /// and result-fragment bookkeeping).
  uint64_t byte_offset = 0;
  /// Interned id of `name`, resolved once per event by the producer when it
  /// holds a SymbolTable; kNoSymbol otherwise. Only meaningful to consumers
  /// sharing that same table.
  Symbol symbol = kNoSymbol;
  /// Document-order sequence number of this element, stamped by the producer
  /// (query-independent: one number per element, then one per attribute).
  /// kNoSequence when the producer does not stamp.
  uint64_t sequence = kNoSequence;

  /// Returns the value of attribute `attr_name`, or nullptr if absent.
  const std::string_view* FindAttribute(std::string_view attr_name) const {
    for (const Attribute& a : attributes) {
      if (a.name == attr_name) return &a.value;
    }
    return nullptr;
  }
};

/// One piece of character data, with the producer-stamped sequence number of
/// the text *node* it belongs to. Pieces of one node (chunk boundaries,
/// CDATA seams, entity boundaries) carry the same sequence value.
struct TextEvent {
  std::string_view text;
  int depth = 0;
  uint64_t sequence = kNoSequence;
};

/// Merges the pieces of one text node back into a whole. The rule is the
/// same for every consumer (TwigMachine, the multi-query dispatcher): all
/// pieces delivered between two tag events are one node, at one depth, and
/// the node's sequence number is the first piece's. Keeping the state
/// machine in one place keeps single-query and dispatched evaluation from
/// drifting apart.
struct TextCoalescer {
  std::string buffer;
  int depth = -1;
  uint64_t sequence = kNoSequence;

  bool empty() const { return buffer.empty(); }

  void Append(const TextEvent& event) {
    if (buffer.empty()) {
      buffer.assign(event.text);
      depth = event.depth;
      sequence = event.sequence;
    } else {
      // Depth cannot change without an intervening tag, which flushes.
      assert(event.depth == depth);
      buffer.append(event.text);
    }
  }

  void Clear() {
    buffer.clear();
    depth = -1;
    sequence = kNoSequence;
  }
};

/// Receiver interface for SAX events.
///
/// Any callback may return a non-OK Status to abort the parse; the parser
/// propagates the status to its caller unchanged. The default
/// implementations accept and ignore every event, so handlers override only
/// what they need.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  /// Called once before any other event.
  virtual Status StartDocument() { return Status::OK(); }

  /// Called for every start tag (and for the element part of an empty-element
  /// tag `<a/>`, which is delivered as StartElement immediately followed by
  /// EndElement).
  virtual Status StartElement(const StartElementEvent& event) {
    (void)event;
    return Status::OK();
  }

  /// Called for every end tag. `depth` matches the corresponding
  /// StartElement's depth.
  virtual Status EndElement(std::string_view name, int depth) {
    (void)name;
    (void)depth;
    return Status::OK();
  }

  /// Called for character data between tags, already entity-decoded.
  /// May be called multiple times for one text node (chunk boundaries,
  /// CDATA sections, entity boundaries); `depth` is the depth of the
  /// enclosing element.
  virtual Status Characters(std::string_view text, int depth) {
    (void)text;
    (void)depth;
    return Status::OK();
  }

  /// The sequence-aware form of Characters. Producers that stamp sequence
  /// numbers (the SAX parser) deliver text through this entry point; the
  /// default implementation forwards to Characters so existing handlers are
  /// unaffected. Override this instead of Characters to observe sequences.
  virtual Status Text(const TextEvent& event) {
    return Characters(event.text, event.depth);
  }

  /// Called for processing instructions `<?target data?>`. Ignored by
  /// default; exposed so tooling (e.g. the pretty-printer) can round-trip.
  virtual Status ProcessingInstruction(std::string_view target,
                                       std::string_view data) {
    (void)target;
    (void)data;
    return Status::OK();
  }

  /// Called for comments `<!-- ... -->`. Ignored by default.
  virtual Status Comment(std::string_view text) {
    (void)text;
    return Status::OK();
  }

  /// Called once after the root element closes and trailing misc is consumed.
  virtual Status EndDocument() { return Status::OK(); }
};

}  // namespace vitex::xml

#endif  // VITEX_XML_SAX_EVENT_H_
