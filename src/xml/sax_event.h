// SAX event model: the contract between the SAX parser and every consumer
// (TwigM, the DOM builder, the baselines).
//
// This mirrors the expat/SAX2 event set the original ViteX consumed, reduced
// to what streaming XPath needs: start/end element with attributes and depth,
// character data, and document boundaries.

#ifndef VITEX_XML_SAX_EVENT_H_
#define VITEX_XML_SAX_EVENT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vitex::xml {

/// One attribute of a start-element event. Views are valid only for the
/// duration of the callback; consumers that need the data longer must copy.
struct Attribute {
  std::string_view name;
  std::string_view value;
};

/// A start-element event.
///
/// `depth` is the 1-based depth of the element (the document root element
/// has depth 1). TwigM's stack entries store this as the paper's "level".
struct StartElementEvent {
  std::string_view name;
  std::vector<Attribute> attributes;
  int depth = 0;
  /// Byte offset in the stream of the '<' that opened this tag (diagnostics
  /// and result-fragment bookkeeping).
  uint64_t byte_offset = 0;

  /// Returns the value of attribute `attr_name`, or nullptr if absent.
  const std::string_view* FindAttribute(std::string_view attr_name) const {
    for (const Attribute& a : attributes) {
      if (a.name == attr_name) return &a.value;
    }
    return nullptr;
  }
};

/// Receiver interface for SAX events.
///
/// Any callback may return a non-OK Status to abort the parse; the parser
/// propagates the status to its caller unchanged. The default
/// implementations accept and ignore every event, so handlers override only
/// what they need.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  /// Called once before any other event.
  virtual Status StartDocument() { return Status::OK(); }

  /// Called for every start tag (and for the element part of an empty-element
  /// tag `<a/>`, which is delivered as StartElement immediately followed by
  /// EndElement).
  virtual Status StartElement(const StartElementEvent& event) {
    (void)event;
    return Status::OK();
  }

  /// Called for every end tag. `depth` matches the corresponding
  /// StartElement's depth.
  virtual Status EndElement(std::string_view name, int depth) {
    (void)name;
    (void)depth;
    return Status::OK();
  }

  /// Called for character data between tags, already entity-decoded.
  /// May be called multiple times for one text node (chunk boundaries,
  /// CDATA sections, entity boundaries); `depth` is the depth of the
  /// enclosing element.
  virtual Status Characters(std::string_view text, int depth) {
    (void)text;
    (void)depth;
    return Status::OK();
  }

  /// Called for processing instructions `<?target data?>`. Ignored by
  /// default; exposed so tooling (e.g. the pretty-printer) can round-trip.
  virtual Status ProcessingInstruction(std::string_view target,
                                       std::string_view data) {
    (void)target;
    (void)data;
    return Status::OK();
  }

  /// Called for comments `<!-- ... -->`. Ignored by default.
  virtual Status Comment(std::string_view text) {
    (void)text;
    return Status::OK();
  }

  /// Called once after the root element closes and trailing misc is consumed.
  virtual Status EndDocument() { return Status::OK(); }
};

}  // namespace vitex::xml

#endif  // VITEX_XML_SAX_EVENT_H_
