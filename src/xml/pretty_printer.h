// PrettyPrinter: a ContentHandler that re-serializes the event stream as
// indented XML — a streaming canonicalizer built from the same two pieces
// (SaxParser in, XmlWriter out) the engine uses. O(depth) memory.

#ifndef VITEX_XML_PRETTY_PRINTER_H_
#define VITEX_XML_PRETTY_PRINTER_H_

#include <string>

#include "common/result.h"
#include "xml/sax_event.h"
#include "xml/writer.h"

namespace vitex::xml {

class PrettyPrinter : public ContentHandler {
 public:
  /// @param sink where the formatted document goes; must outlive this.
  /// @param indent spaces per level; pass a negative value for compact
  ///        (canonical, whitespace-free) output.
  explicit PrettyPrinter(OutputSink* sink, int indent = 2);

  Status StartElement(const StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;
  Status Characters(std::string_view text, int depth) override;
  Status Comment(std::string_view text) override;
  Status EndDocument() override;

 private:
  XmlWriter writer_;
};

/// Reformats a whole document in one call.
Result<std::string> PrettyPrint(std::string_view document, int indent = 2);

/// Canonicalizes a document: compact form, declaration stripped, attribute
/// entities normalized. Two logically equal documents canonicalize to equal
/// strings (modulo attribute order, which is preserved as written).
Result<std::string> Canonicalize(std::string_view document);

}  // namespace vitex::xml

#endif  // VITEX_XML_PRETTY_PRINTER_H_
