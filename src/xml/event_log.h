// EventLog: a compact in-memory recording of a SAX event stream, replayable
// into any ContentHandler.
//
// Three uses:
//   * ablation benchmarking — replaying pre-parsed events into TwigM
//     isolates the matcher's cost from the parser's (the paper's 6.02 s vs
//     4.43 s split, taken one step further);
//   * testing — a recorded stream replays bit-identically, so handler
//     behaviour can be compared with and without a real parser in front;
//   * parse-once fan-out — service::StreamService parses each published
//     document into one EventLog on its ingest thread and replays it into
//     every worker shard, so N shards cost one parse (DESIGN.md §5).
//
// Replay is faithful to the producer's stamps: interned symbols
// (StartElementEvent::symbol, Attribute::symbol) and document-order
// sequence numbers (StartElementEvent::sequence, TextEvent::sequence) are
// recorded and replayed verbatim, so symbol-aware consumers (TwigM's match
// index, the multi-query dispatcher, UnionEngine's sequence-keyed dedup)
// behave identically on a replayed stream and on the original parse.
//
// All strings are appended to one heap buffer; an event is a fixed-size
// record of offsets, so a log of n events costs O(total text) + ~56n bytes.

#ifndef VITEX_XML_EVENT_LOG_H_
#define VITEX_XML_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace vitex::xml {

class EventLog {
 public:
  /// Number of recorded events (attributes count with their element).
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Approximate bytes held.
  size_t memory_bytes() const {
    return heap_.size() + events_.size() * sizeof(Event) +
           attrs_.size() * sizeof(AttrRef);
  }

  /// Replays the recorded stream into `handler` (StartDocument through
  /// EndDocument). May be called any number of times.
  Status Replay(ContentHandler* handler) const;

  void Clear();

 private:
  enum class Kind : uint8_t { kStart, kEnd, kText };

  struct AttrRef {
    uint32_t name_offset, name_size;
    uint32_t value_offset, value_size;
    Symbol symbol = kNoSymbol;
  };

  struct Event {
    Kind kind;
    int depth;
    uint32_t name_offset, name_size;  // element name or text content
    uint32_t first_attr, attr_count;
    uint64_t byte_offset;
    Symbol symbol = kNoSymbol;        // kStart: producer-stamped tag symbol
    uint64_t sequence = kNoSequence;  // kStart/kText: producer stamp
  };

  std::string_view HeapView(uint32_t offset, uint32_t size) const {
    return std::string_view(heap_).substr(offset, size);
  }
  uint32_t Intern(std::string_view s);

  std::string heap_;
  std::vector<Event> events_;
  std::vector<AttrRef> attrs_;

  friend class EventRecorder;
};

/// A ContentHandler that records into an EventLog.
class EventRecorder : public ContentHandler {
 public:
  explicit EventRecorder(EventLog* log) : log_(log) {}

  Status StartElement(const StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;
  // Both text entry points record; sequence-stamped producers deliver via
  // Text, unstamped ones via Characters (recorded with kNoSequence).
  Status Characters(std::string_view text, int depth) override;
  Status Text(const TextEvent& event) override;

 private:
  EventLog* log_;
};

/// Parses `document` and returns its event log.
Result<EventLog> RecordEvents(std::string_view document,
                              SaxParserOptions options = SaxParserOptions());

}  // namespace vitex::xml

#endif  // VITEX_XML_EVENT_LOG_H_
