// The AVX2 scan tier. This is the ONLY translation unit compiled with
// -mavx2 (see CMakeLists.txt: the flag is per-file, so the rest of the
// binary stays runnable on baseline x86-64). Nothing here executes unless
// the dispatcher checked cpuid first — Avx2Kernels() only hands out
// pointers. Semantics are defined by the scalar tier in simd_scan.cc;
// tests/xml/simd_scan_test.cc pins bit-for-bit parity at every alignment
// and length.

#include "xml/simd_scan_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace vitex::xml::scan {

namespace {

inline size_t Ctz32(uint32_t x) {
  return static_cast<size_t>(__builtin_ctz(x));
}

inline __m256i Load32(const char* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

size_t FindMarkupAvx2(const char* d, size_t n, size_t from) {
  const __m256i lt = _mm256_set1_epi8('<');
  const __m256i amp = _mm256_set1_epi8('&');
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    __m256i hit =
        _mm256_or_si256(_mm256_cmpeq_epi8(v, lt), _mm256_cmpeq_epi8(v, amp));
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindMarkup(d, n, i);
}

size_t FindQuoteOrAmpAvx2(const char* d, size_t n, size_t from, char quote) {
  const __m256i q = _mm256_set1_epi8(quote);
  const __m256i amp = _mm256_set1_epi8('&');
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    __m256i hit =
        _mm256_or_si256(_mm256_cmpeq_epi8(v, q), _mm256_cmpeq_epi8(v, amp));
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindQuoteOrAmp(d, n, i, quote);
}

size_t ScanNameEndAvx2(const char* d, size_t n, size_t from) {
  const __m256i sp = _mm256_set1_epi8(' ');
  const __m256i tab = _mm256_set1_epi8('\t');
  const __m256i lf = _mm256_set1_epi8('\n');
  const __m256i cr = _mm256_set1_epi8('\r');
  const __m256i eq = _mm256_set1_epi8('=');
  const __m256i slash = _mm256_set1_epi8('/');
  const __m256i gt = _mm256_set1_epi8('>');
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    __m256i hit = _mm256_or_si256(
        _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi8(v, sp),
                            _mm256_cmpeq_epi8(v, tab)),
            _mm256_or_si256(_mm256_cmpeq_epi8(v, lf),
                            _mm256_cmpeq_epi8(v, cr))),
        _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi8(v, eq),
                            _mm256_cmpeq_epi8(v, slash)),
            _mm256_cmpeq_epi8(v, gt)));
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::ScanNameEnd(d, n, i);
}

size_t ScanWhitespaceRunAvx2(const char* d, size_t n, size_t from) {
  const __m256i sp = _mm256_set1_epi8(' ');
  const __m256i tab = _mm256_set1_epi8('\t');
  const __m256i lf = _mm256_set1_epi8('\n');
  const __m256i cr = _mm256_set1_epi8('\r');
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    __m256i ws = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(v, sp), _mm256_cmpeq_epi8(v, tab)),
        _mm256_or_si256(_mm256_cmpeq_epi8(v, lf), _mm256_cmpeq_epi8(v, cr)));
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(ws));
    if (m != 0xFFFFFFFFu) return i + Ctz32(~m);
  }
  return scalar_ref::ScanWhitespaceRun(d, n, i);
}

size_t ScanAsciiSpaceRunAvx2(const char* d, size_t n, size_t from) {
  // ' ' plus the contiguous range 0x09..0x0D: (c - 0x09) <= 4 unsigned,
  // expressed as min(x, 4) == x.
  const __m256i sp = _mm256_set1_epi8(' ');
  const __m256i nine = _mm256_set1_epi8(0x09);
  const __m256i four = _mm256_set1_epi8(4);
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    __m256i x = _mm256_sub_epi8(v, nine);
    __m256i in_range = _mm256_cmpeq_epi8(_mm256_min_epu8(x, four), x);
    __m256i ws = _mm256_or_si256(_mm256_cmpeq_epi8(v, sp), in_range);
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(ws));
    if (m != 0xFFFFFFFFu) return i + Ctz32(~m);
  }
  return scalar_ref::ScanAsciiSpaceRun(d, n, i);
}

size_t FindByteAvx2(const char* d, size_t n, size_t from, char c) {
  const __m256i target = _mm256_set1_epi8(c);
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, target)));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindByte(d, n, i, c);
}

size_t FindGtOrQuoteAvx2(const char* d, size_t n, size_t from) {
  const __m256i gt = _mm256_set1_epi8('>');
  const __m256i dq = _mm256_set1_epi8('"');
  const __m256i sq = _mm256_set1_epi8('\'');
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    __m256i v = Load32(d + i);
    __m256i hit = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(v, gt), _mm256_cmpeq_epi8(v, dq)),
        _mm256_cmpeq_epi8(v, sq));
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(hit));
    if (m != 0) return i + Ctz32(m);
  }
  return scalar_ref::FindGtOrQuote(d, n, i);
}

constexpr ScanKernels kAvx2Kernels = {
    ScanMode::kAvx2,       FindMarkupAvx2,
    FindQuoteOrAmpAvx2,    ScanNameEndAvx2,
    ScanWhitespaceRunAvx2, ScanAsciiSpaceRunAvx2,
    FindByteAvx2,          FindGtOrQuoteAvx2,
};

}  // namespace

const ScanKernels* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace vitex::xml::scan

#else  // !defined(__AVX2__)

namespace vitex::xml::scan {

// This build carries no AVX2 code path (non-x86 target or the compiler
// rejected -mavx2); the dispatcher falls through to SSE2/scalar.
const ScanKernels* Avx2Kernels() { return nullptr; }

}  // namespace vitex::xml::scan

#endif  // defined(__AVX2__)
