// A streaming (push) SAX parser for XML 1.0.
//
// This is the "XML SAX parser" module of the paper's Figure 2 architecture.
// The original system used an off-the-shelf SAX library; since TwigM only
// needs the event sequence, we implement the substrate ourselves (see
// DESIGN.md §1 for the substitution note). The parser:
//
//   * is single-pass and chunk-feedable: callers push arbitrary byte chunks
//     with Feed() (tokens may span chunk boundaries) and call Finish() at
//     end of stream — exactly the access pattern of a network XML feed;
//   * checks well-formedness (tag balance, attribute syntax, single root,
//     entity validity) and reports errors with byte offsets;
//   * handles comments, processing instructions, CDATA, DOCTYPE skipping,
//     XML declarations, numeric and predefined entity references;
//   * never buffers more than one unfinished token, so memory is O(largest
//     single token), independent of document size;
//   * drives its inner byte scans (text runs, tag extents, attribute
//     values, whitespace) off the runtime-dispatched SIMD kernels in
//     xml/simd_scan.h — AVX2/SSE2/scalar tiers that are byte-identical by
//     contract (DESIGN.md §8), so throughput changes with the CPU but the
//     event stream never does.

#ifndef VITEX_XML_SAX_PARSER_H_
#define VITEX_XML_SAX_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/sax_event.h"

namespace vitex::xml {

/// Tuning knobs for SaxParser.
struct SaxParserOptions {
  /// When true (default), text *nodes* consisting solely of whitespace are
  /// suppressed (a node is one coalesced run between two tags; comments,
  /// PIs and CDATA seams do not split it). Data-oriented XML (the paper's
  /// protein dataset) uses whitespace only for indentation; suppressing it
  /// keeps the event stream and TwigM's text buffers small. Set false for
  /// document-oriented XML. Explicitly marked content is never suppressed:
  /// CDATA sections and character references (&#32;) count as real content
  /// and make their whole node deliverable. The rule is applied per node,
  /// not per delivered piece, so it is invariant under chunking.
  bool skip_whitespace_text = true;

  /// Maximum element nesting depth; 0 disables the check. Exceeding the
  /// limit yields ResourceExhausted (guards against adversarial streams).
  size_t max_depth = 100000;

  /// When true (default), element and attribute names are validated against
  /// XML name rules; when false any non-space run is accepted (faster).
  bool validate_names = true;

  /// Reject duplicate attributes on one element (default true, per XML 1.0).
  bool reject_duplicate_attributes = true;

  /// When non-null, element and attribute names are resolved against this
  /// SymbolTable once per event and stamped into StartElementEvent::symbol /
  /// Attribute::symbol, so consumers sharing the table never hash name text
  /// themselves. Resolution is lookup-only: names the table has never seen
  /// stamp kAbsentSymbol (they cannot match any interned query name), which
  /// keeps the table bounded by query vocabulary however large the
  /// document's. The table must outlive the parser. See DESIGN.md §3.
  SymbolTable* symbols = nullptr;
};

/// Counters accumulated over one parse.
struct SaxParserStats {
  uint64_t bytes_consumed = 0;
  uint64_t start_elements = 0;
  uint64_t attributes = 0;
  uint64_t text_events = 0;
  uint64_t comments = 0;
  uint64_t processing_instructions = 0;
  int max_depth = 0;
};

/// The streaming parser. One instance parses one document; Reset() allows
/// reuse.
class SaxParser {
 public:
  explicit SaxParser(ContentHandler* handler,
                     SaxParserOptions options = SaxParserOptions());

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  /// Pushes the next chunk of the stream. Chunks may split tokens at any
  /// byte. Returns the first error encountered; after an error the parser
  /// is poisoned until Reset().
  Status Feed(std::string_view chunk);

  /// Signals end of stream; verifies the document is complete and delivers
  /// EndDocument().
  Status Finish();

  /// Restores the parser to its initial state for a new document.
  void Reset();

  /// Current element depth (0 outside the root element).
  int depth() const { return static_cast<int>(open_elements_.size()); }

  const SaxParserStats& stats() const { return stats_; }

 private:
  // Consumes as many complete tokens from buf_ as possible, starting at
  // pos_. Leaves pos_ at the first byte of an incomplete token.
  Status Pump(bool at_eof);

  // Handles one piece of character data (a full run, or a prefix of a run
  // longer than kTextHoldBytes whose terminator has not been seen yet).
  // `has_amp` is exact for `raw` — Pump already scanned the run for '&'
  // while locating its end, so entity decoding never rescans.
  Status HandleText(std::string_view raw, bool has_amp);
  // Stamps the text-node sequence number and delivers one piece, releasing
  // any staged leading whitespace of the node first.
  Status DeliverText(std::string_view text);
  Status HandleStartTag(std::string_view tag_body, uint64_t offset);
  Status HandleEndTag(std::string_view tag_body);
  Status HandleCData(std::string_view content);
  Status HandlePi(std::string_view body);
  Status HandleComment(std::string_view body);

  Status CheckName(std::string_view name, const char* what) const;
  // Lookup against options_.symbols; misses map to kAbsentSymbol.
  Symbol ResolveSymbol(std::string_view name) const;
  Status ErrorAt(uint64_t offset, std::string msg) const;

  // Byte offset in the overall stream of buf_[0].
  uint64_t BaseOffset() const { return consumed_total_ - pos_zero_adjust_; }

  ContentHandler* handler_;
  SaxParserOptions options_;
  SaxParserStats stats_;

  std::string buf_;     // unconsumed input (plus a consumed prefix < pos_)
  size_t pos_ = 0;      // first unconsumed byte in buf_
  uint64_t consumed_total_ = 0;  // bytes of the stream already cut from buf_
  uint64_t pos_zero_adjust_ = 0;  // unused; kept 0 (see BaseOffset)

  /// Text runs shorter than this are buffered whole before delivery, so
  /// whitespace handling and entity decoding are chunking-invariant; longer
  /// runs stream out in pieces.
  static constexpr size_t kTextHoldBytes = 64 * 1024;

  std::vector<std::string> open_elements_;
  // Leading whitespace of the current text node, staged until the node
  // either shows real content (flushed ahead of it, in order) or ends at a
  // tag (dropped: the whole node was formatting whitespace). This makes
  // skip_whitespace_text a node-level rule — invariant under chunk
  // boundaries, CDATA seams and comments splitting a node. Capped at
  // kTextHoldBytes: a whitespace run beyond that is delivered as content
  // (identically in whole-document and chunked parses), so the parser's
  // memory stays bounded on adversarial all-whitespace streams.
  std::string pending_leading_ws_;
  // Document-order sequence stamping (query-independent, mirrored by every
  // consumer that counts for itself): one number per element, then one per
  // attribute, one per coalesced text node.
  uint64_t sequence_counter_ = 0;
  // True between the first delivered piece of a text node and the next tag;
  // all pieces of the node carry text_node_sequence_.
  bool text_node_open_ = false;
  uint64_t text_node_sequence_ = 0;
  bool started_document_ = false;
  bool seen_root_ = false;
  bool finished_ = false;
  bool failed_ = false;

  // Scratch for entity decoding and attribute storage, reused per event.
  std::string text_scratch_;
  std::vector<std::string> attr_scratch_;
  // Reused per start tag so the tag hot path performs no allocations once
  // capacities have warmed up (events are only valid during the handler
  // callback, so recycling the attribute vector is within contract).
  struct RawAttr {
    std::string_view name;
    std::string_view value;
    int decoded_index;  // index into attr_scratch_, or -1
  };
  std::vector<RawAttr> raw_attr_scratch_;
  StartElementEvent event_scratch_;
};

/// Parses a complete in-memory document in one call.
Status ParseString(std::string_view document, ContentHandler* handler,
                   SaxParserOptions options = SaxParserOptions());

/// Streams a file through the parser in `chunk_bytes` chunks.
Status ParseFile(const std::string& path, ContentHandler* handler,
                 SaxParserOptions options = SaxParserOptions(),
                 size_t chunk_bytes = 1 << 16);

}  // namespace vitex::xml

#endif  // VITEX_XML_SAX_PARSER_H_
