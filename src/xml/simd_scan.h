// SIMD-accelerated byte scanning for the SAX hot loops.
//
// Every engine in the system consumes one single-pass SAX event stream, so
// the byte scans inside SaxParser::Pump — "find the next markup byte",
// "find the closing quote", "skip this whitespace run" — bound docs/sec
// for the whole pipeline. This module provides those scans as dispatchable
// kernels: an AVX2 implementation, an SSE2 implementation (x86-64
// baseline), and a scalar reference. One tier is selected at first use
// (AVX2 → SSE2 → scalar) and can be pinned for testing.
//
// Contract (DESIGN.md §8):
//
//   * Kernels are pure functions over a contiguous [data, data+size)
//     buffer. They never read outside it: vector loads cover only full
//     16/32-byte windows inside the range, and the remainder is finished
//     by the scalar tail. This is what makes the chunk-seam story trivial
//     — the parser buffers partial tokens across Feed() boundaries exactly
//     as before, and a kernel invoked on the (possibly short) buffered
//     window degrades to the identical scalar scan.
//   * Every implementation tier returns bit-identical results for every
//     (buffer, from) input. tests/xml/simd_scan_test.cc sweeps all
//     alignments and lengths, and the CI matrix runs the full xml/difftest
//     suites under VITEX_FORCE_SCALAR_SCAN=1 to hold the scalar path to
//     the same bar on every compiler.
//   * Byte sets are exact, not approximate: ScanWhitespaceRun matches the
//     XML production (space, tab, LF, CR) used for markup scanning, while
//     ScanAsciiSpaceRun matches IsAllWhitespace's 6-byte ASCII set used by
//     the node-level whitespace-suppression rule. The two differ on \f and
//     \v; collapsing them would silently change which text nodes are
//     suppressed.
//
// Mode selection: resolved once, in order —
//   1. VITEX_FORCE_SCALAR_SCAN env var set to anything but "" / "0":
//      scalar, regardless of CPU (the testing override);
//   2. CPU has AVX2 (and the binary carries the -mavx2 TU): AVX2;
//   3. x86-64: SSE2;
//   4. otherwise: scalar.

#ifndef VITEX_XML_SIMD_SCAN_H_
#define VITEX_XML_SIMD_SCAN_H_

#include <cstddef>
#include <string_view>

namespace vitex::xml::scan {

/// Returned by Find* kernels when no matching byte exists in range.
inline constexpr size_t kNotFound = static_cast<size_t>(-1);

enum class ScanMode : unsigned char { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The mode all kernels currently dispatch to. First call resolves it
/// (env override, then cpuid); later calls are a relaxed atomic load.
ScanMode ActiveScanMode();

/// "scalar", "sse2" or "avx2" — for bench labels and logs.
std::string_view ScanModeName(ScanMode mode);

/// Pins kernels to `mode` for testing. Returns false (and changes
/// nothing) if that tier is unavailable on this CPU/build. Not intended
/// for use while parses are in flight on other threads.
bool ForceScanMode(ScanMode mode);

/// Drops any pin and re-resolves from the environment + CPU, as if the
/// process had just started. Test hook for exercising the env override.
void ResetScanModeFromEnvironment();

/// Index of the first '<' or '&' at or after `from`, else kNotFound.
/// The character-data scan: '<' terminates the text run, '&' tells the
/// parser the run needs entity decoding.
size_t FindMarkup(std::string_view s, size_t from);

/// Index of the first `quote` (caller passes '"' or '\'') or '&' at or
/// after `from`, else kNotFound. The attribute-value scan.
size_t FindQuoteOrAmp(std::string_view s, size_t from, char quote);

/// Index of the first byte at or after `from` that ends an XML name in
/// tag context: space, tab, LF, CR, '=', '/' or '>'. Returns s.size()
/// when the name runs to the end of the buffer.
size_t ScanNameEnd(std::string_view s, size_t from);

/// Index of the first byte at or after `from` that is NOT XML whitespace
/// (space, tab, LF, CR). Returns s.size() for an all-whitespace tail.
size_t ScanWhitespaceRun(std::string_view s, size_t from);

/// Like ScanWhitespaceRun but over the wider 6-byte ASCII set (adds \f,
/// \v) that IsAllWhitespace uses; drives the node-level whitespace
/// suppression check. s.substr(from) is all-whitespace iff this returns
/// s.size().
size_t ScanAsciiSpaceRun(std::string_view s, size_t from);

/// Index of the first `c` at or after `from`, else kNotFound. Used for
/// closing quotes, end-tag '>' and substring-start probes.
size_t FindByte(std::string_view s, size_t from, char c);

/// Index of the first '>', '"' or '\'' at or after `from`, else
/// kNotFound. The start-tag extent scan (quotes open skip regions).
size_t FindGtOrQuote(std::string_view s, size_t from);

}  // namespace vitex::xml::scan

#endif  // VITEX_XML_SIMD_SCAN_H_
