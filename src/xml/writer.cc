#include "xml/writer.h"

#include <cstdio>

#include "common/string_util.h"
#include "xml/escape.h"

namespace vitex::xml {

FileSink::~FileSink() { (void)Close(); }

Status FileSink::Open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  return Status::OK();
}

Status FileSink::Write(std::string_view data) {
  if (file_ == nullptr) return Status::IoError("FileSink not open");
  size_t n = std::fwrite(data.data(), 1, data.size(),
                         static_cast<std::FILE*>(file_));
  if (n != data.size()) return Status::IoError("short write");
  bytes_written_ += n;
  return Status::OK();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed");
  return Status::OK();
}

XmlWriter::XmlWriter(OutputSink* sink) : XmlWriter(sink, Options()) {}

XmlWriter::XmlWriter(OutputSink* sink, Options options)
    : sink_(sink), options_(options) {}

Status XmlWriter::Indent() {
  if (options_.indent < 0) return Status::OK();
  std::string pad = "\n";
  pad.append(static_cast<size_t>(options_.indent) * open_.size(), ' ');
  return sink_->Write(pad);
}

Status XmlWriter::CloseStartTagIfOpen() {
  if (!start_tag_open_) return Status::OK();
  start_tag_open_ = false;
  return sink_->Write(">");
}

Status XmlWriter::StartElement(std::string_view name) {
  if (!IsValidXmlName(name)) {
    return Status::InvalidArgument("invalid element name '" +
                                   std::string(name) + "'");
  }
  if (!wrote_declaration_) {
    wrote_declaration_ = true;
    if (options_.declaration) {
      VITEX_RETURN_IF_ERROR(
          sink_->Write("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"));
      if (options_.indent >= 0) VITEX_RETURN_IF_ERROR(sink_->Write("\n"));
    }
  }
  VITEX_RETURN_IF_ERROR(CloseStartTagIfOpen());
  if (!open_.empty() && !last_was_text_) VITEX_RETURN_IF_ERROR(Indent());
  last_was_text_ = false;
  VITEX_RETURN_IF_ERROR(sink_->Write("<"));
  VITEX_RETURN_IF_ERROR(sink_->Write(name));
  open_.emplace_back(name);
  start_tag_open_ = true;
  return Status::OK();
}

Status XmlWriter::AddAttribute(std::string_view name, std::string_view value) {
  if (!start_tag_open_) {
    return Status::InvalidArgument(
        "AddAttribute outside an open start tag (element already has "
        "content)");
  }
  if (!IsValidXmlName(name)) {
    return Status::InvalidArgument("invalid attribute name '" +
                                   std::string(name) + "'");
  }
  VITEX_RETURN_IF_ERROR(sink_->Write(" "));
  VITEX_RETURN_IF_ERROR(sink_->Write(name));
  VITEX_RETURN_IF_ERROR(sink_->Write("=\""));
  VITEX_RETURN_IF_ERROR(sink_->Write(EscapeAttribute(value)));
  return sink_->Write("\"");
}

Status XmlWriter::Text(std::string_view text) {
  if (open_.empty()) {
    return Status::InvalidArgument("text outside the root element");
  }
  VITEX_RETURN_IF_ERROR(CloseStartTagIfOpen());
  last_was_text_ = true;
  return sink_->Write(EscapeText(text));
}

Status XmlWriter::Comment(std::string_view text) {
  if (Contains(text, "--")) {
    return Status::InvalidArgument("'--' not allowed inside a comment");
  }
  VITEX_RETURN_IF_ERROR(CloseStartTagIfOpen());
  VITEX_RETURN_IF_ERROR(sink_->Write("<!--"));
  VITEX_RETURN_IF_ERROR(sink_->Write(text));
  return sink_->Write("-->");
}

Status XmlWriter::EndElement() {
  if (open_.empty()) {
    return Status::InvalidArgument("EndElement with no open element");
  }
  std::string name = std::move(open_.back());
  open_.pop_back();
  if (start_tag_open_) {
    start_tag_open_ = false;
    last_was_text_ = false;
    return sink_->Write("/>");
  }
  if (!last_was_text_) VITEX_RETURN_IF_ERROR(Indent());
  last_was_text_ = false;
  VITEX_RETURN_IF_ERROR(sink_->Write("</"));
  VITEX_RETURN_IF_ERROR(sink_->Write(name));
  return sink_->Write(">");
}

Status XmlWriter::TextElement(std::string_view name, std::string_view text) {
  VITEX_RETURN_IF_ERROR(StartElement(name));
  VITEX_RETURN_IF_ERROR(Text(text));
  return EndElement();
}

Status XmlWriter::Finish() {
  if (!open_.empty()) {
    return Status::InvalidArgument("Finish with unclosed element '" +
                                   open_.back() + "'");
  }
  if (options_.indent >= 0) VITEX_RETURN_IF_ERROR(sink_->Write("\n"));
  return Status::OK();
}

}  // namespace vitex::xml
