#include "xml/pretty_printer.h"

#include "xml/sax_parser.h"

namespace vitex::xml {

namespace {
XmlWriter::Options MakeOptions(int indent) {
  XmlWriter::Options options;
  options.indent = indent;
  options.declaration = indent >= 0;
  return options;
}
}  // namespace

PrettyPrinter::PrettyPrinter(OutputSink* sink, int indent)
    : writer_(sink, MakeOptions(indent)) {}

Status PrettyPrinter::StartElement(const StartElementEvent& event) {
  VITEX_RETURN_IF_ERROR(writer_.StartElement(event.name));
  for (const Attribute& a : event.attributes) {
    VITEX_RETURN_IF_ERROR(writer_.AddAttribute(a.name, a.value));
  }
  return Status::OK();
}

Status PrettyPrinter::EndElement(std::string_view name, int depth) {
  (void)name;
  (void)depth;
  return writer_.EndElement();
}

Status PrettyPrinter::Characters(std::string_view text, int depth) {
  (void)depth;
  return writer_.Text(text);
}

Status PrettyPrinter::Comment(std::string_view text) {
  return writer_.Comment(text);
}

Status PrettyPrinter::EndDocument() { return writer_.Finish(); }

Result<std::string> PrettyPrint(std::string_view document, int indent) {
  std::string out;
  StringSink sink(&out);
  PrettyPrinter printer(&sink, indent);
  VITEX_RETURN_IF_ERROR(ParseString(document, &printer));
  return out;
}

Result<std::string> Canonicalize(std::string_view document) {
  return PrettyPrint(document, /*indent=*/-1);
}

}  // namespace vitex::xml
