// DOM-lite: an in-memory XML tree.
//
// ViteX itself never materializes a DOM — that is the whole point of the
// paper. The DOM exists here for the *non-streaming baseline* of §1 ("these
// challenges are not present in a non-streaming XML query evaluation
// algorithm since predicates can be checked immediately by randomly
// accessing XML nodes"), and as the correctness oracle for TwigM in tests.

#ifndef VITEX_XML_DOM_H_
#define VITEX_XML_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/arena.h"
#include "common/result.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace vitex::xml {

/// Node kinds in the DOM-lite tree.
enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kText,
  kAttribute,
};

/// One node. Plain data, arena-allocated, linked first-child/next-sibling so
/// the whole struct is trivially destructible.
struct DomNode {
  NodeKind kind = NodeKind::kElement;
  /// Element/attribute name (empty for text and document nodes). Interned in
  /// the owning Document's arena.
  std::string_view name;
  /// Text content (kText) or attribute value (kAttribute).
  std::string_view value;

  DomNode* parent = nullptr;
  DomNode* first_child = nullptr;
  DomNode* last_child = nullptr;
  DomNode* next_sibling = nullptr;
  /// Attributes hang off a separate chain (they are not children).
  DomNode* first_attribute = nullptr;

  /// 1-based depth of an element (document node is 0). Attributes share the
  /// owner's depth + 1, matching how TwigM levels attribute events.
  int depth = 0;
  /// Document-order sequence number (document node is 0). When the producer
  /// stamps sequences (the SAX parser always does), this IS the producer's
  /// stamp — identical to the sequence a streaming route reports for the
  /// same node, which is what lets the differential oracle compare DOM and
  /// streaming results exactly. Unstamped producers get dense 1-based
  /// numbering instead; both are strictly increasing in document order.
  uint64_t order = 0;

  bool IsElement() const { return kind == NodeKind::kElement; }
  bool IsText() const { return kind == NodeKind::kText; }
  bool IsAttribute() const { return kind == NodeKind::kAttribute; }

  /// Finds a direct attribute by name, or nullptr.
  const DomNode* FindAttribute(std::string_view attr_name) const;
};

/// An owning XML document tree.
class Document {
 public:
  Document();
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// The synthetic document node; its children are the root element and any
  /// top-level comments/PIs (which DOM-lite drops).
  const DomNode* document_node() const { return doc_; }
  DomNode* document_node() { return doc_; }

  /// The root element, or nullptr for an empty document under construction.
  const DomNode* root() const;

  size_t node_count() const { return node_count_; }
  Arena* arena() { return arena_.get(); }

  /// Allocates a node owned by this document.
  DomNode* NewNode(NodeKind kind);

  /// XPath string-value of a node: concatenated descendant text for
  /// elements/documents, the value itself for text/attribute nodes.
  static std::string StringValue(const DomNode* node);

  /// Serializes the subtree rooted at `node` as compact XML (elements and
  /// attributes in document order, text escaped). Attribute nodes serialize
  /// as their value (what `/@id` query results print as).
  static std::string Serialize(const DomNode* node);

 private:
  std::unique_ptr<Arena> arena_;
  DomNode* doc_ = nullptr;
  size_t node_count_ = 0;

  friend class DomBuilder;
};

/// A ContentHandler that materializes the event stream into a Document.
class DomBuilder : public ContentHandler {
 public:
  DomBuilder();

  Status StartElement(const StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;
  Status Characters(std::string_view text, int depth) override;
  Status Text(const TextEvent& event) override;
  Status EndDocument() override;

  /// Takes the finished document; valid only after a successful parse.
  Document Take();

 private:
  Document doc_;
  DomNode* current_ = nullptr;
  uint64_t next_order_ = 1;
  bool done_ = false;

  void Append(DomNode* parent, DomNode* child);
  Status AppendText(std::string_view text, uint64_t sequence);
};

/// Parses an in-memory document into a DOM.
Result<Document> ParseIntoDom(std::string_view xml,
                              SaxParserOptions options = SaxParserOptions());

/// Parses a file into a DOM.
Result<Document> ParseFileIntoDom(
    const std::string& path, SaxParserOptions options = SaxParserOptions());

}  // namespace vitex::xml

#endif  // VITEX_XML_DOM_H_
