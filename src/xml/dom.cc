#include "xml/dom.h"

#include "xml/escape.h"

namespace vitex::xml {

const DomNode* DomNode::FindAttribute(std::string_view attr_name) const {
  for (const DomNode* a = first_attribute; a != nullptr; a = a->next_sibling) {
    if (a->name == attr_name) return a;
  }
  return nullptr;
}

Document::Document() : arena_(std::make_unique<Arena>()) {
  doc_ = NewNode(NodeKind::kDocument);
}

DomNode* Document::NewNode(NodeKind kind) {
  DomNode* n = arena_->Create<DomNode>();
  n->kind = kind;
  ++node_count_;
  return n;
}

const DomNode* Document::root() const {
  for (const DomNode* c = doc_->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->IsElement()) return c;
  }
  return nullptr;
}

namespace {
void CollectText(const DomNode* node, std::string* out) {
  for (const DomNode* c = node->first_child; c != nullptr;
       c = c->next_sibling) {
    if (c->IsText()) {
      out->append(c->value);
    } else if (c->IsElement()) {
      CollectText(c, out);
    }
  }
}
}  // namespace

std::string Document::StringValue(const DomNode* node) {
  if (node->IsText() || node->IsAttribute()) return std::string(node->value);
  std::string out;
  CollectText(node, &out);
  return out;
}

namespace {
void SerializeRec(const DomNode* node, std::string* out) {
  switch (node->kind) {
    case NodeKind::kText:
      out->append(EscapeText(node->value));
      return;
    case NodeKind::kAttribute:
      out->append(node->value);
      return;
    case NodeKind::kDocument:
      for (const DomNode* c = node->first_child; c != nullptr;
           c = c->next_sibling) {
        SerializeRec(c, out);
      }
      return;
    case NodeKind::kElement:
      break;
  }
  out->push_back('<');
  out->append(node->name);
  for (const DomNode* a = node->first_attribute; a != nullptr;
       a = a->next_sibling) {
    out->push_back(' ');
    out->append(a->name);
    out->append("=\"");
    out->append(EscapeAttribute(a->value));
    out->push_back('"');
  }
  if (node->first_child == nullptr) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (const DomNode* c = node->first_child; c != nullptr;
       c = c->next_sibling) {
    SerializeRec(c, out);
  }
  out->append("</");
  out->append(node->name);
  out->push_back('>');
}
}  // namespace

std::string Document::Serialize(const DomNode* node) {
  std::string out;
  SerializeRec(node, &out);
  return out;
}

DomBuilder::DomBuilder() { current_ = doc_.document_node(); }

void DomBuilder::Append(DomNode* parent, DomNode* child) {
  child->parent = parent;
  if (parent->last_child == nullptr) {
    parent->first_child = child;
    parent->last_child = child;
  } else {
    parent->last_child->next_sibling = child;
    parent->last_child = child;
  }
}

Status DomBuilder::StartElement(const StartElementEvent& event) {
  DomNode* el = doc_.NewNode(NodeKind::kElement);
  el->name = doc_.arena()->CopyString(event.name);
  el->depth = event.depth;
  // Adopt the producer's document-order stamp when present (the SAX parser
  // always stamps): DOM node orders then equal the sequence numbers every
  // streaming route reports, which is what makes cross-route result
  // comparison in the differential oracle exact. Unstamped producers fall
  // back to dense local numbering.
  bool stamped = event.sequence != kNoSequence;
  el->order = stamped ? event.sequence : next_order_++;
  Append(current_, el);
  DomNode* attr_tail = nullptr;
  uint64_t attr_index = 0;
  for (const Attribute& a : event.attributes) {
    DomNode* an = doc_.NewNode(NodeKind::kAttribute);
    an->name = doc_.arena()->CopyString(a.name);
    an->value = doc_.arena()->CopyString(a.value);
    an->parent = el;
    an->depth = event.depth + 1;
    an->order = stamped ? event.sequence + 1 + attr_index : next_order_++;
    ++attr_index;
    if (attr_tail == nullptr) {
      el->first_attribute = an;
    } else {
      attr_tail->next_sibling = an;
    }
    attr_tail = an;
  }
  current_ = el;
  return Status::OK();
}

Status DomBuilder::EndElement(std::string_view name, int depth) {
  (void)name;
  (void)depth;
  if (current_->parent == nullptr) {
    return Status::Internal("DomBuilder: unbalanced end element");
  }
  current_ = current_->parent;
  return Status::OK();
}

Status DomBuilder::Characters(std::string_view text, int depth) {
  (void)depth;
  return AppendText(text, kNoSequence);
}

Status DomBuilder::Text(const TextEvent& event) {
  return AppendText(event.text, event.sequence);
}

Status DomBuilder::AppendText(std::string_view text, uint64_t sequence) {
  // Coalesce adjacent text nodes so chunk boundaries are invisible in the
  // tree. Arena strings are immutable, so adjacent runs concatenate into a
  // fresh arena copy only when needed. Pieces of one node share the first
  // piece's stamp, so coalescing keeps it.
  if (current_->last_child != nullptr && current_->last_child->IsText()) {
    DomNode* prev = current_->last_child;
    std::string merged;
    merged.reserve(prev->value.size() + text.size());
    merged.append(prev->value);
    merged.append(text);
    prev->value = doc_.arena()->CopyString(merged);
    return Status::OK();
  }
  DomNode* tn = doc_.NewNode(NodeKind::kText);
  tn->value = doc_.arena()->CopyString(text);
  tn->depth = current_->depth + 1;
  tn->order = sequence != kNoSequence ? sequence : next_order_++;
  Append(current_, tn);
  return Status::OK();
}

Status DomBuilder::EndDocument() {
  done_ = true;
  return Status::OK();
}

Document DomBuilder::Take() { return std::move(doc_); }

Result<Document> ParseIntoDom(std::string_view xml, SaxParserOptions options) {
  DomBuilder builder;
  VITEX_RETURN_IF_ERROR(ParseString(xml, &builder, options));
  return builder.Take();
}

Result<Document> ParseFileIntoDom(const std::string& path,
                                  SaxParserOptions options) {
  DomBuilder builder;
  VITEX_RETURN_IF_ERROR(ParseFile(path, &builder, options));
  return builder.Take();
}

}  // namespace vitex::xml
