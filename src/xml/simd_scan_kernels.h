// Internal: the kernel vtable shared between simd_scan.cc (scalar + SSE2
// tiers, dispatch) and simd_scan_avx2.cc (the one TU compiled with
// -mavx2). Not part of the public API — include xml/simd_scan.h instead.

#ifndef VITEX_XML_SIMD_SCAN_KERNELS_H_
#define VITEX_XML_SIMD_SCAN_KERNELS_H_

#include <cstddef>

#include "xml/simd_scan.h"

namespace vitex::xml::scan {

/// One implementation tier. All function pointers obey the contracts in
/// simd_scan.h and are never null in a registered table.
struct ScanKernels {
  ScanMode mode;
  size_t (*find_markup)(const char* data, size_t size, size_t from);
  size_t (*find_quote_or_amp)(const char* data, size_t size, size_t from,
                              char quote);
  size_t (*scan_name_end)(const char* data, size_t size, size_t from);
  size_t (*scan_whitespace_run)(const char* data, size_t size, size_t from);
  size_t (*scan_ascii_space_run)(const char* data, size_t size, size_t from);
  size_t (*find_byte)(const char* data, size_t size, size_t from, char c);
  size_t (*find_gt_or_quote)(const char* data, size_t size, size_t from);
};

/// The AVX2 tier, or nullptr when this build carries no AVX2 code (non-x86
/// target, or a compiler without -mavx2). Defined in simd_scan_avx2.cc;
/// callers must still check cpuid before dispatching to it.
const ScanKernels* Avx2Kernels();

/// The scalar reference kernels (defined in simd_scan.cc). These are THE
/// semantics: every vector tier finishes its sub-window tail by calling
/// into them, so the byte-set definitions live in exactly one place.
namespace scalar_ref {
size_t FindMarkup(const char* data, size_t size, size_t from);
size_t FindQuoteOrAmp(const char* data, size_t size, size_t from, char quote);
size_t ScanNameEnd(const char* data, size_t size, size_t from);
size_t ScanWhitespaceRun(const char* data, size_t size, size_t from);
size_t ScanAsciiSpaceRun(const char* data, size_t size, size_t from);
size_t FindByte(const char* data, size_t size, size_t from, char c);
size_t FindGtOrQuote(const char* data, size_t size, size_t from);
}  // namespace scalar_ref

}  // namespace vitex::xml::scan

#endif  // VITEX_XML_SIMD_SCAN_KERNELS_H_
