#include "xml/sax_parser.h"

#include <cstdio>
#include <memory>

#include "common/string_util.h"
#include "xml/escape.h"
#include "xml/simd_scan.h"

namespace vitex::xml {

namespace {

bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// IsAllWhitespace over the scan kernels (same 6-byte ASCII set).
bool AllWhitespace(std::string_view s) {
  return scan::ScanAsciiSpaceRun(s, 0) == s.size();
}

// std::string_view::find(needle, from) built on the FindByte kernel: probe
// for the first byte, verify the rest. Chunk-seam behaviour matches find()
// exactly — a partial match at the end of the buffer reports npos, and
// Pump waits for more bytes.
size_t FindSeq(std::string_view s, size_t from, std::string_view needle) {
  size_t i = from;
  while (true) {
    i = scan::FindByte(s, i, needle[0]);
    if (i == scan::kNotFound || i + needle.size() > s.size()) {
      return std::string_view::npos;
    }
    if (std::string_view(s.data() + i, needle.size()) == needle) return i;
    ++i;
  }
}

// Finds the '>' closing a start tag, skipping over quoted attribute values.
// Returns npos if the tag is not complete in `s`.
size_t FindTagEnd(std::string_view s, size_t from) {
  size_t i = from;
  while (true) {
    size_t p = scan::FindGtOrQuote(s, i);
    if (p == scan::kNotFound) return std::string_view::npos;
    if (s[p] == '>') return p;
    // Quote: skip to its closing mate, then resume the tag scan.
    size_t close = scan::FindByte(s, p + 1, s[p]);
    if (close == scan::kNotFound) return std::string_view::npos;
    i = close + 1;
  }
}

// Finds the '>' closing a DOCTYPE, which may contain an internal subset in
// square brackets (possibly with quoted strings inside).
size_t FindDoctypeEnd(std::string_view s, size_t from) {
  char quote = 0;
  int bracket = 0;
  for (size_t i = from; i < s.size(); ++i) {
    char c = s[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
    } else if (c == '"' || c == '\'') {
      quote = c;
    } else if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      --bracket;
    } else if (c == '>' && bracket <= 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

}  // namespace

SaxParser::SaxParser(ContentHandler* handler, SaxParserOptions options)
    : handler_(handler), options_(options) {}

void SaxParser::Reset() {
  stats_ = SaxParserStats();
  buf_.clear();
  pos_ = 0;
  consumed_total_ = 0;
  open_elements_.clear();
  pending_leading_ws_.clear();
  sequence_counter_ = 0;
  text_node_open_ = false;
  text_node_sequence_ = 0;
  started_document_ = false;
  seen_root_ = false;
  finished_ = false;
  failed_ = false;
}

Status SaxParser::ErrorAt(uint64_t offset, std::string msg) const {
  char ctx[64];
  std::snprintf(ctx, sizeof(ctx), " (at byte %llu)",
                static_cast<unsigned long long>(offset));
  return Status::ParseError(msg + ctx);
}

Status SaxParser::CheckName(std::string_view name, const char* what) const {
  if (name.empty()) {
    return Status::ParseError(std::string("empty ") + what + " name");
  }
  if (options_.validate_names && !IsValidXmlName(name)) {
    return Status::ParseError(std::string("invalid ") + what + " name '" +
                              std::string(name) + "'");
  }
  return Status::OK();
}

Status SaxParser::Feed(std::string_view chunk) {
  if (failed_) return Status::Internal("parser poisoned by earlier error");
  if (finished_) return Status::InvalidArgument("Feed() after Finish()");
  if (!started_document_) {
    started_document_ = true;
    Status s = handler_->StartDocument();
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  buf_.append(chunk.data(), chunk.size());
  stats_.bytes_consumed += chunk.size();
  Status s = Pump(/*at_eof=*/false);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  // Compact: drop the consumed prefix so memory stays O(one token).
  if (pos_ > 0) {
    consumed_total_ += pos_;
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::OK();
}

Status SaxParser::Finish() {
  if (failed_) return Status::Internal("parser poisoned by earlier error");
  if (finished_) return Status::OK();
  if (!started_document_) {
    started_document_ = true;
    Status s = handler_->StartDocument();
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  Status s = Pump(/*at_eof=*/true);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  if (pos_ < buf_.size()) {
    failed_ = true;
    return ErrorAt(consumed_total_ + pos_, "unexpected end of document");
  }
  if (!open_elements_.empty()) {
    failed_ = true;
    return ErrorAt(consumed_total_ + pos_,
                   "document ended with unclosed element '" +
                       open_elements_.back() + "'");
  }
  if (!seen_root_) {
    failed_ = true;
    return Status::ParseError("document has no root element");
  }
  finished_ = true;
  return handler_->EndDocument();
}

Status SaxParser::Pump(bool at_eof) {
  while (pos_ < buf_.size()) {
    std::string_view rest(buf_.data() + pos_, buf_.size() - pos_);
    if (rest[0] != '<') {
      // Character data up to the next '<' (or end of buffer). One
      // FindMarkup pass locates the terminator AND detects entities: the
      // kernel stops at the first '<' or '&', so a '&' hit means the run
      // needs decoding and the '<' (if any) lies further on.
      bool has_amp = false;
      size_t lt = scan::FindMarkup(rest, 0);
      if (lt != scan::kNotFound && rest[lt] == '&') {
        has_amp = true;
        lt = scan::FindByte(rest, lt + 1, '<');
      }
      std::string_view text =
          lt == scan::kNotFound ? rest : rest.substr(0, lt);
      if (lt == scan::kNotFound && !at_eof) {
        // The text node is not complete yet. Hold it so that entity
        // decoding sees whole runs regardless of chunk boundaries — unless
        // the run is pathologically long, in which case emit a prefix to
        // keep memory O(one token). (Whitespace suppression is immune to
        // the early emit: leading whitespace is staged node-level in
        // HandleText, so a whitespace-only node is suppressed identically
        // however the stream is chunked.)
        if (text.size() < kTextHoldBytes) return Status::OK();
        // Hold back a possible incomplete trailing entity.
        size_t amp = has_amp ? text.rfind('&') : std::string_view::npos;
        if (amp != std::string_view::npos &&
            scan::FindByte(text, amp, ';') == scan::kNotFound) {
          text = text.substr(0, amp);
        }
        if (text.empty()) return Status::OK();
        bool piece_amp =
            has_amp && scan::FindByte(text, 0, '&') != scan::kNotFound;
        VITEX_RETURN_IF_ERROR(HandleText(text, piece_amp));
        pos_ += text.size();
        continue;
      }
      VITEX_RETURN_IF_ERROR(HandleText(text, has_amp));
      pos_ += text.size();
      continue;
    }
    // Markup. Classify by the bytes after '<'.
    if (rest.size() < 2) {
      if (at_eof) return ErrorAt(consumed_total_ + pos_, "truncated markup");
      return Status::OK();
    }
    if (rest[1] == '/') {
      size_t gt = scan::FindByte(rest, 0, '>');
      if (gt == scan::kNotFound) {
        if (at_eof) return ErrorAt(consumed_total_ + pos_, "truncated end tag");
        return Status::OK();
      }
      VITEX_RETURN_IF_ERROR(HandleEndTag(rest.substr(2, gt - 2)));
      pos_ += gt + 1;
      continue;
    }
    if (rest[1] == '?') {
      size_t end = FindSeq(rest, 0, "?>");
      if (end == std::string_view::npos) {
        if (at_eof) {
          return ErrorAt(consumed_total_ + pos_,
                         "truncated processing instruction");
        }
        return Status::OK();
      }
      VITEX_RETURN_IF_ERROR(HandlePi(rest.substr(2, end - 2)));
      pos_ += end + 2;
      continue;
    }
    if (rest[1] == '!') {
      if (StartsWith(rest, "<!--")) {
        size_t end = FindSeq(rest, 4, "-->");
        if (end == std::string_view::npos) {
          if (at_eof) {
            return ErrorAt(consumed_total_ + pos_, "truncated comment");
          }
          return Status::OK();
        }
        VITEX_RETURN_IF_ERROR(HandleComment(rest.substr(4, end - 4)));
        pos_ += end + 3;
        continue;
      }
      if (StartsWith(rest, "<![CDATA[")) {
        size_t end = FindSeq(rest, 0, "]]>");
        if (end == std::string_view::npos) {
          if (at_eof) {
            return ErrorAt(consumed_total_ + pos_, "truncated CDATA section");
          }
          return Status::OK();
        }
        VITEX_RETURN_IF_ERROR(HandleCData(rest.substr(9, end - 9)));
        pos_ += end + 3;
        continue;
      }
      if (StartsWith(rest, "<!DOCTYPE")) {
        size_t end = FindDoctypeEnd(rest, 9);
        if (end == std::string_view::npos) {
          if (at_eof) {
            return ErrorAt(consumed_total_ + pos_, "truncated DOCTYPE");
          }
          return Status::OK();
        }
        if (seen_root_ || !open_elements_.empty()) {
          return ErrorAt(consumed_total_ + pos_,
                         "DOCTYPE after root element start");
        }
        pos_ += end + 1;  // DOCTYPE is skipped (DTD content not modelled)
        continue;
      }
      // A prefix of one of the above constructs may be split across chunks:
      // wait for more bytes before declaring the markup unrecognizable.
      if (!at_eof && rest.size() < 9 &&
          (StartsWith(std::string_view("<!--"), rest) ||
           StartsWith(std::string_view("<![CDATA["), rest) ||
           StartsWith(std::string_view("<!DOCTYPE"), rest))) {
        return Status::OK();
      }
      return ErrorAt(consumed_total_ + pos_,
                     "unrecognized markup beginning '<!'");
    }
    // Start tag (or empty-element tag).
    size_t gt = FindTagEnd(rest, 1);
    if (gt == std::string_view::npos) {
      if (at_eof) return ErrorAt(consumed_total_ + pos_, "truncated start tag");
      return Status::OK();
    }
    uint64_t offset = consumed_total_ + pos_;
    VITEX_RETURN_IF_ERROR(HandleStartTag(rest.substr(1, gt - 1), offset));
    pos_ += gt + 1;
  }
  return Status::OK();
}

Symbol SaxParser::ResolveSymbol(std::string_view name) const {
  Symbol sym = options_.symbols->Lookup(name);
  return sym == kNoSymbol ? kAbsentSymbol : sym;
}

Status SaxParser::HandleText(std::string_view raw, bool has_amp) {
  if (raw.empty()) return Status::OK();
  if (open_elements_.empty()) {
    if (!AllWhitespace(raw)) {
      return ErrorAt(consumed_total_ + pos_,
                     "character data outside the root element");
    }
    return Status::OK();
  }
  // Whitespace suppression is a *node*-level rule: a text node is skipped
  // iff the whole coalesced node is whitespace. Leading whitespace pieces
  // are therefore staged until the node either shows real content (flush)
  // or ends at a tag (drop). Deciding piece by piece — the old behaviour —
  // disagreed with whole-document parsing whenever a chunk boundary, CDATA
  // seam or comment split a node around its whitespace. The check is on the
  // RAW bytes: a character reference like &#32; is explicit content, not
  // formatting whitespace, even when it decodes to a space.
  if (options_.skip_whitespace_text && !text_node_open_ &&
      AllWhitespace(raw)) {
    if (pending_leading_ws_.size() + raw.size() <= kTextHoldBytes) {
      pending_leading_ws_.append(raw);
      return Status::OK();
    }
    // A whitespace run beyond the hold budget is delivered as content —
    // in BOTH parse modes, since the decision depends only on cumulative
    // size — keeping parser memory O(kTextHoldBytes) on adversarial
    // all-whitespace streams. (DeliverText releases the staged prefix
    // first, so nothing is reordered or lost.)
  }
  std::string_view text = raw;
  if (has_amp) {
    Result<std::string> decoded = DecodeEntities(raw);
    if (!decoded.ok()) {
      return decoded.status().WithContext("in character data");
    }
    text_scratch_ = std::move(decoded).value();
    text = text_scratch_;
  }
  return DeliverText(text);
}

Status SaxParser::DeliverText(std::string_view text) {
  // All pieces delivered between two tags belong to one coalesced text node
  // and share one sequence number, assigned when the node begins. Comments
  // and PIs do not break a node (consumers coalesce across them).
  if (!text_node_open_) {
    text_node_open_ = true;
    text_node_sequence_ = sequence_counter_++;
  }
  if (!pending_leading_ws_.empty()) {
    // The node turned out to have real content: release its staged leading
    // whitespace first, in order.
    std::string staged = std::move(pending_leading_ws_);
    pending_leading_ws_.clear();
    ++stats_.text_events;
    VITEX_RETURN_IF_ERROR(
        handler_->Text(TextEvent{staged, depth(), text_node_sequence_}));
  }
  ++stats_.text_events;
  return handler_->Text(TextEvent{text, depth(), text_node_sequence_});
}

Status SaxParser::HandleCData(std::string_view content) {
  if (open_elements_.empty()) {
    return Status::ParseError("CDATA section outside the root element");
  }
  if (content.empty()) return Status::OK();
  // CDATA is explicitly marked character data — never subject to the
  // formatting-whitespace suppression heuristic, and it makes the whole
  // coalesced node "real" (so staged leading whitespace is released).
  return DeliverText(content);
}

Status SaxParser::HandleStartTag(std::string_view body, uint64_t offset) {
  // body is the text between '<' and '>', e.g. `a x="1" /`.
  bool self_closing = false;
  if (!body.empty() && body.back() == '/') {
    self_closing = true;
    body.remove_suffix(1);
  }
  // Element name. ScanNameEnd stops at {ws, '=', '/', '>'}; the element
  // name historically ends only at whitespace or '/' ('>' cannot occur
  // unquoted inside `body`), so resume past the extra terminators to keep
  // scalar semantics exact even for malformed names.
  size_t i = 0;
  while (true) {
    i = scan::ScanNameEnd(body, i);
    if (i < body.size() && (body[i] == '=' || body[i] == '>')) {
      ++i;
      continue;
    }
    break;
  }
  std::string_view name = body.substr(0, i);
  VITEX_RETURN_IF_ERROR(CheckName(name, "element"));

  if (seen_root_ && open_elements_.empty()) {
    return ErrorAt(offset, "multiple root elements (second root '" +
                               std::string(name) + "')");
  }
  if (options_.max_depth != 0 && open_elements_.size() >= options_.max_depth) {
    return Status::ResourceExhausted("element nesting exceeds max_depth");
  }

  // Attributes.
  StartElementEvent& event = event_scratch_;
  event.name = name;
  event.byte_offset = offset;
  event.symbol = kNoSymbol;
  event.attributes.clear();
  attr_scratch_.clear();
  // First pass: parse raw name/value pairs, decoding values into
  // attr_scratch_ when they contain entities.
  std::vector<RawAttr>& raw_attrs = raw_attr_scratch_;
  raw_attrs.clear();
  while (i < body.size()) {
    i = scan::ScanWhitespaceRun(body, i);
    if (i >= body.size()) break;
    size_t name_begin = i;
    // Attribute names end at '=' or whitespace; resume past ScanNameEnd's
    // extra '/' and '>' terminators (see the element-name scan above).
    while (true) {
      i = scan::ScanNameEnd(body, i);
      if (i < body.size() && (body[i] == '/' || body[i] == '>')) {
        ++i;
        continue;
      }
      break;
    }
    std::string_view attr_name = body.substr(name_begin, i - name_begin);
    VITEX_RETURN_IF_ERROR(CheckName(attr_name, "attribute"));
    i = scan::ScanWhitespaceRun(body, i);
    if (i >= body.size() || body[i] != '=') {
      return ErrorAt(offset, "attribute '" + std::string(attr_name) +
                                 "' has no value");
    }
    ++i;  // '='
    i = scan::ScanWhitespaceRun(body, i);
    if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
      return ErrorAt(offset, "attribute value for '" + std::string(attr_name) +
                                 "' is not quoted");
    }
    char quote = body[i];
    ++i;
    size_t value_begin = i;
    // One pass finds the closing quote and detects entities: a '&' hit
    // means the value needs decoding and the quote lies further on.
    bool value_has_amp = false;
    size_t close = scan::FindQuoteOrAmp(body, i, quote);
    if (close != scan::kNotFound && body[close] == '&') {
      value_has_amp = true;
      close = scan::FindByte(body, close + 1, quote);
    }
    if (close == scan::kNotFound) {
      return ErrorAt(offset, "unterminated attribute value for '" +
                                 std::string(attr_name) + "'");
    }
    std::string_view value = body.substr(value_begin, close - value_begin);
    i = close + 1;  // past the closing quote
    if (scan::FindByte(value, 0, '<') != scan::kNotFound) {
      return ErrorAt(offset, "'<' in attribute value");
    }
    int decoded_index = -1;
    if (value_has_amp) {
      Result<std::string> decoded = DecodeEntities(value);
      if (!decoded.ok()) {
        return decoded.status().WithContext("in attribute '" +
                                            std::string(attr_name) + "'");
      }
      decoded_index = static_cast<int>(attr_scratch_.size());
      attr_scratch_.push_back(std::move(decoded).value());
    }
    raw_attrs.push_back(RawAttr{attr_name, value, decoded_index});
  }
  if (options_.reject_duplicate_attributes) {
    for (size_t a = 0; a < raw_attrs.size(); ++a) {
      for (size_t b = a + 1; b < raw_attrs.size(); ++b) {
        if (raw_attrs[a].name == raw_attrs[b].name) {
          return ErrorAt(offset, "duplicate attribute '" +
                                     std::string(raw_attrs[a].name) + "'");
        }
      }
    }
  }
  event.attributes.reserve(raw_attrs.size());
  for (const RawAttr& ra : raw_attrs) {
    event.attributes.push_back(Attribute{
        ra.name,
        ra.decoded_index >= 0 ? std::string_view(attr_scratch_[ra.decoded_index])
                              : ra.value,
        options_.symbols != nullptr ? ResolveSymbol(ra.name) : kNoSymbol});
  }
  if (options_.symbols != nullptr) {
    // Lookup, not Intern: a name absent from the table at query-build time
    // cannot match any query symbol, and minting ids for document-only
    // vocabulary would grow the shared table without bound on long-lived
    // pub/sub streams. Misses stamp kAbsentSymbol so consumers don't repeat
    // the hash.
    event.symbol = ResolveSymbol(name);
  }
  // A tag ends any open text node; staged leading whitespace that never met
  // real content belongs to a whitespace-only node and is dropped here.
  pending_leading_ws_.clear();
  text_node_open_ = false;
  event.sequence = sequence_counter_;
  sequence_counter_ += 1 + event.attributes.size();

  open_elements_.emplace_back(name);
  seen_root_ = true;
  event.depth = depth();
  if (event.depth > stats_.max_depth) stats_.max_depth = event.depth;
  ++stats_.start_elements;
  stats_.attributes += event.attributes.size();
  VITEX_RETURN_IF_ERROR(handler_->StartElement(event));

  if (self_closing) {
    int d = depth();
    std::string owned = std::move(open_elements_.back());
    open_elements_.pop_back();
    VITEX_RETURN_IF_ERROR(handler_->EndElement(owned, d));
  }
  return Status::OK();
}

Status SaxParser::HandleEndTag(std::string_view body) {
  // body is the text between '</' and '>', e.g. `a ` (trailing space legal).
  std::string_view name = TrimWhitespace(body);
  VITEX_RETURN_IF_ERROR(CheckName(name, "element"));
  if (open_elements_.empty()) {
    return Status::ParseError("end tag '</" + std::string(name) +
                              ">' with no open element");
  }
  if (open_elements_.back() != name) {
    return Status::ParseError("mismatched end tag: expected '</" +
                              open_elements_.back() + ">' but found '</" +
                              std::string(name) + ">'");
  }
  pending_leading_ws_.clear();
  text_node_open_ = false;
  int d = depth();
  std::string owned = std::move(open_elements_.back());
  open_elements_.pop_back();
  return handler_->EndElement(owned, d);
}

Status SaxParser::HandlePi(std::string_view body) {
  // body is between '<?' and '?>'. The XML declaration is delivered as a PI
  // with target "xml"; consumers typically ignore it.
  size_t i = 0;
  while (i < body.size() && !IsXmlSpace(body[i])) ++i;
  std::string_view target = body.substr(0, i);
  VITEX_RETURN_IF_ERROR(CheckName(target, "processing-instruction target"));
  while (i < body.size() && IsXmlSpace(body[i])) ++i;
  ++stats_.processing_instructions;
  return handler_->ProcessingInstruction(target, body.substr(i));
}

Status SaxParser::HandleComment(std::string_view body) {
  if (body.find("--") != std::string_view::npos) {
    return Status::ParseError("'--' inside comment");
  }
  ++stats_.comments;
  return handler_->Comment(body);
}

Status ParseString(std::string_view document, ContentHandler* handler,
                   SaxParserOptions options) {
  SaxParser parser(handler, options);
  VITEX_RETURN_IF_ERROR(parser.Feed(document));
  return parser.Finish();
}

Status ParseFile(const std::string& path, ContentHandler* handler,
                 SaxParserOptions options, size_t chunk_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  SaxParser parser(handler, options);
  std::unique_ptr<char[]> buf(new char[chunk_bytes]);
  Status status;
  while (true) {
    size_t n = std::fread(buf.get(), 1, chunk_bytes, f);
    if (n > 0) {
      status = parser.Feed(std::string_view(buf.get(), n));
      if (!status.ok()) break;
    }
    if (n < chunk_bytes) {
      if (std::ferror(f) != 0) {
        status = Status::IoError("read error on '" + path + "'");
      } else {
        status = parser.Finish();
      }
      break;
    }
  }
  std::fclose(f);
  return status;
}

}  // namespace vitex::xml
