#include "xml/stream_stats.h"

#include <algorithm>

#include "common/string_util.h"

namespace vitex::xml {

std::vector<std::pair<std::string, uint64_t>> StreamStatsHandler::TopTags(
    size_t limit) const {
  std::vector<std::pair<std::string, uint64_t>> out(tag_counts_.begin(),
                                                    tag_counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::string StreamStatsHandler::Report() const {
  std::string out;
  out += "elements:      " + WithThousandsSeparators(elements_) + "\n";
  out += "attributes:    " + WithThousandsSeparators(attributes_) + "\n";
  out += "text nodes:    " + WithThousandsSeparators(text_nodes_) + " (" +
         HumanBytes(text_bytes_) + ")\n";
  out += "max depth:     " + std::to_string(max_depth_) + "\n";
  out += "distinct tags: " + std::to_string(tag_counts_.size()) + "\n";
  out += "top tags:\n";
  for (const auto& [tag, count] : TopTags(8)) {
    out += "  " + tag + ": " + WithThousandsSeparators(count) + "\n";
  }
  return out;
}

}  // namespace vitex::xml
