// The push-capable delivery surface of the pub/sub runtime (DESIGN.md
// §13): how a standing subscription's solutions leave the service without
// the consumer polling.
//
// Two delivery modes, one Subscribe call:
//
//   * kPull — the service buffers deliveries in an internal thread-safe
//     queue; the consumer collects them with Drain(id) at its own pace.
//     This is the original (and default) mode; nothing about it changed.
//   * kPush — the service hands each delivery to a caller-provided
//     MatchSink as soon as the owning shard emits it. Nothing is buffered
//     service-side and nobody polls: with 100k subscriptions on the other
//     side of a socket, the server would otherwise spend its life draining
//     99.9% empty queues.
//
// The push contract is deliberately narrow, because OnMatch runs on a
// shard thread in the middle of the match hot path:
//
//   * OnMatch must be fast and must NEVER block (no socket writes, no
//     waits on queues or locks held across blocking work). A sink that
//     blocks stalls its whole shard — every subscription on it.
//   * Boundedness is the sink's job, refusal is its mechanism: a sink with
//     no room returns false from OnMatch, the service counts the delivery
//     as overflowed (ServiceStats::results_overflowed, /statsz) and calls
//     OnOverflow exactly once for that refused delivery, on the same
//     thread. The delivery is then DROPPED — the service does not retry.
//     What to do about the episode (drop and count, or schedule a
//     disconnect of the slow consumer) is the sink's policy decision,
//     made inside OnOverflow; src/net/server.cc is the canonical
//     implementor of both policies.
//   * Calls for one subscription are serialized (a subscription lives on
//     exactly one shard) and arrive in that shard's delivery order.
//     Different subscriptions sharing one sink may call concurrently from
//     different shard threads; the sink synchronizes its own state.
//   * The service holds a shared_ptr to the sink until the subscription's
//     unsubscribe (or service stop) has been applied by the owning shard,
//     so a sink is never destroyed under a running machine. After
//     Unsubscribe(id) returns, no further OnMatch for that id will START,
//     but a call already in flight may still complete.

#ifndef VITEX_SERVICE_MATCH_SINK_H_
#define VITEX_SERVICE_MATCH_SINK_H_

#include <cstdint>
#include <memory>
#include <string>

namespace vitex::service {

/// Identifier of one standing subscription. Never reused.
using SubscriptionId = uint64_t;

/// One query solution, as delivered to the subscriber.
struct Delivery {
  std::string fragment;
  /// Document-order sequence number within its document (see
  /// twigm::ResultHandler::OnResult).
  uint64_t sequence = 0;
};

/// Consumer-side receiver for push-mode subscriptions. See the header
/// comment for the full threading and overflow contract.
class MatchSink {
 public:
  virtual ~MatchSink() = default;

  /// One solution for subscription `id`. Runs on the owning shard's
  /// thread; must be fast and must not block. Return false to refuse the
  /// delivery (no room): the service drops it, counts it overflowed, and
  /// calls OnOverflow.
  virtual bool OnMatch(SubscriptionId id, const Delivery& delivery) = 0;

  /// A delivery for `id` was just refused by OnMatch and dropped.
  /// `dropped_total` is the running count of drops for this subscription.
  /// Same thread as the refusing OnMatch call; same blocking rules.
  virtual void OnOverflow(SubscriptionId id, uint64_t dropped_total) = 0;
};

enum class DeliveryMode : uint8_t {
  kPull = 0,  ///< buffer internally; consumer calls Drain(id)
  kPush = 1,  ///< deliver into a MatchSink; Drain(id) is an error
};

/// Per-subscription delivery configuration for
/// StreamService::Subscribe(xpath, SinkOptions).
struct SinkOptions {
  DeliveryMode mode = DeliveryMode::kPull;
  /// Required (non-null) when mode == kPush; must be null for kPull. The
  /// service shares ownership until the unsubscribe is fully applied.
  std::shared_ptr<MatchSink> sink;
};

}  // namespace vitex::service

#endif  // VITEX_SERVICE_MATCH_SINK_H_
