// A bounded multi-producer / multi-consumer blocking queue: the backpressure
// primitive of the pub/sub runtime (DESIGN.md §5).
//
// Push blocks while the queue is full, so a fast publisher is throttled to
// the speed of the slowest consumer instead of buffering unboundedly —
// exactly the behaviour a streaming service needs when "heavy traffic"
// outruns a shard. Close() releases everyone: pending items still drain
// (Pop keeps returning them), further Push calls fail, and Pop returns
// nullopt once the queue is empty.
//
// The drain guarantee — tested behaviour, not aspiration (see
// tests/service/bounded_queue_test.cc):
//   * a Push that returned true has its item delivered by exactly one Pop,
//     even when Push races Close() on a full queue (no loss, no dupes);
//   * a Push that returned false enqueued nothing;
//   * consumers blocked in Pop wake on Close() only after the queue is
//     empty, so shutdown never discards accepted work.

#ifndef VITEX_SERVICE_BOUNDED_QUEUE_H_
#define VITEX_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace vitex::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (backpressure), then enqueues. Returns
  /// false — without enqueueing — if the queue is (or becomes) closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available and dequeues it. Returns nullopt
  /// only when the queue is closed *and* fully drained, so no enqueued
  /// item is ever lost to a shutdown race.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: wakes every waiter, fails future Push calls, lets
  /// Pop drain what remains. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Items currently queued (a snapshot; for stats/monitoring).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace vitex::service

#endif  // VITEX_SERVICE_BOUNDED_QUEUE_H_
