// Bounded blocking queues: the backpressure primitives of the pub/sub
// runtime (DESIGN.md §5, §9).
//
// BoundedQueue is a multi-producer / multi-consumer FIFO. Push blocks while
// the queue is full, so a fast publisher is throttled to the speed of the
// slowest consumer instead of buffering unboundedly — exactly the behaviour
// a streaming service needs when "heavy traffic" outruns a shard. Close()
// releases everyone: pending items still drain (Pop keeps returning them),
// further Push calls fail, and Pop returns nullopt once the queue is empty.
//
// The drain guarantee — tested behaviour, not aspiration (see
// tests/service/bounded_queue_test.cc, including the multi-producer
// stress):
//   * a Push that returned true has its item delivered by exactly one Pop,
//     even when Push races Close() on a full queue (no loss, no dupes);
//   * a Push that returned false enqueued nothing;
//   * consumers blocked in Pop wake on Close() only after the queue is
//     empty, so shutdown never discards accepted work.
//
// Producer fairness: concurrent Push calls are admitted in arrival order
// (a ticket turnstile), so one hot publisher thread cannot starve another
// out of a full queue indefinitely — with M publisher streams feeding one
// service this is what keeps per-caller latency bounded.
//
// BoundedQueueGroup is the multi-queue epoch-merge primitive (DESIGN.md
// §9): N independently bounded FIFO lanes — one per producer — drained by
// ONE consumer that can wait on "anything ready" across all lanes and can
// cap, per lane, how many items it is willing to take (the cap is how a
// shard holds back documents published after a pending subscribe's epoch
// cut while still draining those published before it).
//
// Every internal field is GUARDED_BY the queue mutex and every wait
// predicate is a REQUIRES-annotated method (DESIGN.md §11), so the lock
// discipline is checked at compile time under -Werror=thread-safety.
//
// Handoff latency (DESIGN.md §12): consumers spin briefly — bounded
// lock/probe/unlock rounds with pause instructions between them — before
// registering as condvar waiters, and producers/consumers only touch a
// condvar when the waiter count says someone is actually asleep. In a busy
// pipeline of small documents both sides of every handoff would otherwise
// pay a futex syscall per item (the consumer drains faster than the
// producer feeds, so it would sleep between every pair of items); with the
// spin phase the wake disappears from the producer's critical path and the
// consumer picks the item up within the probe window. An idle queue still
// parks its consumer after one bounded spin episode.

#ifndef VITEX_SERVICE_BOUNDED_QUEUE_H_
#define VITEX_SERVICE_BOUNDED_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace vitex::service {

namespace queue_internal {

// Consumer spin budget before parking on the condvar: this many
// lock/probe/unlock rounds, kRelaxPerProbe pause instructions apart. ~64
// probes x ~(uncontended lock + 32 pauses) covers a few tens of
// microseconds — enough to bridge the inter-document gap of a busy
// small-document pipeline without keeping an idle core hot for long.
inline constexpr size_t kSpinProbes = 64;
inline constexpr int kRelaxPerProbe = 32;

// Spinning only pays when the producer can make progress while the
// consumer spins, i.e. on a machine with real parallelism. On a single
// hardware thread every spin round steals time from the producer that
// would fill the queue, so the budget collapses to one probe (check, then
// park) there.
inline size_t SpinProbes() {
  static const size_t probes =
      std::thread::hardware_concurrency() > 1 ? kSpinProbes : 1;
  return probes;
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

inline void RelaxBetweenProbes() {
  for (int i = 0; i < kRelaxPerProbe; ++i) CpuRelax();
}

}  // namespace queue_internal

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (backpressure), then enqueues. Returns
  /// false — without enqueueing — if the queue is (or becomes) closed.
  /// Concurrent pushers are admitted strictly in arrival order.
  bool Push(T item) {
    bool wake_consumer, wake_producers;
    {
      MutexLock lock(mu_);
      const uint64_t ticket = push_tail_++;
      if (!PushAdmitted(ticket)) {
        // Backpressure stall: time only the waits, so the uncontended push
        // pays one extra predicate check and nothing else.
        const int64_t blocked_from = MonotonicNanos();
        ++push_waiters_;
        do {
          not_full_.Wait(mu_);
        } while (!PushAdmitted(ticket));
        --push_waiters_;
        blocked_nanos_ += static_cast<uint64_t>(MonotonicNanos() - blocked_from);
      }
      if (closed_) return false;
      ++push_head_;
      items_.push_back(std::move(item));
      if (items_.size() > high_watermark_) high_watermark_ = items_.size();
      pushed_.fetch_add(1, std::memory_order_release);
      // Wake only threads that are actually parked: a consumer in its spin
      // phase (or between items) will see this item on its next probe, and
      // signalling an empty waitqueue is a wasted syscall on the hot path.
      wake_consumer = pop_waiters_ > 0;
      wake_producers = push_waiters_ > 0;
    }
    if (wake_consumer) not_empty_.NotifyOne();
    // The next ticket holder may have been waiting only for its turn; it
    // is not necessarily the waiter notify_one would pick.
    if (wake_producers) not_full_.NotifyAll();
    return true;
  }

  /// Blocks until an item is available and dequeues it. Returns nullopt
  /// only when the queue is closed *and* fully drained, so no enqueued
  /// item is ever lost to a shutdown race. Spins briefly before parking
  /// (see the header comment).
  std::optional<T> Pop() {
    std::optional<T> item;
    bool wake_producers = false;
    const size_t spin_probes = queue_internal::SpinProbes();
    for (size_t probe = 0; probe < spin_probes; ++probe) {
      {
        MutexLock lock(mu_);
        if (closed_ && items_.empty()) return std::nullopt;
        if (!items_.empty()) {
          item = std::move(items_.front());
          items_.pop_front();
          wake_producers = push_waiters_ > 0;
        }
      }
      if (item.has_value()) {
        if (wake_producers) not_full_.NotifyAll();
        return item;
      }
      queue_internal::RelaxBetweenProbes();
    }
    {
      MutexLock lock(mu_);
      ++pop_waiters_;
      while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
      --pop_waiters_;
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      wake_producers = push_waiters_ > 0;
    }
    if (wake_producers) not_full_.NotifyAll();
    return item;
  }

  /// Closes the queue: wakes every waiter, fails future Push calls, lets
  /// Pop drain what remains. Idempotent.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// Items currently queued (a snapshot; for stats/monitoring).
  size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  /// Successful pushes so far. Monotonic; incremented while the push holds
  /// the queue lock, so the count order IS the FIFO order — the k-th
  /// successful push is the k-th item popped (telemetry, and the invariant
  /// the multi-producer stress test pins).
  uint64_t pushed_count() const {
    return pushed_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

  /// Deepest the queue has ever been (backpressure headroom telemetry).
  size_t high_watermark() const {
    MutexLock lock(mu_);
    return high_watermark_;
  }

  /// Total nanoseconds producers have spent blocked in Push waiting for
  /// room (or their turnstile turn). Monotonic; the /statsz backpressure
  /// stall counter.
  uint64_t producer_blocked_nanos() const {
    MutexLock lock(mu_);
    return blocked_nanos_;
  }

 private:
  /// The Push admission predicate: the caller's ticket is being served AND
  /// there is room (or the queue closed, which releases every waiter).
  bool PushAdmitted(uint64_t ticket) const REQUIRES(mu_) {
    return closed_ || (ticket == push_head_ && items_.size() < capacity_);
  }

  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  // Threads parked (or about to park) on the matching condvar; a notify is
  // skipped entirely while the count is zero.
  size_t push_waiters_ GUARDED_BY(mu_) = 0;
  size_t pop_waiters_ GUARDED_BY(mu_) = 0;
  const size_t capacity_;
  // Ticket turnstile for producer FIFO admission: a pusher proceeds only
  // when its ticket is being served AND there is room.
  uint64_t push_tail_ GUARDED_BY(mu_) = 0;
  uint64_t push_head_ GUARDED_BY(mu_) = 0;
  // Atomic (not merely guarded) so pushed_count() stays a lock-free read
  // for monitoring threads; the store still happens under mu_, which is
  // what makes the count order the FIFO order.
  std::atomic<uint64_t> pushed_{0};
  size_t high_watermark_ GUARDED_BY(mu_) = 0;
  uint64_t blocked_nanos_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

/// A group of bounded FIFO lanes drained by ONE consumer.
///
/// Producers push into their own lane (per-lane capacity bound, blocking);
/// the single consumer pops with PopReady, which waits on all lanes at once
/// and can bound, per lane, how many items it is willing to have taken in
/// total. That per-lane cap is the epoch-merge mechanism: when a service
/// shard pops a pending control op's barrier marker from a lane, it caps
/// that lane right there — items behind the marker wait, the other lanes
/// keep draining — until the marker has arrived on every lane and the op
/// applies. See DESIGN.md §9 for why consistently ordered markers plus
/// these caps are deadlock-free under bounded lanes.
template <typename T>
class BoundedQueueGroup {
 public:
  /// Per-lane cap value meaning "unlimited".
  static constexpr uint64_t kNoLimit = ~static_cast<uint64_t>(0);

  struct Popped {
    size_t lane = 0;
    T item;
  };

  BoundedQueueGroup(size_t lanes, size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity),
        lane_count_(lanes < 1 ? 1 : lanes),
        lanes_(lane_count_) {}

  BoundedQueueGroup(const BoundedQueueGroup&) = delete;
  BoundedQueueGroup& operator=(const BoundedQueueGroup&) = delete;

  size_t lanes() const { return lane_count_; }
  size_t capacity() const { return capacity_; }

  /// Blocks until `lane` has room, then enqueues. Returns false — without
  /// enqueueing — if the lane is (or becomes) closed.
  bool Push(size_t lane, T item) {
    bool wake_consumer;
    {
      MutexLock lock(mu_);
      Lane& l = lanes_[lane];
      if (!LaneAdmits(l)) {
        // A full lane means the consumer (shard) is the bottleneck; the
        // accumulated wait is the per-group backpressure stall counter.
        const int64_t blocked_from = MonotonicNanos();
        ++push_waiters_;
        do {
          not_full_.Wait(mu_);
        } while (!LaneAdmits(l));
        --push_waiters_;
        blocked_nanos_ += static_cast<uint64_t>(MonotonicNanos() - blocked_from);
      }
      if (l.closed) return false;
      l.items.push_back(std::move(item));
      ++l.pushed;
      ++total_items_;
      if (total_items_ > high_watermark_) high_watermark_ = total_items_;
      // The single consumer is either parked (wake it) or spinning in
      // PopReady and about to find this item on its own.
      wake_consumer = consumer_waiting_;
    }
    if (wake_consumer) ready_.NotifyOne();  // single consumer
    return true;
  }

  /// Pops the oldest item of a *ready* lane: non-empty, and with fewer than
  /// `limits[lane]` items popped so far (`limits == nullptr` — no caps).
  /// Ready lanes are served round-robin so no stream starves another.
  /// Blocks while no lane is ready but some lane could still become ready
  /// under these caps (open, below cap); returns nullopt once no lane can
  /// (every lane closed-and-empty or at its cap). Single consumer only.
  std::optional<Popped> PopReady(const uint64_t* limits) {
    std::optional<Popped> out;
    bool wake_producers = false;
    // Spin phase: bounded probe rounds before parking (header comment).
    const size_t spin_probes = queue_internal::SpinProbes();
    for (size_t probe = 0; probe < spin_probes; ++probe) {
      {
        MutexLock lock(mu_);
        PopAttempt result = TryPopReady(limits, &out);
        if (result == PopAttempt::kExhausted) return std::nullopt;
        if (result == PopAttempt::kPopped) wake_producers = push_waiters_ > 0;
      }
      if (out.has_value()) {
        if (wake_producers) not_full_.NotifyAll();
        return out;
      }
      queue_internal::RelaxBetweenProbes();
    }
    {
      MutexLock lock(mu_);
      while (true) {
        PopAttempt result = TryPopReady(limits, &out);
        if (result == PopAttempt::kPopped) break;
        if (result == PopAttempt::kExhausted) return std::nullopt;
        consumer_waiting_ = true;
        ready_.Wait(mu_);
        consumer_waiting_ = false;
      }
      wake_producers = push_waiters_ > 0;
    }
    if (wake_producers) not_full_.NotifyAll();
    return out;
  }

  /// Closes one lane: its producer's future Push calls fail; queued items
  /// still drain through PopReady. Idempotent.
  void CloseLane(size_t lane) {
    {
      MutexLock lock(mu_);
      lanes_[lane].closed = true;
    }
    not_full_.NotifyAll();
    ready_.NotifyAll();
  }

  /// Items popped from `lane` so far (consumer-side epoch bookkeeping).
  uint64_t popped(size_t lane) const {
    MutexLock lock(mu_);
    return lanes_[lane].popped;
  }

  size_t lane_size(size_t lane) const {
    MutexLock lock(mu_);
    return lanes_[lane].items.size();
  }

  /// Total items currently queued across lanes (stats snapshot).
  size_t size() const {
    MutexLock lock(mu_);
    return total_items_;
  }

  /// Deepest the group has ever been, totalled across lanes.
  size_t high_watermark() const {
    MutexLock lock(mu_);
    return high_watermark_;
  }

  /// Total nanoseconds producers have spent blocked pushing into any lane
  /// of this group (the consumer was the bottleneck). Monotonic.
  uint64_t producer_blocked_nanos() const {
    MutexLock lock(mu_);
    return blocked_nanos_;
  }

 private:
  struct Lane {
    std::deque<T> items;
    uint64_t pushed = 0;
    uint64_t popped = 0;
    bool closed = false;
  };

  enum class PopAttempt { kPopped, kWouldBlock, kExhausted };

  /// The Push admission predicate for one lane: room below the per-lane
  /// capacity (or closed, which releases the waiter to fail the push).
  bool LaneAdmits(const Lane& l) const REQUIRES(mu_) {
    return l.closed || l.items.size() < capacity_;
  }

  /// One round-robin sweep over the lanes: pops into *out and returns
  /// kPopped, or reports whether any open lane could still become ready
  /// under `limits` (kWouldBlock) versus none ever can (kExhausted).
  PopAttempt TryPopReady(const uint64_t* limits, std::optional<Popped>* out)
      REQUIRES(mu_) {
    bool could_become_ready = false;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      size_t lane = (next_lane_ + i) % lanes_.size();
      Lane& l = lanes_[lane];
      if (limits != nullptr && l.popped >= limits[lane]) continue;
      if (!l.items.empty()) {
        Popped popped_item;
        popped_item.lane = lane;
        popped_item.item = std::move(l.items.front());
        l.items.pop_front();
        ++l.popped;
        --total_items_;
        next_lane_ = lane + 1;
        *out = std::move(popped_item);
        return PopAttempt::kPopped;
      }
      if (!l.closed) could_become_ready = true;
    }
    return could_become_ready ? PopAttempt::kWouldBlock
                              : PopAttempt::kExhausted;
  }

  mutable Mutex mu_;
  CondVar not_full_;
  CondVar ready_;  // wakes the single consumer
  // Producers parked on not_full_ / the consumer parked on ready_; a
  // notify is skipped entirely while nobody is parked.
  size_t push_waiters_ GUARDED_BY(mu_) = 0;
  bool consumer_waiting_ GUARDED_BY(mu_) = false;
  const size_t capacity_;
  const size_t lane_count_;
  std::vector<Lane> lanes_ GUARDED_BY(mu_);
  size_t next_lane_ GUARDED_BY(mu_) = 0;  // round-robin cursor over ready lanes
  size_t total_items_ GUARDED_BY(mu_) = 0;
  size_t high_watermark_ GUARDED_BY(mu_) = 0;
  uint64_t blocked_nanos_ GUARDED_BY(mu_) = 0;
};

}  // namespace vitex::service

#endif  // VITEX_SERVICE_BOUNDED_QUEUE_H_
