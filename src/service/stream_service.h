// StreamService: a sharded, multi-threaded pub/sub runtime over the TwigM
// pipeline — the paper's motivating deployment (stock tickers, sports
// feeds, personalized newspapers: one stream, many standing subscriptions)
// run across cores. See DESIGN.md §5.
//
// Architecture (threads left to right):
//
//   callers ──Publish──▶ [ingest queue] ── ingest thread ──▶ [shard queues]
//   callers ──Subscribe/Unsubscribe──────────┘ (same FIFO)        │
//                                                    shard 0..N-1 threads,
//                                                    each a private
//                                                    MultiQueryEngine
//
//   * Documents are parsed ONCE, on the ingest thread, into an
//     xml::EventLog (symbol- and sequence-stamped), then the log is
//     replayed into every shard — N shards cost one parse.
//   * Subscriptions are hash-partitioned across shards; each shard's
//     engine dispatches events only to its own machines, so per-event
//     match work splits N ways.
//   * Every queue is bounded: a slow shard backpressures the ingest
//     thread, which backpressures Publish. Nothing buffers unboundedly.
//   * Subscribe/Unsubscribe flow through the SAME queues as documents, so
//     they apply at exact document epoch boundaries: a subscription sees
//     every document published after the Subscribe call returned, and
//     none published before.
//   * All SymbolTable mutation (query compilation, parse-time interning)
//     is confined to the ingest thread; shard threads consume only stamped
//     integer symbols, so the shared table needs no lock.
//   * Results are delivered into a per-subscriber thread-safe sink; the
//     caller collects them with Drain(id) at its own pace.

#ifndef VITEX_SERVICE_STREAM_SERVICE_H_
#define VITEX_SERVICE_STREAM_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "service/bounded_queue.h"
#include "twigm/multi_query.h"
#include "xml/event_log.h"

namespace vitex::service {

/// Identifier of one standing subscription. Never reused.
using SubscriptionId = uint64_t;

/// One query solution, as drained by the subscriber.
struct Delivery {
  std::string fragment;
  /// Document-order sequence number within its document (see
  /// twigm::ResultHandler::OnResult).
  uint64_t sequence = 0;
};

struct StreamServiceOptions {
  /// Worker shards (each one thread + one MultiQueryEngine). Clamped to 1.
  size_t shard_count = 4;
  /// Capacity of the ingest queue and of each shard's queue (documents +
  /// control ops). Smaller values bound memory harder and backpressure
  /// sooner.
  size_t queue_capacity = 64;
  /// Parser options for the single ingest-side parse. The `symbols` field
  /// is overridden with the service's shared table.
  xml::SaxParserOptions sax_options;
  /// Options applied to every subscription's TwigM machine.
  twigm::TwigMachine::Options machine_options;
};

/// Per-shard counters (monotonic except queue_depth/live_queries/
/// live_machines).
struct ShardStatsSnapshot {
  uint64_t documents = 0;  ///< documents fully processed by this shard
  uint64_t events = 0;     ///< SAX events replayed into this shard
  size_t queue_depth = 0;
  size_t live_queries = 0;
  /// Plan machines actually executing this shard's queries — under plan
  /// sharing (DESIGN.md §7) far below live_queries when subscriptions
  /// share skeletons (`//quote[@symbol = 'X']/price` per ticker X).
  size_t live_machines = 0;
  twigm::DispatchStats dispatch;  ///< as of the last completed document
};

/// Service-wide snapshot (stats()).
struct ServiceStats {
  uint64_t documents_published = 0;  ///< accepted by Publish
  uint64_t documents_rejected = 0;   ///< failed to parse on ingest
  uint64_t documents_processed = 0;  ///< completed by EVERY shard (min)
  uint64_t events_parsed = 0;        ///< SAX events recorded on ingest
  uint64_t events_replayed = 0;      ///< sum over shards
  uint64_t results_delivered = 0;    ///< OnResult calls across all sinks
  uint64_t active_subscriptions = 0;
  /// Sum of live plan machines over shards (<= active_subscriptions; the
  /// gap is what hash-consed plan sharing saves per event).
  uint64_t active_plan_machines = 0;
  size_t ingest_queue_depth = 0;
  double uptime_seconds = 0;
  double docs_per_sec = 0;    ///< documents_processed / uptime
  double events_per_sec = 0;  ///< events_replayed / uptime (total work rate)
  std::vector<ShardStatsSnapshot> shards;
};

class StreamService {
 public:
  explicit StreamService(StreamServiceOptions options = {});
  ~StreamService();  // Stop()s if still running

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Registers a standing subscription. The query is validated
  /// synchronously (errors return immediately); the machine itself is
  /// compiled on the ingest thread and installed in its shard at the next
  /// document boundary. The subscription receives results for every
  /// document published after this call returns.
  Result<SubscriptionId> Subscribe(std::string_view xpath);

  /// Ends a subscription at the next document boundary; undrained results
  /// are discarded and the id becomes invalid immediately.
  Status Unsubscribe(SubscriptionId id);

  /// Collects the subscription's pending results (thread-safe; any
  /// thread). Results of one document arrive only after the owning shard
  /// finishes that document (Flush() to force completion).
  Result<std::vector<Delivery>> Drain(SubscriptionId id);

  /// Publishes one complete XML document to every subscription. Blocks
  /// only for backpressure (ingest queue full); processing is
  /// asynchronous. A document that fails to parse is counted rejected and
  /// dropped; it does not stop the service.
  Status Publish(std::string document);

  /// Blocks until everything published (and every subscribe/unsubscribe
  /// issued) before this call has been fully processed by every shard.
  /// Returns the first shard error, if any.
  Status Flush();

  /// Drains all queues, stops every thread, and returns the first error
  /// the service encountered (ingest parse errors excluded — those only
  /// count as rejected documents). Idempotent; called by the destructor.
  Status Stop();

  size_t shard_count() const { return shards_.size(); }
  ServiceStats stats() const;

 private:
  class SubscriberSink;
  struct FlushGate;
  struct IngestItem;
  struct ShardItem;
  struct Shard;

  void IngestLoop();
  void ShardLoop(Shard* shard);
  size_t ShardOf(SubscriptionId id) const;
  void RecordError(const Status& status);

  StreamServiceOptions options_;
  // Shared by the ingest parser and every shard engine. Mutated (Intern)
  // only on the ingest thread; shard threads never call into it — they
  // read stamped symbols off replayed events, and MultiQueryEngine sizes
  // its dispatch index from query vocabulary, not from the table.
  SymbolTable symbols_;

  std::unique_ptr<BoundedQueue<IngestItem>> ingest_queue_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread ingest_thread_;

  // Held for the whole of Stop() so concurrent stops (destructor racing an
  // explicit Stop) wait for the joins instead of returning early.
  std::mutex stop_mu_;
  mutable std::mutex mu_;  // subscriptions_, first_error_, stopped_
  // Live subscriptions' sinks (routing is recomputed from the id by
  // ShardOf). The owning shard holds a second shared_ptr until it applies
  // the unsubscribe, so a sink is never destroyed under a running machine.
  std::unordered_map<SubscriptionId, std::shared_ptr<SubscriberSink>>
      subscriptions_;
  Status first_error_;
  bool stopped_ = false;

  std::atomic<uint64_t> next_subscription_{1};
  std::atomic<uint64_t> documents_published_{0};
  std::atomic<uint64_t> documents_rejected_{0};
  std::atomic<uint64_t> events_parsed_{0};
  std::atomic<uint64_t> results_delivered_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vitex::service

#endif  // VITEX_SERVICE_STREAM_SERVICE_H_
