// StreamService: a sharded, multi-threaded pub/sub runtime over the TwigM
// pipeline — the paper's motivating deployment (stock tickers, sports
// feeds, personalized newspapers: many streams, many standing
// subscriptions) run across cores. See DESIGN.md §5 and §9.
//
// Architecture (threads left to right):
//
//   Publish ──▶ [stream queue 0..M-1] ──▶ M parser threads ──▶ ┐
//   Subscribe/Unsubscribe/Flush ──markers into every stream──▶ ┘
//                                                              │
//                              [per-shard inbox: M lanes, one per stream,
//                               merged under a barrier-marker discipline]
//                                                              │
//                                  shard 0..N-1 threads, each a private
//                                  MultiQueryEngine
//
//   * M publisher streams, each with its OWN parser thread: a published
//     document is parsed once, on its stream's thread, into an
//     xml::EventLog (symbol- and sequence-stamped), then the log is
//     replayed into every shard — M documents parse concurrently, and
//     N shards still cost one parse each.
//   * The shared SymbolTable is FROZEN (read-only) while streams run, so
//     all M parser threads resolve symbols concurrently without write
//     locks (parse-side resolution is lookup-only; misses stamp
//     kAbsentSymbol). Control operations that must intern — subscription
//     compiles — run through a serialized control lane that briefly
//     quiesces the parsers, unfreezes the table, compiles, and refreezes.
//   * Epoch discipline: every control op (Subscribe/Unsubscribe/Flush) is
//     a MARKER pushed into every stream's queue, in one consistent order
//     across streams. Stream threads forward markers to every shard lane
//     in FIFO position; a shard applies the op once the marker has arrived
//     on ALL of its lanes, holding back each lane at the point its marker
//     appeared. Subscribe/Unsubscribe therefore apply at exact
//     document-epoch boundaries — a subscription sees every document
//     published after the Subscribe call returned, and none published
//     before it was called — and per-subscriber match order stays
//     deterministic within a stream (cross-stream interleaving is
//     unordered by design). DESIGN.md §9 has the deadlock-freedom
//     argument.
//   * Every queue is bounded: a slow shard backpressures the parser
//     streams, which backpressure Publish. Nothing buffers unboundedly.
//   * Results are delivered into a per-subscriber thread-safe sink; the
//     caller collects them with Drain(id) at its own pace.

#ifndef VITEX_SERVICE_STREAM_SERVICE_H_
#define VITEX_SERVICE_STREAM_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "service/bounded_queue.h"
#include "service/match_sink.h"
#include "twigm/multi_query.h"
#include "xml/event_log.h"

namespace vitex::service {

struct StreamServiceOptions {
  /// Worker shards (each one thread + one MultiQueryEngine). Clamped to 1.
  size_t shard_count = 4;
  /// Concurrent publisher streams (each one parser thread + one bounded
  /// ingest queue). Clamped to 1. Publish() spreads documents round-robin;
  /// PublishToStream pins a document to a stream when per-stream FIFO
  /// ordering matters to the caller.
  size_t stream_count = 1;
  /// Capacity of each stream's ingest queue and of each per-shard inbox
  /// lane. Smaller values bound memory harder and backpressure sooner.
  size_t queue_capacity = 64;
  /// Parser options for the per-stream ingest parses. The `symbols` field
  /// is overridden with the service's shared table.
  xml::SaxParserOptions sax_options;
  /// Options applied to every subscription's TwigM machine.
  twigm::TwigMachine::Options machine_options;
  /// Stage-latency tracing (DESIGN.md §10): stamp every published document
  /// with a monotonic timestamp and record per-stage latency histograms
  /// (ingest-queue wait, parse, shard-queue wait, match+deliver, and
  /// end-to-end publish→last-shard-done) into the service's metric
  /// registry, exposed by StatszText(). Costs a few clock reads and
  /// relaxed atomic increments per document per shard — bounded ≤3% of
  /// BM_ServiceThroughput by the BM_MetricsOverhead bench axis. Flag off
  /// to shed even that; counters and queue watermarks stay on regardless.
  bool enable_tracing = true;
};

/// Per-shard counters (monotonic except queue_depth/live_queries/
/// live_machines).
struct ShardStatsSnapshot {
  uint64_t documents = 0;  ///< documents fully processed by this shard
  uint64_t events = 0;     ///< SAX events replayed into this shard
  size_t queue_depth = 0;  ///< items queued across this shard's inbox lanes
  /// Deepest the inbox has ever been (all lanes totalled) — how close the
  /// shard came to stalling its producers.
  size_t queue_high_watermark = 0;
  /// Total ns parser streams spent blocked pushing into this shard's inbox
  /// (this shard was the pipeline bottleneck). Monotonic.
  uint64_t fanout_blocked_nanos = 0;
  size_t live_queries = 0;
  /// Plan machines actually executing this shard's queries — under plan
  /// sharing (DESIGN.md §7) far below live_queries when subscriptions
  /// share skeletons (`//quote[@symbol = 'X']/price` per ticker X).
  size_t live_machines = 0;
  twigm::DispatchStats dispatch;  ///< as of the last completed document
};

/// Per-stream counters (monotonic except queue_depth).
struct StreamStatsSnapshot {
  uint64_t documents_published = 0;  ///< accepted by Publish on this stream
  uint64_t documents_parsed = 0;     ///< parsed OK on this stream's thread
  uint64_t documents_rejected = 0;   ///< failed to parse on this stream
  uint64_t events_parsed = 0;        ///< SAX events recorded on this stream
  size_t queue_depth = 0;            ///< this stream's ingest queue
  /// Deepest this stream's ingest queue has ever been.
  size_t queue_high_watermark = 0;
  /// Total ns publishers spent blocked in Publish on this stream's queue
  /// (backpressure reached the caller). Monotonic.
  uint64_t publish_blocked_nanos = 0;
};

/// Service-wide snapshot (stats()).
struct ServiceStats {
  uint64_t documents_published = 0;  ///< accepted by Publish
  uint64_t documents_rejected = 0;   ///< failed to parse on ingest
  uint64_t documents_processed = 0;  ///< completed by EVERY shard (min)
  uint64_t events_parsed = 0;        ///< SAX events recorded on ingest
  uint64_t events_replayed = 0;      ///< sum over shards
  uint64_t results_delivered = 0;    ///< OnResult calls across all sinks
  /// Push-mode deliveries refused by their MatchSink and dropped (the
  /// OnOverflow contract, match_sink.h). Disjoint from results_delivered.
  uint64_t results_overflowed = 0;
  uint64_t active_subscriptions = 0;
  /// Sum of live plan machines over shards (<= active_subscriptions; the
  /// gap is what hash-consed plan sharing saves per event).
  uint64_t active_plan_machines = 0;
  size_t ingest_queue_depth = 0;  ///< sum over the stream ingest queues
  double uptime_seconds = 0;
  /// documents_processed / uptime. Held at 0 until uptime reaches
  /// StreamService::kMinRateUptimeSeconds: a stats() call microseconds
  /// after construction would otherwise extrapolate a handful of
  /// documents into a nonsense per-second figure.
  double docs_per_sec = 0;
  double events_per_sec = 0;  ///< events_replayed / uptime (same floor)
  std::vector<ShardStatsSnapshot> shards;
  std::vector<StreamStatsSnapshot> streams;
};

class StreamService {
 public:
  explicit StreamService(StreamServiceOptions options = {});
  ~StreamService();  // Stop()s if still running

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Registers a standing pull-mode subscription (results collected with
  /// Drain). Equivalent to Subscribe(xpath, SinkOptions{}).
  Result<SubscriptionId> Subscribe(std::string_view xpath);

  /// Registers a standing subscription with an explicit delivery mode
  /// (match_sink.h). The query compiles synchronously on this thread — the
  /// one place the shared SymbolTable is unfrozen, so the call briefly
  /// quiesces the parser streams — and installs in its shard at this
  /// call's epoch boundary. The subscription receives results for every
  /// document published after this call returns, and none published
  /// before it was called. In push mode, deliveries go straight to
  /// `options.sink` on the owning shard's thread and Drain(id) is an
  /// error; in pull mode `options.sink` must be null.
  Result<SubscriptionId> Subscribe(std::string_view xpath,
                                   SinkOptions options);

  /// Ends a subscription at this call's epoch boundary; undrained results
  /// are discarded and the id becomes invalid immediately. A push-mode
  /// subscription's sink may still receive an already-in-flight OnMatch,
  /// but none will start after this returns (match_sink.h).
  Status Unsubscribe(SubscriptionId id);

  /// Collects a pull-mode subscription's pending results (thread-safe;
  /// any thread). Results of one document arrive only after the owning
  /// shard finishes that document (Flush() to force completion). Calling
  /// this on a push-mode subscription is an InvalidArgument error.
  Result<std::vector<Delivery>> Drain(SubscriptionId id);

  /// Publishes one complete XML document to every subscription, on a
  /// round-robin-chosen stream. Blocks only for backpressure (the stream's
  /// ingest queue is full); processing is asynchronous. A document that
  /// fails to parse is counted rejected and dropped; it does not stop the
  /// service.
  Status Publish(std::string document);

  /// Publish with an explicit stream choice: documents published to the
  /// same stream by the same caller are parsed, replayed and delivered in
  /// publish order (cross-stream order is unspecified). `stream` must be
  /// < stream_count().
  Status PublishToStream(size_t stream, std::string document);

  /// Blocks until everything published (and every subscribe/unsubscribe
  /// issued) before this call has been fully processed by every shard.
  /// Returns the first shard error, if any.
  Status Flush();

  /// Drains all queues, stops every thread, and returns the first error
  /// the service encountered (ingest parse errors excluded — those only
  /// count as rejected documents). Idempotent; called by the destructor.
  Status Stop();

  size_t shard_count() const { return shards_.size(); }
  size_t stream_count() const { return streams_.size(); }
  ServiceStats stats() const;

  /// Minimum uptime before stats() reports docs_per_sec/events_per_sec;
  /// below it the rates are 0 (division-by-near-zero guard).
  static constexpr double kMinRateUptimeSeconds = 0.1;

  /// The /statsz payload (ROADMAP item 2 serves this over TCP): every
  /// pipeline counter, queue watermark/stall gauge, per-shard dispatch
  /// stat, and — when enable_tracing is on — the per-stage latency
  /// histograms with p50/p90/p99/max summaries, in Prometheus text
  /// exposition format. Thread-safe; snapshot semantics match stats().
  std::string StatszText() const;

 private:
  class SubscriberSink;
  struct FlushGate;
  struct ControlOp;
  struct StreamItem;
  struct ShardItem;
  struct Stream;
  struct Shard;
  struct DocTrace;

  void StreamLoop(Stream* stream);
  void ShardLoop(Shard* shard);
  size_t ShardOf(SubscriptionId id) const;
  bool ShardHandles(const Shard& shard, const ControlOp& op) const;
  void RecordError(const Status& status) EXCLUDES(mu_);
  /// Applies one control op on the shard's thread, at its epoch boundary
  /// (all lane markers arrived) or force-applied during shutdown drain.
  void ApplyControl(Shard* shard, ControlOp* op);
  /// Pushes `op` as a marker into EVERY stream queue, under control_mu_ so
  /// concurrent ops enter all queues in one consistent total order (the
  /// correctness precondition of the shard-side barrier; DESIGN.md §9).
  /// Returns false if the service is stopping (some queue closed).
  bool EmitControl(std::shared_ptr<ControlOp> op) REQUIRES(control_mu_);

  StreamServiceOptions options_;
  // Shared by every stream's parser and every shard engine. FROZEN
  // (read-only) while streams run: stream threads hold symbols_.mu()
  // shared for the duration of a parse and only Lookup; Subscribe holds it
  // exclusive around Unfreeze → compile (interns) → Freeze, so mutation
  // never overlaps a lookup — the capability lives in the table itself and
  // the phase flips are REQUIRES-checked (DESIGN.md §11). Shard threads
  // never touch the table: they consume stamped integer symbols off
  // replayed events.
  SymbolTable symbols_;

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // The serialized control lane: holds marker emission (and the compile
  // that precedes it for Subscribe) so control ops are totally ordered.
  Mutex control_mu_;

  // Held for the whole of Stop() so concurrent stops (destructor racing an
  // explicit Stop) wait for the joins instead of returning early.
  Mutex stop_mu_;
  mutable Mutex mu_;
  // Live subscriptions' sinks (routing is recomputed from the id by
  // ShardOf). The owning shard holds a second shared_ptr until it applies
  // the unsubscribe, so a sink is never destroyed under a running machine.
  std::unordered_map<SubscriptionId, std::shared_ptr<SubscriberSink>>
      subscriptions_ GUARDED_BY(mu_);
  Status first_error_ GUARDED_BY(mu_);
  bool stopped_ GUARDED_BY(mu_) = false;

  // Hot-path metrics (DESIGN.md §10). Each stream/shard registers its own
  // histogram instances under shared names at construction; the registry
  // merges them when StatszText() renders, so recording never contends
  // across threads. Null instance pointers when enable_tracing is off.
  obs::Registry registry_;
  obs::Histogram* e2e_hist_ = nullptr;  // publish → last-shard-done

  std::atomic<uint64_t> next_subscription_{1};
  std::atomic<uint64_t> next_stream_{0};  // Publish round-robin cursor
  std::atomic<uint64_t> documents_published_{0};
  std::atomic<uint64_t> documents_rejected_{0};
  std::atomic<uint64_t> events_parsed_{0};
  std::atomic<uint64_t> results_delivered_{0};
  std::atomic<uint64_t> results_overflowed_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vitex::service

#endif  // VITEX_SERVICE_STREAM_SERVICE_H_
