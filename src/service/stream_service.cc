#include "service/stream_service.h"

#include <algorithm>
#include <utility>

#include "twigm/builder.h"
#include "xml/sax_parser.h"

namespace vitex::service {

// ---------------------------------------------------------------------------
// Internal types.
// ---------------------------------------------------------------------------

// Thread-safe per-subscriber result queue: the owning shard's machine
// appends on its thread; the subscriber drains on any thread.
class StreamService::SubscriberSink : public twigm::ResultHandler {
 public:
  explicit SubscriberSink(std::atomic<uint64_t>* delivered)
      : delivered_(delivered) {}

  void OnResult(std::string_view fragment, uint64_t sequence) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(Delivery{std::string(fragment), sequence});
    }
    delivered_->fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<Delivery> Drain() {
    std::vector<Delivery> out;
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(pending_);
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<Delivery> pending_;
  std::atomic<uint64_t>* delivered_;
};

// Barrier token for Flush(): every shard decrements once it has processed
// everything enqueued before the token.
struct StreamService::FlushGate {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
};

struct StreamService::IngestItem {
  enum class Kind { kDocument, kSubscribe, kUnsubscribe, kFlush };
  Kind kind = Kind::kDocument;
  std::string document;                 // kDocument
  std::string xpath;                    // kSubscribe
  SubscriptionId subscription = 0;      // kSubscribe / kUnsubscribe
  std::shared_ptr<SubscriberSink> sink; // kSubscribe
  std::shared_ptr<FlushGate> gate;      // kFlush
};

struct StreamService::ShardItem {
  enum class Kind { kDocument, kSubscribe, kUnsubscribe, kFlush };
  Kind kind = Kind::kDocument;
  std::shared_ptr<const xml::EventLog> log;         // kDocument
  std::unique_ptr<twigm::BuiltMachine> machine;     // kSubscribe
  SubscriptionId subscription = 0;                  // kSubscribe/kUnsubscribe
  std::shared_ptr<SubscriberSink> sink;             // kSubscribe
  std::shared_ptr<FlushGate> gate;                  // kFlush
};

// One worker shard: a queue, a thread, and a private MultiQueryEngine whose
// machines are this shard's slice of the subscription set. Everything below
// `queue` is touched only by the shard thread, except the atomics and the
// mutex-guarded dispatch snapshot.
struct StreamService::Shard {
  Shard(size_t queue_capacity, xml::SaxParserOptions sax_options)
      : queue(queue_capacity),
        engine(std::make_unique<twigm::MultiQueryEngine>(sax_options)) {}

  BoundedQueue<ShardItem> queue;
  std::unique_ptr<twigm::MultiQueryEngine> engine;
  std::thread thread;
  bool failed = false;  // fail-stop: skip further documents after an error

  // Subscription bookkeeping (shard thread only).
  std::unordered_map<SubscriptionId, twigm::QueryId> queries;
  std::unordered_map<SubscriptionId, std::shared_ptr<SubscriberSink>> sinks;

  // Written by the shard thread, read by stats().
  std::atomic<uint64_t> documents{0};
  std::atomic<uint64_t> events{0};
  std::atomic<size_t> live_queries{0};
  std::atomic<size_t> live_machines{0};  // plan instances (DESIGN.md §7)
  std::mutex dispatch_mu;
  twigm::DispatchStats dispatch;  // snapshot after each document
};

// ---------------------------------------------------------------------------
// Construction / teardown.
// ---------------------------------------------------------------------------

StreamService::StreamService(StreamServiceOptions options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  size_t shard_count = std::max<size_t>(1, options_.shard_count);
  ingest_queue_ =
      std::make_unique<BoundedQueue<IngestItem>>(options_.queue_capacity);
  xml::SaxParserOptions shard_sax = options_.sax_options;
  shard_sax.symbols = &symbols_;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(options_.queue_capacity, shard_sax));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread(&StreamService::ShardLoop, this, shard.get());
  }
  ingest_thread_ = std::thread(&StreamService::IngestLoop, this);
}

StreamService::~StreamService() { (void)Stop(); }

Status StreamService::Stop() {
  // Serializes stops: a concurrent second caller blocks here until the
  // first caller has finished joining, so no caller (in particular the
  // destructor) can proceed while threads are still running.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return first_error_;
    stopped_ = true;
  }
  // Closing the ingest queue lets the ingest thread drain what is already
  // queued, then close every shard queue (which likewise drain) — so work
  // accepted before Stop() is still fully processed.
  ingest_queue_->Close();
  ingest_thread_.join();
  for (auto& shard : shards_) shard->thread.join();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

void StreamService::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_.ok()) first_error_ = status;
}

size_t StreamService::ShardOf(SubscriptionId id) const {
  // splitmix64 finalizer: subscription ids are sequential, so mix before
  // taking the residue to spread consecutive subscribers across shards.
  uint64_t x = id;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x % shards_.size());
}

// ---------------------------------------------------------------------------
// Caller-facing API.
// ---------------------------------------------------------------------------

Result<SubscriptionId> StreamService::Subscribe(std::string_view xpath) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::InvalidArgument("service is stopped");
  }
  // Validate synchronously against a throwaway private table; the real
  // machine is compiled on the ingest thread, where the shared table may
  // be mutated safely. Compilation is cheap (O(|Q|)) and subscription is
  // rare next to document traffic.
  VITEX_RETURN_IF_ERROR(
      twigm::TwigMBuilder::Build(xpath, nullptr, options_.machine_options,
                                 nullptr)
          .status());

  SubscriptionId id =
      next_subscription_.fetch_add(1, std::memory_order_relaxed);
  auto sink = std::make_shared<SubscriberSink>(&results_delivered_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    subscriptions_[id] = sink;
  }
  IngestItem item;
  item.kind = IngestItem::Kind::kSubscribe;
  item.xpath = std::string(xpath);
  item.subscription = id;
  item.sink = std::move(sink);
  if (!ingest_queue_->Push(std::move(item))) {
    std::lock_guard<std::mutex> lock(mu_);
    subscriptions_.erase(id);
    return Status::InvalidArgument("service is stopped");
  }
  return id;
}

Status StreamService::Unsubscribe(SubscriptionId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return Status::InvalidArgument("unknown subscription id");
    }
    subscriptions_.erase(it);
  }
  IngestItem item;
  item.kind = IngestItem::Kind::kUnsubscribe;
  item.subscription = id;
  // A closed queue means the service is stopping: teardown removes every
  // machine anyway, so the unsubscribe is already effectively applied.
  ingest_queue_->Push(std::move(item));
  return Status::OK();
}

Result<std::vector<Delivery>> StreamService::Drain(SubscriptionId id) {
  std::shared_ptr<SubscriberSink> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return Status::InvalidArgument("unknown subscription id");
    }
    sink = it->second;
  }
  return sink->Drain();
}

Status StreamService::Publish(std::string document) {
  IngestItem item;
  item.kind = IngestItem::Kind::kDocument;
  item.document = std::move(document);
  if (!ingest_queue_->Push(std::move(item))) {
    return Status::InvalidArgument("service is stopped");
  }
  documents_published_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status StreamService::Flush() {
  auto gate = std::make_shared<FlushGate>();
  gate->remaining = shards_.size();
  IngestItem item;
  item.kind = IngestItem::Kind::kFlush;
  item.gate = gate;
  if (!ingest_queue_->Push(std::move(item))) {
    // Stopping: Stop() drains everything, which is a stronger barrier.
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }
  std::unique_lock<std::mutex> lock(gate->mu);
  gate->cv.wait(lock, [&] { return gate->remaining == 0; });
  std::lock_guard<std::mutex> err_lock(mu_);
  return first_error_;
}

ServiceStats StreamService::stats() const {
  ServiceStats s;
  s.documents_published = documents_published_.load(std::memory_order_relaxed);
  s.documents_rejected = documents_rejected_.load(std::memory_order_relaxed);
  s.events_parsed = events_parsed_.load(std::memory_order_relaxed);
  s.results_delivered = results_delivered_.load(std::memory_order_relaxed);
  s.ingest_queue_depth = ingest_queue_->size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.active_subscriptions = subscriptions_.size();
  }
  uint64_t min_docs = 0;
  bool first = true;
  for (const auto& shard : shards_) {
    ShardStatsSnapshot snap;
    snap.documents = shard->documents.load(std::memory_order_relaxed);
    snap.events = shard->events.load(std::memory_order_relaxed);
    snap.queue_depth = shard->queue.size();
    snap.live_queries = shard->live_queries.load(std::memory_order_relaxed);
    snap.live_machines = shard->live_machines.load(std::memory_order_relaxed);
    s.active_plan_machines += snap.live_machines;
    {
      std::lock_guard<std::mutex> lock(shard->dispatch_mu);
      snap.dispatch = shard->dispatch;
    }
    s.events_replayed += snap.events;
    min_docs = first ? snap.documents : std::min(min_docs, snap.documents);
    first = false;
    s.shards.push_back(snap);
  }
  s.documents_processed = min_docs;
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  if (s.uptime_seconds > 0) {
    s.docs_per_sec = static_cast<double>(s.documents_processed) /
                     s.uptime_seconds;
    s.events_per_sec =
        static_cast<double>(s.events_replayed) / s.uptime_seconds;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Ingest thread: parse once, fan out; compile subscriptions. The ONLY
// thread that touches the shared SymbolTable after construction.
// ---------------------------------------------------------------------------

void StreamService::IngestLoop() {
  xml::SaxParserOptions parse_options = options_.sax_options;
  parse_options.symbols = &symbols_;
  while (std::optional<IngestItem> item = ingest_queue_->Pop()) {
    switch (item->kind) {
      case IngestItem::Kind::kDocument: {
        auto log = std::make_shared<xml::EventLog>();
        xml::EventRecorder recorder(log.get());
        Status parsed =
            xml::ParseString(item->document, &recorder, parse_options);
        if (!parsed.ok()) {
          // A malformed publication is dropped, not fatal: pub/sub streams
          // outlive one bad document.
          documents_rejected_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        events_parsed_.fetch_add(log->size(), std::memory_order_relaxed);
        for (auto& shard : shards_) {
          ShardItem doc;
          doc.kind = ShardItem::Kind::kDocument;
          doc.log = log;  // shared: one parse, N replays
          shard->queue.Push(std::move(doc));  // blocks on backpressure
        }
        break;
      }
      case IngestItem::Kind::kSubscribe: {
        // Recompile against the shared table (the Subscribe-time build
        // only validated). Interning happens here, on this thread.
        auto built = twigm::TwigMBuilder::Build(
            item->xpath, item->sink.get(), options_.machine_options,
            &symbols_);
        if (!built.ok()) {
          RecordError(built.status());  // passed validation; cannot differ
          break;
        }
        ShardItem sub;
        sub.kind = ShardItem::Kind::kSubscribe;
        sub.machine =
            std::make_unique<twigm::BuiltMachine>(std::move(built).value());
        sub.subscription = item->subscription;
        sub.sink = std::move(item->sink);
        shards_[ShardOf(item->subscription)]->queue.Push(std::move(sub));
        break;
      }
      case IngestItem::Kind::kUnsubscribe: {
        ShardItem unsub;
        unsub.kind = ShardItem::Kind::kUnsubscribe;
        unsub.subscription = item->subscription;
        shards_[ShardOf(item->subscription)]->queue.Push(std::move(unsub));
        break;
      }
      case IngestItem::Kind::kFlush: {
        for (auto& shard : shards_) {
          ShardItem flush;
          flush.kind = ShardItem::Kind::kFlush;
          flush.gate = item->gate;
          shard->queue.Push(std::move(flush));
        }
        break;
      }
    }
  }
  // Ingest queue closed and drained: release the shards the same way.
  for (auto& shard : shards_) shard->queue.Close();
}

// ---------------------------------------------------------------------------
// Shard threads: replay documents into the private engine; apply
// subscription changes between documents (epoch boundaries).
// ---------------------------------------------------------------------------

void StreamService::ShardLoop(Shard* shard) {
  twigm::MultiQueryEngine& engine = *shard->engine;
  while (std::optional<ShardItem> item = shard->queue.Pop()) {
    switch (item->kind) {
      case ShardItem::Kind::kDocument: {
        if (shard->failed) break;  // fail-stop, but keep draining the queue
        Status status = engine.RunEvents(*item->log);
        if (!status.ok()) {
          shard->failed = true;
          RecordError(status);
          break;
        }
        shard->documents.fetch_add(1, std::memory_order_relaxed);
        shard->events.fetch_add(item->log->size(),
                                std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(shard->dispatch_mu);
        shard->dispatch = engine.dispatch_stats();
        break;
      }
      case ShardItem::Kind::kSubscribe: {
        if (shard->failed) break;
        Result<twigm::QueryId> qid =
            engine.AddBuilt(std::move(*item->machine));
        if (!qid.ok()) {
          RecordError(qid.status());
          break;
        }
        shard->queries[item->subscription] = qid.value();
        shard->sinks[item->subscription] = std::move(item->sink);
        shard->live_queries.store(shard->queries.size(),
                                  std::memory_order_relaxed);
        shard->live_machines.store(engine.machine_count(),
                                   std::memory_order_relaxed);
        break;
      }
      case ShardItem::Kind::kUnsubscribe: {
        auto it = shard->queries.find(item->subscription);
        if (it == shard->queries.end()) break;  // never installed (failed)
        if (!shard->failed) {
          (void)engine.RemoveQuery(it->second);
        }
        shard->queries.erase(it);
        shard->sinks.erase(item->subscription);
        shard->live_queries.store(shard->queries.size(),
                                  std::memory_order_relaxed);
        shard->live_machines.store(engine.machine_count(),
                                   std::memory_order_relaxed);
        break;
      }
      case ShardItem::Kind::kFlush: {
        std::lock_guard<std::mutex> lock(item->gate->mu);
        if (--item->gate->remaining == 0) item->gate->cv.notify_all();
        break;
      }
    }
  }
}

}  // namespace vitex::service
