// lint: relaxed-ok(single-writer shard counters read by stats snapshots; cross-thread ordering is carried by the queue mutexes)

#include "service/stream_service.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "obs/prometheus.h"
#include "twigm/builder.h"
#include "xml/sax_parser.h"

namespace vitex::service {

// ---------------------------------------------------------------------------
// Internal types.
// ---------------------------------------------------------------------------

// Per-subscriber delivery adapter between the shard's machine and the
// caller-facing delivery mode (match_sink.h). Pull mode: a thread-safe
// result queue the subscriber drains on any thread. Push mode: each result
// is forwarded to the caller's MatchSink right here on the shard thread —
// nothing buffers service-side, and a refused delivery is dropped, counted
// and reported through OnOverflow.
class StreamService::SubscriberSink : public twigm::ResultHandler {
 public:
  SubscriberSink(SubscriptionId id, std::shared_ptr<MatchSink> push_sink,
                 std::atomic<uint64_t>* delivered,
                 std::atomic<uint64_t>* overflowed)
      : id_(id),
        push_sink_(std::move(push_sink)),
        delivered_(delivered),
        overflowed_(overflowed) {}

  void OnResult(std::string_view fragment, uint64_t sequence) override {
    if (push_sink_ != nullptr) {
      // Push path, shard thread. OnMatch refusing (false) is the sink's
      // bounded-buffer signal: the delivery is dropped, not retried —
      // backpressure toward a slow consumer must never stall the shard
      // (every other subscription on it would pay).
      Delivery delivery{std::string(fragment), sequence};
      if (push_sink_->OnMatch(id_, delivery)) {
        delivered_->fetch_add(1, std::memory_order_relaxed);
      } else {
        // dropped_ needs no lock: OnResult calls for one subscription are
        // serialized on its owning shard's thread (match_sink.h).
        ++dropped_;
        overflowed_->fetch_add(1, std::memory_order_relaxed);
        push_sink_->OnOverflow(id_, dropped_);
      }
      return;
    }
    {
      MutexLock lock(mu_);
      pending_.push_back(Delivery{std::string(fragment), sequence});
    }
    delivered_->fetch_add(1, std::memory_order_relaxed);
  }

  bool is_push() const { return push_sink_ != nullptr; }

  std::vector<Delivery> Drain() {
    std::vector<Delivery> out;
    MutexLock lock(mu_);
    // Move the deliveries out element-wise instead of swapping vectors:
    // pending_ keeps its capacity, so a steady drain cadence stops paying
    // a queue reallocation per document (DESIGN.md §12).
    out.reserve(pending_.size());
    for (Delivery& d : pending_) out.push_back(std::move(d));
    pending_.clear();
    return out;
  }

 private:
  const SubscriptionId id_;
  const std::shared_ptr<MatchSink> push_sink_;  // null == pull mode
  Mutex mu_;
  std::vector<Delivery> pending_ GUARDED_BY(mu_);
  std::atomic<uint64_t>* delivered_;
  std::atomic<uint64_t>* overflowed_;
  uint64_t dropped_ = 0;  // shard-thread only (see OnResult)
};

// Barrier token for Flush(): every shard decrements once it has processed
// everything enqueued before the token.
struct StreamService::FlushGate {
  Mutex mu;
  CondVar cv;
  size_t remaining GUARDED_BY(mu) = 0;
};

// One control operation, shared by the M×N marker copies that carry it
// through every stream queue into every shard lane. Only the shard that
// ShardHandles() the op touches its payload, exactly once, when its
// barrier completes — so the non-const members need no locking.
struct StreamService::ControlOp {
  enum class Kind { kSubscribe, kUnsubscribe, kFlush };
  Kind kind = Kind::kFlush;
  SubscriptionId subscription = 0;               // kSubscribe / kUnsubscribe
  std::unique_ptr<twigm::BuiltMachine> machine;  // kSubscribe
  std::shared_ptr<SubscriberSink> sink;          // kSubscribe
  std::shared_ptr<FlushGate> gate;               // kFlush
};

// Stage-tracing context shared by one document's N shard replays: the
// publish timestamp for the end-to-end histogram, and a countdown so the
// LAST shard to finish records it (tracing only; null when off).
struct StreamService::DocTrace {
  int64_t publish_ns = 0;
  std::atomic<size_t> shards_remaining{0};
};

// What flows through a stream's ingest queue: a document to parse, or a
// control marker to forward (in FIFO position) to every shard lane.
struct StreamService::StreamItem {
  std::string document;
  int64_t publish_ns = 0;         // stamped by Publish when tracing
  std::shared_ptr<ControlOp> op;  // non-null == marker
};

// What flows through a shard inbox lane.
struct StreamService::ShardItem {
  enum class Kind { kDocument, kMarker };
  Kind kind = Kind::kDocument;
  std::shared_ptr<const xml::EventLog> log;  // kDocument
  int64_t enqueue_ns = 0;                    // fan-out time (tracing)
  std::shared_ptr<DocTrace> trace;           // kDocument, tracing only
  std::shared_ptr<ControlOp> op;             // kMarker
};

// One publisher stream: a bounded queue of raw documents (and control
// markers) drained by this stream's parser thread. Counters are written by
// that thread, read by stats().
struct StreamService::Stream {
  explicit Stream(size_t index_in, size_t queue_capacity)
      : index(index_in), queue(queue_capacity) {}

  const size_t index;  // == this stream's lane on every shard inbox
  BoundedQueue<StreamItem> queue;
  std::thread thread;

  std::atomic<uint64_t> documents_published{0};
  std::atomic<uint64_t> documents_parsed{0};
  std::atomic<uint64_t> documents_rejected{0};
  std::atomic<uint64_t> events_parsed{0};

  // This stream's private stage histograms (merged under shared names at
  // render time); null when tracing is off.
  obs::Histogram* ingest_wait_hist = nullptr;  // publish → parse start
  obs::Histogram* parse_hist = nullptr;        // the parse itself
};

// One worker shard: an M-lane inbox, a thread, and a private
// MultiQueryEngine whose machines are this shard's slice of the
// subscription set. Everything below `inbox` is touched only by the shard
// thread, except the atomics and the mutex-guarded dispatch snapshot.
struct StreamService::Shard {
  Shard(size_t index_in, size_t lanes, size_t lane_capacity,
        xml::SaxParserOptions sax_options)
      : index(index_in),
        inbox(lanes, lane_capacity),
        engine(std::make_unique<twigm::MultiQueryEngine>(sax_options)) {}

  const size_t index;
  BoundedQueueGroup<ShardItem> inbox;
  std::unique_ptr<twigm::MultiQueryEngine> engine;
  std::thread thread;
  bool failed = false;  // fail-stop: skip further documents after an error

  // Subscription bookkeeping (shard thread only).
  std::unordered_map<SubscriptionId, twigm::QueryId> queries;
  std::unordered_map<SubscriptionId, std::shared_ptr<SubscriberSink>> sinks;

  // Written by the shard thread, read by stats().
  std::atomic<uint64_t> documents{0};
  std::atomic<uint64_t> events{0};
  std::atomic<size_t> live_queries{0};
  std::atomic<size_t> live_machines{0};  // plan instances (DESIGN.md §7)
  Mutex dispatch_mu;
  twigm::DispatchStats dispatch GUARDED_BY(dispatch_mu);  // after each doc

  // This shard's private stage histograms; null when tracing is off.
  obs::Histogram* queue_wait_hist = nullptr;  // fan-out → shard pop
  obs::Histogram* match_hist = nullptr;       // replay + delivery
};

// ---------------------------------------------------------------------------
// Construction / teardown.
// ---------------------------------------------------------------------------

StreamService::StreamService(StreamServiceOptions options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  size_t shard_count = std::max<size_t>(1, options_.shard_count);
  size_t stream_count = std::max<size_t>(1, options_.stream_count);
  xml::SaxParserOptions shard_sax = options_.sax_options;
  shard_sax.symbols = &symbols_;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, stream_count, options_.queue_capacity, shard_sax));
  }
  streams_.reserve(stream_count);
  for (size_t i = 0; i < stream_count; ++i) {
    streams_.push_back(std::make_unique<Stream>(i, options_.queue_capacity));
  }
  if (options_.enable_tracing) {
    // All registration happens here, before any worker thread exists; the
    // hot paths below only ever touch these raw instance pointers.
    for (auto& stream : streams_) {
      stream->ingest_wait_hist = registry_.AddHistogram(
          "vitex_stage_ingest_wait_nanos",
          "Publish to parse-start: time a document waited in its stream's "
          "ingest queue (ns)");
      stream->parse_hist = registry_.AddHistogram(
          "vitex_stage_parse_nanos",
          "Ingest parse of one document into its event log (ns)");
    }
    for (auto& shard : shards_) {
      shard->queue_wait_hist = registry_.AddHistogram(
          "vitex_stage_shard_queue_wait_nanos",
          "Fan-out to shard pop: time a parsed document waited in a shard "
          "inbox lane (ns)");
      shard->match_hist = registry_.AddHistogram(
          "vitex_stage_match_nanos",
          "Replay of one document through a shard's engine, including "
          "result delivery (ns)");
    }
    e2e_hist_ = registry_.AddHistogram(
        "vitex_stage_e2e_nanos",
        "Publish to last-shard-done: full pipeline latency of one "
        "document (ns)");
  }
  // The table enters its read-only phase before any parser thread exists;
  // Subscribe() is the only place it is (briefly) reopened.
  {
    WriterMutexLock symbols_lock(symbols_.mu());
    symbols_.Freeze();
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread(&StreamService::ShardLoop, this, shard.get());
  }
  for (auto& stream : streams_) {
    stream->thread =
        std::thread(&StreamService::StreamLoop, this, stream.get());
  }
}

StreamService::~StreamService() { (void)Stop(); }

Status StreamService::Stop() {
  // Serializes stops: a concurrent second caller blocks here until the
  // first caller has finished joining, so no caller (in particular the
  // destructor) can proceed while threads are still running.
  MutexLock stop_lock(stop_mu_);
  {
    MutexLock lock(mu_);
    if (stopped_) return first_error_;
    stopped_ = true;
  }
  // Closing the stream queues lets each parser thread drain what is
  // already queued, then close its lane on every shard inbox (which
  // likewise drains) — so work accepted before Stop() is still fully
  // processed.
  for (auto& stream : streams_) stream->queue.Close();
  for (auto& stream : streams_) stream->thread.join();
  for (auto& shard : shards_) shard->thread.join();
  MutexLock lock(mu_);
  return first_error_;
}

void StreamService::RecordError(const Status& status) {
  MutexLock lock(mu_);
  if (first_error_.ok()) first_error_ = status;
}

size_t StreamService::ShardOf(SubscriptionId id) const {
  // splitmix64 finalizer: subscription ids are sequential, so mix before
  // taking the residue to spread consecutive subscribers across shards.
  uint64_t x = id;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x % shards_.size());
}

bool StreamService::ShardHandles(const Shard& shard,
                                 const ControlOp& op) const {
  // Flush barriers every shard; subscription changes barrier only the
  // shard that owns the subscription — other shards discard the marker.
  if (op.kind == ControlOp::Kind::kFlush) return true;
  return ShardOf(op.subscription) == shard.index;
}

// ---------------------------------------------------------------------------
// Caller-facing API.
// ---------------------------------------------------------------------------

bool StreamService::EmitControl(std::shared_ptr<ControlOp> op) {
  // Push the marker into every stream queue while holding control_mu_ (the
  // caller does): concurrent control ops therefore appear in the SAME
  // relative order in every queue, which is what lets a shard treat "next
  // marker on an unheld lane" as "marker of my pending op" (DESIGN.md §9).
  bool ok = true;
  for (auto& stream : streams_) {
    StreamItem item;
    item.op = op;
    // A closed queue means the service is stopping; keep emitting to the
    // remaining streams so shards that do see the marker can still make
    // progress, and let shutdown force-complete the rest.
    ok = stream->queue.Push(std::move(item)) && ok;
  }
  return ok;
}

Result<SubscriptionId> StreamService::Subscribe(std::string_view xpath) {
  return Subscribe(xpath, SinkOptions{});
}

Result<SubscriptionId> StreamService::Subscribe(std::string_view xpath,
                                                SinkOptions options) {
  if (options.mode == DeliveryMode::kPush && options.sink == nullptr) {
    return Status::InvalidArgument(
        "push-mode subscription requires a MatchSink");
  }
  if (options.mode == DeliveryMode::kPull && options.sink != nullptr) {
    return Status::InvalidArgument(
        "pull-mode subscription must not carry a MatchSink");
  }
  MutexLock control_lock(control_mu_);
  {
    MutexLock lock(mu_);
    if (stopped_) return Status::InvalidArgument("service is stopped");
  }
  SubscriptionId id =
      next_subscription_.fetch_add(1, std::memory_order_relaxed);
  auto sink = std::make_shared<SubscriberSink>(
      id, std::move(options.sink), &results_delivered_, &results_overflowed_);
  // Compile on this thread, under exclusive table access: parser streams
  // hold symbols_.mu() shared for the duration of a parse, so the writer
  // lock quiesces them for the (rare, O(|Q|)) moment interning happens.
  // A plain scoped block, not a lambda: the thread safety analysis checks
  // the Unfreeze/Freeze capability requirements right here, where the
  // lock is visibly held (DESIGN.md §11).
  std::optional<Result<twigm::BuiltMachine>> built;
  {
    WriterMutexLock symbols_lock(symbols_.mu());
    symbols_.Unfreeze();
    built.emplace(twigm::TwigMBuilder::Build(
        xpath, sink.get(), options_.machine_options, &symbols_));
    symbols_.Freeze();
  }
  VITEX_RETURN_IF_ERROR(built->status());

  {
    MutexLock lock(mu_);
    subscriptions_[id] = sink;
  }
  auto op = std::make_shared<ControlOp>();
  op->kind = ControlOp::Kind::kSubscribe;
  op->subscription = id;
  op->machine =
      std::make_unique<twigm::BuiltMachine>(std::move(*built).value());
  op->sink = std::move(sink);
  if (!EmitControl(std::move(op))) {
    MutexLock lock(mu_);
    subscriptions_.erase(id);
    return Status::InvalidArgument("service is stopped");
  }
  return id;
}

Status StreamService::Unsubscribe(SubscriptionId id) {
  MutexLock control_lock(control_mu_);
  {
    MutexLock lock(mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return Status::InvalidArgument("unknown subscription id");
    }
    subscriptions_.erase(it);
  }
  auto op = std::make_shared<ControlOp>();
  op->kind = ControlOp::Kind::kUnsubscribe;
  op->subscription = id;
  // A failed emit means the service is stopping: teardown removes every
  // machine anyway, so the unsubscribe is already effectively applied.
  EmitControl(std::move(op));
  return Status::OK();
}

Result<std::vector<Delivery>> StreamService::Drain(SubscriptionId id) {
  std::shared_ptr<SubscriberSink> sink;
  {
    MutexLock lock(mu_);
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) {
      return Status::InvalidArgument("unknown subscription id");
    }
    sink = it->second;
  }
  if (sink->is_push()) {
    return Status::InvalidArgument(
        "subscription is push-mode; deliveries go to its MatchSink");
  }
  return sink->Drain();
}

Status StreamService::Publish(std::string document) {
  size_t stream = static_cast<size_t>(next_stream_.fetch_add(
                      1, std::memory_order_relaxed)) %
                  streams_.size();
  return PublishToStream(stream, std::move(document));
}

Status StreamService::PublishToStream(size_t stream, std::string document) {
  if (stream >= streams_.size()) {
    return Status::InvalidArgument("stream index out of range");
  }
  StreamItem item;
  item.document = std::move(document);
  if (options_.enable_tracing) item.publish_ns = MonotonicNanos();
  if (!streams_[stream]->queue.Push(std::move(item))) {
    return Status::InvalidArgument("service is stopped");
  }
  streams_[stream]->documents_published.fetch_add(1,
                                                  std::memory_order_relaxed);
  documents_published_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status StreamService::Flush() {
  auto gate = std::make_shared<FlushGate>();
  {
    MutexLock gate_lock(gate->mu);
    gate->remaining = shards_.size();
  }
  auto op = std::make_shared<ControlOp>();
  op->kind = ControlOp::Kind::kFlush;
  op->gate = gate;
  bool emitted;
  {
    MutexLock control_lock(control_mu_);
    emitted = EmitControl(std::move(op));
  }
  if (!emitted) {
    // Stopping: Stop() drains everything, which is a stronger barrier, and
    // a partially emitted marker may never complete every shard's gate.
    MutexLock lock(mu_);
    return first_error_;
  }
  {
    MutexLock gate_lock(gate->mu);
    while (gate->remaining != 0) gate->cv.Wait(gate->mu);
  }
  MutexLock err_lock(mu_);
  return first_error_;
}

ServiceStats StreamService::stats() const {
  ServiceStats s;
  s.documents_published = documents_published_.load(std::memory_order_relaxed);
  s.documents_rejected = documents_rejected_.load(std::memory_order_relaxed);
  s.events_parsed = events_parsed_.load(std::memory_order_relaxed);
  s.results_delivered = results_delivered_.load(std::memory_order_relaxed);
  s.results_overflowed = results_overflowed_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    s.active_subscriptions = subscriptions_.size();
  }
  for (const auto& stream : streams_) {
    StreamStatsSnapshot snap;
    snap.documents_published =
        stream->documents_published.load(std::memory_order_relaxed);
    snap.documents_parsed =
        stream->documents_parsed.load(std::memory_order_relaxed);
    snap.documents_rejected =
        stream->documents_rejected.load(std::memory_order_relaxed);
    snap.events_parsed =
        stream->events_parsed.load(std::memory_order_relaxed);
    snap.queue_depth = stream->queue.size();
    snap.queue_high_watermark = stream->queue.high_watermark();
    snap.publish_blocked_nanos = stream->queue.producer_blocked_nanos();
    s.ingest_queue_depth += snap.queue_depth;
    s.streams.push_back(snap);
  }
  uint64_t min_docs = 0;
  bool first = true;
  for (const auto& shard : shards_) {
    ShardStatsSnapshot snap;
    snap.documents = shard->documents.load(std::memory_order_relaxed);
    snap.events = shard->events.load(std::memory_order_relaxed);
    snap.queue_depth = shard->inbox.size();
    snap.queue_high_watermark = shard->inbox.high_watermark();
    snap.fanout_blocked_nanos = shard->inbox.producer_blocked_nanos();
    snap.live_queries = shard->live_queries.load(std::memory_order_relaxed);
    snap.live_machines = shard->live_machines.load(std::memory_order_relaxed);
    s.active_plan_machines += snap.live_machines;
    {
      MutexLock lock(shard->dispatch_mu);
      snap.dispatch = shard->dispatch;
    }
    s.events_replayed += snap.events;
    min_docs = first ? snap.documents : std::min(min_docs, snap.documents);
    first = false;
    s.shards.push_back(snap);
  }
  s.documents_processed = min_docs;
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Rate floor: immediately after construction uptime is microseconds, and
  // dividing by it extrapolates the first few documents into absurd
  // per-second figures. Below the floor the honest answer is "no rate yet".
  if (s.uptime_seconds >= kMinRateUptimeSeconds) {
    s.docs_per_sec = static_cast<double>(s.documents_processed) /
                     s.uptime_seconds;
    s.events_per_sec =
        static_cast<double>(s.events_replayed) / s.uptime_seconds;
  }
  return s;
}

std::string StreamService::StatszText() const {
  // Snapshot-derived series first (ServiceStats counters, queue telemetry,
  // per-shard dispatch stats), then the registry's hot-path histograms.
  // Both halves share the serializer, so the payload is one consistent
  // Prometheus text exposition.
  ServiceStats s = stats();
  obs::PrometheusWriter w;
  w.WriteCounter("vitex_documents_published_total",
                 "Documents accepted by Publish", {}, s.documents_published);
  w.WriteCounter("vitex_documents_rejected_total",
                 "Published documents that failed the ingest parse", {},
                 s.documents_rejected);
  w.WriteCounter("vitex_documents_processed_total",
                 "Documents completed by every shard", {},
                 s.documents_processed);
  w.WriteCounter("vitex_events_parsed_total",
                 "SAX events recorded by the ingest parses", {},
                 s.events_parsed);
  w.WriteCounter("vitex_events_replayed_total",
                 "SAX events replayed into shard engines (sum over shards)",
                 {}, s.events_replayed);
  w.WriteCounter("vitex_results_delivered_total",
                 "Query solutions delivered into subscriber sinks", {},
                 s.results_delivered);
  w.WriteCounter("vitex_results_overflowed_total",
                 "Push-mode deliveries refused by their MatchSink and "
                 "dropped (match_sink.h overflow contract)",
                 {}, s.results_overflowed);
  w.WriteGauge("vitex_active_subscriptions", "Live standing subscriptions",
               {}, static_cast<double>(s.active_subscriptions));
  w.WriteGauge("vitex_active_plan_machines",
               "Live plan machines across shards (plan sharing keeps this "
               "at or below active_subscriptions)",
               {}, static_cast<double>(s.active_plan_machines));
  w.WriteGauge("vitex_uptime_seconds", "Seconds since service construction",
               {}, s.uptime_seconds);
  w.WriteGauge("vitex_docs_per_sec",
               "documents_processed / uptime (0 below the uptime floor)", {},
               s.docs_per_sec);
  w.WriteGauge("vitex_events_per_sec",
               "events_replayed / uptime (0 below the uptime floor)", {},
               s.events_per_sec);

  auto stream_label = [](size_t i) {
    return obs::Labels{{"stream", std::to_string(i)}};
  };
  for (size_t i = 0; i < s.streams.size(); ++i) {
    w.WriteCounter("vitex_stream_documents_published_total",
                   "Documents accepted by Publish, per stream",
                   stream_label(i), s.streams[i].documents_published);
  }
  for (size_t i = 0; i < s.streams.size(); ++i) {
    w.WriteCounter("vitex_stream_documents_parsed_total",
                   "Documents parsed OK, per stream", stream_label(i),
                   s.streams[i].documents_parsed);
  }
  for (size_t i = 0; i < s.streams.size(); ++i) {
    w.WriteCounter("vitex_stream_documents_rejected_total",
                   "Documents that failed to parse, per stream",
                   stream_label(i), s.streams[i].documents_rejected);
  }
  for (size_t i = 0; i < s.streams.size(); ++i) {
    w.WriteGauge("vitex_stream_queue_depth",
                 "Documents waiting in the stream's ingest queue",
                 stream_label(i),
                 static_cast<double>(s.streams[i].queue_depth));
  }
  for (size_t i = 0; i < s.streams.size(); ++i) {
    w.WriteGauge("vitex_stream_queue_high_watermark",
                 "Deepest the stream's ingest queue has ever been",
                 stream_label(i),
                 static_cast<double>(s.streams[i].queue_high_watermark));
  }
  for (size_t i = 0; i < s.streams.size(); ++i) {
    w.WriteCounter(
        "vitex_stream_publish_blocked_nanos_total",
        "Nanoseconds publishers spent blocked on this stream's full "
        "ingest queue (backpressure reaching the caller)",
        stream_label(i), s.streams[i].publish_blocked_nanos);
  }

  auto shard_label = [](size_t i) {
    return obs::Labels{{"shard", std::to_string(i)}};
  };
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteCounter("vitex_shard_documents_total",
                   "Documents fully processed, per shard", shard_label(i),
                   s.shards[i].documents);
  }
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteCounter("vitex_shard_events_total",
                   "SAX events replayed, per shard", shard_label(i),
                   s.shards[i].events);
  }
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteGauge("vitex_shard_inbox_depth",
                 "Items queued across the shard's inbox lanes",
                 shard_label(i), static_cast<double>(s.shards[i].queue_depth));
  }
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteGauge("vitex_shard_inbox_high_watermark",
                 "Deepest the shard's inbox has ever been (all lanes)",
                 shard_label(i),
                 static_cast<double>(s.shards[i].queue_high_watermark));
  }
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteCounter(
        "vitex_shard_fanout_blocked_nanos_total",
        "Nanoseconds parser streams spent blocked pushing into this "
        "shard's inbox (the shard was the bottleneck)",
        shard_label(i), s.shards[i].fanout_blocked_nanos);
  }
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteGauge("vitex_shard_live_queries", "Subscriptions owned, per shard",
                 shard_label(i),
                 static_cast<double>(s.shards[i].live_queries));
  }
  for (size_t i = 0; i < s.shards.size(); ++i) {
    w.WriteGauge("vitex_shard_live_machines",
                 "Plan machines executing, per shard (DESIGN.md §7)",
                 shard_label(i),
                 static_cast<double>(s.shards[i].live_machines));
  }
  // DispatchStats folded into the exposition: ForEachDispatchStat is the
  // single enumeration of the struct, so new engine counters show up here
  // without touching this file. Grouped name-major (one TYPE header per
  // metric, shards as labels).
  twigm::ForEachDispatchStat(
      twigm::DispatchStats{},
      [&](const char* field, uint64_t, bool is_gauge) {
        std::string name = std::string("vitex_shard_dispatch_") + field;
        if (!is_gauge) name += "_total";
        for (size_t i = 0; i < s.shards.size(); ++i) {
          uint64_t value = 0;
          twigm::ForEachDispatchStat(
              s.shards[i].dispatch,
              [&](const char* inner, uint64_t v, bool) {
                if (std::string_view(inner) == field) value = v;
              });
          if (is_gauge) {
            w.WriteGauge(name, "", shard_label(i),
                         static_cast<double>(value));
          } else {
            w.WriteCounter(name, "", shard_label(i), value);
          }
        }
      });

  std::string out = w.TakeText();
  out += registry_.RenderText();
  return out;
}

// ---------------------------------------------------------------------------
// Stream threads: parse once (concurrently with the other streams, under a
// shared lock on the frozen SymbolTable), fan the event log out to every
// shard; forward control markers in FIFO position.
// ---------------------------------------------------------------------------

void StreamService::StreamLoop(Stream* stream) {
  xml::SaxParserOptions parse_options = options_.sax_options;
  parse_options.symbols = &symbols_;
  while (std::optional<StreamItem> item = stream->queue.Pop()) {
    if (item->op != nullptr) {
      // Control marker: deliver to EVERY shard's lane before touching the
      // next queue item. This "fully forwarded before the next item"
      // invariant is what makes the shard barrier deadlock-free
      // (DESIGN.md §9).
      for (auto& shard : shards_) {
        ShardItem marker;
        marker.kind = ShardItem::Kind::kMarker;
        marker.op = item->op;
        shard->inbox.Push(stream->index, std::move(marker));
      }
      continue;
    }
    // Stage tracing: ingest-queue wait ends and the parse begins now.
    int64_t parse_start_ns = 0;
    if (stream->ingest_wait_hist != nullptr) {
      parse_start_ns = MonotonicNanos();
      stream->ingest_wait_hist->Record(
          static_cast<uint64_t>(parse_start_ns - item->publish_ns));
    }
    auto log = std::make_shared<xml::EventLog>();
    Status parsed;
    {
      // Parse with the table in its read-only phase: any number of streams
      // may hold this shared lock at once; only Subscribe takes it
      // exclusively (to intern a new query vocabulary).
      ReaderMutexLock symbols_lock(symbols_.mu());
      xml::EventRecorder recorder(log.get());
      parsed = xml::ParseString(item->document, &recorder, parse_options);
    }
    int64_t parse_done_ns = 0;
    if (stream->parse_hist != nullptr) {
      parse_done_ns = MonotonicNanos();
      // Rejected documents still count: their parse work was real.
      stream->parse_hist->Record(
          static_cast<uint64_t>(parse_done_ns - parse_start_ns));
    }
    if (!parsed.ok()) {
      // A malformed publication is dropped, not fatal: pub/sub streams
      // outlive one bad document.
      stream->documents_rejected.fetch_add(1, std::memory_order_relaxed);
      documents_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stream->documents_parsed.fetch_add(1, std::memory_order_relaxed);
    stream->events_parsed.fetch_add(log->size(), std::memory_order_relaxed);
    events_parsed_.fetch_add(log->size(), std::memory_order_relaxed);
    std::shared_ptr<DocTrace> trace;
    if (stream->parse_hist != nullptr) {
      trace = std::make_shared<DocTrace>();
      trace->publish_ns = item->publish_ns;
      trace->shards_remaining.store(shards_.size(),
                                    std::memory_order_relaxed);
    }
    for (auto& shard : shards_) {
      ShardItem doc;
      doc.kind = ShardItem::Kind::kDocument;
      doc.log = log;  // shared: one parse, N replays
      doc.enqueue_ns = parse_done_ns;
      doc.trace = trace;
      shard->inbox.Push(stream->index, std::move(doc));  // backpressure
    }
  }
  // Stream queue closed and drained: release this lane on every shard.
  for (auto& shard : shards_) shard->inbox.CloseLane(stream->index);
}

// ---------------------------------------------------------------------------
// Shard threads: merge the per-stream lanes, replaying documents into the
// private engine and applying control ops at their epoch boundary — when
// the op's marker has arrived on every lane. A lane that has delivered the
// pending op's marker is held back (its cap) until the barrier completes,
// so no document published after the op's epoch is replayed before it.
// ---------------------------------------------------------------------------

void StreamService::ApplyControl(Shard* shard, ControlOp* op) {
  twigm::MultiQueryEngine& engine = *shard->engine;
  switch (op->kind) {
    case ControlOp::Kind::kSubscribe: {
      if (shard->failed) break;
      Result<twigm::QueryId> qid = engine.AddBuilt(std::move(*op->machine));
      if (!qid.ok()) {
        RecordError(qid.status());
        break;
      }
      shard->queries[op->subscription] = qid.value();
      shard->sinks[op->subscription] = std::move(op->sink);
      shard->live_queries.store(shard->queries.size(),
                                std::memory_order_relaxed);
      shard->live_machines.store(engine.machine_count(),
                                 std::memory_order_relaxed);
      break;
    }
    case ControlOp::Kind::kUnsubscribe: {
      auto it = shard->queries.find(op->subscription);
      if (it == shard->queries.end()) break;  // never installed (failed)
      if (!shard->failed) {
        (void)engine.RemoveQuery(it->second);
      }
      shard->queries.erase(it);
      shard->sinks.erase(op->subscription);
      shard->live_queries.store(shard->queries.size(),
                                std::memory_order_relaxed);
      shard->live_machines.store(engine.machine_count(),
                                 std::memory_order_relaxed);
      break;
    }
    case ControlOp::Kind::kFlush: {
      MutexLock lock(op->gate->mu);
      if (--op->gate->remaining == 0) op->gate->cv.NotifyAll();
      break;
    }
  }
}

void StreamService::ShardLoop(Shard* shard) {
  const size_t lanes = streams_.size();
  // Per-lane pop counts (single consumer: these mirror the inbox's own
  // counts) and the active caps. limits[l] == popped[l] freezes lane l.
  std::vector<uint64_t> popped(lanes, 0);
  std::vector<uint64_t> limits(lanes, BoundedQueueGroup<ShardItem>::kNoLimit);
  std::shared_ptr<ControlOp> pending;  // barrier in progress
  size_t lanes_at_barrier = 0;
  // Ops force-applied during shutdown drain: stale copies of their marker
  // may still surface from other lanes and must not re-barrier (a flush
  // gate decremented twice, a subscribe's machine moved-from twice).
  std::unordered_set<const ControlOp*> force_applied;

  while (true) {
    std::optional<BoundedQueueGroup<ShardItem>::Popped> next =
        shard->inbox.PopReady(limits.data());
    if (!next.has_value()) {
      if (pending != nullptr) {
        // Shutdown drain: some lane closed before delivering the pending
        // op's marker (its emit raced Stop()). Epoch exactness is moot —
        // every machine is about to be torn down — but flush gates must
        // still release their waiters, so force-apply and keep draining.
        ApplyControl(shard, pending.get());
        force_applied.insert(pending.get());
        pending.reset();
        lanes_at_barrier = 0;
        std::fill(limits.begin(), limits.end(),
                  BoundedQueueGroup<ShardItem>::kNoLimit);
        continue;
      }
      break;  // every lane closed and fully drained
    }
    const size_t lane = next->lane;
    ++popped[lane];
    ShardItem& item = next->item;
    if (item.kind == ShardItem::Kind::kDocument) {
      if (shard->failed) continue;  // fail-stop, but keep draining
      const bool traced =
          shard->match_hist != nullptr && item.trace != nullptr;
      int64_t pop_ns = 0;
      if (traced) {
        pop_ns = MonotonicNanos();
        shard->queue_wait_hist->Record(
            static_cast<uint64_t>(pop_ns - item.enqueue_ns));
      }
      Status status = shard->engine->RunEvents(*item.log);
      if (!status.ok()) {
        shard->failed = true;
        RecordError(status);
        continue;
      }
      if (traced) {
        int64_t done_ns = MonotonicNanos();
        shard->match_hist->Record(static_cast<uint64_t>(done_ns - pop_ns));
        // The last shard to finish this document owns its end-to-end
        // latency sample.
        if (item.trace->shards_remaining.fetch_sub(
                1, std::memory_order_relaxed) == 1) {
          e2e_hist_->Record(
              static_cast<uint64_t>(done_ns - item.trace->publish_ns));
        }
      }
      shard->documents.fetch_add(1, std::memory_order_relaxed);
      shard->events.fetch_add(item.log->size(), std::memory_order_relaxed);
      MutexLock lock(shard->dispatch_mu);
      shard->dispatch = shard->engine->dispatch_stats();
      continue;
    }
    // Marker. Because ops enter every lane in one consistent order and a
    // lane freezes once it delivers the pending op's marker, a marker
    // popped while a barrier is pending is either that op's (from a lane
    // that hadn't delivered it yet) or an older, not-handled-here op's.
    if (force_applied.count(item.op.get()) != 0) continue;  // stale copy
    if (pending != nullptr) {
      if (item.op != pending) continue;  // older op, no barrier here
    } else if (ShardHandles(*shard, *item.op)) {
      pending = item.op;
      lanes_at_barrier = 0;
    } else {
      continue;  // marker for another shard's subscription
    }
    limits[lane] = popped[lane];  // freeze this lane at the epoch boundary
    if (++lanes_at_barrier == lanes) {
      ApplyControl(shard, pending.get());
      pending.reset();
      lanes_at_barrier = 0;
      std::fill(limits.begin(), limits.end(),
                BoundedQueueGroup<ShardItem>::kNoLimit);
    }
  }
}

}  // namespace vitex::service
