// ViteX public API facade — the one header an embedding application (or a
// protocol front end, src/net/) includes to run the streaming-XPath
// pub/sub service.
//
// The runtime underneath (service::StreamService) grew its surface by
// accretion: Subscribe/Drain/Publish/PublishToStream plus a family of
// stats structs. This header consolidates that into the small, documented,
// stable API:
//
//   vitex::Service       — the pub/sub engine: subscribe XPath queries,
//                          publish XML documents, deliveries fan out to
//                          every matching subscription.
//   vitex::Subscription  — an RAII handle: owns one standing subscription
//                          and unsubscribes when destroyed. Pull mode
//                          buffers deliveries for Drain(); push mode hands
//                          each delivery to a caller MatchSink as it is
//                          produced (match_sink.h).
//
// Everything a caller needs is reachable from here: Status/Result for
// errors (common/status.h — the same coarse StatusCode enum the wire
// protocol in src/net/ transports 1:1), SinkOptions/MatchSink/Delivery
// for delivery modes, ServiceOptions for construction-time tuning, and
// ServiceStats/StatszText() for observability. The wire protocol
// (DESIGN.md §13) is defined purely in terms of the operations on this
// facade; anything not expressible here is not on the wire.
//
// Thread safety: every method on Service is safe to call from any thread.
// A Subscription handle itself is NOT thread-safe (one owner at a time,
// like a file handle), but different handles are independent. Handles
// must not outlive their Service.

#ifndef VITEX_SERVICE_VITEX_H_
#define VITEX_SERVICE_VITEX_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "service/match_sink.h"
#include "service/stream_service.h"

namespace vitex {

// The facade's vocabulary, re-exported at the public namespace so callers
// write `vitex::Delivery`, never `vitex::service::...`.
using service::Delivery;
using service::DeliveryMode;
using service::MatchSink;
using service::ServiceStats;
using service::ShardStatsSnapshot;
using service::SinkOptions;
using service::StreamStatsSnapshot;
using service::SubscriptionId;
using ServiceOptions = service::StreamServiceOptions;

class Service;

/// Owns one standing subscription; unsubscribes on destruction.
///
/// Obtained from Service::Subscribe. Move-only: the handle that goes out
/// of scope last (or has Unsubscribe() called on it) ends the
/// subscription at that moment's epoch boundary. A default-constructed or
/// moved-from handle is inactive and does nothing on destruction.
class Subscription {
 public:
  Subscription() = default;
  ~Subscription() { (void)CancelIfActive(); }

  Subscription(Subscription&& other) noexcept
      : service_(other.service_), id_(other.id_) {
    other.service_ = nullptr;
  }
  Subscription& operator=(Subscription&& other) noexcept {
    if (this != &other) {
      (void)CancelIfActive();
      service_ = other.service_;
      id_ = other.id_;
      other.service_ = nullptr;
    }
    return *this;
  }
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  /// True while this handle owns a live subscription.
  bool active() const { return service_ != nullptr; }

  /// The service-wide subscription id (what the wire protocol transports).
  SubscriptionId id() const { return id_; }

  /// Collects pending deliveries of a pull-mode subscription (error for
  /// push mode). Deliveries of one document arrive only after its owning
  /// shard finished that document — Service::Flush() forces completion.
  Result<std::vector<Delivery>> Drain();

  /// Ends the subscription now (instead of at destruction). Idempotent:
  /// the handle becomes inactive; later calls return OK.
  Status Unsubscribe();

 private:
  friend class Service;
  Subscription(service::StreamService* svc, SubscriptionId id)
      : service_(svc), id_(id) {}

  Status CancelIfActive();

  service::StreamService* service_ = nullptr;
  SubscriptionId id_ = 0;
};

/// The ViteX streaming-XPath pub/sub service (paper: many standing XPath
/// subscriptions, streams of XML documents, incremental match delivery).
///
/// Construction starts the worker threads (ServiceOptions::shard_count
/// match shards, ServiceOptions::stream_count publisher streams);
/// destruction (or Stop()) drains and joins them. See
/// service/stream_service.h for the runtime architecture.
class Service {
 public:
  explicit Service(ServiceOptions options = {}) : impl_(std::move(options)) {}

  /// Registers a pull-mode standing subscription: deliveries buffer
  /// internally until the handle's Drain(). The subscription sees every
  /// document published after this call returns and none published before
  /// it was called (epoch-exact; DESIGN.md §9).
  Result<Subscription> Subscribe(std::string_view xpath) {
    return Subscribe(xpath, SinkOptions{});
  }

  /// Registers a standing subscription with an explicit delivery mode.
  /// Push mode (options.sink) delivers on an internal thread as matches
  /// are produced — see match_sink.h for the full contract.
  Result<Subscription> Subscribe(std::string_view xpath,
                                 SinkOptions options) {
    Result<SubscriptionId> id = impl_.Subscribe(xpath, std::move(options));
    VITEX_RETURN_IF_ERROR(id.status());
    return Subscription(&impl_, id.value());
  }

  /// Publishes one XML document to every subscription, on a round-robin
  /// publisher stream. Blocks only under backpressure (bounded ingest
  /// queues); processing is asynchronous. A document that fails to parse
  /// counts as rejected and is dropped without stopping the service.
  Status Publish(std::string document) {
    return impl_.Publish(std::move(document));
  }

  /// Publish pinned to one stream: documents published to the same stream
  /// are parsed, matched and delivered in publish order (cross-stream
  /// order is unspecified). `stream` must be < stream_count().
  Status PublishToStream(size_t stream, std::string document) {
    return impl_.PublishToStream(stream, std::move(document));
  }

  /// Blocks until everything published (and every subscribe/unsubscribe
  /// issued) before this call has been fully processed by every shard.
  Status Flush() { return impl_.Flush(); }

  /// Drains all queues, stops every worker thread and returns the first
  /// error the service encountered. Idempotent; the destructor calls it.
  Status Stop() { return impl_.Stop(); }

  size_t shard_count() const { return impl_.shard_count(); }
  size_t stream_count() const { return impl_.stream_count(); }

  /// A consistent snapshot of every pipeline counter (documents, events,
  /// deliveries, overflow drops, queue depths/watermarks, per-shard and
  /// per-stream detail).
  ServiceStats stats() const { return impl_.stats(); }

  /// The /statsz payload: stats() plus the per-stage latency histograms,
  /// in Prometheus text exposition format (DESIGN.md §10). This is what
  /// the TCP front end serves for STATS frames and HTTP GET /statsz.
  std::string StatszText() const { return impl_.StatszText(); }

 private:
  friend class Subscription;
  service::StreamService impl_;
};

inline Result<std::vector<Delivery>> Subscription::Drain() {
  if (service_ == nullptr) {
    return Status::InvalidArgument("subscription handle is inactive");
  }
  return service_->Drain(id_);
}

inline Status Subscription::Unsubscribe() {
  if (service_ == nullptr) return Status::OK();
  return CancelIfActive();
}

inline Status Subscription::CancelIfActive() {
  if (service_ == nullptr) return Status::OK();
  service::StreamService* svc = service_;
  service_ = nullptr;
  return svc->Unsubscribe(id_);
}

}  // namespace vitex

#endif  // VITEX_SERVICE_VITEX_H_
