#include "twigm/machine.h"

#include <algorithm>
#include <cassert>

#include "xml/escape.h"

namespace vitex::twigm {

using xpath::Axis;
using xpath::QueryNode;

TwigMachine::TwigMachine(const xpath::Query* query, ResultHandler* results)
    : TwigMachine(query, results, Options(), nullptr) {}

TwigMachine::TwigMachine(const xpath::Query* query, ResultHandler* results,
                         Options options)
    : TwigMachine(query, results, options, nullptr) {}

TwigMachine::TwigMachine(const xpath::Query* query, ResultHandler* results,
                         Options options, SymbolTable* symbols)
    : query_(query),
      results_(results),
      options_(options),
      symbols_(symbols),
      candidates_(&memory_) {
  if (symbols_ == nullptr) {
    owned_symbols_ = std::make_unique<SymbolTable>();
    symbols_ = owned_symbols_.get();
  }
  nodes_.resize(query_->size());
  for (const auto& qn : query_->nodes()) {
    MachineNode& m = nodes_[qn->id];
    m.query = qn.get();
    m.parent_id = qn->parent == nullptr ? -1 : qn->parent->id;
    if (qn->IsAttributeNode()) {
      attribute_nodes_.push_back(qn->id);
      attribute_node_symbols_.push_back(
          qn->test == xpath::NodeTestKind::kWildcard
              ? kNoSymbol
              : symbols_->Intern(qn->name));
      if (qn->parent == nullptr || qn->descendant_attribute) {
        has_unanchored_attributes_ = true;
      }
    } else if (qn->IsTextNode()) {
      text_nodes_.push_back(qn->id);
      if (qn->parent == nullptr) has_bare_text_ = true;
    } else if (qn->test == xpath::NodeTestKind::kWildcard) {
      element_wildcards_.push_back(qn->id);
    } else {
      // Intern the name test once; from here on the machine never touches
      // the query's string storage on the hot path.
      Symbol sym = symbols_->Intern(qn->name);
      auto it = std::find_if(
          element_index_.begin(), element_index_.end(),
          [sym](const auto& entry) { return entry.first == sym; });
      if (it == element_index_.end()) {
        element_index_.emplace_back(sym, std::vector<int>());
        it = std::prev(element_index_.end());
      }
      it->second.push_back(qn->id);  // preorder, since qn iterates preorder
    }
  }
  std::sort(element_index_.begin(), element_index_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  output_is_element_ = query_->output()->IsElementNode();

  // Shared-plan shape: parameter slots in preorder (the numbering
  // xpath::Canonicalize uses), the parametric closure (a node whose subtree
  // contains a slot has per-group satisfaction), and each node's
  // parametric-child -> pmasks-slot map. Cheap and static, so computed
  // unconditionally; it only takes effect under BindPlan.
  param_slot_of_node_.assign(query_->size(), -1);
  parametric_.assign(query_->size(), 0);
  for (const auto& qn : query_->nodes()) {
    if (qn->value_op != xpath::CompareOp::kNone) {
      param_slot_of_node_[qn->id] = static_cast<int>(param_slot_count_++);
      parametric_[qn->id] = 1;
    }
  }
  // Ids are preorder, so a reverse sweep sees children before parents.
  for (size_t i = query_->size(); i-- > 0;) {
    const QueryNode* qn = query_->nodes()[i].get();
    if (parametric_[qn->id] && qn->parent != nullptr) {
      parametric_[qn->parent->id] = 1;
    }
  }
  for (MachineNode& m : nodes_) {
    m.pchild_slot.assign(m.query->children.size(), -1);
    for (size_t c = 0; c < m.query->children.size(); ++c) {
      if (parametric_[m.query->children[c]->id]) {
        m.pchild_slot[c] = m.pchild_count++;
      }
    }
  }
}

namespace {
uint64_t MaskForGroups(size_t group_count) {
  if (group_count >= 64) return ~0ull;
  return (1ull << group_count) - 1;
}
}  // namespace

Status TwigMachine::BindPlan(const PlanBindings* bindings,
                             GroupResultSink* sink) {
  if (bindings == nullptr) {
    bindings_ = nullptr;
    group_sink_ = nullptr;
    full_mask_ = ~0ull;
    return Status::OK();
  }
  if (bindings->slot_count != param_slot_count_) {
    return Status::InvalidArgument(
        "plan bindings have a different slot count than the query's "
        "value-tested nodes");
  }
  if (bindings->group_count > 64) {
    return Status::InvalidArgument(
        "a shared plan machine supports at most 64 subscriber groups");
  }
  bindings_ = bindings;
  group_sink_ = sink;
  full_mask_ = MaskForGroups(bindings->group_count);
  return Status::OK();
}

const std::vector<int>* TwigMachine::FindElementMatches(Symbol symbol) const {
  if (symbol >= kAbsentSymbol) return nullptr;  // kAbsent / kNo sentinels
  auto it = std::lower_bound(
      element_index_.begin(), element_index_.end(), symbol,
      [](const auto& entry, Symbol s) { return entry.first < s; });
  if (it == element_index_.end() || it->first != symbol) return nullptr;
  return &it->second;
}

void TwigMachine::Reset() {
  // Versioned memory (DESIGN.md §12): bumping the generation makes every
  // node stack and candidate slot from the previous document stale without
  // visiting them — TouchStack() invalidates each stack lazily on first
  // use, and all pooled capacity (stack slots, pmasks/candidate vectors,
  // fragment buffers, recording buffers) is retained.
  ++generation_;
  candidates_.Reset();
  stats_ = MachineStats();
  memory_ = MemoryTracker();
  live_entries_ = 0;
  pending_text_.Clear();
  recordings_size_ = 0;
  completed_fragment_.clear();
  has_completed_fragment_ = false;
  sequence_counter_ = 0;
}

Status TwigMachine::StartDocument() {
  Reset();
  // Group membership may change between documents (subscribe/unsubscribe at
  // epoch boundaries mutate the bindings while the machine is idle).
  if (bindings_ != nullptr) full_mask_ = MaskForGroups(bindings_->group_count);
  return Status::OK();
}

uint64_t TwigMachine::ParamMatchMask(const xpath::QueryNode* q,
                                     std::string_view value) const {
  int slot = param_slot_of_node_[q->id];
  uint64_t mask = 0;
  for (size_t g = 0; g < bindings_->group_count; ++g) {
    if (bindings_->param(g, static_cast<size_t>(slot))
            .Matches(q->value_op, value)) {
      mask |= 1ull << g;
    }
  }
  return mask;
}

uint64_t TwigMachine::EvaluateFormulaMask(const xpath::Formula& f,
                                          const MachineNode& node,
                                          const StackEntry& entry) const {
  using Kind = xpath::Formula::Kind;
  switch (f.kind) {
    case Kind::kTrue:
      return full_mask_;
    case Kind::kAtom: {
      int slot = node.pchild_slot[f.atom_child];
      if (slot >= 0) return entry.pmasks[slot];
      return ((entry.child_bits >> f.atom_child) & 1u) ? full_mask_ : 0;
    }
    case Kind::kAnd: {
      uint64_t m = full_mask_;
      for (const xpath::Formula& op : f.operands) {
        m &= EvaluateFormulaMask(op, node, entry);
        if (m == 0) break;
      }
      return m;
    }
    case Kind::kOr: {
      uint64_t m = 0;
      for (const xpath::Formula& op : f.operands) {
        m |= EvaluateFormulaMask(op, node, entry);
        if (m == full_mask_) break;
      }
      return m;
    }
    case Kind::kNot:
      return full_mask_ & ~EvaluateFormulaMask(f.operands[0], node, entry);
  }
  return 0;
}

uint64_t TwigMachine::SatisfactionMask(const MachineNode& node,
                                       const StackEntry& entry) {
  if (bindings_ != nullptr && parametric_[node.query->id]) {
    return EvaluateFormulaMask(node.query->formula, node, entry);
  }
  return node.query->formula.Evaluate(entry.child_bits) ? full_mask_ : 0;
}

void TwigMachine::DeliverResult(std::string_view fragment, uint64_t sequence,
                                uint64_t group_mask) {
  if (bindings_ != nullptr) {
    group_mask &= full_mask_;
    if (group_mask == 0) return;
    // One "result" per (solution, group). Groups with several members
    // (identical queries) fan out further in the sink, so this counts
    // distinct per-group solutions, not individual subscriber deliveries.
    stats_.results_emitted +=
        static_cast<uint64_t>(__builtin_popcountll(group_mask));
    if (group_sink_ != nullptr) {
      group_sink_->OnGroupResult(fragment, sequence, group_mask);
    }
    return;
  }
  ++stats_.results_emitted;
  if (results_ != nullptr) results_->OnResult(fragment, sequence);
}

Status TwigMachine::CheckMemoryLimit() const {
  if (options_.memory_limit_bytes != 0 &&
      memory_.live_bytes() > options_.memory_limit_bytes) {
    return Status::ResourceExhausted(
        "TwigM live memory exceeds the configured limit");
  }
  return Status::OK();
}

bool TwigMachine::AxisSatisfiable(const MachineNode& node, int level) {
  const QueryNode* q = node.query;
  if (node.parent_id < 0) {
    // The machine root matches against a virtual document-root entry at
    // level 0: '/a' requires level 1, '//a' accepts any level.
    return q->axis == Axis::kDescendant || level == 1;
  }
  MachineNode& parent = nodes_[node.parent_id];
  TouchStack(parent);
  if (parent.stack_size == 0) return false;
  const StackEntry* st = parent.stack.data();
  if (q->axis == Axis::kDescendant) {
    // A strict ancestor: some open entry at a smaller level. Entries are
    // sorted by level, so the bottom one is the smallest.
    return st[0].level < level;
  }
  // Child axis: an open entry exactly one level up. The only entry that can
  // sit above it is one pushed for this same element (level == level), so a
  // bounded scan from the top suffices.
  for (size_t i = parent.stack_size; i-- > 0;) {
    if (st[i].level == level - 1) return true;
    if (st[i].level < level - 1) return false;
  }
  return false;
}

template <typename Fn>
void TwigMachine::ForEachPropagationTarget(const MachineNode& node, int level,
                                           Fn fn) {
  if (node.parent_id < 0) return;
  MachineNode& parent = nodes_[node.parent_id];
  TouchStack(parent);
  StackEntry* st = parent.stack.data();
  const size_t n = parent.stack_size;
  const QueryNode* q = node.query;
  switch (q->axis) {
    case Axis::kChild:
      for (size_t i = n; i-- > 0;) {
        if (st[i].level == level - 1) {
          fn(st[i]);
          return;
        }
        if (st[i].level < level - 1) return;
      }
      return;
    case Axis::kDescendant:
      // Every strict ancestor entry (levels < level). Entries at `level`
      // belong to this element itself and are excluded.
      for (size_t i = 0; i < n; ++i) {
        if (st[i].level >= level) break;
        fn(st[i]);
      }
      return;
    case Axis::kAttribute:
      if (q->descendant_attribute) {
        // Descendant-or-self: the owner element or any open ancestor.
        for (size_t i = 0; i < n; ++i) {
          if (st[i].level > level) break;
          fn(st[i]);
        }
      } else {
        // The owner element's entry only (same level, pushed this event).
        if (n > 0 && st[n - 1].level == level) fn(st[n - 1]);
      }
      return;
    case Axis::kSelf:
      return;  // kSelf never reaches the machine (compiled away)
  }
}

void TwigMachine::PushEntry(MachineNode& node, int level, uint64_t sequence) {
  TouchStack(node);
  if (node.stack_size == node.stack.size()) {
    node.stack.emplace_back();  // warmup growth only; slot is then pooled
  }
  StackEntry& e = node.stack[node.stack_size++];
  e.level = level;
  e.child_bits = 0;
  e.sequence = sequence;
  // A reused slot may carry CandidateRefs from a document that aborted
  // mid-element; their slot ids are stale in the versioned store (no Unref
  // owed — the store's Reset already reclaimed everything).
  e.candidates.clear();
  size_t extra = 0;
  if (bindings_ != nullptr && node.pchild_count > 0) {
    e.pmasks.assign(static_cast<size_t>(node.pchild_count), 0);
    extra = static_cast<size_t>(node.pchild_count) * sizeof(uint64_t);
  } else {
    e.pmasks.clear();
  }
  ++live_entries_;
  ++stats_.pushes;
  if (live_entries_ > stats_.peak_stack_entries) {
    stats_.peak_stack_entries = live_entries_;
  }
  memory_.Add(sizeof(StackEntry) + extra);
}

StackEntry& TwigMachine::PopEntry(MachineNode& node) {
  StackEntry& e = node.stack[--node.stack_size];
  --live_entries_;
  ++stats_.pops;
  memory_.Release(sizeof(StackEntry) + e.pmasks.size() * sizeof(uint64_t));
  return e;
}

// ---------------------------------------------------------------------------
// Recordings: serialize the subtree of every open output-node match.
// ---------------------------------------------------------------------------

void TwigMachine::RecordingsOnStart(const xml::StartElementEvent& event,
                                    bool output_pushed) {
  if (output_pushed && output_is_element_) {
    if (recordings_size_ == recordings_.size()) {
      recordings_.emplace_back();  // warmup growth only
    }
    Recording& r = recordings_[recordings_size_++];
    r.level = event.depth;
    r.buffer.clear();  // pooled buffer, capacity retained
    r.start_tag_open = false;
  }
  if (recordings_size_ == 0) return;
  // Build the tag once (pooled scratch), then append to every recording.
  tag_scratch_.clear();
  tag_scratch_.push_back('<');
  tag_scratch_.append(event.name);
  for (const xml::Attribute& a : event.attributes) {
    tag_scratch_.push_back(' ');
    tag_scratch_.append(a.name);
    tag_scratch_.append("=\"");
    xml::EscapeAttributeInto(a.value, &tag_scratch_);
    tag_scratch_.push_back('"');
  }
  for (size_t ri = 0; ri < recordings_size_; ++ri) {
    Recording& r = recordings_[ri];
    size_t before = r.buffer.size();
    if (r.start_tag_open) {
      r.buffer.push_back('>');
      r.start_tag_open = false;
    }
    r.buffer.append(tag_scratch_);
    r.start_tag_open = true;
    memory_.Add(r.buffer.size() - before);
  }
}

void TwigMachine::RecordingsOnText(std::string_view text) {
  if (recordings_size_ == 0) return;
  text_escape_scratch_.clear();
  xml::EscapeTextInto(text, &text_escape_scratch_);
  for (size_t ri = 0; ri < recordings_size_; ++ri) {
    Recording& r = recordings_[ri];
    size_t before = r.buffer.size();
    if (r.start_tag_open) {
      r.buffer.push_back('>');
      r.start_tag_open = false;
    }
    r.buffer.append(text_escape_scratch_);
    memory_.Add(r.buffer.size() - before);
  }
}

void TwigMachine::RecordingsOnEnd(std::string_view name, int depth) {
  if (recordings_size_ == 0) return;
  for (size_t ri = 0; ri < recordings_size_; ++ri) {
    Recording& r = recordings_[ri];
    size_t before = r.buffer.size();
    if (r.start_tag_open) {
      r.buffer.append("/>");
      r.start_tag_open = false;
    } else {
      r.buffer.append("</");
      r.buffer.append(name);
      r.buffer.push_back('>');
    }
    memory_.Add(r.buffer.size() - before);
  }
  Recording& last = recordings_[recordings_size_ - 1];
  if (last.level == depth) {
    memory_.Release(last.buffer.size());
    // Swap rather than move: the recording slot inherits the previous
    // completed fragment's capacity, so both buffers stay pooled.
    completed_fragment_.swap(last.buffer);
    has_completed_fragment_ = true;
    --recordings_size_;
  }
}

// ---------------------------------------------------------------------------
// Event processing.
// ---------------------------------------------------------------------------

Status TwigMachine::StartElement(const xml::StartElementEvent& event) {
  VITEX_RETURN_IF_ERROR(FlushText());
  ++stats_.start_events;
  // Sequence numbering is query-independent: one number for the element,
  // then one per attribute (matched or not), so machines running different
  // queries over the same stream assign identical document-order keys.
  // Producers that stamp sequences (the SAX parser) follow the same rule;
  // their numbers are authoritative — a dispatcher may have skipped events
  // for this machine, in which case the internal counter is meaningless.
  uint64_t seq;
  if (event.sequence != xml::kNoSequence) {
    seq = event.sequence;
  } else {
    seq = sequence_counter_;
    sequence_counter_ += 1 + event.attributes.size();
  }
  int level = event.depth;

  // Resolve the tag to a symbol: stamped by the producer when it shares our
  // table (kAbsentSymbol marks a producer-side miss — no point re-hashing),
  // otherwise one hash here.
  Symbol sym = event.symbol;
  if (sym == kNoSymbol) sym = symbols_->Lookup(event.name);

  // Collect matching element machine nodes in id (preorder) order so parent
  // pushes land before child axis checks.
  match_scratch_.clear();
  if (const std::vector<int>* matches = FindElementMatches(sym)) {
    match_scratch_ = *matches;
  }
  if (!element_wildcards_.empty()) {
    match_scratch_.insert(match_scratch_.end(), element_wildcards_.begin(),
                          element_wildcards_.end());
    std::sort(match_scratch_.begin(), match_scratch_.end());
  }

  bool output_pushed = false;
  for (int id : match_scratch_) {
    MachineNode& node = nodes_[id];
    if (AxisSatisfiable(node, level)) {
      PushEntry(node, level, seq);
      if (node.query->is_output) output_pushed = true;
    }
  }

  RecordingsOnStart(event, output_pushed);

  if (!event.attributes.empty() && !attribute_nodes_.empty()) {
    VITEX_RETURN_IF_ERROR(ProcessAttributes(event, seq));
  }
  return CheckMemoryLimit();
}

Status TwigMachine::ProcessAttributes(const xml::StartElementEvent& event,
                                      uint64_t element_seq) {
  int level = event.depth;
  for (size_t ni = 0; ni < attribute_nodes_.size(); ++ni) {
    int id = attribute_nodes_[ni];
    Symbol name_sym = attribute_node_symbols_[ni];
    MachineNode& node = nodes_[id];
    const QueryNode* q = node.query;
    for (size_t ai = 0; ai < event.attributes.size(); ++ai) {
      const xml::Attribute& attr = event.attributes[ai];
      // Symbol equality when both sides are resolved against our table;
      // string comparison otherwise (wildcard tests accept any name).
      if (name_sym != kNoSymbol) {
        if (attr.symbol != kNoSymbol ? attr.symbol != name_sym
                                     : q->name != attr.name) {
          continue;
        }
      }
      // Parameterized comparison: the groups whose bound literal matches.
      // Uniform nodes keep the single compiled-in comparison.
      uint64_t match_mask = full_mask_;
      if (bindings_ != nullptr && param_slot_of_node_[id] >= 0) {
        match_mask = ParamMatchMask(q, attr.value);
        if (match_mask == 0) continue;
      } else if (!q->CompareValue(attr.value)) {
        continue;
      }
      // The attribute "matches and pops" instantly: bookkeep into the
      // owning/ancestor entries of the parent machine node right away.
      uint64_t attr_seq = element_seq + 1 + ai;
      CandidateId cand = 0;
      bool is_output = q->is_output;
      if (node.parent_id < 0) {
        // A bare attribute query. `//@id` (descendant-or-self of the
        // document root) matches every id attribute and emits immediately;
        // `/@id` asks for attributes of the document node, which cannot
        // exist.
        if (is_output && q->descendant_attribute) {
          DeliverResult(attr.value, attr_seq, match_mask);
        }
        continue;
      }
      int parent_slot =
          bindings_ != nullptr && parametric_[id]
              ? nodes_[node.parent_id].pchild_slot[q->index_in_parent]
              : -1;
      if (is_output) {
        cand = candidates_.Create(attr.value, attr_seq);
      }
      ForEachPropagationTarget(node, level, [&](StackEntry& target) {
        if (parent_slot >= 0) {
          target.pmasks[parent_slot] |= match_mask;
        } else {
          target.child_bits |= 1ull << q->index_in_parent;
        }
        ++stats_.bit_propagations;
        if (is_output) {
          target.candidates.push_back(CandidateRef{cand, match_mask});
          candidates_.Ref(cand);
          ++stats_.candidate_transfers;
          memory_.Add(sizeof(CandidateRef));
        }
      });
      if (is_output) {
        candidates_.Unref(cand);  // drop the creation reference
      }
    }
  }
  return Status::OK();
}

Status TwigMachine::Characters(std::string_view text, int depth) {
  return Text(xml::TextEvent{text, depth, xml::kNoSequence});
}

Status TwigMachine::Text(const xml::TextEvent& event) {
  // Coalesce adjacent character events (chunk boundaries, CDATA seams) so a
  // text node is evaluated exactly once, whole.
  pending_text_.Append(event);
  memory_.Add(event.text.size());
  return CheckMemoryLimit();
}

Status TwigMachine::FlushText() {
  if (pending_text_.empty()) return Status::OK();
  // Swap rather than move: the coalescer keeps the scratch's old capacity
  // for the next text node, so neither buffer reallocates in steady state.
  text_node_scratch_.swap(pending_text_.buffer);
  int depth = pending_text_.depth;
  uint64_t seq = pending_text_.sequence != xml::kNoSequence
                     ? pending_text_.sequence
                     : sequence_counter_++;
  pending_text_.Clear();
  memory_.Release(text_node_scratch_.size());
  RecordingsOnText(text_node_scratch_);
  return ProcessTextNode(text_node_scratch_, depth, seq);
}

Status TwigMachine::TextNode(std::string_view text, int depth,
                             uint64_t sequence) {
  VITEX_RETURN_IF_ERROR(FlushText());  // no-op under central coalescing
  uint64_t seq =
      sequence != xml::kNoSequence ? sequence : sequence_counter_++;
  // Charge the node against this machine's budget while it is processed,
  // exactly as the buffering path does, so live state + text still honors
  // the configured ceiling under central coalescing.
  memory_.Add(text.size());
  Status status = CheckMemoryLimit();
  if (status.ok()) {
    RecordingsOnText(text);
    status = ProcessTextNode(text, depth, seq);
  }
  memory_.Release(text.size());
  return status;
}

Status TwigMachine::ProcessTextNode(std::string_view text, int depth,
                                    uint64_t seq) {
  ++stats_.text_events;
  if (text_nodes_.empty()) return Status::OK();
  for (int id : text_nodes_) {
    MachineNode& node = nodes_[id];
    const QueryNode* q = node.query;
    uint64_t match_mask = full_mask_;
    if (bindings_ != nullptr && param_slot_of_node_[id] >= 0) {
      match_mask = ParamMatchMask(q, text);
      if (match_mask == 0) continue;
    } else if (!q->CompareValue(text)) {
      continue;
    }
    if (node.parent_id < 0) {
      // A bare text query. `//text()` matches every text node in the
      // document; `/text()` asks for text children of the document node,
      // which are not well-formed XML.
      if (q->is_output && q->axis == Axis::kDescendant) {
        DeliverResult(text, seq, match_mask);
      }
      continue;
    }
    MachineNode& parent = nodes_[node.parent_id];
    TouchStack(parent);
    if (parent.stack_size == 0) continue;
    bool is_output = q->is_output;
    int parent_slot =
        bindings_ != nullptr && parametric_[id]
            ? parent.pchild_slot[q->index_in_parent]
            : -1;
    CandidateId cand = 0;
    if (is_output) {
      cand = candidates_.Create(text, seq);
    }
    // Targets: child axis — the enclosing element's entry (level == depth);
    // descendant axis — every open entry (all are strict ancestors of the
    // text node).
    auto deliver = [&](StackEntry& target) {
      if (parent_slot >= 0) {
        target.pmasks[parent_slot] |= match_mask;
      } else {
        target.child_bits |= 1ull << q->index_in_parent;
      }
      ++stats_.bit_propagations;
      if (is_output) {
        target.candidates.push_back(CandidateRef{cand, match_mask});
        candidates_.Ref(cand);
        ++stats_.candidate_transfers;
        memory_.Add(sizeof(CandidateRef));
      }
    };
    StackEntry* st = parent.stack.data();
    const size_t n = parent.stack_size;
    if (q->axis == Axis::kChild) {
      if (st[n - 1].level == depth) deliver(st[n - 1]);
    } else {
      for (size_t ei = 0; ei < n; ++ei) {
        if (st[ei].level > depth) break;
        deliver(st[ei]);
      }
    }
    if (is_output) candidates_.Unref(cand);
  }
  return CheckMemoryLimit();
}

Status TwigMachine::EndElement(std::string_view name, int depth) {
  VITEX_RETURN_IF_ERROR(FlushText());
  ++stats_.end_events;
  RecordingsOnEnd(name, depth);

  // Pop in reverse preorder: child machine nodes bookkeep into parents
  // before any same-event parent state is examined.
  for (size_t i = nodes_.size(); i-- > 0;) {
    MachineNode& node = nodes_[i];
    TouchStack(node);
    if (node.stack_size == 0 ||
        node.stack[node.stack_size - 1].level != depth) {
      continue;
    }
    if (!node.query->IsElementNode()) continue;
    StackEntry& entry = PopEntry(node);
    // Satisfaction as a group mask: all-or-nothing for uniform machines and
    // uniform nodes, per-group for parametric nodes (a pop may qualify the
    // subtree for some subscriber groups and not others).
    uint64_t sat_mask = SatisfactionMask(node, entry);
    if (sat_mask == 0) {
      DropCandidates(entry);
      continue;
    }
    ++stats_.satisfied_pops;
    if (node.query->is_output) {
      // The recording for this element completed in RecordingsOnEnd. The
      // store copies the fragment into a pooled slot buffer, so the
      // completed-fragment buffer keeps its capacity for the next match.
      assert(has_completed_fragment_);
      CandidateId cand =
          candidates_.Create(completed_fragment_, entry.sequence);
      completed_fragment_.clear();
      has_completed_fragment_ = false;
      // Full mask at birth: qualification narrows via sat_mask on each hop.
      entry.candidates.push_back(CandidateRef{cand, ~0ull});
      memory_.Add(sizeof(CandidateRef));
    }
    PropagateSatisfiedPop(node, entry, sat_mask);
  }
  // A recording completed for an output entry that popped unsatisfied is
  // discarded here.
  if (has_completed_fragment_) {
    completed_fragment_.clear();
    has_completed_fragment_ = false;
  }
  return CheckMemoryLimit();
}

void TwigMachine::PropagateSatisfiedPop(MachineNode& node, StackEntry& entry,
                                        uint64_t sat_mask) {
  if (node.parent_id < 0) {
    // Machine root: candidates are proven query solutions (for the groups
    // that survive their accumulated mask).
    EmitCandidates(entry, sat_mask);
    return;
  }
  const QueryNode* q = node.query;
  int parent_slot =
      bindings_ != nullptr && parametric_[q->id]
          ? nodes_[node.parent_id].pchild_slot[q->index_in_parent]
          : -1;
  ForEachPropagationTarget(node, entry.level, [&](StackEntry& target) {
    if (parent_slot >= 0) {
      target.pmasks[parent_slot] |= sat_mask;
    } else {
      target.child_bits |= 1ull << q->index_in_parent;
    }
    ++stats_.bit_propagations;
    for (const CandidateRef& ref : entry.candidates) {
      uint64_t mask = ref.mask & sat_mask;
      if (mask == 0) continue;  // no group can still qualify via this path
      target.candidates.push_back(CandidateRef{ref.id, mask});
      candidates_.Ref(ref.id);
      ++stats_.candidate_transfers;
      memory_.Add(sizeof(CandidateRef));
    }
  });
  DropCandidates(entry);
}

void TwigMachine::EmitCandidates(StackEntry& entry, uint64_t sat_mask) {
  memory_.Release(entry.candidates.size() * sizeof(CandidateRef));
  for (const CandidateRef& ref : entry.candidates) {
    uint64_t newly = candidates_.MarkEmitted(ref.id, ref.mask & sat_mask);
    if (newly != 0) {
      DeliverResult(candidates_.fragment(ref.id), candidates_.sequence(ref.id),
                    newly);
    }
    candidates_.Unref(ref.id);
  }
  entry.candidates.clear();
}

void TwigMachine::DropCandidates(StackEntry& entry) {
  memory_.Release(entry.candidates.size() * sizeof(CandidateRef));
  for (const CandidateRef& ref : entry.candidates) {
    candidates_.Unref(ref.id);
  }
  entry.candidates.clear();
}

Status TwigMachine::EndDocument() {
  VITEX_RETURN_IF_ERROR(FlushText());
  for (const MachineNode& node : nodes_) {
    // A stale stack (untouched this document) is logically empty.
    if (node.stack_gen == generation_ && node.stack_size != 0) {
      return Status::Internal(
          "TwigM invariant violation: nonempty stack at end of document");
    }
  }
  if (recordings_size_ != 0) {
    return Status::Internal(
        "TwigM invariant violation: open recording at end of document");
  }
  return Status::OK();
}

std::string TwigMachine::DebugString() const {
  std::string out;
  for (const MachineNode& node : nodes_) {
    const QueryNode* q = node.query;
    out += "node " + std::to_string(q->id) + " (";
    if (q->IsAttributeNode()) out += "@";
    if (q->test == xpath::NodeTestKind::kWildcard) {
      out += "*";
    } else if (q->IsTextNode()) {
      out += "text()";
    } else {
      out += q->name;
    }
    out += "): [";
    // Read-only view: a stale stack renders empty without being touched.
    size_t live = node.stack_gen == generation_ ? node.stack_size : 0;
    for (size_t i = 0; i < live; ++i) {
      const StackEntry& e = node.stack[i];
      if (i > 0) out += ", ";
      out += "{L" + std::to_string(e.level) +
             " bits=" + std::to_string(e.child_bits) +
             " cands=" + std::to_string(e.candidates.size()) + "}";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace vitex::twigm
