#include "twigm/machine.h"

#include <algorithm>
#include <cassert>

#include "xml/escape.h"

namespace vitex::twigm {

using xpath::Axis;
using xpath::QueryNode;

TwigMachine::TwigMachine(const xpath::Query* query, ResultHandler* results)
    : TwigMachine(query, results, Options(), nullptr) {}

TwigMachine::TwigMachine(const xpath::Query* query, ResultHandler* results,
                         Options options)
    : TwigMachine(query, results, options, nullptr) {}

TwigMachine::TwigMachine(const xpath::Query* query, ResultHandler* results,
                         Options options, SymbolTable* symbols)
    : query_(query),
      results_(results),
      options_(options),
      symbols_(symbols),
      candidates_(&memory_) {
  if (symbols_ == nullptr) {
    owned_symbols_ = std::make_unique<SymbolTable>();
    symbols_ = owned_symbols_.get();
  }
  nodes_.resize(query_->size());
  for (const auto& qn : query_->nodes()) {
    MachineNode& m = nodes_[qn->id];
    m.query = qn.get();
    m.parent_id = qn->parent == nullptr ? -1 : qn->parent->id;
    if (qn->IsAttributeNode()) {
      attribute_nodes_.push_back(qn->id);
      attribute_node_symbols_.push_back(
          qn->test == xpath::NodeTestKind::kWildcard
              ? kNoSymbol
              : symbols_->Intern(qn->name));
      if (qn->parent == nullptr || qn->descendant_attribute) {
        has_unanchored_attributes_ = true;
      }
    } else if (qn->IsTextNode()) {
      text_nodes_.push_back(qn->id);
      if (qn->parent == nullptr) has_bare_text_ = true;
    } else if (qn->test == xpath::NodeTestKind::kWildcard) {
      element_wildcards_.push_back(qn->id);
    } else {
      // Intern the name test once; from here on the machine never touches
      // the query's string storage on the hot path.
      Symbol sym = symbols_->Intern(qn->name);
      auto it = std::find_if(
          element_index_.begin(), element_index_.end(),
          [sym](const auto& entry) { return entry.first == sym; });
      if (it == element_index_.end()) {
        element_index_.emplace_back(sym, std::vector<int>());
        it = std::prev(element_index_.end());
      }
      it->second.push_back(qn->id);  // preorder, since qn iterates preorder
    }
  }
  std::sort(element_index_.begin(), element_index_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  output_is_element_ = query_->output()->IsElementNode();
}

const std::vector<int>* TwigMachine::FindElementMatches(Symbol symbol) const {
  if (symbol >= kAbsentSymbol) return nullptr;  // kAbsent / kNo sentinels
  auto it = std::lower_bound(
      element_index_.begin(), element_index_.end(), symbol,
      [](const auto& entry, Symbol s) { return entry.first < s; });
  if (it == element_index_.end() || it->first != symbol) return nullptr;
  return &it->second;
}

void TwigMachine::Reset() {
  for (MachineNode& m : nodes_) m.stack.clear();
  candidates_.Reset();
  stats_ = MachineStats();
  memory_ = MemoryTracker();
  live_entries_ = 0;
  pending_text_.Clear();
  recordings_.clear();
  completed_fragment_.clear();
  has_completed_fragment_ = false;
  sequence_counter_ = 0;
}

Status TwigMachine::StartDocument() {
  Reset();
  return Status::OK();
}

Status TwigMachine::CheckMemoryLimit() const {
  if (options_.memory_limit_bytes != 0 &&
      memory_.live_bytes() > options_.memory_limit_bytes) {
    return Status::ResourceExhausted(
        "TwigM live memory exceeds the configured limit");
  }
  return Status::OK();
}

bool TwigMachine::AxisSatisfiable(const MachineNode& node, int level) const {
  const QueryNode* q = node.query;
  if (node.parent_id < 0) {
    // The machine root matches against a virtual document-root entry at
    // level 0: '/a' requires level 1, '//a' accepts any level.
    return q->axis == Axis::kDescendant || level == 1;
  }
  const std::vector<StackEntry>& st = nodes_[node.parent_id].stack;
  if (st.empty()) return false;
  if (q->axis == Axis::kDescendant) {
    // A strict ancestor: some open entry at a smaller level. Entries are
    // sorted by level, so the bottom one is the smallest.
    return st.front().level < level;
  }
  // Child axis: an open entry exactly one level up. The only entry that can
  // sit above it is one pushed for this same element (level == level), so a
  // bounded scan from the top suffices.
  for (size_t i = st.size(); i-- > 0;) {
    if (st[i].level == level - 1) return true;
    if (st[i].level < level - 1) return false;
  }
  return false;
}

template <typename Fn>
void TwigMachine::ForEachPropagationTarget(const MachineNode& node, int level,
                                           Fn fn) {
  if (node.parent_id < 0) return;
  std::vector<StackEntry>& st = nodes_[node.parent_id].stack;
  const QueryNode* q = node.query;
  switch (q->axis) {
    case Axis::kChild:
      for (size_t i = st.size(); i-- > 0;) {
        if (st[i].level == level - 1) {
          fn(st[i]);
          return;
        }
        if (st[i].level < level - 1) return;
      }
      return;
    case Axis::kDescendant:
      // Every strict ancestor entry (levels < level). Entries at `level`
      // belong to this element itself and are excluded.
      for (StackEntry& e : st) {
        if (e.level >= level) break;
        fn(e);
      }
      return;
    case Axis::kAttribute:
      if (q->descendant_attribute) {
        // Descendant-or-self: the owner element or any open ancestor.
        for (StackEntry& e : st) {
          if (e.level > level) break;
          fn(e);
        }
      } else {
        // The owner element's entry only (same level, pushed this event).
        if (!st.empty() && st.back().level == level) fn(st.back());
      }
      return;
    case Axis::kSelf:
      return;  // kSelf never reaches the machine (compiled away)
  }
}

void TwigMachine::PushEntry(MachineNode& node, int level, uint64_t sequence) {
  node.stack.push_back(StackEntry{level, 0, sequence, {}});
  ++live_entries_;
  ++stats_.pushes;
  if (live_entries_ > stats_.peak_stack_entries) {
    stats_.peak_stack_entries = live_entries_;
  }
  memory_.Add(sizeof(StackEntry));
}

StackEntry TwigMachine::PopEntry(MachineNode& node) {
  StackEntry e = std::move(node.stack.back());
  node.stack.pop_back();
  --live_entries_;
  ++stats_.pops;
  memory_.Release(sizeof(StackEntry));
  return e;
}

// ---------------------------------------------------------------------------
// Recordings: serialize the subtree of every open output-node match.
// ---------------------------------------------------------------------------

void TwigMachine::RecordingsOnStart(const xml::StartElementEvent& event,
                                    bool output_pushed) {
  if (output_pushed && output_is_element_) {
    recordings_.push_back(Recording{event.depth, std::string(), false});
  }
  if (recordings_.empty()) return;
  // Build the tag once, then append to every active recording.
  std::string tag;
  tag.push_back('<');
  tag.append(event.name);
  for (const xml::Attribute& a : event.attributes) {
    tag.push_back(' ');
    tag.append(a.name);
    tag.append("=\"");
    tag.append(xml::EscapeAttribute(a.value));
    tag.push_back('"');
  }
  for (Recording& r : recordings_) {
    size_t before = r.buffer.size();
    if (r.start_tag_open) {
      r.buffer.push_back('>');
      r.start_tag_open = false;
    }
    r.buffer.append(tag);
    r.start_tag_open = true;
    memory_.Add(r.buffer.size() - before);
  }
}

void TwigMachine::RecordingsOnText(std::string_view text) {
  if (recordings_.empty()) return;
  std::string escaped = xml::EscapeText(text);
  for (Recording& r : recordings_) {
    size_t before = r.buffer.size();
    if (r.start_tag_open) {
      r.buffer.push_back('>');
      r.start_tag_open = false;
    }
    r.buffer.append(escaped);
    memory_.Add(r.buffer.size() - before);
  }
}

void TwigMachine::RecordingsOnEnd(std::string_view name, int depth) {
  if (recordings_.empty()) return;
  for (Recording& r : recordings_) {
    size_t before = r.buffer.size();
    if (r.start_tag_open) {
      r.buffer.append("/>");
      r.start_tag_open = false;
    } else {
      r.buffer.append("</");
      r.buffer.append(name);
      r.buffer.push_back('>');
    }
    memory_.Add(r.buffer.size() - before);
  }
  if (recordings_.back().level == depth) {
    memory_.Release(recordings_.back().buffer.size());
    completed_fragment_ = std::move(recordings_.back().buffer);
    has_completed_fragment_ = true;
    recordings_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Event processing.
// ---------------------------------------------------------------------------

Status TwigMachine::StartElement(const xml::StartElementEvent& event) {
  VITEX_RETURN_IF_ERROR(FlushText());
  ++stats_.start_events;
  // Sequence numbering is query-independent: one number for the element,
  // then one per attribute (matched or not), so machines running different
  // queries over the same stream assign identical document-order keys.
  // Producers that stamp sequences (the SAX parser) follow the same rule;
  // their numbers are authoritative — a dispatcher may have skipped events
  // for this machine, in which case the internal counter is meaningless.
  uint64_t seq;
  if (event.sequence != xml::kNoSequence) {
    seq = event.sequence;
  } else {
    seq = sequence_counter_;
    sequence_counter_ += 1 + event.attributes.size();
  }
  int level = event.depth;

  // Resolve the tag to a symbol: stamped by the producer when it shares our
  // table (kAbsentSymbol marks a producer-side miss — no point re-hashing),
  // otherwise one hash here.
  Symbol sym = event.symbol;
  if (sym == kNoSymbol) sym = symbols_->Lookup(event.name);

  // Collect matching element machine nodes in id (preorder) order so parent
  // pushes land before child axis checks.
  match_scratch_.clear();
  if (const std::vector<int>* matches = FindElementMatches(sym)) {
    match_scratch_ = *matches;
  }
  if (!element_wildcards_.empty()) {
    match_scratch_.insert(match_scratch_.end(), element_wildcards_.begin(),
                          element_wildcards_.end());
    std::sort(match_scratch_.begin(), match_scratch_.end());
  }

  bool output_pushed = false;
  for (int id : match_scratch_) {
    MachineNode& node = nodes_[id];
    if (AxisSatisfiable(node, level)) {
      PushEntry(node, level, seq);
      if (node.query->is_output) output_pushed = true;
    }
  }

  RecordingsOnStart(event, output_pushed);

  if (!event.attributes.empty() && !attribute_nodes_.empty()) {
    VITEX_RETURN_IF_ERROR(ProcessAttributes(event, seq));
  }
  return CheckMemoryLimit();
}

Status TwigMachine::ProcessAttributes(const xml::StartElementEvent& event,
                                      uint64_t element_seq) {
  int level = event.depth;
  for (size_t ni = 0; ni < attribute_nodes_.size(); ++ni) {
    int id = attribute_nodes_[ni];
    Symbol name_sym = attribute_node_symbols_[ni];
    MachineNode& node = nodes_[id];
    const QueryNode* q = node.query;
    for (size_t ai = 0; ai < event.attributes.size(); ++ai) {
      const xml::Attribute& attr = event.attributes[ai];
      // Symbol equality when both sides are resolved against our table;
      // string comparison otherwise (wildcard tests accept any name).
      if (name_sym != kNoSymbol) {
        if (attr.symbol != kNoSymbol ? attr.symbol != name_sym
                                     : q->name != attr.name) {
          continue;
        }
      }
      if (!q->CompareValue(attr.value)) continue;
      // The attribute "matches and pops" instantly: bookkeep into the
      // owning/ancestor entries of the parent machine node right away.
      uint64_t attr_seq = element_seq + 1 + ai;
      CandidateId cand = 0;
      bool is_output = q->is_output;
      if (node.parent_id < 0) {
        // A bare attribute query. `//@id` (descendant-or-self of the
        // document root) matches every id attribute and emits immediately;
        // `/@id` asks for attributes of the document node, which cannot
        // exist.
        if (is_output && q->descendant_attribute) {
          ++stats_.results_emitted;
          if (results_ != nullptr) {
            results_->OnResult(attr.value, attr_seq);
          }
        }
        continue;
      }
      if (is_output) {
        cand = candidates_.Create(std::string(attr.value), attr_seq);
      }
      bool delivered = false;
      ForEachPropagationTarget(node, level, [&](StackEntry& target) {
        target.child_bits |= 1ull << q->index_in_parent;
        ++stats_.bit_propagations;
        if (is_output) {
          target.candidates.push_back(cand);
          candidates_.Ref(cand);
          ++stats_.candidate_transfers;
          memory_.Add(sizeof(CandidateId));
        }
        delivered = true;
      });
      (void)delivered;
      if (is_output) {
        candidates_.Unref(cand);  // drop the creation reference
      }
    }
  }
  return Status::OK();
}

Status TwigMachine::Characters(std::string_view text, int depth) {
  return Text(xml::TextEvent{text, depth, xml::kNoSequence});
}

Status TwigMachine::Text(const xml::TextEvent& event) {
  // Coalesce adjacent character events (chunk boundaries, CDATA seams) so a
  // text node is evaluated exactly once, whole.
  pending_text_.Append(event);
  memory_.Add(event.text.size());
  return CheckMemoryLimit();
}

Status TwigMachine::FlushText() {
  if (pending_text_.empty()) return Status::OK();
  std::string text = std::move(pending_text_.buffer);
  int depth = pending_text_.depth;
  uint64_t seq = pending_text_.sequence != xml::kNoSequence
                     ? pending_text_.sequence
                     : sequence_counter_++;
  pending_text_.Clear();
  memory_.Release(text.size());
  RecordingsOnText(text);
  return ProcessTextNode(text, depth, seq);
}

Status TwigMachine::TextNode(std::string_view text, int depth,
                             uint64_t sequence) {
  VITEX_RETURN_IF_ERROR(FlushText());  // no-op under central coalescing
  uint64_t seq =
      sequence != xml::kNoSequence ? sequence : sequence_counter_++;
  // Charge the node against this machine's budget while it is processed,
  // exactly as the buffering path does, so live state + text still honors
  // the configured ceiling under central coalescing.
  memory_.Add(text.size());
  Status status = CheckMemoryLimit();
  if (status.ok()) {
    RecordingsOnText(text);
    status = ProcessTextNode(text, depth, seq);
  }
  memory_.Release(text.size());
  return status;
}

Status TwigMachine::ProcessTextNode(std::string_view text, int depth,
                                    uint64_t seq) {
  ++stats_.text_events;
  if (text_nodes_.empty()) return Status::OK();
  for (int id : text_nodes_) {
    MachineNode& node = nodes_[id];
    const QueryNode* q = node.query;
    if (!q->CompareValue(text)) continue;
    if (node.parent_id < 0) {
      // A bare text query. `//text()` matches every text node in the
      // document; `/text()` asks for text children of the document node,
      // which are not well-formed XML.
      if (q->is_output && q->axis == Axis::kDescendant) {
        ++stats_.results_emitted;
        if (results_ != nullptr) results_->OnResult(text, seq);
      }
      continue;
    }
    std::vector<StackEntry>& stm = nodes_[node.parent_id].stack;
    if (stm.empty()) continue;
    bool is_output = q->is_output;
    CandidateId cand = 0;
    if (is_output) {
      cand = candidates_.Create(std::string(text), seq);
    }
    // Targets: child axis — the enclosing element's entry (level == depth);
    // descendant axis — every open entry (all are strict ancestors of the
    // text node).
    auto deliver = [&](StackEntry& target) {
      target.child_bits |= 1ull << q->index_in_parent;
      ++stats_.bit_propagations;
      if (is_output) {
        target.candidates.push_back(cand);
        candidates_.Ref(cand);
        ++stats_.candidate_transfers;
        memory_.Add(sizeof(CandidateId));
      }
    };
    if (q->axis == Axis::kChild) {
      if (!stm.empty() && stm.back().level == depth) deliver(stm.back());
    } else {
      for (StackEntry& e : stm) {
        if (e.level > depth) break;
        deliver(e);
      }
    }
    if (is_output) candidates_.Unref(cand);
  }
  return CheckMemoryLimit();
}

Status TwigMachine::EndElement(std::string_view name, int depth) {
  VITEX_RETURN_IF_ERROR(FlushText());
  ++stats_.end_events;
  RecordingsOnEnd(name, depth);

  // Pop in reverse preorder: child machine nodes bookkeep into parents
  // before any same-event parent state is examined.
  for (size_t i = nodes_.size(); i-- > 0;) {
    MachineNode& node = nodes_[i];
    if (node.stack.empty() || node.stack.back().level != depth) continue;
    if (!node.query->IsElementNode()) continue;
    StackEntry entry = PopEntry(node);
    bool satisfied = node.query->formula.Evaluate(entry.child_bits);
    if (!satisfied) {
      DropCandidates(entry);
      continue;
    }
    ++stats_.satisfied_pops;
    if (node.query->is_output) {
      // The recording for this element completed in RecordingsOnEnd.
      assert(has_completed_fragment_);
      CandidateId cand = candidates_.Create(std::move(completed_fragment_),
                                            entry.sequence);
      completed_fragment_.clear();
      has_completed_fragment_ = false;
      entry.candidates.push_back(cand);
      memory_.Add(sizeof(CandidateId));
    }
    PropagateSatisfiedPop(node, entry);
  }
  // A recording completed for an output entry that popped unsatisfied is
  // discarded here.
  if (has_completed_fragment_) {
    completed_fragment_.clear();
    has_completed_fragment_ = false;
  }
  return CheckMemoryLimit();
}

void TwigMachine::PropagateSatisfiedPop(MachineNode& node, StackEntry& entry) {
  if (node.parent_id < 0) {
    // Machine root: candidates are proven query solutions.
    EmitCandidates(entry);
    return;
  }
  const QueryNode* q = node.query;
  ForEachPropagationTarget(node, entry.level, [&](StackEntry& target) {
    target.child_bits |= 1ull << q->index_in_parent;
    ++stats_.bit_propagations;
    for (CandidateId cand : entry.candidates) {
      target.candidates.push_back(cand);
      candidates_.Ref(cand);
      ++stats_.candidate_transfers;
      memory_.Add(sizeof(CandidateId));
    }
  });
  DropCandidates(entry);
}

void TwigMachine::EmitCandidates(StackEntry& entry) {
  memory_.Release(entry.candidates.size() * sizeof(CandidateId));
  for (CandidateId cand : entry.candidates) {
    if (candidates_.MarkEmitted(cand)) {
      ++stats_.results_emitted;
      if (results_ != nullptr) {
        results_->OnResult(candidates_.fragment(cand),
                           candidates_.sequence(cand));
      }
    }
    candidates_.Unref(cand);
  }
  entry.candidates.clear();
}

void TwigMachine::DropCandidates(StackEntry& entry) {
  memory_.Release(entry.candidates.size() * sizeof(CandidateId));
  for (CandidateId cand : entry.candidates) {
    candidates_.Unref(cand);
  }
  entry.candidates.clear();
}

Status TwigMachine::EndDocument() {
  VITEX_RETURN_IF_ERROR(FlushText());
  for (const MachineNode& node : nodes_) {
    if (!node.stack.empty()) {
      return Status::Internal(
          "TwigM invariant violation: nonempty stack at end of document");
    }
  }
  if (!recordings_.empty()) {
    return Status::Internal(
        "TwigM invariant violation: open recording at end of document");
  }
  return Status::OK();
}

std::string TwigMachine::DebugString() const {
  std::string out;
  for (const MachineNode& node : nodes_) {
    const QueryNode* q = node.query;
    out += "node " + std::to_string(q->id) + " (";
    if (q->IsAttributeNode()) out += "@";
    if (q->test == xpath::NodeTestKind::kWildcard) {
      out += "*";
    } else if (q->IsTextNode()) {
      out += "text()";
    } else {
      out += q->name;
    }
    out += "): [";
    for (size_t i = 0; i < node.stack.size(); ++i) {
      const StackEntry& e = node.stack[i];
      if (i > 0) out += ", ";
      out += "{L" + std::to_string(e.level) +
             " bits=" + std::to_string(e.child_bits) +
             " cands=" + std::to_string(e.candidates.size()) + "}";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace vitex::twigm
