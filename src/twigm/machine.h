// TwigM: the streaming query processor of ViteX (paper §3.2).
//
// One machine node per query node, organized in the query's tree shape; each
// machine node owns a stack. A stack entry is the paper's triplet:
//
//     ⟨ level of the matching XML node,
//       match status of the node's children in the query tree (a bitset),
//       candidate query solutions ⟩
//
// * startElement(tag, level): for every machine node whose test matches
//   `tag` and whose incoming axis is satisfiable against the parent's stack
//   (child ⇒ an open entry at level-1; descendant ⇒ an open entry at a
//   strictly smaller level), push ⟨level, ∅, ∅⟩.
// * endElement(tag, level): pop every entry at `level`. If the popped
//   entry's satisfaction formula over its child-match bits holds, bookkeep
//   the match into the parent's entries — the level-1 entry for a child
//   edge, every open entry below for a descendant edge — and move the
//   entry's candidate solutions up with it. An unsatisfied pop discards its
//   candidate references.
// * a satisfied pop at the machine root proves its candidates are query
//   solutions; they are emitted immediately (lazy, incremental output).
//
// The stacks encode the worst-case-exponential set of pattern matches in
// polynomial space: an XML node with k open ancestor matches per query node
// never multiplies them out. Work per event is O(|Q|·(|Q|+B)) in the worst
// case, giving the paper's O(|D|·|Q|·(|Q|+B)) total.

#ifndef VITEX_TWIGM_MACHINE_H_
#define VITEX_TWIGM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "twigm/candidate_store.h"
#include "twigm/result.h"
#include "xml/sax_event.h"
#include "xpath/canonical.h"
#include "xpath/query.h"

namespace vitex::twigm {

/// Parameter bindings of a shared plan (DESIGN.md §7): the per-group
/// comparison literals a skeleton machine evaluates in place of its own
/// query's literals. Group g's literal for slot s is
/// `params[g * slot_count + s]` (group-major); slots are numbered in
/// preorder of the query's value-tested nodes, matching
/// xpath::CanonicalQuery::params. The engine mutates bindings only at
/// document boundaries, while the machine is idle.
struct PlanBindings {
  size_t group_count = 0;
  size_t slot_count = 0;
  std::vector<xpath::ValueParam> params;

  const xpath::ValueParam& param(size_t group, size_t slot) const {
    return params[group * slot_count + slot];
  }
};

/// Reference to a shared candidate held by one stack entry. `mask` is the
/// set of subscriber groups for which this pattern match can still qualify
/// the candidate; it narrows (ANDs) with every partially-satisfied pop on
/// the way to the machine root. Single-query machines keep it all-ones.
struct CandidateRef {
  CandidateId id = 0;
  uint64_t mask = ~0ull;
};

/// One stack entry: the paper's ⟨level, child-match status, candidates⟩.
struct StackEntry {
  int level = 0;
  /// Bit i set ⇔ child i of this query node has a satisfied match in the
  /// subtree of this entry's XML node (final when the element closes).
  /// For *parametric* children (subtree contains a plan-parameterized
  /// comparison) the bit is unused; their per-group status lives in
  /// `pmasks`.
  uint64_t child_bits = 0;
  /// Document-order sequence number of the matching XML node.
  uint64_t sequence = 0;
  /// Per-group match masks of this node's parametric children, indexed by
  /// MachineNode::pchild_slot. Empty unless the machine runs a
  /// parameterized plan and this node has parametric children.
  std::vector<uint64_t> pmasks;
  /// Candidate solutions whose qualification depends on this entry's match.
  std::vector<CandidateRef> candidates;
};

/// One machine node: a query node plus its stack.
///
/// The stack is *pooled and versioned* (DESIGN.md §12): `stack` is storage,
/// entries [0, stack_size) are the live ones, and slots above keep their
/// heap capacity (pmasks/candidates vectors) for reuse. A stack whose
/// `stack_gen` differs from the machine's current document generation
/// belongs to a previous document and is logically empty; it is invalidated
/// lazily on first touch (TwigMachine::TouchStack), which is what makes a
/// whole-machine reset O(1) instead of O(nodes).
struct MachineNode {
  const xpath::QueryNode* query = nullptr;
  int parent_id = -1;
  std::vector<StackEntry> stack;
  size_t stack_size = 0;
  uint64_t stack_gen = 0;
  /// pchild_slot[i] is the pmasks index of child i, or -1 for a uniform
  /// (non-parametric) child. Populated only under plan bindings.
  std::vector<int> pchild_slot;
  int pchild_count = 0;
};

/// Counters for the machine's work (drive the complexity experiments).
struct MachineStats {
  uint64_t start_events = 0;
  uint64_t end_events = 0;
  uint64_t text_events = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t satisfied_pops = 0;
  uint64_t bit_propagations = 0;
  uint64_t candidate_transfers = 0;
  uint64_t results_emitted = 0;
  /// Peak of the total number of stack entries across all machine nodes —
  /// the paper's "compact encoding" size (compare with the naive matcher's
  /// pattern-match count, experiment E7).
  uint64_t peak_stack_entries = 0;
};

/// The TwigM machine. It is an xml::ContentHandler: connect it directly to a
/// SaxParser (or any event source) and read results from the ResultHandler.
class TwigMachine : public xml::ContentHandler {
 public:
  struct Options {
    /// Abort with ResourceExhausted when live engine memory exceeds this
    /// many bytes (0 = unlimited).
    size_t memory_limit_bytes = 0;
  };

  /// @param query must outlive the machine. Only the QueryNode tree is
  ///        referenced after construction (name tests are interned into the
  ///        symbol table up front), so moving the Query *object* elsewhere —
  ///        as BuiltMachine does — is safe; the nodes it owns stay put.
  /// @param results must outlive the machine; may be null to discard.
  /// @param symbols the SymbolTable the machine's match index is built
  ///        against; must outlive the machine. When null, the machine owns a
  ///        private table. Incoming events whose `symbol` fields were
  ///        resolved against a *different* table must not be fed to this
  ///        machine (ids would alias); unstamped events are always fine —
  ///        the machine falls back to one Lookup per event.
  TwigMachine(const xpath::Query* query, ResultHandler* results);
  TwigMachine(const xpath::Query* query, ResultHandler* results,
              Options options);
  TwigMachine(const xpath::Query* query, ResultHandler* results,
              Options options, SymbolTable* symbols);

  TwigMachine(const TwigMachine&) = delete;
  TwigMachine& operator=(const TwigMachine&) = delete;

  // --- ContentHandler interface ------------------------------------------
  Status StartDocument() override;
  Status StartElement(const xml::StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;
  Status Characters(std::string_view text, int depth) override;
  Status Text(const xml::TextEvent& event) override;
  Status EndDocument() override;

  // --- Dispatch interface (MultiQueryEngine) -----------------------------
  /// Delivers one whole, already-coalesced text node. Used by dispatchers
  /// that coalesce character data centrally instead of sending every piece
  /// to every machine. `sequence` must be the producer-stamped number of the
  /// node (kNoSequence falls back to the internal counter).
  Status TextNode(std::string_view text, int depth, uint64_t sequence);

  // --- Shared-plan interface (MultiQueryEngine, DESIGN.md §7) ------------
  /// Binds this machine to a shared plan: value comparisons on slot nodes
  /// evaluate `bindings`' per-group literals instead of the query's own,
  /// and solutions are delivered to `sink` with the qualifying group mask
  /// (ResultHandler is bypassed). Both pointers must outlive the machine or
  /// a later BindPlan. Must be called at a document boundary; the engine
  /// may mutate `*bindings` between documents (the machine re-reads
  /// group_count each StartDocument). Pass nullptrs to unbind.
  /// Precondition: bindings->slot_count equals the query's value-tested
  /// node count and group_count <= 64 (checked).
  Status BindPlan(const PlanBindings* bindings, GroupResultSink* sink);
  /// True when bound to a shared plan (grouped delivery in effect).
  bool plan_bound() const { return bindings_ != nullptr; }

  /// The ResultHandler this machine was built with (fan-out layers lift it
  /// into a subscriber list when the machine joins a shared plan).
  ResultHandler* results() const { return results_; }

  /// True while a match of an element-valued output node is open and its
  /// subtree is being serialized: the machine must then observe *every*
  /// event, whatever its tag. Dispatchers broadcast to active recorders.
  bool recording_active() const { return recordings_size_ > 0; }
  /// True if the query's output node selects elements (only then can
  /// recording_active() ever become true).
  bool output_is_element() const { return output_is_element_; }

  // --- Introspection -------------------------------------------------------
  /// The symbol table the match index is built against (owned or borrowed).
  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_; }
  /// True if the query tests any element with '*' (dispatchers must
  /// broadcast every element event to this machine).
  bool has_element_wildcard() const { return !element_wildcards_.empty(); }
  /// True if the query selects text nodes anywhere.
  bool has_text_nodes() const { return !text_nodes_.empty(); }
  /// True if a text node is matched without an ancestor context ("//text()"):
  /// the machine must see every text node.
  bool has_bare_text() const { return has_bare_text_; }
  /// True if the query has a descendant-or-self or context-free attribute
  /// step ("//@id", "//a//@id"): the machine must see every element event
  /// that carries attributes.
  bool has_unanchored_attributes() const { return has_unanchored_attributes_; }
  /// The machine's element match index: (tag symbol → query node ids),
  /// sorted by symbol. Dispatchers read the keys to build postings.
  const std::vector<std::pair<Symbol, std::vector<int>>>& element_index()
      const {
    return element_index_;
  }
  /// True when machine node `id` (an element_index() node id) is a query
  /// root: it matches against the virtual document-root entry, so it can
  /// push with every stack empty. Any non-root node needs a live parent
  /// stack entry first, which lets a dispatcher skip its symbols entirely
  /// while the machine has no live entries (DESIGN.md §12).
  bool node_is_root(int id) const {
    return nodes_[static_cast<size_t>(id)].parent_id < 0;
  }

  const xpath::Query& query() const { return *query_; }
  const Options& options() const { return options_; }
  const MachineStats& stats() const { return stats_; }
  const CandidateStats& candidate_stats() const { return candidates_.stats(); }
  const MemoryTracker& memory() const { return memory_; }
  /// Total stack entries currently live across all machine nodes.
  size_t live_stack_entries() const { return live_entries_; }
  /// Multi-line dump of every machine node's stack (debugging).
  std::string DebugString() const;

  /// Resets all run state (stacks, candidates, counters) for a new
  /// document. O(1): bumps the document generation, which lazily
  /// invalidates every node stack and candidate slot while all their heap
  /// capacity stays pooled (DESIGN.md §12).
  void Reset();

 private:
  // A fragment being recorded for an open match of the output element node.
  struct Recording {
    int level = 0;
    std::string buffer;
    bool start_tag_open = false;
  };

  // Processes buffered character data as one complete text node.
  Status FlushText();
  Status ProcessTextNode(std::string_view text, int depth, uint64_t sequence);
  Status ProcessAttributes(const xml::StartElementEvent& event,
                           uint64_t element_seq);

  // Lazily invalidates `node`'s pooled stack on its first touch in the
  // current document (versioned memory, DESIGN.md §12). Every stack access
  // on the hot path goes through this.
  void TouchStack(MachineNode& node) {
    if (node.stack_gen != generation_) {
      node.stack_gen = generation_;
      node.stack_size = 0;
    }
  }

  // True if an entry of `node` may be pushed at `level` given the parent's
  // stack state. Non-const: touches the parent stack.
  bool AxisSatisfiable(const MachineNode& node, int level);

  // The element query nodes testing for `symbol`, or nullptr.
  const std::vector<int>* FindElementMatches(Symbol symbol) const;

  // Invokes fn(StackEntry&) on each parent-stack entry the popped/matched
  // element at `level` must bookkeep into.
  template <typename Fn>
  void ForEachPropagationTarget(const MachineNode& node, int level, Fn fn);

  // Per-group satisfaction of `node`'s formula against an entry's uniform
  // bits + parametric-child masks. Only meaningful under plan bindings.
  uint64_t EvaluateFormulaMask(const xpath::Formula& f,
                               const MachineNode& node,
                               const StackEntry& entry) const;
  // The groups whose bound literal is matched by `value` on slot node `q`.
  uint64_t ParamMatchMask(const xpath::QueryNode* q,
                          std::string_view value) const;
  // Satisfaction of a popped entry as a group mask: all-ones/zero for
  // uniform machines and uniform nodes, per-group for parametric nodes.
  uint64_t SatisfactionMask(const MachineNode& node, const StackEntry& entry);
  // Emission fan-in: group sink (with mask) under a plan, ResultHandler
  // otherwise.
  void DeliverResult(std::string_view fragment, uint64_t sequence,
                     uint64_t group_mask);

  // Handles a satisfied pop (sat_mask != 0): bit/mask + candidate
  // propagation, or emission at the root.
  void PropagateSatisfiedPop(MachineNode& node, StackEntry& entry,
                             uint64_t sat_mask);
  void EmitCandidates(StackEntry& entry, uint64_t sat_mask);
  void DropCandidates(StackEntry& entry);

  void PushEntry(MachineNode& node, int level, uint64_t sequence);
  // Pops the top entry and returns a reference to its (still pooled) slot.
  // Valid until the node's next push — which cannot happen during the
  // EndElement that popped it (pops only propagate into *parent* stacks).
  StackEntry& PopEntry(MachineNode& node);

  // Recording (output fragment capture).
  void RecordingsOnStart(const xml::StartElementEvent& event,
                         bool output_pushed);
  void RecordingsOnText(std::string_view text);
  // Appends the end tag to active recordings and, when the innermost
  // recording closes at `depth`, moves its fragment to completed_fragment_.
  void RecordingsOnEnd(std::string_view name, int depth);

  Status CheckMemoryLimit() const;

  const xpath::Query* query_;
  ResultHandler* results_;
  Options options_;

  // The table query name tests were interned into; borrowed from the
  // pipeline (shared dispatch) or owned privately.
  SymbolTable* symbols_ = nullptr;
  std::unique_ptr<SymbolTable> owned_symbols_;

  std::vector<MachineNode> nodes_;  // indexed by query node id
  // Match index: (tag symbol → query node ids in preorder), sorted by
  // symbol and binary-searched per event. Queries name a handful of tags,
  // so the search is a couple of integer compares inside one cache line —
  // and unlike a vector indexed by raw symbol id, memory stays O(own
  // names) when ids come from a large shared table (DESIGN.md §3).
  // Wildcard tests live on side lists.
  std::vector<std::pair<Symbol, std::vector<int>>> element_index_;
  std::vector<int> element_wildcards_;
  std::vector<int> attribute_nodes_;
  // Interned name of each attribute node in attribute_nodes_ (kNoSymbol for
  // '@*' wildcards).
  std::vector<Symbol> attribute_node_symbols_;
  std::vector<int> text_nodes_;
  bool output_is_element_ = false;
  bool has_bare_text_ = false;
  bool has_unanchored_attributes_ = false;

  // Shared-plan state (null/empty for single-query machines).
  const PlanBindings* bindings_ = nullptr;
  GroupResultSink* group_sink_ = nullptr;
  // Bits [0, bindings_->group_count); ~0 when unbound, refreshed each
  // StartDocument (group count may change between documents).
  uint64_t full_mask_ = ~0ull;
  // Parameter slot of each query node (-1 for nodes without a value test);
  // slot order is preorder, matching xpath::Canonicalize.
  std::vector<int> param_slot_of_node_;
  size_t param_slot_count_ = 0;
  // parametric_[id]: the node's subtree contains a parameter slot, so its
  // satisfaction is per-group (its parent tracks it in pmasks).
  std::vector<uint8_t> parametric_;

  MemoryTracker memory_;
  CandidateStore candidates_;
  MachineStats stats_;
  size_t live_entries_ = 0;

  // Text coalescing: adjacent Characters events merge into one text node
  // (sequence stays kNoSequence for unstamped pieces; the internal counter
  // applies at flush).
  xml::TextCoalescer pending_text_;

  // Recordings are pooled like the stacks: entries [0, recordings_size_)
  // are live, slots above retain their buffer capacity.
  std::vector<Recording> recordings_;
  size_t recordings_size_ = 0;
  std::string completed_fragment_;
  bool has_completed_fragment_ = false;

  // Current document generation; every Reset() bumps it. Starts above the
  // nodes' default stack_gen of 0 so a fresh machine has only stale stacks.
  uint64_t generation_ = 1;

  uint64_t sequence_counter_ = 0;
  std::vector<int> match_scratch_;
  // Pooled scratch buffers for the serialization path (tag assembly, text
  // escaping, coalesced text nodes) — members instead of locals so their
  // capacity survives across events.
  std::string tag_scratch_;
  std::string text_escape_scratch_;
  std::string text_node_scratch_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_MACHINE_H_
