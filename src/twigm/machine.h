// TwigM: the streaming query processor of ViteX (paper §3.2).
//
// One machine node per query node, organized in the query's tree shape; each
// machine node owns a stack. A stack entry is the paper's triplet:
//
//     ⟨ level of the matching XML node,
//       match status of the node's children in the query tree (a bitset),
//       candidate query solutions ⟩
//
// * startElement(tag, level): for every machine node whose test matches
//   `tag` and whose incoming axis is satisfiable against the parent's stack
//   (child ⇒ an open entry at level-1; descendant ⇒ an open entry at a
//   strictly smaller level), push ⟨level, ∅, ∅⟩.
// * endElement(tag, level): pop every entry at `level`. If the popped
//   entry's satisfaction formula over its child-match bits holds, bookkeep
//   the match into the parent's entries — the level-1 entry for a child
//   edge, every open entry below for a descendant edge — and move the
//   entry's candidate solutions up with it. An unsatisfied pop discards its
//   candidate references.
// * a satisfied pop at the machine root proves its candidates are query
//   solutions; they are emitted immediately (lazy, incremental output).
//
// The stacks encode the worst-case-exponential set of pattern matches in
// polynomial space: an XML node with k open ancestor matches per query node
// never multiplies them out. Work per event is O(|Q|·(|Q|+B)) in the worst
// case, giving the paper's O(|D|·|Q|·(|Q|+B)) total.

#ifndef VITEX_TWIGM_MACHINE_H_
#define VITEX_TWIGM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "twigm/candidate_store.h"
#include "twigm/result.h"
#include "xml/sax_event.h"
#include "xpath/query.h"

namespace vitex::twigm {

/// One stack entry: the paper's ⟨level, child-match status, candidates⟩.
struct StackEntry {
  int level = 0;
  /// Bit i set ⇔ child i of this query node has a satisfied match in the
  /// subtree of this entry's XML node (final when the element closes).
  uint64_t child_bits = 0;
  /// Document-order sequence number of the matching XML node.
  uint64_t sequence = 0;
  /// Candidate solutions whose qualification depends on this entry's match.
  std::vector<CandidateId> candidates;
};

/// One machine node: a query node plus its stack.
struct MachineNode {
  const xpath::QueryNode* query = nullptr;
  int parent_id = -1;
  std::vector<StackEntry> stack;
};

/// Counters for the machine's work (drive the complexity experiments).
struct MachineStats {
  uint64_t start_events = 0;
  uint64_t end_events = 0;
  uint64_t text_events = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t satisfied_pops = 0;
  uint64_t bit_propagations = 0;
  uint64_t candidate_transfers = 0;
  uint64_t results_emitted = 0;
  /// Peak of the total number of stack entries across all machine nodes —
  /// the paper's "compact encoding" size (compare with the naive matcher's
  /// pattern-match count, experiment E7).
  uint64_t peak_stack_entries = 0;
};

/// The TwigM machine. It is an xml::ContentHandler: connect it directly to a
/// SaxParser (or any event source) and read results from the ResultHandler.
class TwigMachine : public xml::ContentHandler {
 public:
  struct Options {
    /// Abort with ResourceExhausted when live engine memory exceeds this
    /// many bytes (0 = unlimited).
    size_t memory_limit_bytes = 0;
  };

  /// @param query must outlive the machine. Only the QueryNode tree is
  ///        referenced after construction (name tests are interned into the
  ///        symbol table up front), so moving the Query *object* elsewhere —
  ///        as BuiltMachine does — is safe; the nodes it owns stay put.
  /// @param results must outlive the machine; may be null to discard.
  /// @param symbols the SymbolTable the machine's match index is built
  ///        against; must outlive the machine. When null, the machine owns a
  ///        private table. Incoming events whose `symbol` fields were
  ///        resolved against a *different* table must not be fed to this
  ///        machine (ids would alias); unstamped events are always fine —
  ///        the machine falls back to one Lookup per event.
  TwigMachine(const xpath::Query* query, ResultHandler* results);
  TwigMachine(const xpath::Query* query, ResultHandler* results,
              Options options);
  TwigMachine(const xpath::Query* query, ResultHandler* results,
              Options options, SymbolTable* symbols);

  TwigMachine(const TwigMachine&) = delete;
  TwigMachine& operator=(const TwigMachine&) = delete;

  // --- ContentHandler interface ------------------------------------------
  Status StartDocument() override;
  Status StartElement(const xml::StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;
  Status Characters(std::string_view text, int depth) override;
  Status Text(const xml::TextEvent& event) override;
  Status EndDocument() override;

  // --- Dispatch interface (MultiQueryEngine) -----------------------------
  /// Delivers one whole, already-coalesced text node. Used by dispatchers
  /// that coalesce character data centrally instead of sending every piece
  /// to every machine. `sequence` must be the producer-stamped number of the
  /// node (kNoSequence falls back to the internal counter).
  Status TextNode(std::string_view text, int depth, uint64_t sequence);

  /// True while a match of an element-valued output node is open and its
  /// subtree is being serialized: the machine must then observe *every*
  /// event, whatever its tag. Dispatchers broadcast to active recorders.
  bool recording_active() const { return !recordings_.empty(); }
  /// True if the query's output node selects elements (only then can
  /// recording_active() ever become true).
  bool output_is_element() const { return output_is_element_; }

  // --- Introspection -------------------------------------------------------
  /// The symbol table the match index is built against (owned or borrowed).
  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_; }
  /// True if the query tests any element with '*' (dispatchers must
  /// broadcast every element event to this machine).
  bool has_element_wildcard() const { return !element_wildcards_.empty(); }
  /// True if the query selects text nodes anywhere.
  bool has_text_nodes() const { return !text_nodes_.empty(); }
  /// True if a text node is matched without an ancestor context ("//text()"):
  /// the machine must see every text node.
  bool has_bare_text() const { return has_bare_text_; }
  /// True if the query has a descendant-or-self or context-free attribute
  /// step ("//@id", "//a//@id"): the machine must see every element event
  /// that carries attributes.
  bool has_unanchored_attributes() const { return has_unanchored_attributes_; }
  /// The machine's element match index: (tag symbol → query node ids),
  /// sorted by symbol. Dispatchers read the keys to build postings.
  const std::vector<std::pair<Symbol, std::vector<int>>>& element_index()
      const {
    return element_index_;
  }

  const xpath::Query& query() const { return *query_; }
  const Options& options() const { return options_; }
  const MachineStats& stats() const { return stats_; }
  const CandidateStats& candidate_stats() const { return candidates_.stats(); }
  const MemoryTracker& memory() const { return memory_; }
  /// Total stack entries currently live across all machine nodes.
  size_t live_stack_entries() const { return live_entries_; }
  /// Multi-line dump of every machine node's stack (debugging).
  std::string DebugString() const;

  /// Clears all run state (stacks, candidates, counters) for a new document.
  void Reset();

 private:
  // A fragment being recorded for an open match of the output element node.
  struct Recording {
    int level = 0;
    std::string buffer;
    bool start_tag_open = false;
  };

  // Processes buffered character data as one complete text node.
  Status FlushText();
  Status ProcessTextNode(std::string_view text, int depth, uint64_t sequence);
  Status ProcessAttributes(const xml::StartElementEvent& event,
                           uint64_t element_seq);

  // True if an entry of `node` may be pushed at `level` given the parent's
  // stack state.
  bool AxisSatisfiable(const MachineNode& node, int level) const;

  // The element query nodes testing for `symbol`, or nullptr.
  const std::vector<int>* FindElementMatches(Symbol symbol) const;

  // Invokes fn(StackEntry&) on each parent-stack entry the popped/matched
  // element at `level` must bookkeep into.
  template <typename Fn>
  void ForEachPropagationTarget(const MachineNode& node, int level, Fn fn);

  // Handles a satisfied pop: bit + candidate propagation, or emission at
  // the root.
  void PropagateSatisfiedPop(MachineNode& node, StackEntry& entry);
  void EmitCandidates(StackEntry& entry);
  void DropCandidates(StackEntry& entry);

  void PushEntry(MachineNode& node, int level, uint64_t sequence);
  StackEntry PopEntry(MachineNode& node);

  // Recording (output fragment capture).
  void RecordingsOnStart(const xml::StartElementEvent& event,
                         bool output_pushed);
  void RecordingsOnText(std::string_view text);
  // Appends the end tag to active recordings and, when the innermost
  // recording closes at `depth`, moves its fragment to completed_fragment_.
  void RecordingsOnEnd(std::string_view name, int depth);

  Status CheckMemoryLimit() const;

  const xpath::Query* query_;
  ResultHandler* results_;
  Options options_;

  // The table query name tests were interned into; borrowed from the
  // pipeline (shared dispatch) or owned privately.
  SymbolTable* symbols_ = nullptr;
  std::unique_ptr<SymbolTable> owned_symbols_;

  std::vector<MachineNode> nodes_;  // indexed by query node id
  // Match index: (tag symbol → query node ids in preorder), sorted by
  // symbol and binary-searched per event. Queries name a handful of tags,
  // so the search is a couple of integer compares inside one cache line —
  // and unlike a vector indexed by raw symbol id, memory stays O(own
  // names) when ids come from a large shared table (DESIGN.md §3).
  // Wildcard tests live on side lists.
  std::vector<std::pair<Symbol, std::vector<int>>> element_index_;
  std::vector<int> element_wildcards_;
  std::vector<int> attribute_nodes_;
  // Interned name of each attribute node in attribute_nodes_ (kNoSymbol for
  // '@*' wildcards).
  std::vector<Symbol> attribute_node_symbols_;
  std::vector<int> text_nodes_;
  bool output_is_element_ = false;
  bool has_bare_text_ = false;
  bool has_unanchored_attributes_ = false;

  MemoryTracker memory_;
  CandidateStore candidates_;
  MachineStats stats_;
  size_t live_entries_ = 0;

  // Text coalescing: adjacent Characters events merge into one text node
  // (sequence stays kNoSequence for unstamped pieces; the internal counter
  // applies at flush).
  xml::TextCoalescer pending_text_;

  std::vector<Recording> recordings_;
  std::string completed_fragment_;
  bool has_completed_fragment_ = false;

  uint64_t sequence_counter_ = 0;
  std::vector<int> match_scratch_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_MACHINE_H_
