#include "twigm/multi_query.h"

#include <algorithm>
#include <cassert>

namespace vitex::twigm {

MultiQueryEngine::MultiQueryEngine(xml::SaxParserOptions sax_options)
    : symbols_(sax_options.symbols != nullptr ? sax_options.symbols
                                              : &owned_symbols_),
      dispatcher_(this) {
  sax_options.symbols = symbols_;
  sax_ = std::make_unique<xml::SaxParser>(&dispatcher_, sax_options);
}

Result<QueryId> MultiQueryEngine::AddQuery(std::string_view xpath,
                                           ResultHandler* results,
                                           TwigMachine::Options options) {
  if (started_) {
    return Status::InvalidArgument(
        "queries may be registered only at document boundaries");
  }
  VITEX_ASSIGN_OR_RETURN(
      BuiltMachine built,
      TwigMBuilder::Build(xpath, results, options, symbols_));
  return AddBuilt(std::move(built));
}

Result<QueryId> MultiQueryEngine::AddBuilt(BuiltMachine built) {
  if (started_) {
    return Status::InvalidArgument(
        "queries may be registered only at document boundaries");
  }
  if (&built.machine().symbols() != symbols_) {
    return Status::InvalidArgument(
        "machine was built against a different SymbolTable; build it with "
        "TwigMBuilder::Build(..., engine.symbols()) so dispatch symbols "
        "agree");
  }
  QueryId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    machines_[id] = std::make_unique<BuiltMachine>(std::move(built));
  } else {
    id = machines_.size();
    machines_.push_back(std::make_unique<BuiltMachine>(std::move(built)));
  }
  dispatcher_.InvalidateIndex();
  return id;
}

Status MultiQueryEngine::RemoveQuery(QueryId id) {
  if (started_) {
    return Status::InvalidArgument(
        "queries may be removed only at document boundaries");
  }
  if (!has_query(id)) {
    return Status::InvalidArgument("no live query with this id");
  }
  machines_[id] = nullptr;
  free_slots_.push_back(id);
  // The next document rebuilds the dispatch index, compacting this
  // machine out of every posting list and interest set.
  dispatcher_.InvalidateIndex();
  return Status::OK();
}

Status MultiQueryEngine::Feed(std::string_view chunk) {
  started_ = true;
  return sax_->Feed(chunk);
}

Status MultiQueryEngine::Finish() { return sax_->Finish(); }

Status MultiQueryEngine::RunString(std::string_view document) {
  VITEX_RETURN_IF_ERROR(Feed(document));
  return Finish();
}

Status MultiQueryEngine::RunEvents(const xml::EventLog& log) {
  if (started_) {
    return Status::InvalidArgument(
        "documents may be replayed only at document boundaries (mid-stream "
        "state is in flight; Finish or ResetStream first)");
  }
  started_ = true;
  Status status = log.Replay(&dispatcher_);
  if (!status.ok()) return status;  // poisoned mid-document: ResetStream
  // The document completed: back at a boundary, open for Add/RemoveQuery
  // and the next RunEvents.
  started_ = false;
  return status;
}

void MultiQueryEngine::ResetStream() {
  sax_->Reset();
  for (auto& m : machines_) {
    if (m != nullptr) m->machine().Reset();
  }
  dispatcher_.ResetStream();
  dispatch_stats_ = DispatchStats();
  started_ = false;
}

size_t MultiQueryEngine::total_live_bytes() const {
  size_t total = dispatcher_.pending_text_bytes();
  for (const auto& m : machines_) {
    if (m != nullptr) total += m->machine().memory().live_bytes();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Dispatcher.
// ---------------------------------------------------------------------------

void MultiQueryEngine::Dispatcher::BuildIndex() {
  size_t n = owner_->machines_.size();
  // Size postings to the query vocabulary, not the table: the largest
  // symbol any live machine interned. Dispatch already treats out-of-range
  // symbols as "no interested query", which is exactly what a document-only
  // symbol is — and this keeps index rebuilds off the SymbolTable, so a
  // shared table may grow concurrently on another thread (DESIGN.md §5).
  size_t posting_size = 0;
  for (const auto& mp : owner_->machines_) {
    if (mp == nullptr) continue;
    for (const auto& entry : mp->machine().element_index()) {
      posting_size = std::max(posting_size, static_cast<size_t>(entry.first) + 1);
    }
  }
  postings_.assign(posting_size, {});
  info_.assign(n, MachineInfo());
  element_broadcast_.clear();
  attribute_machines_.clear();
  text_machines_.clear();
  visit_stamp_.assign(n, 0);
  event_id_ = 0;
  is_active_recorder_.assign(n, 0);
  min_memory_limit_ = 0;
  for (size_t i = 0; i < n; ++i) {
    if (owner_->machines_[i] == nullptr) continue;  // removed query
    const TwigMachine& m = owner_->machines_[i]->machine();
    size_t limit = m.options().memory_limit_bytes;
    if (limit != 0 && (min_memory_limit_ == 0 || limit < min_memory_limit_)) {
      min_memory_limit_ = limit;
    }
    MachineInfo& mi = info_[i];
    mi.broadcast_elements = m.has_element_wildcard();
    mi.wants_text = m.has_text_nodes();
    mi.bare_text = m.has_bare_text();
    mi.wants_attributes = m.has_unanchored_attributes();
    mi.bare_attributes = m.query().root()->IsAttributeNode();
    mi.output_is_element = m.output_is_element();
    for (const auto& entry : m.element_index()) {
      // Query names were interned at build time, before any document tag,
      // so they are always inside the table the postings were sized to.
      assert(entry.first < postings_.size());
      postings_[entry.first].push_back(static_cast<uint32_t>(i));
    }
    if (mi.broadcast_elements) {
      element_broadcast_.push_back(static_cast<uint32_t>(i));
    }
    if (mi.wants_attributes) {
      attribute_machines_.push_back(static_cast<uint32_t>(i));
    }
    if (mi.wants_text) text_machines_.push_back(static_cast<uint32_t>(i));
  }
  index_built_ = true;
}

void MultiQueryEngine::Dispatcher::ResetStream() {
  // Machines may be registered before the next document; rebuild then.
  index_built_ = false;
  targets_.clear();
  event_id_ = 0;
  active_recorders_.clear();
  std::fill(is_active_recorder_.begin(), is_active_recorder_.end(), 0);
  open_symbols_.clear();
  pending_text_.Clear();
}

void MultiQueryEngine::Dispatcher::AddTarget(size_t i, bool broadcast) {
  if (visit_stamp_[i] == event_id_) return;
  visit_stamp_[i] = event_id_;
  targets_.push_back(static_cast<uint32_t>(i));
  if (broadcast) ++owner_->dispatch_stats_.broadcast_visits;
}

void MultiQueryEngine::Dispatcher::CollectTagTargets(Symbol symbol,
                                                     bool with_attributes) {
  targets_.clear();
  ++event_id_;
  if (symbol != kNoSymbol && symbol < postings_.size()) {
    for (uint32_t i : postings_[symbol]) AddTarget(i, /*broadcast=*/false);
  }
  for (uint32_t i : element_broadcast_) AddTarget(i, /*broadcast=*/true);
  for (uint32_t i : active_recorders_) AddTarget(i, /*broadcast=*/true);
  if (with_attributes) {
    // Unanchored attribute steps can match attributes of any element, but
    // only while a context entry is open (or unconditionally for bare
    // steps like //@id).
    for (uint32_t i : attribute_machines_) {
      if (info_[i].bare_attributes || machine(i).live_stack_entries() > 0) {
        AddTarget(i, /*broadcast=*/true);
      }
    }
  }
}

void MultiQueryEngine::Dispatcher::SyncRecorder(size_t i) {
  bool active = machine(i).recording_active();
  if (active == (is_active_recorder_[i] != 0)) return;
  if (active) {
    is_active_recorder_[i] = 1;
    active_recorders_.push_back(static_cast<uint32_t>(i));
  } else {
    is_active_recorder_[i] = 0;
    active_recorders_.erase(
        std::find(active_recorders_.begin(), active_recorders_.end(),
                  static_cast<uint32_t>(i)));
  }
}

Status MultiQueryEngine::Dispatcher::FlushTextNode() {
  if (pending_text_.empty()) return Status::OK();
  targets_.clear();
  ++event_id_;
  for (uint32_t i : text_machines_) {
    if (info_[i].bare_text || machine(i).live_stack_entries() > 0) {
      AddTarget(i, /*broadcast=*/false);
    }
  }
  for (uint32_t i : active_recorders_) AddTarget(i, /*broadcast=*/true);
  ++owner_->dispatch_stats_.text_nodes;
  owner_->dispatch_stats_.text_visits += targets_.size();
  Status status = Status::OK();
  for (uint32_t i : targets_) {
    status = machine(i).TextNode(pending_text_.buffer, pending_text_.depth,
                                 pending_text_.sequence);
    if (!status.ok()) break;
  }
  pending_text_.Clear();
  return status;
}

Status MultiQueryEngine::Dispatcher::StartDocument() {
  if (!index_built_) BuildIndex();
  // Per-document dispatch state: machines reset below, so nothing records
  // and no element is open. Clearing here (not only in ResetStream) lets
  // RunEvents chain documents without an explicit stream reset.
  open_symbols_.clear();
  active_recorders_.clear();
  std::fill(is_active_recorder_.begin(), is_active_recorder_.end(), 0);
  pending_text_.Clear();
  for (auto& m : owner_->machines_) {
    if (m == nullptr) continue;
    VITEX_RETURN_IF_ERROR(m->machine().StartDocument());
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::StartElement(
    const xml::StartElementEvent& event) {
  VITEX_RETURN_IF_ERROR(FlushTextNode());
  // The engine's own parser always stamps (symbol or kAbsentSymbol).
  // Unstamped events only arrive from replayed logs recorded without our
  // table; resolve them here so dispatch matches the parse path. (Stamped
  // replay — the StreamService path — never touches the table.)
  Symbol symbol = event.symbol;
  if (symbol == kNoSymbol) symbol = owner_->symbols_->Lookup(event.name);
  open_symbols_.push_back(symbol);
  CollectTagTargets(symbol, !event.attributes.empty());
  ++owner_->dispatch_stats_.start_events;
  owner_->dispatch_stats_.start_visits += targets_.size();
  for (uint32_t i : targets_) {
    VITEX_RETURN_IF_ERROR(machine(i).StartElement(event));
    if (info_[i].output_is_element) SyncRecorder(i);
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::EndElement(std::string_view name,
                                                int depth) {
  VITEX_RETURN_IF_ERROR(FlushTextNode());
  assert(!open_symbols_.empty());
  Symbol symbol = open_symbols_.back();
  open_symbols_.pop_back();
  CollectTagTargets(symbol, /*with_attributes=*/false);
  ++owner_->dispatch_stats_.end_events;
  owner_->dispatch_stats_.end_visits += targets_.size();
  for (uint32_t i : targets_) {
    VITEX_RETURN_IF_ERROR(machine(i).EndElement(name, depth));
    if (info_[i].output_is_element) SyncRecorder(i);
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::Text(const xml::TextEvent& event) {
  // No query selects text and no recording is open: nothing can ever
  // consume this node, so don't even copy it. Both sets change only at tag
  // events, where the buffer is flushed first, so skipping here is sound.
  if (text_machines_.empty() && active_recorders_.empty()) {
    return Status::OK();
  }
  // Central coalescing: pieces merge here once instead of in every machine;
  // the node is dispatched whole at the next tag boundary. Long runs arrive
  // in bounded pieces, so the buffer — like each machine's own under
  // per-machine buffering — must honor the configured memory ceiling.
  pending_text_.Append(event);
  if (min_memory_limit_ != 0 &&
      pending_text_.buffer.size() > min_memory_limit_) {
    return Status::ResourceExhausted(
        "buffered text exceeds the configured machine memory limit");
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::EndDocument() {
  VITEX_RETURN_IF_ERROR(FlushTextNode());
  for (auto& m : owner_->machines_) {
    if (m == nullptr) continue;
    VITEX_RETURN_IF_ERROR(m->machine().EndDocument());
  }
  return Status::OK();
}

}  // namespace vitex::twigm
