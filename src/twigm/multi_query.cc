#include "twigm/multi_query.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace vitex::twigm {

MultiQueryEngine::MultiQueryEngine(xml::SaxParserOptions sax_options)
    : MultiQueryEngine(std::move(sax_options), Options()) {}

MultiQueryEngine::MultiQueryEngine(xml::SaxParserOptions sax_options,
                                   Options options)
    : options_(options),
      symbols_(sax_options.symbols != nullptr ? sax_options.symbols
                                              : &owned_symbols_),
      dispatcher_(this) {
  sax_options.symbols = symbols_;
  sax_ = std::make_unique<xml::SaxParser>(&dispatcher_, sax_options);
}

// ---------------------------------------------------------------------------
// Registration: hash-consed plan cache.
// ---------------------------------------------------------------------------

void MultiQueryEngine::GroupFanout::OnGroupResult(std::string_view fragment,
                                                  uint64_t sequence,
                                                  uint64_t group_mask) {
  while (group_mask != 0) {
    int g = __builtin_ctzll(group_mask);
    group_mask &= group_mask - 1;
    for (QueryId member : plan_->group_members[static_cast<size_t>(g)]) {
      ResultHandler* handler = owner_->subs_[member]->handler;
      if (handler != nullptr) handler->OnResult(fragment, sequence);
    }
  }
}

QueryId MultiQueryEngine::AllocateSubscription(
    std::unique_ptr<Subscription> sub) {
  QueryId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    subs_[id] = std::move(sub);
  } else {
    id = subs_.size();
    subs_.push_back(std::move(sub));
  }
  return id;
}

uint32_t MultiQueryEngine::AllocateInstance(
    std::unique_ptr<PlanInstance> instance) {
  uint32_t index;
  if (!free_instances_.empty()) {
    index = free_instances_.back();
    free_instances_.pop_back();
    instances_[index] = std::move(instance);
  } else {
    index = static_cast<uint32_t>(instances_.size());
    instances_.push_back(std::move(instance));
  }
  return index;
}

Status MultiQueryEngine::RebindInstance(PlanInstance* instance) {
  instance->bindings.group_count = instance->group_params.size();
  instance->bindings.params.clear();
  instance->bindings.params.reserve(instance->group_params.size() *
                                    instance->bindings.slot_count);
  for (const auto& row : instance->group_params) {
    assert(row.size() == instance->bindings.slot_count);
    instance->bindings.params.insert(instance->bindings.params.end(),
                                     row.begin(), row.end());
  }
  return instance->built->machine().BindPlan(&instance->bindings,
                                             instance->sink.get());
}

void MultiQueryEngine::DestroyInstance(uint32_t index) {
  PlanInstance* instance = instances_[index].get();
  if (instance->shared) {
    auto it = plan_index_.find(instance->plan_hash);
    if (it != plan_index_.end()) {
      auto& bucket = it->second;
      bucket.erase(std::find(bucket.begin(), bucket.end(), index));
      if (bucket.empty()) plan_index_.erase(it);
    }
  }
  instances_[index] = nullptr;
  free_instances_.push_back(index);
}

Result<QueryId> MultiQueryEngine::AddDedicated(
    std::unique_ptr<BuiltMachine> built) {
  auto instance = std::make_unique<PlanInstance>();
  instance->built = std::move(built);
  instance->shared = false;
  instance->group_params.push_back({});
  instance->group_members.push_back({});
  instance->subscriber_count = 1;
  uint32_t index = AllocateInstance(std::move(instance));

  auto sub = std::make_unique<Subscription>();
  sub->instance = index;
  sub->group = 0;
  sub->handler = instances_[index]->built->machine().results();
  QueryId id = AllocateSubscription(std::move(sub));
  instances_[index]->group_members[0].push_back(id);
  ++plan_misses_;
  dispatcher_.InvalidateIndex();
  return id;
}

Result<QueryId> MultiQueryEngine::Register(
    std::unique_ptr<xpath::Query> query, ResultHandler* handler,
    TwigMachine::Options options, std::unique_ptr<BuiltMachine> built) {
  // Cache identity: the structural skeleton plus every machine option that
  // changes execution (subscriptions with different memory ceilings must
  // not share a machine).
  const xpath::Query& canon_source =
      built != nullptr ? built->query() : *query;
  xpath::CanonicalQuery canon = xpath::Canonicalize(canon_source);
  std::string opt_suffix =
      "|mem=" + std::to_string(options.memory_limit_bytes);
  std::string plan_key = canon.key + opt_suffix;
  uint64_t plan_hash = xpath::FnvHash64(opt_suffix, canon.hash);

  // Join an existing instance of this skeleton if one has room: the same
  // parameter vector joins its group (pure fan-out member), a new vector
  // adds a group (one more mask bit), and a skeleton that outgrew 64 groups
  // chains to the next instance in the bucket.
  auto bucket_it = plan_index_.find(plan_hash);
  if (bucket_it != plan_index_.end()) {
    for (uint32_t index : bucket_it->second) {
      PlanInstance* instance = instances_[index].get();
      if (instance->plan_key != plan_key) continue;  // hash collision
      size_t group = instance->group_params.size();
      for (size_t g = 0; g < instance->group_params.size(); ++g) {
        if (instance->group_params[g] == canon.params) {
          group = g;
          break;
        }
      }
      bool new_group = group == instance->group_params.size();
      if (new_group && group >= 64) continue;  // instance full, try next
      auto sub = std::make_unique<Subscription>();
      sub->instance = index;
      sub->group = static_cast<uint32_t>(group);
      sub->handler = handler;
      // The subscription's own query record: the one compiled for it, or —
      // for a pre-built machine being discarded in favor of this instance —
      // the query taken out of that machine (no recompilation).
      sub->query = query != nullptr ? std::move(query)
                                    : std::move(*built).TakeQuery();
      QueryId id = AllocateSubscription(std::move(sub));
      if (new_group) {
        instance->group_params.push_back(std::move(canon.params));
        instance->group_members.push_back({});
        Status rebound = RebindInstance(instance);
        assert(rebound.ok());
        (void)rebound;
      }
      instance->group_members[group].push_back(id);
      ++instance->subscriber_count;
      ++plan_hits_;
      dispatcher_.InvalidateIndex();
      return id;
    }
  }

  // First subscription of this skeleton (or all instances full): compile a
  // fresh plan instance. An AddBuilt machine is adopted as the skeleton
  // machine; an AddQuery subscription moves its Query into the new machine.
  if (built == nullptr) {
    VITEX_ASSIGN_OR_RETURN(
        BuiltMachine fresh,
        TwigMBuilder::Build(std::move(query), /*results=*/nullptr, options,
                            symbols_));
    built = std::make_unique<BuiltMachine>(std::move(fresh));
  }
  auto instance = std::make_unique<PlanInstance>();
  instance->built = std::move(built);
  instance->shared = true;
  instance->plan_key = std::move(plan_key);
  instance->plan_hash = plan_hash;
  instance->bindings.slot_count = canon.params.size();
  instance->group_params.push_back(std::move(canon.params));
  instance->group_members.push_back({});
  instance->subscriber_count = 1;
  instance->sink = std::make_unique<GroupFanout>(this, instance.get());
  VITEX_RETURN_IF_ERROR(RebindInstance(instance.get()));
  uint32_t index = AllocateInstance(std::move(instance));
  plan_index_[plan_hash].push_back(index);

  auto sub = std::make_unique<Subscription>();
  sub->instance = index;
  sub->group = 0;
  sub->handler = handler;
  sub->query = std::move(query);  // null when moved into the machine above
  QueryId id = AllocateSubscription(std::move(sub));
  instances_[index]->group_members[0].push_back(id);
  ++plan_misses_;
  dispatcher_.InvalidateIndex();
  return id;
}

Result<QueryId> MultiQueryEngine::AddQuery(std::string_view xpath,
                                           ResultHandler* results,
                                           TwigMachine::Options options) {
  if (started_) {
    return Status::InvalidArgument(
        "queries may be registered only at document boundaries");
  }
  if (!options_.share_plans) {
    VITEX_ASSIGN_OR_RETURN(
        BuiltMachine built,
        TwigMBuilder::Build(xpath, results, options, symbols_));
    return AddDedicated(std::make_unique<BuiltMachine>(std::move(built)));
  }
  VITEX_ASSIGN_OR_RETURN(xpath::Query compiled,
                         xpath::ParseAndCompile(xpath));
  return Register(std::make_unique<xpath::Query>(std::move(compiled)),
                  results, options, /*built=*/nullptr);
}

Result<QueryId> MultiQueryEngine::AddBuilt(BuiltMachine built) {
  if (started_) {
    return Status::InvalidArgument(
        "queries may be registered only at document boundaries");
  }
  if (&built.machine().symbols() != symbols_) {
    return Status::InvalidArgument(
        "machine was built against a different SymbolTable; build it with "
        "TwigMBuilder::Build(..., engine.symbols()) so dispatch symbols "
        "agree");
  }
  auto owned = std::make_unique<BuiltMachine>(std::move(built));
  if (!options_.share_plans) return AddDedicated(std::move(owned));
  // Register against the machine's own compiled query: a join takes the
  // Query out of the discarded machine for the subscription's record, an
  // adopt moves the whole machine in — either way nothing is recompiled.
  ResultHandler* handler = owned->machine().results();
  TwigMachine::Options options = owned->machine().options();
  return Register(/*query=*/nullptr, handler, options, std::move(owned));
}

Status MultiQueryEngine::RemoveQuery(QueryId id) {
  if (started_) {
    return Status::InvalidArgument(
        "queries may be removed only at document boundaries");
  }
  if (!has_query(id)) {
    return Status::InvalidArgument("no live query with this id");
  }
  Subscription& sub = *subs_[id];
  PlanInstance* instance = instances_[sub.instance].get();
  auto& members = instance->group_members[sub.group];
  members.erase(std::find(members.begin(), members.end(), id));
  --instance->subscriber_count;
  if (instance->subscriber_count == 0) {
    // Last subscriber of this plan: the machine goes with it.
    DestroyInstance(sub.instance);
  } else if (members.empty()) {
    // The group's last subscriber left: drop its mask bit and renumber the
    // groups above it. Safe at a document boundary — no masks are live.
    instance->group_params.erase(instance->group_params.begin() + sub.group);
    instance->group_members.erase(instance->group_members.begin() +
                                  sub.group);
    for (size_t g = 0; g < instance->group_members.size(); ++g) {
      for (QueryId member : instance->group_members[g]) {
        subs_[member]->group = static_cast<uint32_t>(g);
      }
    }
    VITEX_RETURN_IF_ERROR(RebindInstance(instance));
  }
  subs_[id] = nullptr;
  free_slots_.push_back(id);
  // The next document rebuilds the dispatch index, compacting any dropped
  // machine out of every posting list and interest set.
  dispatcher_.InvalidateIndex();
  return Status::OK();
}

const xpath::Query& MultiQueryEngine::query(QueryId id) const {
  const Subscription& sub = *subs_[id];
  if (sub.query != nullptr) return *sub.query;
  return instances_[sub.instance]->built->query();
}

Status MultiQueryEngine::Feed(std::string_view chunk) {
  started_ = true;
  return sax_->Feed(chunk);
}

Status MultiQueryEngine::Finish() { return sax_->Finish(); }

Status MultiQueryEngine::RunString(std::string_view document) {
  VITEX_RETURN_IF_ERROR(Feed(document));
  return Finish();
}

Status MultiQueryEngine::RunEvents(const xml::EventLog& log) {
  if (started_) {
    return Status::InvalidArgument(
        "documents may be replayed only at document boundaries (mid-stream "
        "state is in flight; Finish or ResetStream first)");
  }
  started_ = true;
  Status status = log.Replay(&dispatcher_);
  if (!status.ok()) return status;  // poisoned mid-document: ResetStream
  // The document completed: back at a boundary, open for Add/RemoveQuery
  // and the next RunEvents.
  started_ = false;
  return status;
}

void MultiQueryEngine::ResetStream() {
  sax_->Reset();
  for (auto& instance : instances_) {
    if (instance != nullptr) instance->built->machine().Reset();
  }
  dispatcher_.ResetStream();
  dispatch_stats_ = DispatchStats();
  started_ = false;
}

size_t MultiQueryEngine::total_live_bytes() const {
  size_t total = dispatcher_.pending_text_bytes();
  for (const auto& instance : instances_) {
    if (instance != nullptr) {
      total += instance->built->machine().memory().live_bytes();
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Dispatcher.
// ---------------------------------------------------------------------------

void MultiQueryEngine::Dispatcher::BuildIndex() {
  size_t n = owner_->instances_.size();
  // Size postings to the query vocabulary, not the table: the largest
  // symbol any live machine interned. Dispatch already treats out-of-range
  // symbols as "no interested query", which is exactly what a document-only
  // symbol is — and this keeps index rebuilds off the SymbolTable, so a
  // shared table may grow concurrently on another thread (DESIGN.md §5).
  size_t posting_size = 0;
  for (const auto& instance : owner_->instances_) {
    if (instance == nullptr) continue;
    for (const auto& entry : instance->built->machine().element_index()) {
      posting_size =
          std::max(posting_size, static_cast<size_t>(entry.first) + 1);
    }
  }
  postings_.assign(posting_size, {});
  dependent_postings_.assign(posting_size, {});
  info_.assign(n, MachineInfo());
  element_broadcast_.clear();
  attribute_machines_.clear();
  text_machines_.clear();
  visit_stamp_.assign(n, 0);
  event_id_ = 0;
  // Every machine starts the next document untouched (stamp 0 is stale:
  // doc_gen_ only ever advances past it).
  machine_doc_gen_.assign(n, 0);
  touched_machines_.clear();
  is_active_recorder_.assign(n, 0);
  // The flags were just zeroed wholesale (and n may have changed), so the
  // active list restarts too — no machine records across an index rebuild
  // (rebuilds only happen at document boundaries).
  active_recorders_.clear();
  min_memory_limit_ = 0;
  for (size_t i = 0; i < n; ++i) {
    if (owner_->instances_[i] == nullptr) continue;  // removed plan
    const TwigMachine& m = owner_->instances_[i]->built->machine();
    size_t limit = m.options().memory_limit_bytes;
    if (limit != 0 && (min_memory_limit_ == 0 || limit < min_memory_limit_)) {
      min_memory_limit_ = limit;
    }
    MachineInfo& mi = info_[i];
    mi.broadcast_elements = m.has_element_wildcard();
    mi.wants_text = m.has_text_nodes();
    mi.bare_text = m.has_bare_text();
    mi.wants_attributes = m.has_unanchored_attributes();
    mi.bare_attributes = m.query().root()->IsAttributeNode();
    mi.output_is_element = m.output_is_element();
    for (const auto& entry : m.element_index()) {
      // Query names were interned at build time, before any document tag,
      // so they are always inside the table the postings were sized to.
      assert(entry.first < postings_.size());
      // A symbol goes to the entry postings if any node naming it is a
      // query root (pushable with empty stacks); symbols named only by
      // non-root nodes are no-ops until the machine has live entries, so
      // they dispatch through the touched-machine gate instead.
      bool is_entry = false;
      for (int id : entry.second) {
        if (m.node_is_root(id)) {
          is_entry = true;
          break;
        }
      }
      (is_entry ? postings_ : dependent_postings_)[entry.first].push_back(
          static_cast<uint32_t>(i));
    }
    if (mi.broadcast_elements) {
      element_broadcast_.push_back(static_cast<uint32_t>(i));
    }
    if (mi.wants_attributes) {
      attribute_machines_.push_back(static_cast<uint32_t>(i));
    }
    if (mi.wants_text) text_machines_.push_back(static_cast<uint32_t>(i));
  }
  // Plan-sharing shape as of this (re)build: how many subscriptions the
  // visit counters above are serving through how many machines/skeletons.
  DispatchStats& ds = owner_->dispatch_stats_;
  ds.subscriptions = owner_->query_count();
  ds.machines = owner_->machine_count();
  std::unordered_set<std::string_view> keys;
  uint64_t dedicated = 0;
  for (const auto& instance : owner_->instances_) {
    if (instance == nullptr) continue;
    if (instance->shared) {
      keys.insert(instance->plan_key);
    } else {
      ++dedicated;  // a private machine is its own plan
    }
  }
  ds.plans = keys.size() + dedicated;
  ds.plan_hits = owner_->plan_hits_;
  ds.plan_misses = owner_->plan_misses_;
  index_built_ = true;
}

void MultiQueryEngine::Dispatcher::ResetStream() {
  // Machines may be registered before the next document; rebuild then.
  index_built_ = false;
  targets_.clear();
  event_id_ = 0;
  // The engine just reset every machine eagerly, so nothing is mid-document;
  // the next StartDocument re-touches machines as events reach them.
  touched_machines_.clear();
  // Unwind the recorder flags through the active list — O(active), not
  // O(machines) (the list names exactly the set flags).
  for (uint32_t i : active_recorders_) is_active_recorder_[i] = 0;
  active_recorders_.clear();
  open_symbols_.clear();
  pending_text_.Clear();
}

void MultiQueryEngine::Dispatcher::AddTarget(size_t i, bool broadcast) {
  if (visit_stamp_[i] == event_id_) return;
  visit_stamp_[i] = event_id_;
  targets_.push_back(static_cast<uint32_t>(i));
  if (broadcast) ++owner_->dispatch_stats_.broadcast_visits;
}

void MultiQueryEngine::Dispatcher::CollectTagTargets(Symbol symbol,
                                                     bool with_attributes) {
  targets_.clear();
  ++event_id_;
  if (symbol != kNoSymbol && symbol < postings_.size()) {
    for (uint32_t i : postings_[symbol]) AddTarget(i, /*broadcast=*/false);
    // Dependent symbols (named only by non-root query nodes) are strict
    // no-ops for a machine with no live stack entries; the touch stamp —
    // one contiguous load, no pointer chase into the machine — over-
    // approximates "has live entries" within a document.
    for (uint32_t i : dependent_postings_[symbol]) {
      if (machine_doc_gen_[i] == doc_gen_) AddTarget(i, /*broadcast=*/false);
    }
  }
  for (uint32_t i : element_broadcast_) AddTarget(i, /*broadcast=*/true);
  for (uint32_t i : active_recorders_) AddTarget(i, /*broadcast=*/true);
  if (with_attributes) {
    // Unanchored attribute steps can match attributes of any element, but
    // only while a context entry is open (or unconditionally for bare
    // steps like //@id). The touch stamp screens out untouched machines
    // (live count surely 0) before the live-entry load.
    for (uint32_t i : attribute_machines_) {
      if (info_[i].bare_attributes || (machine_doc_gen_[i] == doc_gen_ &&
                                       machine(i).live_stack_entries() > 0)) {
        AddTarget(i, /*broadcast=*/true);
      }
    }
  }
}

void MultiQueryEngine::Dispatcher::SyncRecorder(size_t i) {
  bool active = machine(i).recording_active();
  if (active == (is_active_recorder_[i] != 0)) return;
  if (active) {
    is_active_recorder_[i] = 1;
    active_recorders_.push_back(static_cast<uint32_t>(i));
  } else {
    is_active_recorder_[i] = 0;
    active_recorders_.erase(
        std::find(active_recorders_.begin(), active_recorders_.end(),
                  static_cast<uint32_t>(i)));
  }
}

Status MultiQueryEngine::Dispatcher::FlushTextNode() {
  if (pending_text_.empty()) return Status::OK();
  targets_.clear();
  ++event_id_;
  for (uint32_t i : text_machines_) {
    if (info_[i].bare_text || (machine_doc_gen_[i] == doc_gen_ &&
                               machine(i).live_stack_entries() > 0)) {
      AddTarget(i, /*broadcast=*/false);
    }
  }
  for (uint32_t i : active_recorders_) AddTarget(i, /*broadcast=*/true);
  ++owner_->dispatch_stats_.text_nodes;
  owner_->dispatch_stats_.text_visits += targets_.size();
  Status status = Status::OK();
  for (uint32_t i : targets_) {
    status = TouchMachine(i);
    if (!status.ok()) break;
    status = machine(i).TextNode(pending_text_.buffer, pending_text_.depth,
                                 pending_text_.sequence);
    if (!status.ok()) break;
  }
  pending_text_.Clear();
  return status;
}

Status MultiQueryEngine::Dispatcher::StartDocument() {
  if (!index_built_) BuildIndex();
  // Per-document dispatch state: clearing here (not only in ResetStream)
  // lets RunEvents chain documents without an explicit stream reset. The
  // recorder flags unwind through the active list — O(active recorders),
  // not O(machines) (the list names exactly the set flags).
  open_symbols_.clear();
  for (uint32_t i : active_recorders_) is_active_recorder_[i] = 0;
  active_recorders_.clear();
  pending_text_.Clear();
  // Machines are NOT reset here: bumping doc_gen_ makes every machine's
  // touch stamp stale, and TouchMachine() resets each one on the first
  // event dispatched to it. A machine no event reaches stays exactly as
  // its last document left it — stacks empty (EndDocument invariant), no
  // recording open — so skipping it is unobservable, and the per-document
  // floor is O(touched machines) instead of O(registered plans)
  // (DESIGN.md §12).
  ++doc_gen_;
  touched_machines_.clear();
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::TouchMachine(uint32_t i) {
  if (machine_doc_gen_[i] == doc_gen_) return Status::OK();
  machine_doc_gen_[i] = doc_gen_;
  touched_machines_.push_back(i);
  return machine(i).StartDocument();
}

Status MultiQueryEngine::Dispatcher::StartElement(
    const xml::StartElementEvent& event) {
  VITEX_RETURN_IF_ERROR(FlushTextNode());
  // The engine's own parser always stamps (symbol or kAbsentSymbol).
  // Unstamped events only arrive from replayed logs recorded without our
  // table; resolve them here so dispatch matches the parse path. (Stamped
  // replay — the StreamService path — never touches the table.)
  Symbol symbol = event.symbol;
  if (symbol == kNoSymbol) symbol = owner_->symbols_->Lookup(event.name);
  open_symbols_.push_back(symbol);
  CollectTagTargets(symbol, !event.attributes.empty());
  ++owner_->dispatch_stats_.start_events;
  owner_->dispatch_stats_.start_visits += targets_.size();
  for (uint32_t i : targets_) {
    VITEX_RETURN_IF_ERROR(TouchMachine(i));
    VITEX_RETURN_IF_ERROR(machine(i).StartElement(event));
    if (info_[i].output_is_element) SyncRecorder(i);
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::EndElement(std::string_view name,
                                                int depth) {
  VITEX_RETURN_IF_ERROR(FlushTextNode());
  assert(!open_symbols_.empty());
  Symbol symbol = open_symbols_.back();
  open_symbols_.pop_back();
  CollectTagTargets(symbol, /*with_attributes=*/false);
  ++owner_->dispatch_stats_.end_events;
  owner_->dispatch_stats_.end_visits += targets_.size();
  for (uint32_t i : targets_) {
    VITEX_RETURN_IF_ERROR(TouchMachine(i));
    VITEX_RETURN_IF_ERROR(machine(i).EndElement(name, depth));
    if (info_[i].output_is_element) SyncRecorder(i);
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::Text(const xml::TextEvent& event) {
  // No query selects text and no recording is open: nothing can ever
  // consume this node, so don't even copy it. Both sets change only at tag
  // events, where the buffer is flushed first, so skipping here is sound.
  if (text_machines_.empty() && active_recorders_.empty()) {
    return Status::OK();
  }
  // Central coalescing: pieces merge here once instead of in every machine;
  // the node is dispatched whole at the next tag boundary. Long runs arrive
  // in bounded pieces, so the buffer — like each machine's own under
  // per-machine buffering — must honor the configured memory ceiling.
  pending_text_.Append(event);
  if (min_memory_limit_ != 0 &&
      pending_text_.buffer.size() > min_memory_limit_) {
    return Status::ResourceExhausted(
        "buffered text exceeds the configured machine memory limit");
  }
  return Status::OK();
}

Status MultiQueryEngine::Dispatcher::EndDocument() {
  VITEX_RETURN_IF_ERROR(FlushTextNode());
  // Only machines the document actually reached have per-document state to
  // finish (buffered text, the empty-stack invariant check); untouched
  // machines were already verified clean by the last document that used
  // them.
  for (uint32_t i : touched_machines_) {
    VITEX_RETURN_IF_ERROR(machine(i).EndDocument());
  }
  return Status::OK();
}

}  // namespace vitex::twigm
