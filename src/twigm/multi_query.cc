#include "twigm/multi_query.h"

namespace vitex::twigm {

MultiQueryEngine::MultiQueryEngine(xml::SaxParserOptions sax_options)
    : demux_(this),
      sax_(std::make_unique<xml::SaxParser>(&demux_, sax_options)) {}

Result<QueryId> MultiQueryEngine::AddQuery(std::string_view xpath,
                                           ResultHandler* results,
                                           TwigMachine::Options options) {
  if (started_) {
    return Status::InvalidArgument(
        "queries must be registered before the stream starts");
  }
  VITEX_ASSIGN_OR_RETURN(BuiltMachine built,
                         TwigMBuilder::Build(xpath, results, options));
  return AddBuilt(std::move(built));
}

Result<QueryId> MultiQueryEngine::AddBuilt(BuiltMachine built) {
  if (started_) {
    return Status::InvalidArgument(
        "queries must be registered before the stream starts");
  }
  machines_.push_back(std::make_unique<BuiltMachine>(std::move(built)));
  return machines_.size() - 1;
}

Status MultiQueryEngine::Feed(std::string_view chunk) {
  started_ = true;
  return sax_->Feed(chunk);
}

Status MultiQueryEngine::Finish() { return sax_->Finish(); }

Status MultiQueryEngine::RunString(std::string_view document) {
  VITEX_RETURN_IF_ERROR(Feed(document));
  return Finish();
}

void MultiQueryEngine::ResetStream() {
  sax_->Reset();
  for (auto& m : machines_) m->machine().Reset();
  started_ = false;
}

size_t MultiQueryEngine::total_live_bytes() const {
  size_t total = 0;
  for (const auto& m : machines_) {
    total += m->machine().memory().live_bytes();
  }
  return total;
}

Status MultiQueryEngine::Demux::StartDocument() {
  for (auto& m : owner_->machines_) {
    VITEX_RETURN_IF_ERROR(m->machine().StartDocument());
  }
  return Status::OK();
}

Status MultiQueryEngine::Demux::StartElement(
    const xml::StartElementEvent& event) {
  for (auto& m : owner_->machines_) {
    VITEX_RETURN_IF_ERROR(m->machine().StartElement(event));
  }
  return Status::OK();
}

Status MultiQueryEngine::Demux::EndElement(std::string_view name, int depth) {
  for (auto& m : owner_->machines_) {
    VITEX_RETURN_IF_ERROR(m->machine().EndElement(name, depth));
  }
  return Status::OK();
}

Status MultiQueryEngine::Demux::Characters(std::string_view text, int depth) {
  for (auto& m : owner_->machines_) {
    VITEX_RETURN_IF_ERROR(m->machine().Characters(text, depth));
  }
  return Status::OK();
}

Status MultiQueryEngine::Demux::EndDocument() {
  for (auto& m : owner_->machines_) {
    VITEX_RETURN_IF_ERROR(m->machine().EndDocument());
  }
  return Status::OK();
}

}  // namespace vitex::twigm
