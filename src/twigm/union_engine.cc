#include "twigm/union_engine.h"

#include "xpath/parser.h"
#include "xpath/query.h"

namespace vitex::twigm {

Result<UnionEngine> UnionEngine::Create(std::string_view xpath_union,
                                        ResultHandler* results) {
  return Create(xpath_union, results, Options());
}

Result<UnionEngine> UnionEngine::Create(std::string_view xpath_union,
                                        ResultHandler* results,
                                        Options options) {
  VITEX_ASSIGN_OR_RETURN(std::vector<xpath::Path> branches,
                         xpath::ParseXPathUnion(xpath_union));
  auto dedup = std::make_unique<DedupHandler>(results);
  auto multi = std::make_unique<MultiQueryEngine>(options.sax);
  for (const xpath::Path& branch : branches) {
    std::string branch_text = xpath::PathToString(branch);
    VITEX_ASSIGN_OR_RETURN(
        xpath::Query compiled,
        xpath::Query::Compile(branch, std::move(branch_text)));
    // MultiQueryEngine re-parses from text; compile here instead to keep
    // the branch ASTs authoritative.
    auto owned = std::make_unique<xpath::Query>(std::move(compiled));
    // Branch machines must share the MultiQueryEngine's symbol table so the
    // dispatch index and event symbols agree across branches.
    VITEX_ASSIGN_OR_RETURN(BuiltMachine built,
                           TwigMBuilder::Build(std::move(owned), dedup.get(),
                                               options.machine,
                                               multi->symbols()));
    Result<QueryId> added = multi->AddBuilt(std::move(built));
    if (!added.ok()) return added.status();
  }
  return UnionEngine(std::move(dedup), std::move(multi));
}

}  // namespace vitex::twigm
