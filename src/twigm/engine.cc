#include "twigm/engine.h"

#include <cstdio>

namespace vitex::twigm {

Result<Engine> Engine::Create(std::string_view xpath,
                              ResultHandler* results) {
  return Create(xpath, results, Options());
}

Result<Engine> Engine::Create(std::string_view xpath, ResultHandler* results,
                              Options options) {
  // The parser resolves tag/attribute names against the machine's symbol
  // table once per event; the machine then matches by integer id only. A
  // caller-supplied table (options.sax.symbols) is honored — the machine is
  // built against it — so tables can be shared across pipelines.
  VITEX_ASSIGN_OR_RETURN(
      BuiltMachine built,
      TwigMBuilder::Build(xpath, results, options.machine,
                          options.sax.symbols));
  auto built_ptr = std::make_unique<BuiltMachine>(std::move(built));
  options.sax.symbols = built_ptr->machine().mutable_symbols();
  auto sax = std::make_unique<xml::SaxParser>(&built_ptr->machine(),
                                              options.sax);
  return Engine(std::move(built_ptr), std::move(sax));
}

Status Engine::Feed(std::string_view chunk) { return sax_->Feed(chunk); }

Status Engine::Finish() { return sax_->Finish(); }

void Engine::ResetStream() {
  sax_->Reset();
  built_->machine().Reset();
}

Status Engine::RunString(std::string_view document) {
  VITEX_RETURN_IF_ERROR(Feed(document));
  return Finish();
}

Status Engine::RunFile(const std::string& path, size_t chunk_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::unique_ptr<char[]> buf(new char[chunk_bytes]);
  Status status;
  while (true) {
    size_t n = std::fread(buf.get(), 1, chunk_bytes, f);
    if (n > 0) {
      status = Feed(std::string_view(buf.get(), n));
      if (!status.ok()) break;
    }
    if (n < chunk_bytes) {
      if (std::ferror(f) != 0) {
        status = Status::IoError("read error on '" + path + "'");
      } else {
        status = Finish();
      }
      break;
    }
  }
  std::fclose(f);
  return status;
}

}  // namespace vitex::twigm
