// MultiQueryEngine: evaluate many standing XPath queries over one XML
// stream in a single pass, dispatching each event only to the machines that
// can use it.
//
// The paper's motivating applications — stock tickers, sports feeds,
// personalized newspapers — are publish/subscribe systems: one stream, many
// subscriptions. ViteX's demo runs one TwigM; this engine parses once for
// all registered queries and routes events through a *dispatch index*
// (DESIGN.md §4) built on the pipeline's shared SymbolTable:
//
//   * per-symbol posting lists map a tag's interned id to the machines whose
//     queries name that tag — startElement touches only those machines, so
//     per-event work scales with the number of *interested* queries, not
//     registered ones;
//   * queries with '*' element tests fall back to broadcast (they can match
//     any tag), as do machines currently serializing an output fragment (a
//     recording must observe every event in the matched subtree) and
//     unanchored attribute steps like //@id (any element may carry them);
//   * character data is coalesced once, centrally, and delivered as whole
//     text nodes to machines that select text;
//   * document-order sequence numbers are stamped by the SAX parser, so
//     skipped events never desynchronize machines (UnionEngine's dedup
//     depends on identical numbering across branches).
//
// On top of dispatch, the engine *hash-conses query plans* (DESIGN.md §7):
// each query is canonicalized to its structural skeleton (axes, name tests,
// predicate formulas, output marking — comparison literals lifted out as
// parameters), and subscriptions with equal skeletons share ONE TwigMachine.
// `//quote[@symbol = 'ACME']/price` for a thousand tickers runs one machine
// whose matches fan out through per-plan subscriber groups; only the
// parameterized comparisons are evaluated per group. Structural per-event
// work (dispatch, pushes, pops, formula evaluation) then scales with the
// number of distinct skeletons, not subscriptions; what remains per group
// is one literal comparison on each *matching* parameterized leaf event —
// the irreducible subscriber-specific work. Disable
// with Options::share_plans = false to get one private machine per query
// (the differential oracle pins the two modes against each other).
//
// Typical usage:
//
//   vitex::twigm::MultiQueryEngine engine;
//   vitex::twigm::VectorResultCollector news, stocks;
//   engine.AddQuery("//article[topic = 'tech']//headline", &news);
//   engine.AddQuery("//quote[@symbol = 'ACME']/price", &stocks);
//   engine.Feed(chunk);          // one parse serves every subscription
//   ...
//   engine.Finish();
//
// Callers that compile machines themselves must build them against this
// engine's table (TwigMBuilder::Build(..., engine.symbols())); AddBuilt
// rejects machines interned elsewhere, since their symbol ids would alias.
// Each query keeps its own ResultHandler; a query's machine accessors see
// the (possibly shared) plan machine executing it.

#ifndef VITEX_TWIGM_MULTI_QUERY_H_
#define VITEX_TWIGM_MULTI_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "twigm/builder.h"
#include "twigm/machine.h"
#include "twigm/result.h"
#include "xml/event_log.h"
#include "xml/sax_parser.h"
#include "xpath/canonical.h"

namespace vitex::twigm {

/// Identifier of a registered query within one MultiQueryEngine.
using QueryId = size_t;

/// Counters for the dispatch index (drive the multi-query experiments and
/// the sublinearity assertions in tests). A "visit" is one machine receiving
/// one event; without the index every event would cost machine_count visits,
/// and without plan sharing machine_count would equal subscription count.
struct DispatchStats {
  uint64_t start_events = 0;
  uint64_t end_events = 0;
  uint64_t text_nodes = 0;
  /// Machine visits for start/end element events (posting lists + fallbacks).
  uint64_t start_visits = 0;
  uint64_t end_visits = 0;
  /// Machine visits for coalesced text nodes.
  uint64_t text_visits = 0;
  /// Portion of the above visits caused by broadcast fallbacks (wildcard
  /// tests, active recordings, unanchored attributes).
  uint64_t broadcast_visits = 0;

  // Plan-sharing shape, snapshotted when the dispatch index is (re)built —
  // i.e. as of the last started document.
  /// Live subscriptions (what query_count() returns).
  uint64_t subscriptions = 0;
  /// Live machines = plan instances; every visit above hits one of these.
  uint64_t machines = 0;
  /// Distinct shared skeletons among the machines (each may chain several
  /// instances when it outgrows 64 parameter groups).
  uint64_t plans = 0;
  /// AddQuery/AddBuilt calls that joined an existing plan instance vs
  /// created a new one (engine lifetime, survives ResetStream).
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
};

/// Invokes `fn(name, value, is_gauge)` for every DispatchStats field, in
/// declaration order. The one place that enumerates the struct, so the
/// service's /statsz exposition (DESIGN.md §10) stays in lockstep with it:
/// adding a field here is adding it to the payload. `is_gauge` marks the
/// point-in-time shape fields (subscriptions/machines/plans); the rest are
/// monotonic counters.
template <typename Fn>
void ForEachDispatchStat(const DispatchStats& stats, Fn&& fn) {
  fn("start_events", stats.start_events, false);
  fn("end_events", stats.end_events, false);
  fn("text_nodes", stats.text_nodes, false);
  fn("start_visits", stats.start_visits, false);
  fn("end_visits", stats.end_visits, false);
  fn("text_visits", stats.text_visits, false);
  fn("broadcast_visits", stats.broadcast_visits, false);
  fn("subscriptions", stats.subscriptions, true);
  fn("machines", stats.machines, true);
  fn("plans", stats.plans, true);
  fn("plan_hits", stats.plan_hits, false);
  fn("plan_misses", stats.plan_misses, false);
}

class MultiQueryEngine {
 public:
  struct Options {
    /// Hash-cons compiled plans: subscriptions whose queries share a
    /// structural skeleton (same twig modulo comparison literals) share one
    /// TwigMachine and fan results out per subscriber group. Off = one
    /// private machine per subscription (the pre-sharing behavior).
    bool share_plans = true;
  };

  explicit MultiQueryEngine(xml::SaxParserOptions sax_options = {});
  MultiQueryEngine(xml::SaxParserOptions sax_options, Options options);

  MultiQueryEngine(const MultiQueryEngine&) = delete;
  MultiQueryEngine& operator=(const MultiQueryEngine&) = delete;

  /// Registers a standing query. Registrations must happen at a document
  /// boundary: before the first Feed(), after ResetStream(), or between
  /// RunEvents() documents. `results` must outlive the engine; may be null.
  Result<QueryId> AddQuery(std::string_view xpath, ResultHandler* results,
                           TwigMachine::Options options = {});

  /// Registers an already-built machine (used by UnionEngine and callers
  /// that compile queries themselves). The machine must have been built
  /// against this engine's symbols() table; InvalidArgument otherwise.
  /// Under plan sharing the machine may be discarded in favor of an
  /// existing instance with the same skeleton and options — its
  /// ResultHandler then joins that plan's subscriber list.
  Result<QueryId> AddBuilt(BuiltMachine built);

  /// Deregisters a query at a document boundary (subscription lifecycle:
  /// DESIGN.md §5). The subscription leaves its plan's subscriber group;
  /// the machine itself is dropped only when its last subscriber goes (plan
  /// refcounting), and the dispatch postings follow at the next rebuild.
  /// The ResultHandler is never touched again. The id's slot is recycled by
  /// a *later* AddQuery/AddBuilt, so a removed id must not be used again —
  /// ids are stable only for live queries. InvalidArgument mid-document or
  /// for an id that is not live.
  Status RemoveQuery(QueryId id);

  /// True if `id` names a currently registered query.
  bool has_query(QueryId id) const {
    return id < subs_.size() && subs_[id] != nullptr;
  }

  /// Number of live (registered, not removed) queries.
  size_t query_count() const { return subs_.size() - free_slots_.size(); }

  /// Number of live plan machines (== query_count() when sharing is off or
  /// no skeletons collide; the whole point is that it can be far smaller).
  size_t machine_count() const {
    return instances_.size() - free_instances_.size();
  }

  /// The shared symbol table all registered machines and the parser resolve
  /// names against: the table the caller put in sax_options.symbols, or an
  /// engine-owned one. Stable for the engine's lifetime.
  SymbolTable* symbols() { return symbols_; }

  /// Pushes the next chunk of the stream to the registered queries.
  Status Feed(std::string_view chunk);
  /// Signals end of stream.
  Status Finish();
  /// Convenience whole-document runs.
  Status RunString(std::string_view document);

  /// Runs one pre-parsed document: replays a recorded event stream into the
  /// registered queries, equivalent to RunString() on the original text but
  /// with zero parse cost (parse-once fan-out: StreamService records each
  /// document once and replays it into every shard). The log's symbol
  /// stamps must come from a parse against this engine's symbols() table
  /// (or be unstamped). Must be called at a document boundary
  /// (InvalidArgument while a Feed() stream is mid-document); on success
  /// the engine is back at a boundary — queries may be added/removed and
  /// another document run, with dispatch stats accumulating. On failure
  /// the document was abandoned midway: ResetStream() before reuse.
  Status RunEvents(const xml::EventLog& log);

  /// Prepares for a new document; registered queries stay (and more may be
  /// added before the next Feed()).
  void ResetStream();

  /// The compiled query of a live subscription (its own literals, even when
  /// the executing machine is shared); `id` must satisfy has_query(id).
  const xpath::Query& query(QueryId id) const;
  /// The machine executing a live subscription. Under plan sharing this may
  /// serve other subscriptions too, so its stats aggregate across them.
  const TwigMachine& machine(QueryId id) const {
    return instances_[subs_[id]->instance]->built->machine();
  }

  const DispatchStats& dispatch_stats() const { return dispatch_stats_; }

  /// Sum of live machine memory across all plan instances.
  size_t total_live_bytes() const;

 private:
  // One compiled plan instance: the unit the dispatcher routes events to.
  // Shared instances serve up to 64 parameter groups, each a distinct
  // literal vector with its own subscriber list; a skeleton with more
  // groups chains additional instances under the same cache key. Dedicated
  // instances (share_plans off) serve exactly one subscription through the
  // machine's own ResultHandler.
  struct PlanInstance;
  // Fan-out sink: maps a machine's (solution, group mask) to the group's
  // subscriber handlers.
  class GroupFanout : public GroupResultSink {
   public:
    GroupFanout(MultiQueryEngine* owner, PlanInstance* plan)
        : owner_(owner), plan_(plan) {}
    void OnGroupResult(std::string_view fragment, uint64_t sequence,
                       uint64_t group_mask) override;

   private:
    MultiQueryEngine* owner_;
    PlanInstance* plan_;
  };

  struct PlanInstance {
    std::unique_ptr<BuiltMachine> built;
    bool shared = false;
    // Cache identity (shared instances only): skeleton key + machine
    // options, FNV hash of the same.
    std::string plan_key;
    uint64_t plan_hash = 0;
    // Parameter groups: group g's literal vector and subscribers. Parallel
    // to the group-major rows of `bindings`.
    std::vector<std::vector<xpath::ValueParam>> group_params;
    std::vector<std::vector<QueryId>> group_members;
    size_t subscriber_count = 0;
    PlanBindings bindings;
    std::unique_ptr<GroupFanout> sink;
  };

  struct Subscription {
    uint32_t instance = 0;
    uint32_t group = 0;
    ResultHandler* handler = nullptr;
    // The subscription's own compiled query; null for the subscription
    // whose Query was moved into the instance machine (query() then reads
    // it from there).
    std::unique_ptr<xpath::Query> query;
  };

  // Routes each SAX event to the machines that can use it (see file
  // comment). Owns the central text coalescing buffer and the per-document
  // dispatch state; the index itself is (re)built at stream start.
  class Dispatcher : public xml::ContentHandler {
   public:
    explicit Dispatcher(MultiQueryEngine* owner) : owner_(owner) {}
    Status StartDocument() override;
    Status StartElement(const xml::StartElementEvent& event) override;
    Status EndElement(std::string_view name, int depth) override;
    Status Text(const xml::TextEvent& event) override;
    Status EndDocument() override;

    void BuildIndex();
    void ResetStream();
    /// Forces an index rebuild at the next document (query set changed).
    void InvalidateIndex() { index_built_ = false; }
    /// Bytes held in the central text buffer (counts toward live memory).
    size_t pending_text_bytes() const { return pending_text_.buffer.size(); }

   private:
    // Per-machine dispatch subscriptions, derived from the query shape.
    struct MachineInfo {
      bool broadcast_elements = false;  // '*' test: every tag event
      bool wants_text = false;          // any text() node
      bool bare_text = false;           // //text(): every text node
      bool wants_attributes = false;    // //@id, //a//@id: any tag w/ attrs
      bool bare_attributes = false;     // //@id: no context entry needed
      bool output_is_element = false;   // may open recordings
    };

    TwigMachine& machine(size_t i) {
      return owner_->instances_[i]->built->machine();
    }

    // Appends machine `i` to targets_ if not yet visited this event.
    void AddTarget(size_t i, bool broadcast);
    void CollectTagTargets(Symbol symbol, bool with_attributes);
    void SyncRecorder(size_t i);
    Status FlushTextNode();
    // Lazily starts machine `i`'s document on the first event dispatched
    // to it (see doc_gen_ below). Must run before any event delivery.
    Status TouchMachine(uint32_t i);

    MultiQueryEngine* owner_;
    bool index_built_ = false;

    // symbol -> machines whose queries name that tag. Sized to the largest
    // symbol any registered query interned (not the table's current size):
    // document-only symbols can never match, and not reading the table here
    // lets shards rebuild their index while another thread interns new
    // query vocabulary into a shared table (DESIGN.md §5).
    //
    // Split by reachability: postings_ holds *entry* symbols — tags that
    // match a query-root node, which can push with every stack empty — and
    // dependent_postings_ holds tags only named by non-root nodes, which
    // are strict no-ops until the machine has a live stack entry. Dependent
    // postings are dispatched only to machines already touched this
    // document, so a tag shared by many queries (`//itemN/val` × 1000: all
    // name `val`) costs per event only the machines whose root actually
    // opened, not every subscriber of the tag.
    std::vector<std::vector<uint32_t>> postings_;
    std::vector<std::vector<uint32_t>> dependent_postings_;
    std::vector<MachineInfo> info_;
    std::vector<uint32_t> element_broadcast_;  // wildcard machines
    std::vector<uint32_t> attribute_machines_;
    std::vector<uint32_t> text_machines_;

    // Per-event target collection with O(1) dedup.
    std::vector<uint32_t> targets_;
    std::vector<uint64_t> visit_stamp_;
    uint64_t event_id_ = 0;

    // Lazy per-document machine activation (DESIGN.md §12): StartDocument
    // bumps doc_gen_ instead of resetting every registered machine, and a
    // machine is reset when the document's first event actually reaches it
    // (TouchMachine). Untouched machines are left exactly as their last
    // document ended — stacks empty by the EndDocument invariant — so
    // per-document engine cost scales with the machines the document
    // touches, not with the number of registered plans. touched_machines_
    // names the machines started this document; only they are finished at
    // EndDocument.
    std::vector<uint64_t> machine_doc_gen_;
    std::vector<uint32_t> touched_machines_;
    uint64_t doc_gen_ = 0;

    // Machines with an open output recording: broadcast set, maintained
    // after every dispatched event (recordings open/close only then).
    std::vector<uint32_t> active_recorders_;
    std::vector<uint8_t> is_active_recorder_;

    // Tag symbols of currently open elements (EndElement events carry no
    // symbol; the matching start did).
    std::vector<Symbol> open_symbols_;

    // Central text coalescing: one buffer for the whole engine instead of
    // one per machine. Bounded by the strictest registered machine memory
    // limit — under per-machine buffering every machine charged the text
    // against its own budget, so the strictest one failed first.
    xml::TextCoalescer pending_text_;
    size_t min_memory_limit_ = 0;  // 0 = no machine has a limit
  };

  // Registration internals (shared by AddQuery and AddBuilt). Exactly one
  // of `query` (caller compiled the query; a machine is built on demand if
  // no instance can be joined) and `built` (pre-built machine, adopted as
  // a new instance or disassembled for its Query on a join) must be
  // non-null.
  Result<QueryId> Register(std::unique_ptr<xpath::Query> query,
                           ResultHandler* handler,
                           TwigMachine::Options options,
                           std::unique_ptr<BuiltMachine> built);
  Result<QueryId> AddDedicated(std::unique_ptr<BuiltMachine> built);
  QueryId AllocateSubscription(std::unique_ptr<Subscription> sub);
  uint32_t AllocateInstance(std::unique_ptr<PlanInstance> instance);
  // Rewrites `instance`'s PlanBindings rows from group_params and rebinds
  // the machine (document boundary only).
  Status RebindInstance(PlanInstance* instance);
  void DestroyInstance(uint32_t index);

  // Slot i holds subscription id i; removed subscriptions leave a null
  // slot that the next registration recycles, so the vector is bounded by
  // the peak number of concurrent queries however many churn cycles run.
  std::vector<std::unique_ptr<Subscription>> subs_;
  std::vector<QueryId> free_slots_;
  // Plan instances, same recycling discipline; the dispatcher indexes
  // these, not subscriptions.
  std::vector<std::unique_ptr<PlanInstance>> instances_;
  std::vector<uint32_t> free_instances_;
  // Plan cache: hash of (skeleton key + options) -> instance slots with
  // that hash (key compared exactly on hit; chained instances on overflow).
  std::unordered_map<uint64_t, std::vector<uint32_t>> plan_index_;

  Options options_;
  SymbolTable owned_symbols_;
  // The engine's table: caller-supplied via sax_options.symbols (must then
  // outlive the engine) or &owned_symbols_.
  SymbolTable* symbols_ = nullptr;
  Dispatcher dispatcher_;
  DispatchStats dispatch_stats_;
  uint64_t plan_hits_ = 0;
  uint64_t plan_misses_ = 0;
  std::unique_ptr<xml::SaxParser> sax_;
  bool started_ = false;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_MULTI_QUERY_H_
