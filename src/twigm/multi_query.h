// MultiQueryEngine: evaluate many standing XPath queries over one XML
// stream in a single pass.
//
// The paper's motivating applications — stock tickers, sports feeds,
// personalized newspapers — are publish/subscribe systems: one stream, many
// subscriptions. ViteX's demo runs one TwigM; this extension fans the SAX
// event stream out to one TwigM machine per registered query, so the
// O(document) parsing cost is paid once for all of them. Each query keeps
// its own ResultHandler, stats and memory accounting.

#ifndef VITEX_TWIGM_MULTI_QUERY_H_
#define VITEX_TWIGM_MULTI_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "twigm/builder.h"
#include "twigm/machine.h"
#include "twigm/result.h"
#include "xml/sax_parser.h"

namespace vitex::twigm {

/// Identifier of a registered query within one MultiQueryEngine.
using QueryId = size_t;

class MultiQueryEngine {
 public:
  explicit MultiQueryEngine(xml::SaxParserOptions sax_options = {});

  MultiQueryEngine(const MultiQueryEngine&) = delete;
  MultiQueryEngine& operator=(const MultiQueryEngine&) = delete;

  /// Registers a standing query. All registrations must happen before the
  /// first Feed(). `results` must outlive the engine; may be null.
  Result<QueryId> AddQuery(std::string_view xpath, ResultHandler* results,
                           TwigMachine::Options options = {});

  /// Registers an already-built machine (used by UnionEngine and callers
  /// that compile queries themselves).
  Result<QueryId> AddBuilt(BuiltMachine built);

  size_t query_count() const { return machines_.size(); }

  /// Pushes the next chunk of the stream to every registered query.
  Status Feed(std::string_view chunk);
  /// Signals end of stream.
  Status Finish();
  /// Convenience whole-document runs.
  Status RunString(std::string_view document);

  /// Prepares for a new document; registered queries stay.
  void ResetStream();

  const xpath::Query& query(QueryId id) const {
    return machines_[id]->query();
  }
  const TwigMachine& machine(QueryId id) const {
    return machines_[id]->machine();
  }

  /// Sum of live machine memory across all queries.
  size_t total_live_bytes() const;

 private:
  // Fans each SAX event out to all machines.
  class Demux : public xml::ContentHandler {
   public:
    explicit Demux(MultiQueryEngine* owner) : owner_(owner) {}
    Status StartDocument() override;
    Status StartElement(const xml::StartElementEvent& event) override;
    Status EndElement(std::string_view name, int depth) override;
    Status Characters(std::string_view text, int depth) override;
    Status EndDocument() override;

   private:
    MultiQueryEngine* owner_;
  };

  std::vector<std::unique_ptr<BuiltMachine>> machines_;
  Demux demux_;
  std::unique_ptr<xml::SaxParser> sax_;
  bool started_ = false;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_MULTI_QUERY_H_
