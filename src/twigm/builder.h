// TwigMBuilder: constructs a TwigM machine from an XPath query (paper §3.1).
//
// "TwigM can be built from the input query in linear time. A machine node is
// constructed for each query node, and they are organized in a tree
// structure corresponding to the query." The builder chains the XPath
// parser, the twig compiler and machine construction, and validates that
// the query is inside the executable fragment.

#ifndef VITEX_TWIGM_BUILDER_H_
#define VITEX_TWIGM_BUILDER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "twigm/machine.h"
#include "xpath/query.h"

namespace vitex::twigm {

/// A compiled query together with the machine executing it. The machine
/// holds a pointer into the query, so the two are bundled to keep lifetimes
/// coupled.
class BuiltMachine {
 public:
  BuiltMachine(std::unique_ptr<xpath::Query> query,
               std::unique_ptr<TwigMachine> machine)
      : query_(std::move(query)), machine_(std::move(machine)) {}

  BuiltMachine(BuiltMachine&&) = default;
  BuiltMachine& operator=(BuiltMachine&&) = default;

  TwigMachine& machine() { return *machine_; }
  const TwigMachine& machine() const { return *machine_; }
  const xpath::Query& query() const { return *query_; }

  /// Disassembles the bundle: destroys the machine (it references the
  /// query's nodes and must not run afterwards) and hands the compiled
  /// query out. Plan-sharing joins use this to keep a subscription's query
  /// record while discarding its now-redundant machine — without
  /// recompiling from source.
  std::unique_ptr<xpath::Query> TakeQuery() && {
    machine_.reset();
    return std::move(query_);
  }

 private:
  std::unique_ptr<xpath::Query> query_;
  std::unique_ptr<TwigMachine> machine_;
};

class TwigMBuilder {
 public:
  /// Builds a machine from XPath text. O(|Q|) after parsing.
  ///
  /// `symbols` is the SymbolTable the machine's match index is interned
  /// into; pass the pipeline's shared table (MultiQueryEngine::symbols())
  /// when the machine will run under shared dispatch, or null to give the
  /// machine a private table. Must outlive the machine when non-null.
  static Result<BuiltMachine> Build(std::string_view xpath,
                                    ResultHandler* results,
                                    TwigMachine::Options options = {},
                                    SymbolTable* symbols = nullptr);

  /// Builds a machine from an already compiled query (takes ownership).
  static Result<BuiltMachine> Build(std::unique_ptr<xpath::Query> query,
                                    ResultHandler* results,
                                    TwigMachine::Options options = {},
                                    SymbolTable* symbols = nullptr);
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_BUILDER_H_
