// CandidateStore: shared, reference-counted storage for candidate solutions.
//
// A candidate solution (paper §3.2) is an XML node that matches the output
// query node but whose qualification depends on predicates that are still
// undetermined. One candidate may be reachable through several pattern
// matches — TwigM's compactness comes from *sharing* the candidate across
// all of them instead of duplicating it per match. The store keeps one slot
// per candidate; stack entries hold references. A candidate is emitted at
// most once (first qualifying pattern match wins) and is reclaimed when the
// last reference drops.
//
// Storage is *versioned* (DESIGN.md §12): every slot is stamped with the
// document generation it was created in, and Reset() is a single counter
// bump — slots, their fragment buffers, and the free list all keep their
// heap capacity across documents, so steady-state processing allocates
// nothing. A slot id from a previous generation is dead: the debug build
// asserts on any access through one, which is what surfaces cross-document
// dangling-id bugs that the old clear-everything Reset() silently masked.

#ifndef VITEX_TWIGM_CANDIDATE_STORE_H_
#define VITEX_TWIGM_CANDIDATE_STORE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"

namespace vitex::twigm {

/// Index of a candidate slot in the store. Ids are only meaningful within
/// the document (generation) that created them.
using CandidateId = uint32_t;

/// Aggregate counters for the candidate lifecycle (experiment E10).
struct CandidateStats {
  uint64_t created = 0;
  uint64_t emitted = 0;
  uint64_t pruned = 0;  ///< discarded: no pattern match qualified them
  uint64_t peak_live = 0;
  uint64_t peak_bytes = 0;
};

class CandidateStore {
 public:
  explicit CandidateStore(MemoryTracker* memory) : memory_(memory) {}

  /// Creates a candidate holding a copy of `fragment` with one initial
  /// reference. The copy lands in a pooled slot buffer, so after warmup
  /// this allocates only when the fragment outgrows every previously seen
  /// one in its slot.
  CandidateId Create(std::string_view fragment, uint64_t sequence) {
    CandidateId id;
    if (free_size_ > 0) {
      id = free_list_[--free_size_];
    } else if (slot_cursor_ < slots_.size()) {
      id = static_cast<CandidateId>(slot_cursor_++);
    } else {
      id = static_cast<CandidateId>(slots_.size());
      slots_.emplace_back();  // warmup growth only
      ++slot_cursor_;
    }
    Slot& s = slots_[id];
    s.generation = generation_;
    s.refs = 1;
    s.emitted_mask = 0;
    s.sequence = sequence;
    s.fragment.assign(fragment.data(), fragment.size());
    ++stats_.created;
    ++live_;
    live_bytes_ += s.fragment.size();
    memory_->Add(s.fragment.size() + sizeof(Slot));
    if (live_ > stats_.peak_live) stats_.peak_live = live_;
    if (live_bytes_ > stats_.peak_bytes) stats_.peak_bytes = live_bytes_;
    return id;
  }

  /// Adds a reference (the candidate is now also held by another entry).
  void Ref(CandidateId id) { ++slot(id).refs; }

  /// Drops a reference; recycles the slot when it was the last one. A
  /// candidate reclaimed without ever being emitted counts as pruned. The
  /// fragment buffer keeps its capacity for the slot's next occupant.
  void Unref(CandidateId id) {
    Slot& s = slot(id);
    if (--s.refs == 0) {
      if (s.emitted_mask == 0) ++stats_.pruned;
      --live_;
      live_bytes_ -= s.fragment.size();
      memory_->Release(s.fragment.size() + sizeof(Slot));
      if (free_size_ == free_list_.size()) {
        free_list_.push_back(id);  // warmup growth only
      } else {
        free_list_[free_size_] = id;
      }
      ++free_size_;
    }
  }

  /// The fragment text of a live candidate.
  const std::string& fragment(CandidateId id) const {
    return slot(id).fragment;
  }
  uint64_t sequence(CandidateId id) const { return slot(id).sequence; }

  /// Marks emission; returns false if it had already been emitted (the
  /// caller must emit only on true).
  bool MarkEmitted(CandidateId id) { return MarkEmitted(id, ~0ull) != 0; }

  /// Shared-plan variant: marks emission towards the groups in `mask` and
  /// returns the bits that had NOT been emitted before (the caller delivers
  /// only those). One candidate may qualify for different groups through
  /// different pattern matches; each group still sees it at most once.
  uint64_t MarkEmitted(CandidateId id, uint64_t mask) {
    Slot& s = slot(id);
    uint64_t newly = mask & ~s.emitted_mask;
    if (newly == 0) return 0;
    if (s.emitted_mask == 0) ++stats_.emitted;
    s.emitted_mask |= newly;
    return newly;
  }

  /// Number of live (referenced) candidates.
  uint64_t live() const { return live_; }
  uint64_t live_bytes() const { return live_bytes_; }
  const CandidateStats& stats() const { return stats_; }

  /// True iff `id` names a referenced candidate of the *current* document.
  /// Ids freed this document, or created in any earlier one, are not live —
  /// the regression surface for cross-document slot-id reuse bugs.
  bool is_live(CandidateId id) const {
    return id < slots_.size() && slots_[id].generation == generation_ &&
           slots_[id].refs > 0;
  }

  /// Current document generation (bumped by every Reset()).
  uint64_t generation() const { return generation_; }

  /// Slots ever allocated — the pooled high-water mark, stable across
  /// Reset() once the workload's peak has been seen.
  size_t pooled_slots() const { return slots_.size(); }

  /// O(1) per-document reset: bumping the generation makes every slot and
  /// free-list entry from the previous document stale without touching
  /// them; all capacity (slot vector, fragment buffers, free list) is
  /// retained for the next document.
  void Reset() {
    ++generation_;
    slot_cursor_ = 0;
    free_size_ = 0;
    stats_ = CandidateStats();
    live_ = 0;
    live_bytes_ = 0;
  }

 private:
  struct Slot {
    std::string fragment;
    uint64_t sequence = 0;
    /// Groups this candidate has been delivered to (all-ones semantics for
    /// single-query machines via the bool MarkEmitted overload).
    uint64_t emitted_mask = 0;
    /// The document generation this slot was last created in; a slot whose
    /// stamp is stale holds only pooled capacity, never live state.
    uint64_t generation = 0;
    uint32_t refs = 0;
  };

  Slot& slot(CandidateId id) {
    assert(id < slots_.size() && slots_[id].generation == generation_ &&
           "stale CandidateId: crossed a document boundary");
    return slots_[id];
  }
  const Slot& slot(CandidateId id) const {
    assert(id < slots_.size() && slots_[id].generation == generation_ &&
           "stale CandidateId: crossed a document boundary");
    return slots_[id];
  }

  std::vector<Slot> slots_;
  /// Slots [0, slot_cursor_) have been handed out this generation.
  size_t slot_cursor_ = 0;
  /// free_list_[0, free_size_) are this generation's recycled ids; the tail
  /// is pooled capacity from earlier documents.
  std::vector<CandidateId> free_list_;
  size_t free_size_ = 0;
  /// Starts above every default-constructed Slot::generation so a fresh
  /// store has no accidentally-current slots.
  uint64_t generation_ = 1;
  CandidateStats stats_;
  uint64_t live_ = 0;
  uint64_t live_bytes_ = 0;
  MemoryTracker* memory_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_CANDIDATE_STORE_H_
