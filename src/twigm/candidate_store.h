// CandidateStore: shared, reference-counted storage for candidate solutions.
//
// A candidate solution (paper §3.2) is an XML node that matches the output
// query node but whose qualification depends on predicates that are still
// undetermined. One candidate may be reachable through several pattern
// matches — TwigM's compactness comes from *sharing* the candidate across
// all of them instead of duplicating it per match. The store keeps one slot
// per candidate; stack entries hold references. A candidate is emitted at
// most once (first qualifying pattern match wins) and is reclaimed when the
// last reference drops.

#ifndef VITEX_TWIGM_CANDIDATE_STORE_H_
#define VITEX_TWIGM_CANDIDATE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/memory_tracker.h"

namespace vitex::twigm {

/// Index of a candidate slot in the store.
using CandidateId = uint32_t;

/// Aggregate counters for the candidate lifecycle (experiment E10).
struct CandidateStats {
  uint64_t created = 0;
  uint64_t emitted = 0;
  uint64_t pruned = 0;  ///< discarded: no pattern match qualified them
  uint64_t peak_live = 0;
  uint64_t peak_bytes = 0;
};

class CandidateStore {
 public:
  explicit CandidateStore(MemoryTracker* memory) : memory_(memory) {}

  /// Creates a candidate holding `fragment` with one initial reference.
  CandidateId Create(std::string fragment, uint64_t sequence) {
    CandidateId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = static_cast<CandidateId>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[id];
    s.refs = 1;
    s.emitted_mask = 0;
    s.sequence = sequence;
    s.fragment = std::move(fragment);
    ++stats_.created;
    ++live_;
    live_bytes_ += s.fragment.size();
    memory_->Add(s.fragment.size() + sizeof(Slot));
    if (live_ > stats_.peak_live) stats_.peak_live = live_;
    if (live_bytes_ > stats_.peak_bytes) stats_.peak_bytes = live_bytes_;
    return id;
  }

  /// Adds a reference (the candidate is now also held by another entry).
  void Ref(CandidateId id) { ++slots_[id].refs; }

  /// Drops a reference; reclaims the slot when it was the last one. A
  /// candidate reclaimed without ever being emitted counts as pruned.
  void Unref(CandidateId id) {
    Slot& s = slots_[id];
    if (--s.refs == 0) {
      if (s.emitted_mask == 0) ++stats_.pruned;
      --live_;
      live_bytes_ -= s.fragment.size();
      memory_->Release(s.fragment.size() + sizeof(Slot));
      s.fragment.clear();
      s.fragment.shrink_to_fit();
      free_list_.push_back(id);
    }
  }

  /// The fragment text of a live candidate.
  const std::string& fragment(CandidateId id) const {
    return slots_[id].fragment;
  }
  uint64_t sequence(CandidateId id) const { return slots_[id].sequence; }

  /// Marks emission; returns false if it had already been emitted (the
  /// caller must emit only on true).
  bool MarkEmitted(CandidateId id) { return MarkEmitted(id, ~0ull) != 0; }

  /// Shared-plan variant: marks emission towards the groups in `mask` and
  /// returns the bits that had NOT been emitted before (the caller delivers
  /// only those). One candidate may qualify for different groups through
  /// different pattern matches; each group still sees it at most once.
  uint64_t MarkEmitted(CandidateId id, uint64_t mask) {
    Slot& s = slots_[id];
    uint64_t newly = mask & ~s.emitted_mask;
    if (newly == 0) return 0;
    if (s.emitted_mask == 0) ++stats_.emitted;
    s.emitted_mask |= newly;
    return newly;
  }

  /// Number of live (referenced) candidates.
  uint64_t live() const { return live_; }
  uint64_t live_bytes() const { return live_bytes_; }
  const CandidateStats& stats() const { return stats_; }

  void Reset() {
    slots_.clear();
    free_list_.clear();
    stats_ = CandidateStats();
    live_ = 0;
    live_bytes_ = 0;
  }

 private:
  struct Slot {
    std::string fragment;
    uint64_t sequence = 0;
    /// Groups this candidate has been delivered to (all-ones semantics for
    /// single-query machines via the bool MarkEmitted overload).
    uint64_t emitted_mask = 0;
    uint32_t refs = 0;
  };

  std::vector<Slot> slots_;
  std::vector<CandidateId> free_list_;
  CandidateStats stats_;
  uint64_t live_ = 0;
  uint64_t live_bytes_ = 0;
  MemoryTracker* memory_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_CANDIDATE_STORE_H_
