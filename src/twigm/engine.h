// Engine: the one-call public API of ViteX.
//
// Wires the four modules of the paper's Figure 2 together: XPath parser →
// TwigM builder → SAX parser → TwigM machine. Feed XML bytes in, get query
// solutions out, incrementally.
//
//   vitex::twigm::VectorResultCollector results;
//   auto engine = vitex::twigm::Engine::Create(
//       "//ProteinEntry[reference]//@id", &results);
//   if (!engine.ok()) { ... }
//   engine->Feed(chunk1);
//   engine->Feed(chunk2);
//   engine->Finish();
//   for (const auto& r : results.results()) { ... }
//
// Create() binds the SAX parser to the machine's SymbolTable: tag and
// attribute names are interned once per event and the machine matches by
// dense symbol id (DESIGN.md §3). Results carry parser-stamped document-
// order sequence numbers. For many standing queries over one stream, use
// MultiQueryEngine (multi_query.h), which shares one table and one parse
// across all of them and dispatches events only to interested machines.

#ifndef VITEX_TWIGM_ENGINE_H_
#define VITEX_TWIGM_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "twigm/builder.h"
#include "twigm/machine.h"
#include "twigm/result.h"
#include "xml/sax_parser.h"

namespace vitex::twigm {

class Engine {
 public:
  struct Options {
    xml::SaxParserOptions sax;
    TwigMachine::Options machine;
  };

  /// Compiles the query and assembles the pipeline. `results` must outlive
  /// the engine (may be null to discard results).
  static Result<Engine> Create(std::string_view xpath, ResultHandler* results,
                               Options options);
  static Result<Engine> Create(std::string_view xpath, ResultHandler* results);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// Pushes the next chunk of the XML stream.
  Status Feed(std::string_view chunk);
  /// Signals end of stream.
  Status Finish();
  /// Streams a whole file through the engine.
  Status RunFile(const std::string& path, size_t chunk_bytes = 1 << 16);
  /// Parses a whole in-memory document.
  Status RunString(std::string_view document);

  /// Prepares the engine for a new document with the same query.
  void ResetStream();

  const xpath::Query& query() const { return built_->query(); }
  const TwigMachine& machine() const { return built_->machine(); }
  TwigMachine& machine() { return built_->machine(); }
  const xml::SaxParser& sax() const { return *sax_; }

 private:
  Engine(std::unique_ptr<BuiltMachine> built,
         std::unique_ptr<xml::SaxParser> sax)
      : built_(std::move(built)), sax_(std::move(sax)) {}

  std::unique_ptr<BuiltMachine> built_;
  std::unique_ptr<xml::SaxParser> sax_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_ENGINE_H_
