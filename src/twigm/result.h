// Result delivery interfaces for TwigM.
//
// Query solutions are XML fragments (or attribute/text values). They are
// delivered incrementally, as soon as their qualification is proven — one of
// the paper's three streaming requirements ("incrementally produce and
// distribute query results to end users before the data is completely
// received").

#ifndef VITEX_TWIGM_RESULT_H_
#define VITEX_TWIGM_RESULT_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vitex::twigm {

/// Receiver for query solutions.
///
/// Allocation contract (DESIGN.md §12): the engine hot path performs no
/// heap allocation per document in steady state, and `fragment` is a view
/// into pooled engine storage valid only for the duration of the call.
/// Handlers on that path should either not allocate (CountingResultHandler)
/// or copy into pooled storage of their own; a handler that allocates per
/// result is what shows up in the zero-alloc harness.
class ResultHandler {
 public:
  virtual ~ResultHandler() = default;

  /// Called once per solution.
  ///
  /// @param fragment the serialized result: the matched element's subtree in
  ///        canonical XML for element results, the raw value for attribute
  ///        and text() results.
  /// @param sequence document-order sequence number of the matched node;
  ///        solutions are emitted when qualification is proven, which may be
  ///        out of document order — consumers needing document order sort by
  ///        this key.
  virtual void OnResult(std::string_view fragment, uint64_t sequence) = 0;
};

/// Receiver for solutions of a *shared plan* machine serving several
/// subscriber groups (DESIGN.md §7). `group_mask` has bit g set iff the
/// solution qualified for group g — the fan-out layer (MultiQueryEngine)
/// maps bits to subscriber lists. A machine bound to a plan delivers here
/// instead of ResultHandler.
class GroupResultSink {
 public:
  virtual ~GroupResultSink() = default;

  /// Called once per (solution, newly-qualified group set); a solution that
  /// later qualifies for further groups is re-delivered with only the new
  /// bits set (each group sees each solution at most once).
  virtual void OnGroupResult(std::string_view fragment, uint64_t sequence,
                             uint64_t group_mask) = 0;
};

/// Collects solutions into memory (tests, examples).
class VectorResultCollector : public ResultHandler {
 public:
  void OnResult(std::string_view fragment, uint64_t sequence) override {
    results_.push_back(Entry{std::string(fragment), sequence});
  }

  struct Entry {
    std::string fragment;
    uint64_t sequence;
  };

  const std::vector<Entry>& results() const { return results_; }
  size_t size() const { return results_.size(); }

  /// Fragments sorted into document order.
  std::vector<std::string> SortedFragments() const {
    std::vector<Entry> copy = results_;
    std::sort(copy.begin(), copy.end(),
              [](const Entry& a, const Entry& b) {
                return a.sequence < b.sequence;
              });
    std::vector<std::string> out;
    out.reserve(copy.size());
    for (Entry& e : copy) out.push_back(std::move(e.fragment));
    return out;
  }

  void Clear() { results_.clear(); }

 private:
  std::vector<Entry> results_;
};

/// Counts solutions without storing them (benchmarks over large streams).
class CountingResultHandler : public ResultHandler {
 public:
  void OnResult(std::string_view fragment, uint64_t sequence) override {
    (void)sequence;
    ++count_;
    bytes_ += fragment.size();
  }

  uint64_t count() const { return count_; }
  uint64_t bytes() const { return bytes_; }
  void Reset() {
    count_ = 0;
    bytes_ = 0;
  }

 private:
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_RESULT_H_
