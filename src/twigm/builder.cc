#include "twigm/builder.h"

namespace vitex::twigm {

Result<BuiltMachine> TwigMBuilder::Build(std::string_view xpath,
                                         ResultHandler* results,
                                         TwigMachine::Options options,
                                         SymbolTable* symbols) {
  VITEX_ASSIGN_OR_RETURN(xpath::Query compiled,
                         xpath::ParseAndCompile(xpath));
  auto query = std::make_unique<xpath::Query>(std::move(compiled));
  return Build(std::move(query), results, options, symbols);
}

Result<BuiltMachine> TwigMBuilder::Build(std::unique_ptr<xpath::Query> query,
                                         ResultHandler* results,
                                         TwigMachine::Options options,
                                         SymbolTable* symbols) {
  if (query == nullptr || query->root() == nullptr) {
    return Status::InvalidArgument("null or empty query");
  }
  auto machine =
      std::make_unique<TwigMachine>(query.get(), results, options, symbols);
  return BuiltMachine(std::move(query), std::move(machine));
}

}  // namespace vitex::twigm
