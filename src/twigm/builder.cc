#include "twigm/builder.h"

namespace vitex::twigm {

Result<BuiltMachine> TwigMBuilder::Build(std::string_view xpath,
                                         ResultHandler* results) {
  return Build(xpath, results, TwigMachine::Options());
}

Result<BuiltMachine> TwigMBuilder::Build(std::unique_ptr<xpath::Query> query,
                                         ResultHandler* results) {
  return Build(std::move(query), results, TwigMachine::Options());
}

Result<BuiltMachine> TwigMBuilder::Build(std::string_view xpath,
                                         ResultHandler* results,
                                         TwigMachine::Options options) {
  VITEX_ASSIGN_OR_RETURN(xpath::Query compiled,
                         xpath::ParseAndCompile(xpath));
  auto query = std::make_unique<xpath::Query>(std::move(compiled));
  return Build(std::move(query), results, options);
}

Result<BuiltMachine> TwigMBuilder::Build(std::unique_ptr<xpath::Query> query,
                                         ResultHandler* results,
                                         TwigMachine::Options options) {
  if (query == nullptr || query->root() == nullptr) {
    return Status::InvalidArgument("null or empty query");
  }
  auto machine = std::make_unique<TwigMachine>(query.get(), results, options);
  return BuiltMachine(std::move(query), std::move(machine));
}

}  // namespace vitex::twigm
