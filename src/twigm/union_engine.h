// UnionEngine: evaluate an XPath union query `p1 | p2 | ...` over a stream.
//
// XPath 1.0 union semantics: the result is the set union of the branches'
// result node-sets. Streaming implementation: one TwigM machine per branch
// sharing one SAX parse (via MultiQueryEngine); a deduplicating handler
// suppresses nodes selected by more than one branch. Sequence numbers are
// query-independent (see TwigMachine::StartElement), so the same XML node
// gets the same key in every branch and dedup is exact.

#ifndef VITEX_TWIGM_UNION_ENGINE_H_
#define VITEX_TWIGM_UNION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "twigm/multi_query.h"

namespace vitex::twigm {

class UnionEngine {
 public:
  struct Options {
    xml::SaxParserOptions sax;
    TwigMachine::Options machine;
  };

  /// Compiles `p1 | p2 | ...` (a single path is fine too). `results` must
  /// outlive the engine; may be null.
  static Result<UnionEngine> Create(std::string_view xpath_union,
                                    ResultHandler* results, Options options);
  static Result<UnionEngine> Create(std::string_view xpath_union,
                                    ResultHandler* results);

  UnionEngine(UnionEngine&&) = default;
  UnionEngine& operator=(UnionEngine&&) = default;

  Status Feed(std::string_view chunk) { return multi_->Feed(chunk); }
  Status Finish() { return multi_->Finish(); }
  Status RunString(std::string_view document) {
    return multi_->RunString(document);
  }
  void ResetStream() {
    multi_->ResetStream();
    dedup_->Clear();
  }

  /// Number of union branches.
  size_t branch_count() const { return multi_->query_count(); }
  const xpath::Query& branch(size_t i) const { return multi_->query(i); }

  /// Results suppressed because another branch selected the same node.
  uint64_t duplicates_suppressed() const { return dedup_->suppressed(); }

 private:
  // Forwards the first emission per document-order key, counts the rest.
  //
  // The seen-set is a versioned open-addressing table (DESIGN.md §12):
  // every entry is stamped with the document generation, so Clear() is a
  // counter bump — stale entries read as empty and are overwritten in
  // place, and the table keeps its capacity across documents instead of
  // rebuilding a hash set from scratch each time.
  class DedupHandler : public ResultHandler {
   public:
    explicit DedupHandler(ResultHandler* out) : out_(out) {}
    void OnResult(std::string_view fragment, uint64_t sequence) override {
      if (!Insert(sequence)) {
        ++suppressed_;
        return;
      }
      if (out_ != nullptr) out_->OnResult(fragment, sequence);
    }
    /// O(1): new documents see an empty set; suppression restarts.
    void Clear() {
      ++generation_;
      size_ = 0;
      suppressed_ = 0;
    }
    uint64_t suppressed() const { return suppressed_; }

   private:
    struct SeenSlot {
      uint64_t key = 0;
      uint64_t generation = 0;  // 0 never matches generation_ (starts at 1)
    };

    static uint64_t Hash(uint64_t x) {
      // splitmix64 finalizer: sequence keys are near-consecutive integers,
      // so they need real mixing before masking into a power-of-two table.
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    }

    // Inserts `key`; false if it was already present this generation.
    bool Insert(uint64_t key) {
      if (slots_.size() < 2 * (size_ + 1)) Grow();  // load factor <= 1/2
      size_t mask = slots_.size() - 1;
      size_t i = static_cast<size_t>(Hash(key)) & mask;
      while (true) {
        SeenSlot& s = slots_[i];
        if (s.generation != generation_) {  // empty or stale: claim it
          s.key = key;
          s.generation = generation_;
          ++size_;
          return true;
        }
        if (s.key == key) return false;
        i = (i + 1) & mask;
      }
    }

    void Grow() {
      std::vector<SeenSlot> old = std::move(slots_);
      slots_.assign(old.empty() ? 64 : old.size() * 2, SeenSlot{});
      size_t mask = slots_.size() - 1;
      for (const SeenSlot& s : old) {
        if (s.generation != generation_) continue;  // stale: drop
        size_t i = static_cast<size_t>(Hash(s.key)) & mask;
        while (slots_[i].generation == generation_) i = (i + 1) & mask;
        slots_[i] = s;
      }
    }

    ResultHandler* out_;
    std::vector<SeenSlot> slots_;  // power-of-two size
    size_t size_ = 0;              // current-generation entries
    uint64_t generation_ = 1;
    uint64_t suppressed_ = 0;
  };

  UnionEngine(std::unique_ptr<DedupHandler> dedup,
              std::unique_ptr<MultiQueryEngine> multi)
      : dedup_(std::move(dedup)), multi_(std::move(multi)) {}

  std::unique_ptr<DedupHandler> dedup_;
  std::unique_ptr<MultiQueryEngine> multi_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_UNION_ENGINE_H_
