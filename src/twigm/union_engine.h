// UnionEngine: evaluate an XPath union query `p1 | p2 | ...` over a stream.
//
// XPath 1.0 union semantics: the result is the set union of the branches'
// result node-sets. Streaming implementation: one TwigM machine per branch
// sharing one SAX parse (via MultiQueryEngine); a deduplicating handler
// suppresses nodes selected by more than one branch. Sequence numbers are
// query-independent (see TwigMachine::StartElement), so the same XML node
// gets the same key in every branch and dedup is exact.

#ifndef VITEX_TWIGM_UNION_ENGINE_H_
#define VITEX_TWIGM_UNION_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/result.h"
#include "twigm/multi_query.h"

namespace vitex::twigm {

class UnionEngine {
 public:
  struct Options {
    xml::SaxParserOptions sax;
    TwigMachine::Options machine;
  };

  /// Compiles `p1 | p2 | ...` (a single path is fine too). `results` must
  /// outlive the engine; may be null.
  static Result<UnionEngine> Create(std::string_view xpath_union,
                                    ResultHandler* results, Options options);
  static Result<UnionEngine> Create(std::string_view xpath_union,
                                    ResultHandler* results);

  UnionEngine(UnionEngine&&) = default;
  UnionEngine& operator=(UnionEngine&&) = default;

  Status Feed(std::string_view chunk) { return multi_->Feed(chunk); }
  Status Finish() { return multi_->Finish(); }
  Status RunString(std::string_view document) {
    return multi_->RunString(document);
  }
  void ResetStream() {
    multi_->ResetStream();
    dedup_->Clear();
  }

  /// Number of union branches.
  size_t branch_count() const { return multi_->query_count(); }
  const xpath::Query& branch(size_t i) const { return multi_->query(i); }

  /// Results suppressed because another branch selected the same node.
  uint64_t duplicates_suppressed() const { return dedup_->suppressed(); }

 private:
  // Forwards the first emission per document-order key, counts the rest.
  class DedupHandler : public ResultHandler {
   public:
    explicit DedupHandler(ResultHandler* out) : out_(out) {}
    void OnResult(std::string_view fragment, uint64_t sequence) override {
      if (!seen_.insert(sequence).second) {
        ++suppressed_;
        return;
      }
      if (out_ != nullptr) out_->OnResult(fragment, sequence);
    }
    void Clear() {
      seen_.clear();
      suppressed_ = 0;
    }
    uint64_t suppressed() const { return suppressed_; }

   private:
    ResultHandler* out_;
    std::unordered_set<uint64_t> seen_;
    uint64_t suppressed_ = 0;
  };

  UnionEngine(std::unique_ptr<DedupHandler> dedup,
              std::unique_ptr<MultiQueryEngine> multi)
      : dedup_(std::move(dedup)), multi_(std::move(multi)) {}

  std::unique_ptr<DedupHandler> dedup_;
  std::unique_ptr<MultiQueryEngine> multi_;
};

}  // namespace vitex::twigm

#endif  // VITEX_TWIGM_UNION_ENGINE_H_
