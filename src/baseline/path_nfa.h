// PathNfa: an NFA-based streaming evaluator for predicate-free path queries
// (the YFilter/XFilter family of techniques that predate ViteX).
//
// Path queries like //a//b/c need no candidate buffering: a match is known
// the instant the final step's element opens. The NFA keeps, per open
// element, the set of active states (a bitmask), pushed and popped with the
// element. Its existence in this repo demonstrates *why* TwigM is needed:
// the moment a query has a predicate, matches become conditional on future
// events and the stack-of-state-sets approach no longer suffices.

#ifndef VITEX_BASELINE_PATH_NFA_H_
#define VITEX_BASELINE_PATH_NFA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "twigm/result.h"
#include "xml/sax_event.h"
#include "xpath/query.h"

namespace vitex::baseline {

/// Streaming matcher for queries that are pure element paths (child and
/// descendant axes, name and wildcard tests, no predicates, no attributes,
/// no text()). Emits one result per matching element: the element's tag as
/// the fragment and its document-order sequence as the key (fragments are
/// not serialized — this baseline measures pure matching throughput).
class PathNfa : public xml::ContentHandler {
 public:
  /// Fails with InvalidArgument if the query is not a pure path.
  static Result<PathNfa> Create(const xpath::Query* query,
                                twigm::ResultHandler* results);

  Status StartDocument() override;
  Status StartElement(const xml::StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;

  uint64_t matches() const { return matches_; }
  /// Maximum number of simultaneously live state sets (== max depth).
  size_t peak_stack_depth() const { return peak_depth_; }

 private:
  PathNfa(const xpath::Query* query, twigm::ResultHandler* results);

  struct StepInfo {
    bool descendant = false;
    bool wildcard = false;
    std::string name;
  };

  // steps_[i] describes the transition from state i to state i+1; state
  // step_count_ is the accept state.
  std::vector<StepInfo> steps_;
  size_t step_count_ = 0;
  twigm::ResultHandler* results_;

  // Stack of active state sets, one per open element; state i active means
  // "the first i steps matched a chain of ancestors".
  std::vector<uint64_t> state_stack_;
  uint64_t matches_ = 0;
  size_t peak_depth_ = 0;
  uint64_t sequence_counter_ = 0;
};

}  // namespace vitex::baseline

#endif  // VITEX_BASELINE_PATH_NFA_H_
