#include "baseline/path_nfa.h"

namespace vitex::baseline {

using xpath::Axis;
using xpath::NodeTestKind;
using xpath::QueryNode;

PathNfa::PathNfa(const xpath::Query* query, twigm::ResultHandler* results)
    : results_(results) {
  const QueryNode* q = query->root();
  while (q != nullptr) {
    StepInfo info;
    info.descendant = q->axis == Axis::kDescendant;
    info.wildcard = q->test == NodeTestKind::kWildcard;
    info.name = q->name;
    steps_.push_back(std::move(info));
    const QueryNode* next = nullptr;
    for (const QueryNode* c : q->children) {
      if (c->on_main_path) next = c;
    }
    q = next;
  }
  step_count_ = steps_.size();
}

Result<PathNfa> PathNfa::Create(const xpath::Query* query,
                                twigm::ResultHandler* results) {
  if (query->size() > 63) {
    return Status::InvalidArgument("path too long for the NFA bitmask");
  }
  for (const auto& qn : query->nodes()) {
    if (!qn->on_main_path) {
      return Status::InvalidArgument(
          "PathNfa supports predicate-free queries only");
    }
    if (qn->IsAttributeNode() || qn->IsTextNode()) {
      return Status::InvalidArgument(
          "PathNfa supports element paths only (no attributes or text())");
    }
  }
  return PathNfa(query, results);
}

Status PathNfa::StartDocument() {
  state_stack_.clear();
  matches_ = 0;
  peak_depth_ = 0;
  sequence_counter_ = 0;
  return Status::OK();
}

Status PathNfa::StartElement(const xml::StartElementEvent& event) {
  uint64_t seq = sequence_counter_++;
  // State 0 is active at the virtual document root.
  uint64_t parent = state_stack_.empty() ? 1ull : state_stack_.back();
  uint64_t next = 0;
  for (size_t s = 0; s < step_count_; ++s) {
    if ((parent & (1ull << s)) == 0) continue;
    const StepInfo& step = steps_[s];
    // Advance on a test match.
    if (step.wildcard || step.name == event.name) {
      next |= 1ull << (s + 1);
    }
    // A descendant step lets the pending state ride down through
    // non-matching (and matching) elements alike.
    if (step.descendant) {
      next |= 1ull << s;
    }
  }
  state_stack_.push_back(next);
  if (state_stack_.size() > peak_depth_) peak_depth_ = state_stack_.size();
  if ((next & (1ull << step_count_)) != 0) {
    ++matches_;
    if (results_ != nullptr) {
      results_->OnResult(event.name, seq);
    }
  }
  return Status::OK();
}

Status PathNfa::EndElement(std::string_view name, int depth) {
  (void)name;
  (void)depth;
  if (!state_stack_.empty()) state_stack_.pop_back();
  return Status::OK();
}

}  // namespace vitex::baseline
