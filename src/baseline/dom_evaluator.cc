#include "baseline/dom_evaluator.h"

#include <algorithm>

#include "xpath/parser.h"

namespace vitex::baseline {

using xml::DomNode;
using xpath::Axis;
using xpath::Formula;
using xpath::QueryNode;

template <typename Fn>
void DomEvaluator::ForEachChildElement(const DomNode* e, Fn fn) {
  for (const DomNode* c = e->first_child; c != nullptr; c = c->next_sibling) {
    if (c->IsElement()) fn(c);
  }
}

template <typename Fn>
void DomEvaluator::ForEachDescendantElement(const DomNode* e, Fn fn) {
  for (const DomNode* c = e->first_child; c != nullptr; c = c->next_sibling) {
    if (c->IsElement()) {
      fn(c);
      ForEachDescendantElement(c, fn);
    }
  }
}

template <typename Fn>
void DomEvaluator::ForEachTextNode(const DomNode* e, bool descendant, Fn fn) {
  for (const DomNode* c = e->first_child; c != nullptr; c = c->next_sibling) {
    if (c->IsText()) {
      fn(c);
    } else if (descendant && c->IsElement()) {
      ForEachTextNode(c, true, fn);
    }
  }
}

bool DomEvaluator::ChildAtomHolds(const DomNode* e, const QueryNode* child) {
  switch (child->axis) {
    case Axis::kAttribute: {
      // Child form: e's own attributes. Descendant form: e or any
      // descendant element (the machine's descendant-or-self semantics).
      auto check = [&](const DomNode* owner) {
        for (const DomNode* a = owner->first_attribute; a != nullptr;
             a = a->next_sibling) {
          if (child->MatchesAttributeName(a->name) &&
              child->CompareValue(a->value)) {
            return true;
          }
        }
        return false;
      };
      if (check(e)) return true;
      if (!child->descendant_attribute) return false;
      bool found = false;
      ForEachDescendantElement(e, [&](const DomNode* d) {
        if (!found && check(d)) found = true;
      });
      return found;
    }
    case Axis::kChild:
    case Axis::kDescendant: {
      bool descendant = child->axis == Axis::kDescendant;
      if (child->IsTextNode()) {
        bool found = false;
        ForEachTextNode(e, descendant, [&](const DomNode* t) {
          if (!found && child->CompareValue(t->value)) found = true;
        });
        return found;
      }
      bool found = false;
      auto visit = [&](const DomNode* c) {
        if (!found && child->MatchesTag(c->name) && Satisfied(c, child)) {
          found = true;
        }
      };
      if (descendant) {
        ForEachDescendantElement(e, visit);
      } else {
        ForEachChildElement(e, visit);
      }
      return found;
    }
    case Axis::kSelf:
      return false;
  }
  return false;
}

bool DomEvaluator::EvalFormula(const DomNode* e, const QueryNode* q,
                               const Formula& f) {
  switch (f.kind) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kAtom:
      return ChildAtomHolds(e, q->children[f.atom_child]);
    case Formula::Kind::kAnd:
      for (const Formula& op : f.operands) {
        if (!EvalFormula(e, q, op)) return false;
      }
      return true;
    case Formula::Kind::kOr:
      for (const Formula& op : f.operands) {
        if (EvalFormula(e, q, op)) return true;
      }
      return false;
    case Formula::Kind::kNot:
      return !EvalFormula(e, q, f.operands[0]);
  }
  return false;
}

bool DomEvaluator::Satisfied(const DomNode* e, const QueryNode* q) {
  std::vector<int8_t>& states = memo_[e];
  if (states.empty()) states.assign(query_size_, -1);
  int8_t& state = states[q->id];
  if (state >= 0) return state == 1;
  ++sat_checks_;
  bool ok = EvalFormula(e, q, q->formula);
  state = ok ? 1 : 0;
  return ok;
}

void DomEvaluator::CollectMainPath(const DomNode* context, const QueryNode* q,
                                   std::vector<const DomNode*>* out) {
  // Find matches of `q` relative to `context` (an element or the document
  // node); recurse into the main-path child or collect at the output node.
  const QueryNode* next = nullptr;
  for (const QueryNode* c : q->children) {
    if (c->on_main_path) next = c;
  }
  auto handle = [&](const DomNode* m) {
    if (!q->MatchesTag(m->name) || !Satisfied(m, q)) return;
    if (q->is_output) {
      out->push_back(m);
    } else {
      CollectMainPath(m, next, out);
    }
  };
  if (q->IsAttributeNode()) {
    // Output attribute step (attributes on the main path are always last).
    auto collect = [&](const DomNode* owner) {
      for (const DomNode* a = owner->first_attribute; a != nullptr;
           a = a->next_sibling) {
        if (q->MatchesAttributeName(a->name) && q->CompareValue(a->value)) {
          out->push_back(a);
        }
      }
    };
    if (context->kind == xml::NodeKind::kDocument) {
      if (q->descendant_attribute) {
        ForEachDescendantElement(context, collect);
      }
      return;
    }
    collect(context);
    if (q->descendant_attribute) ForEachDescendantElement(context, collect);
    return;
  }
  if (q->IsTextNode()) {
    // Output text() step.
    if (context->kind == xml::NodeKind::kDocument) {
      if (q->axis == Axis::kDescendant) {
        ForEachTextNode(context, true, [&](const DomNode* t) {
          if (q->CompareValue(t->value)) out->push_back(t);
        });
      }
      return;
    }
    ForEachTextNode(context, q->axis == Axis::kDescendant,
                    [&](const DomNode* t) {
                      if (q->CompareValue(t->value)) out->push_back(t);
                    });
    return;
  }
  if (q->axis == Axis::kDescendant) {
    ForEachDescendantElement(context, handle);
  } else {
    ForEachChildElement(context, handle);
  }
}

std::vector<const DomNode*> DomEvaluator::Evaluate(const xpath::Query& query) {
  memo_.clear();
  sat_checks_ = 0;
  query_size_ = query.size();
  std::vector<const DomNode*> out;
  CollectMainPath(doc_->document_node(), query.root(), &out);
  std::sort(out.begin(), out.end(),
            [](const DomNode* a, const DomNode* b) {
              return a->order < b->order;
            });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> DomEvaluator::EvaluateToFragments(
    const xpath::Query& query) {
  std::vector<const DomNode*> nodes = Evaluate(query);
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const DomNode* n : nodes) {
    if (n->IsAttribute() || n->IsText()) {
      out.emplace_back(n->value);
    } else {
      out.push_back(xml::Document::Serialize(n));
    }
  }
  return out;
}

std::vector<std::pair<uint64_t, std::string>>
DomEvaluator::EvaluateToSequencedFragments(const xpath::Query& query) {
  std::vector<const DomNode*> nodes = Evaluate(query);
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(nodes.size());
  for (const DomNode* n : nodes) {
    if (n->IsAttribute() || n->IsText()) {
      out.emplace_back(n->order, std::string(n->value));
    } else {
      out.emplace_back(n->order, xml::Document::Serialize(n));
    }
  }
  return out;
}

Result<std::vector<std::string>> EvaluateOnDocument(std::string_view xml_text,
                                                    std::string_view xpath) {
  VITEX_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseIntoDom(xml_text));
  VITEX_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseAndCompile(xpath));
  DomEvaluator eval(&doc);
  return eval.EvaluateToFragments(query);
}

}  // namespace vitex::baseline
