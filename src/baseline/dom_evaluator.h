// DomEvaluator: the non-streaming baseline of paper §1.
//
// "These challenges are not present in a non-streaming XML query evaluation
// algorithm since predicates can be checked immediately by randomly
// accessing XML nodes." This evaluator materializes the document as a DOM
// and evaluates the compiled query twig with random access and memoization
// — polynomial, simple, and the correctness oracle for TwigM in the test
// suite. Its cost is what ViteX avoids: O(document) memory.

#ifndef VITEX_BASELINE_DOM_EVALUATOR_H_
#define VITEX_BASELINE_DOM_EVALUATOR_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"
#include "xpath/query.h"

namespace vitex::baseline {

class DomEvaluator {
 public:
  /// @param doc must outlive the evaluator.
  explicit DomEvaluator(const xml::Document* doc) : doc_(doc) {}

  /// Returns the solution nodes in document order (no duplicates).
  std::vector<const xml::DomNode*> Evaluate(const xpath::Query& query);

  /// Returns serialized solutions in document order, byte-identical to what
  /// TwigMachine emits for the same query and document (element results as
  /// canonical subtree XML, attribute/text results as raw values).
  std::vector<std::string> EvaluateToFragments(const xpath::Query& query);

  /// Like EvaluateToFragments, but each fragment is paired with its node's
  /// document-order sequence number (DomNode::order — the producer's stamp
  /// when the document was parsed by the stamping SAX parser). This is the
  /// ground-truth normal form the differential oracle compares every
  /// streaming route against: identical (sequence, fragment) sets mean the
  /// routes selected exactly the same document nodes.
  std::vector<std::pair<uint64_t, std::string>> EvaluateToSequencedFragments(
      const xpath::Query& query);

  /// Number of (element, query-node) satisfaction checks performed by the
  /// last Evaluate call (work metric for benchmarks).
  uint64_t sat_checks() const { return sat_checks_; }

 private:
  // Satisfaction of the subquery rooted at `q` when matched at element `e`
  // (test already assumed to hold). Memoized.
  bool Satisfied(const xml::DomNode* e, const xpath::QueryNode* q);
  // Whether child atom `child` of `q` holds relative to element `e`.
  bool ChildAtomHolds(const xml::DomNode* e, const xpath::QueryNode* child);
  bool EvalFormula(const xml::DomNode* e, const xpath::QueryNode* q,
                   const xpath::Formula& f);

  // Collects output matches of the main path below `context`.
  void CollectMainPath(const xml::DomNode* context,
                       const xpath::QueryNode* q,
                       std::vector<const xml::DomNode*>* out);

  // Enumeration helpers.
  template <typename Fn>
  void ForEachChildElement(const xml::DomNode* e, Fn fn);
  template <typename Fn>
  void ForEachDescendantElement(const xml::DomNode* e, Fn fn);
  template <typename Fn>
  void ForEachTextNode(const xml::DomNode* e, bool descendant, Fn fn);

  const xml::Document* doc_;
  // Memo: element -> per-query-node tri-state (-1 unknown / 0 no / 1 yes).
  std::unordered_map<const xml::DomNode*, std::vector<int8_t>> memo_;
  size_t query_size_ = 0;
  uint64_t sat_checks_ = 0;
};

/// Convenience: parse a document and evaluate one query over it.
Result<std::vector<std::string>> EvaluateOnDocument(std::string_view xml,
                                                    std::string_view xpath);

}  // namespace vitex::baseline

#endif  // VITEX_BASELINE_DOM_EVALUATOR_H_
