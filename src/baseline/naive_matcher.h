// NaiveStreamMatcher: the strawman of paper §1.
//
// "This could be done naively by explicitly storing pattern matches, and
// enumerating them to test predicates. However, the number of pattern
// matches can be exponential, and therefore the approach has a worst case
// complexity which is exponential in the query size."
//
// This matcher implements exactly that strawman, honestly: it keeps one
// *match instance* per pattern match — the full root-to-node ancestor
// assignment — with per-instance predicate bits and per-instance (copied,
// unshared) candidate solutions. On the paper's Figure 1 document it stores
// the 9 explicit matches for cell₈ where TwigM stores 7 stack entries; on
// recursive data its instance count grows as d^k (depth^steps) while
// TwigM's stack size stays d·k. Experiments E3/E7 measure the gap.
//
// A configurable instance cap aborts the run with ResourceExhausted once
// the explosion exceeds the budget, so benchmarks can report "blew up at
// parameter X" instead of thrashing.

#ifndef VITEX_BASELINE_NAIVE_MATCHER_H_
#define VITEX_BASELINE_NAIVE_MATCHER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "twigm/result.h"
#include "xml/sax_event.h"
#include "xpath/query.h"

namespace vitex::baseline {

struct NaiveStats {
  uint64_t instances_created = 0;
  uint64_t peak_live_instances = 0;
  uint64_t candidate_copies = 0;
  uint64_t results_emitted = 0;
};

class NaiveStreamMatcher : public xml::ContentHandler {
 public:
  struct Options {
    /// Abort with ResourceExhausted when live instances exceed this count
    /// (0 = unlimited).
    uint64_t max_live_instances = 10'000'000;
  };

  NaiveStreamMatcher(const xpath::Query* query,
                     twigm::ResultHandler* results);
  NaiveStreamMatcher(const xpath::Query* query, twigm::ResultHandler* results,
                     Options options);

  Status StartDocument() override;
  Status StartElement(const xml::StartElementEvent& event) override;
  Status EndElement(std::string_view name, int depth) override;
  Status Characters(std::string_view text, int depth) override;
  Status EndDocument() override;

  const NaiveStats& stats() const { return stats_; }
  uint64_t live_instances() const { return live_instances_; }
  /// Approximate live bytes held in instances and their candidate copies.
  uint64_t live_bytes() const { return live_bytes_; }

  void Reset();

 private:
  // One explicit pattern match of the path root..q ending at the entry's
  // XML node. parent_level/parent_instance identify the match it extends.
  struct MatchInstance {
    int parent_level = -1;
    uint32_t parent_instance = 0;
    uint64_t child_bits = 0;
    // Unshared candidate copies: (fragment, sequence).
    std::vector<std::pair<std::string, uint64_t>> candidates;
  };

  struct NaiveEntry {
    int level = 0;
    uint64_t sequence = 0;
    std::vector<MatchInstance> instances;
  };

  struct NaiveNode {
    const xpath::QueryNode* query = nullptr;
    int parent_id = -1;
    std::vector<NaiveEntry> stack;
  };

  struct Recording {
    int level = 0;
    std::string buffer;
    bool start_tag_open = false;
  };

  Status FlushText();
  Status ProcessTextNode(std::string_view text, int depth);
  Status ProcessAttributes(const xml::StartElementEvent& event,
                           uint64_t element_seq);
  Status CheckCap() const;

  NaiveEntry* FindEntry(NaiveNode& node, int level);
  // Applies fn(entry) to each parent entry a matched node at `level` could
  // extend / must bookkeep into (same axis rules as TwigM).
  template <typename Fn>
  void ForEachParentEntry(NaiveNode& node, int level, Fn fn);

  void AddInstance(NaiveNode& node, int level, uint64_t seq, int parent_level,
                   uint32_t parent_instance);
  void EmitInstanceCandidates(MatchInstance& inst);
  void ReleaseInstance(MatchInstance& inst);

  void RecordingsOnStart(const xml::StartElementEvent& event,
                         bool output_pushed);
  void RecordingsOnText(std::string_view text);
  void RecordingsOnEnd(std::string_view name, int depth);

  const xpath::Query* query_;
  twigm::ResultHandler* results_;
  Options options_;
  std::vector<NaiveNode> nodes_;
  bool output_is_element_ = false;

  NaiveStats stats_;
  uint64_t live_instances_ = 0;
  uint64_t live_bytes_ = 0;
  std::unordered_set<uint64_t> emitted_sequences_;

  std::string pending_text_;
  int pending_text_depth_ = -1;
  std::vector<Recording> recordings_;
  std::string completed_fragment_;
  bool has_completed_fragment_ = false;
  uint64_t sequence_counter_ = 0;
};

}  // namespace vitex::baseline

#endif  // VITEX_BASELINE_NAIVE_MATCHER_H_
