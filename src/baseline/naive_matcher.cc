#include "baseline/naive_matcher.h"

#include <algorithm>
#include <cassert>

#include "xml/escape.h"

namespace vitex::baseline {

using xpath::Axis;
using xpath::QueryNode;

NaiveStreamMatcher::NaiveStreamMatcher(const xpath::Query* query,
                                       twigm::ResultHandler* results)
    : NaiveStreamMatcher(query, results, Options()) {}

NaiveStreamMatcher::NaiveStreamMatcher(const xpath::Query* query,
                                       twigm::ResultHandler* results,
                                       Options options)
    : query_(query), results_(results), options_(options) {
  nodes_.resize(query_->size());
  for (const auto& qn : query_->nodes()) {
    NaiveNode& n = nodes_[qn->id];
    n.query = qn.get();
    n.parent_id = qn->parent == nullptr ? -1 : qn->parent->id;
  }
  output_is_element_ = query_->output()->IsElementNode();
}

void NaiveStreamMatcher::Reset() {
  for (NaiveNode& n : nodes_) n.stack.clear();
  stats_ = NaiveStats();
  live_instances_ = 0;
  live_bytes_ = 0;
  emitted_sequences_.clear();
  pending_text_.clear();
  pending_text_depth_ = -1;
  recordings_.clear();
  completed_fragment_.clear();
  has_completed_fragment_ = false;
  sequence_counter_ = 0;
}

Status NaiveStreamMatcher::StartDocument() {
  Reset();
  return Status::OK();
}

Status NaiveStreamMatcher::CheckCap() const {
  if (options_.max_live_instances != 0 &&
      live_instances_ > options_.max_live_instances) {
    return Status::ResourceExhausted(
        "naive matcher exceeded its pattern-match instance budget (" +
        std::to_string(options_.max_live_instances) + ")");
  }
  return Status::OK();
}

NaiveStreamMatcher::NaiveEntry* NaiveStreamMatcher::FindEntry(NaiveNode& node,
                                                              int level) {
  // Levels are strictly increasing; scan from the top (entries above
  // `level` can only be one pushed this same event).
  for (size_t i = node.stack.size(); i-- > 0;) {
    if (node.stack[i].level == level) return &node.stack[i];
    if (node.stack[i].level < level) return nullptr;
  }
  return nullptr;
}

template <typename Fn>
void NaiveStreamMatcher::ForEachParentEntry(NaiveNode& node, int level,
                                            Fn fn) {
  if (node.parent_id < 0) return;
  std::vector<NaiveEntry>& st = nodes_[node.parent_id].stack;
  const QueryNode* q = node.query;
  switch (q->axis) {
    case Axis::kChild:
      for (size_t i = st.size(); i-- > 0;) {
        if (st[i].level == level - 1) {
          fn(st[i]);
          return;
        }
        if (st[i].level < level - 1) return;
      }
      return;
    case Axis::kDescendant:
      for (NaiveEntry& e : st) {
        if (e.level >= level) break;
        fn(e);
      }
      return;
    case Axis::kAttribute:
      if (q->descendant_attribute) {
        for (NaiveEntry& e : st) {
          if (e.level > level) break;
          fn(e);
        }
      } else {
        if (!st.empty() && st.back().level == level) fn(st.back());
      }
      return;
    case Axis::kSelf:
      return;
  }
}

void NaiveStreamMatcher::AddInstance(NaiveNode& node, int level, uint64_t seq,
                                     int parent_level,
                                     uint32_t parent_instance) {
  if (node.stack.empty() || node.stack.back().level != level) {
    node.stack.push_back(NaiveEntry{level, seq, {}});
  }
  MatchInstance inst;
  inst.parent_level = parent_level;
  inst.parent_instance = parent_instance;
  node.stack.back().instances.push_back(std::move(inst));
  ++stats_.instances_created;
  ++live_instances_;
  live_bytes_ += sizeof(MatchInstance);
  if (live_instances_ > stats_.peak_live_instances) {
    stats_.peak_live_instances = live_instances_;
  }
}

void NaiveStreamMatcher::ReleaseInstance(MatchInstance& inst) {
  for (auto& [frag, seq] : inst.candidates) {
    (void)seq;
    live_bytes_ -= frag.size();
  }
  inst.candidates.clear();
  --live_instances_;
  live_bytes_ -= sizeof(MatchInstance);
}

void NaiveStreamMatcher::EmitInstanceCandidates(MatchInstance& inst) {
  for (auto& [frag, seq] : inst.candidates) {
    if (emitted_sequences_.insert(seq).second) {
      ++stats_.results_emitted;
      if (results_ != nullptr) results_->OnResult(frag, seq);
    }
  }
}

// --- Recordings (same canonical serialization as TwigM) --------------------

void NaiveStreamMatcher::RecordingsOnStart(const xml::StartElementEvent& event,
                                           bool output_pushed) {
  if (output_pushed && output_is_element_) {
    recordings_.push_back(Recording{event.depth, std::string(), false});
  }
  if (recordings_.empty()) return;
  std::string tag;
  tag.push_back('<');
  tag.append(event.name);
  for (const xml::Attribute& a : event.attributes) {
    tag.push_back(' ');
    tag.append(a.name);
    tag.append("=\"");
    tag.append(xml::EscapeAttribute(a.value));
    tag.push_back('"');
  }
  for (Recording& r : recordings_) {
    if (r.start_tag_open) r.buffer.push_back('>');
    r.start_tag_open = true;
    r.buffer.append(tag);
  }
}

void NaiveStreamMatcher::RecordingsOnText(std::string_view text) {
  if (recordings_.empty()) return;
  std::string escaped = xml::EscapeText(text);
  for (Recording& r : recordings_) {
    if (r.start_tag_open) {
      r.buffer.push_back('>');
      r.start_tag_open = false;
    }
    r.buffer.append(escaped);
  }
}

void NaiveStreamMatcher::RecordingsOnEnd(std::string_view name, int depth) {
  if (recordings_.empty()) return;
  for (Recording& r : recordings_) {
    if (r.start_tag_open) {
      r.buffer.append("/>");
      r.start_tag_open = false;
    } else {
      r.buffer.append("</");
      r.buffer.append(name);
      r.buffer.push_back('>');
    }
  }
  if (recordings_.back().level == depth) {
    completed_fragment_ = std::move(recordings_.back().buffer);
    has_completed_fragment_ = true;
    recordings_.pop_back();
  }
}

// --- Events -----------------------------------------------------------------

Status NaiveStreamMatcher::StartElement(const xml::StartElementEvent& event) {
  VITEX_RETURN_IF_ERROR(FlushText());
  // Query-independent numbering, mirroring TwigMachine: one number for the
  // element plus one per attribute.
  uint64_t seq = sequence_counter_;
  sequence_counter_ += 1 + event.attributes.size();
  int level = event.depth;
  bool output_pushed = false;
  // Preorder: parents create entries before children enumerate them.
  for (NaiveNode& node : nodes_) {
    const QueryNode* q = node.query;
    if (!q->IsElementNode() || !q->MatchesTag(event.name)) continue;
    if (node.parent_id < 0) {
      if (q->axis == Axis::kDescendant || level == 1) {
        AddInstance(node, level, seq, -1, 0);
        if (q->is_output) output_pushed = true;
      }
      continue;
    }
    bool any = false;
    ForEachParentEntry(node, level, [&](NaiveEntry& pe) {
      for (uint32_t i = 0; i < pe.instances.size(); ++i) {
        AddInstance(node, level, seq, pe.level, i);
        any = true;
      }
    });
    if (any && q->is_output) output_pushed = true;
  }
  RecordingsOnStart(event, output_pushed);
  if (!event.attributes.empty()) {
    VITEX_RETURN_IF_ERROR(ProcessAttributes(event, seq));
  }
  return CheckCap();
}

Status NaiveStreamMatcher::ProcessAttributes(
    const xml::StartElementEvent& event, uint64_t element_seq) {
  int level = event.depth;
  for (NaiveNode& node : nodes_) {
    const QueryNode* q = node.query;
    if (!q->IsAttributeNode()) continue;
    for (size_t ai = 0; ai < event.attributes.size(); ++ai) {
      const xml::Attribute& attr = event.attributes[ai];
      if (!q->MatchesAttributeName(attr.name)) continue;
      if (!q->CompareValue(attr.value)) continue;
      uint64_t attr_seq = element_seq + 1 + ai;
      if (node.parent_id < 0) {
        if (q->is_output && q->descendant_attribute &&
            emitted_sequences_.insert(attr_seq).second) {
          ++stats_.results_emitted;
          if (results_ != nullptr) results_->OnResult(attr.value, attr_seq);
        }
        continue;
      }
      ForEachParentEntry(node, level, [&](NaiveEntry& pe) {
        for (MatchInstance& inst : pe.instances) {
          inst.child_bits |= 1ull << q->index_in_parent;
          if (q->is_output) {
            inst.candidates.emplace_back(std::string(attr.value), attr_seq);
            live_bytes_ += attr.value.size();
            ++stats_.candidate_copies;
          }
        }
      });
    }
  }
  return Status::OK();
}

Status NaiveStreamMatcher::Characters(std::string_view text, int depth) {
  if (pending_text_.empty()) {
    pending_text_.assign(text);
    pending_text_depth_ = depth;
  } else {
    pending_text_.append(text);
  }
  return Status::OK();
}

Status NaiveStreamMatcher::FlushText() {
  if (pending_text_.empty()) return Status::OK();
  std::string text = std::move(pending_text_);
  int depth = pending_text_depth_;
  pending_text_.clear();
  pending_text_depth_ = -1;
  RecordingsOnText(text);
  return ProcessTextNode(text, depth);
}

Status NaiveStreamMatcher::ProcessTextNode(std::string_view text, int depth) {
  uint64_t seq = sequence_counter_++;
  for (NaiveNode& node : nodes_) {
    const QueryNode* q = node.query;
    if (!q->IsTextNode()) continue;
    if (!q->CompareValue(text)) continue;
    if (node.parent_id < 0) {
      if (q->is_output && q->axis == Axis::kDescendant &&
          emitted_sequences_.insert(seq).second) {
        ++stats_.results_emitted;
        if (results_ != nullptr) results_->OnResult(text, seq);
      }
      continue;
    }
    std::vector<NaiveEntry>& st = nodes_[node.parent_id].stack;
    auto deliver = [&](NaiveEntry& pe) {
      for (MatchInstance& inst : pe.instances) {
        inst.child_bits |= 1ull << q->index_in_parent;
        if (q->is_output) {
          inst.candidates.emplace_back(std::string(text), seq);
          live_bytes_ += text.size();
          ++stats_.candidate_copies;
        }
      }
    };
    if (q->axis == Axis::kChild) {
      if (!st.empty() && st.back().level == depth) deliver(st.back());
    } else {
      for (NaiveEntry& e : st) {
        if (e.level > depth) break;
        deliver(e);
      }
    }
  }
  return CheckCap();
}

Status NaiveStreamMatcher::EndElement(std::string_view name, int depth) {
  VITEX_RETURN_IF_ERROR(FlushText());
  RecordingsOnEnd(name, depth);
  for (size_t i = nodes_.size(); i-- > 0;) {
    NaiveNode& node = nodes_[i];
    if (node.stack.empty() || node.stack.back().level != depth) continue;
    if (!node.query->IsElementNode()) continue;
    NaiveEntry entry = std::move(node.stack.back());
    node.stack.pop_back();
    const QueryNode* q = node.query;
    for (MatchInstance& inst : entry.instances) {
      bool satisfied = q->formula.Evaluate(inst.child_bits);
      if (satisfied) {
        if (q->is_output) {
          assert(has_completed_fragment_);
          inst.candidates.emplace_back(completed_fragment_, entry.sequence);
          live_bytes_ += completed_fragment_.size();
          ++stats_.candidate_copies;
        }
        if (node.parent_id < 0) {
          EmitInstanceCandidates(inst);
        } else {
          NaiveEntry* pe = FindEntry(nodes_[node.parent_id],
                                     inst.parent_level);
          if (pe != nullptr && inst.parent_instance < pe->instances.size()) {
            MatchInstance& parent = pe->instances[inst.parent_instance];
            parent.child_bits |= 1ull << q->index_in_parent;
            // Candidates move (bytes stay live, now owned by the parent).
            for (auto& cand : inst.candidates) {
              parent.candidates.push_back(std::move(cand));
            }
            inst.candidates.clear();
          }
        }
      }
      ReleaseInstance(inst);
    }
  }
  if (has_completed_fragment_) {
    completed_fragment_.clear();
    has_completed_fragment_ = false;
  }
  return CheckCap();
}

Status NaiveStreamMatcher::EndDocument() {
  VITEX_RETURN_IF_ERROR(FlushText());
  for (const NaiveNode& node : nodes_) {
    if (!node.stack.empty()) {
      return Status::Internal("naive matcher: nonempty stack at end");
    }
  }
  return Status::OK();
}

}  // namespace vitex::baseline
