// Arena: a bump-pointer allocator for parse-tree and machine-node lifetimes.
//
// The XPath AST, the DOM-lite tree and the TwigM machine all have
// build-once / free-together lifetimes, which is exactly what an arena is
// for: allocation is a pointer bump, deallocation is dropping the arena.

#ifndef VITEX_COMMON_ARENA_H_
#define VITEX_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

namespace vitex {

/// A growable bump allocator. Not thread-safe; one arena per parser/machine.
///
/// Objects allocated with Create<T>() must be trivially destructible: the
/// arena never runs destructors. This is asserted at compile time.
class Arena {
 public:
  /// @param block_bytes size of each internal block; allocations larger than
  ///        this get a dedicated block.
  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `bytes` bytes aligned to `align`. Never returns nullptr
  /// (allocation failure terminates, as it does for operator new).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    // Align the actual address: block bases are only new[]-aligned, so
    // aligning the offset alone under-aligns for larger requests.
    uintptr_t base = reinterpret_cast<uintptr_t>(cur_);
    size_t pos = Align(base + pos_, align) - base;
    if (cur_ == nullptr || pos + bytes > cap_) {
      Grow(bytes + align);
      base = reinterpret_cast<uintptr_t>(cur_);
      pos = Align(base + pos_, align) - base;
    }
    void* out = cur_ + pos;
    pos_ = pos + bytes;
    allocated_bytes_ += bytes;
    return out;
  }

  /// Allocates and constructs a trivially-destructible T.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* mem = Allocate(sizeof(T), alignof(T));
    if constexpr (std::is_constructible_v<T, Args...>) {
      return new (mem) T(std::forward<Args>(args)...);
    } else {
      // Aggregates (no user constructor) take brace init.
      return new (mem) T{std::forward<Args>(args)...};
    }
  }

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return {};
    char* mem = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(mem, s.data(), s.size());
    return std::string_view(mem, s.size());
  }

  /// Total bytes handed out (excludes block slack).
  size_t allocated_bytes() const { return allocated_bytes_; }

  /// Total bytes reserved from the system (includes slack).
  size_t reserved_bytes() const { return reserved_bytes_; }

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

 private:
  static size_t Align(size_t pos, size_t align) {
    return (pos + align - 1) & ~(align - 1);
  }

  void Grow(size_t min_bytes) {
    size_t block = block_bytes_ > min_bytes ? block_bytes_ : min_bytes;
    blocks_.push_back(std::make_unique<char[]>(block));
    cur_ = blocks_.back().get();
    pos_ = 0;
    cap_ = block;
    reserved_bytes_ += block;
  }

  size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cur_ = nullptr;
  size_t pos_ = 0;
  size_t cap_ = 0;
  size_t allocated_bytes_ = 0;
  size_t reserved_bytes_ = 0;
};

}  // namespace vitex

#endif  // VITEX_COMMON_ARENA_H_
