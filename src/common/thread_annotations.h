// Clang Thread Safety Analysis annotations (DESIGN.md §11).
//
// These macros attach compile-time locking contracts to mutexes, guarded
// data and lock-taking functions: which mutex guards which field, which
// capability a function requires, which RAII type is a scoped capability.
// Under Clang with -Wthread-safety (the static-analysis CI job promotes it
// to -Werror=thread-safety) a read of a GUARDED_BY field without its lock,
// or a call to a REQUIRES function without the capability, fails the
// build. Under every other compiler the macros expand to nothing and the
// code is byte-identical to the unannotated version.
//
// The spellings are the ABSL/Clang-documentation standard set, kept
// unprefixed so annotated code reads like the upstream examples. Each is
// #ifndef-guarded against a hosting project that already defines them.
//
// The analysis is intra-procedural and sees only what is annotated: it
// proves lock DISCIPLINE (the right capability is held at each annotated
// access), not memory-model correctness, and it cannot follow data that
// escapes through unannotated pointers (e.g. a SymbolTable* handed to the
// SAX parser through SaxParserOptions). ThreadSanitizer remains the
// complementary dynamic check for everything outside the annotation
// boundary — see DESIGN.md §11 for the capability map and the split of
// labor between the two.

#ifndef VITEX_COMMON_THREAD_ANNOTATIONS_H_
#define VITEX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define VITEX_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define VITEX_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

// A type that is a lockable capability (mutexes, shared mutexes).
#ifndef CAPABILITY
#define CAPABILITY(x) VITEX_THREAD_ANNOTATION__(capability(x))
#endif

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY VITEX_THREAD_ANNOTATION__(scoped_lockable)
#endif

// Data member: may only be read while holding the capability shared, and
// written while holding it exclusively.
#ifndef GUARDED_BY
#define GUARDED_BY(x) VITEX_THREAD_ANNOTATION__(guarded_by(x))
#endif

// Pointer member: the POINTED-TO data is guarded (the pointer itself may
// be read freely).
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) VITEX_THREAD_ANNOTATION__(pt_guarded_by(x))
#endif

// Function requires the capability exclusively / shared on entry, and does
// not release it.
#ifndef REQUIRES
#define REQUIRES(...) \
  VITEX_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  VITEX_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#endif

// Function acquires the capability (exclusively / shared) and holds it on
// return.
#ifndef ACQUIRE
#define ACQUIRE(...) VITEX_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  VITEX_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#endif

// Function releases the capability (exclusive / shared / either). The
// GENERIC form is what a scoped lock's destructor uses when the same RAII
// type can hold either mode.
#ifndef RELEASE
#define RELEASE(...) VITEX_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  VITEX_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  VITEX_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#endif

// Function tries to acquire the capability; first argument is the return
// value that means success.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  VITEX_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#endif

// Caller must NOT hold the capability (deadlock documentation for
// non-reentrant mutexes).
#ifndef EXCLUDES
#define EXCLUDES(...) VITEX_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#endif

// Function returns a reference to the named capability (lets an accessor
// abstract over a private mutex member: REQUIRES(table.mu()) resolves to
// the member behind mu()).
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) VITEX_THREAD_ANNOTATION__(lock_returned(x))
#endif

// Escape hatch for functions whose locking is deliberately outside the
// analysis (use sparingly; say why at the use site).
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  VITEX_THREAD_ANNOTATION__(no_thread_safety_analysis)
#endif

#endif  // VITEX_COMMON_THREAD_ANNOTATIONS_H_
