// Annotated mutex wrappers: the lockable capabilities of the concurrent
// core (DESIGN.md §11).
//
// vitex::Mutex / vitex::SharedMutex are thin wrappers over std::mutex /
// std::shared_mutex whose lock operations carry Clang Thread Safety
// Analysis annotations, so every structure they protect can declare its
// contract (`GUARDED_BY(mu_)`, `REQUIRES(mu_)`) and have it checked at
// compile time under -Werror=thread-safety. Off Clang the annotations
// vanish and these are exactly the standard types — zero overhead, no
// behavior change.
//
// Locking idiom: prefer the scoped types (MutexLock, ReaderMutexLock,
// WriterMutexLock) over manual Lock/Unlock — the analysis tracks scoped
// capabilities through early returns for free, while manual unlock paths
// each need their own annotation.
//
// CondVar is the condition-variable companion. Wait(mu) REQUIRES the
// mutex: from the analysis' point of view the capability is held across
// the wait (it is released and reacquired inside, invisibly, exactly like
// std::condition_variable under the hood). There is deliberately no
// predicate overload — a lambda predicate is analyzed as a separate
// unannotated function and would defeat the checking of every field it
// reads. Write the loop out:
//
//     MutexLock lock(mu_);
//     while (!ReadyLocked()) cv_.Wait(mu_);   // ReadyLocked() REQUIRES(mu_)

#ifndef VITEX_COMMON_MUTEX_H_
#define VITEX_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace vitex {

/// Exclusive mutex capability (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex capability (wraps std::shared_mutex). Exclusive
/// ("writer") acquisition guards mutation; shared ("reader") acquisition
/// guards concurrent read phases — the SymbolTable freeze contract.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive ("writer") lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared ("reader") lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to vitex::Mutex. See the header comment for
/// the no-predicate-overload rationale.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it before returning.
  /// As with every condition variable, wake-ups may be spurious — always
  /// re-check the predicate in a loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scoped lock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vitex

#endif  // VITEX_COMMON_MUTEX_H_
