#include "common/interner.h"

#include <cassert>

namespace vitex {

namespace {
constexpr size_t kInitialSlots = 64;  // power of two
constexpr size_t kMaxLoadNum = 7;     // resize above 7/8 load
constexpr size_t kMaxLoadDen = 8;
}  // namespace

SymbolTable::SymbolTable() : slots_(kInitialSlots) {}

uint32_t SymbolTable::Hash(std::string_view s) {
  // FNV-1a. Names are short (tag/attribute identifiers), so the byte loop
  // beats fancier block hashes in practice.
  uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

size_t SymbolTable::FindSlot(std::string_view name, uint32_t hash) const {
  size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.symbol == kNoSymbol) return i;
    if (slot.hash == hash && names_[slot.symbol] == name) return i;
    i = (i + 1) & mask;
  }
}

void SymbolTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot());
  size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.symbol == kNoSymbol) continue;
    size_t i = slot.hash & mask;
    while (slots_[i].symbol != kNoSymbol) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

Symbol SymbolTable::Intern(std::string_view name) {
  uint32_t hash = Hash(name);
  size_t i = FindSlot(name, hash);
  if (slots_[i].symbol != kNoSymbol) return slots_[i].symbol;
  if (frozen_) {
    // Read-only phase: minting would mutate under concurrent readers.
    assert(!frozen_ && "SymbolTable::Intern of a new name on a frozen table");
    return kNoSymbol;
  }
  if ((names_.size() + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
    Grow();
    i = FindSlot(name, hash);
  }
  Symbol symbol = static_cast<Symbol>(names_.size());
  names_.push_back(arena_.CopyString(name));
  slots_[i] = Slot{hash, symbol};
  return symbol;
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  const Slot& slot = slots_[FindSlot(name, Hash(name))];
  return slot.symbol;  // kNoSymbol when the slot is empty
}

}  // namespace vitex
