#include "common/status.h"

namespace vitex {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace vitex
