// Result<T>: a value-or-Status, the companion of Status for functions that
// produce a value on success.

#ifndef VITEX_COMMON_RESULT_H_
#define VITEX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vitex {

/// Holds either a successfully produced T or a non-OK Status.
///
/// Typical usage:
///
///     Result<Query> q = ParseXPath("//a[b]//c");
///     if (!q.ok()) return q.status();
///     Use(q.value());
///
/// Constructing a Result from an OK status is a programming error (there
/// would be no value), enforced by an assertion.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success: wraps a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Failure: wraps a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a failed Result, or binds its value to `lhs`.
#define VITEX_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto VITEX_CONCAT_(_vitex_res_, __LINE__) = (expr);     \
  if (!VITEX_CONCAT_(_vitex_res_, __LINE__).ok())         \
    return VITEX_CONCAT_(_vitex_res_, __LINE__).status(); \
  lhs = std::move(VITEX_CONCAT_(_vitex_res_, __LINE__)).value()

#define VITEX_CONCAT_(a, b) VITEX_CONCAT_IMPL_(a, b)
#define VITEX_CONCAT_IMPL_(a, b) a##b

}  // namespace vitex

#endif  // VITEX_COMMON_RESULT_H_
