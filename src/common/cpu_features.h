// Runtime CPU feature detection for kernel dispatch.
//
// The scan kernels (xml/simd_scan.h) pick an implementation tier once at
// startup: AVX2 when the CPU has it, else SSE2 (architecturally guaranteed
// on x86-64), else plain scalar (every other architecture). Detection is
// done here so future vectorized subsystems share one cpuid story.

#ifndef VITEX_COMMON_CPU_FEATURES_H_
#define VITEX_COMMON_CPU_FEATURES_H_

#include <string>

namespace vitex::common {

struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
};

/// Detected features of the executing CPU. Probed once, cached; safe to
/// call concurrently.
const CpuFeatures& GetCpuFeatures();

/// "avx2+sse2", "sse2" or "none" — for logs and bench labels.
std::string DescribeCpuFeatures();

}  // namespace vitex::common

#endif  // VITEX_COMMON_CPU_FEATURES_H_
