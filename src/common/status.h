// Status: error-handling primitive used throughout ViteX.
//
// ViteX follows the RocksDB/Arrow idiom: fallible operations on the data path
// return a Status (or a Result<T>, see result.h) instead of throwing. This
// keeps the streaming hot loop exception-free and makes every failure site
// explicit at the call site.

#ifndef VITEX_COMMON_STATUS_H_
#define VITEX_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace vitex {

/// Error category for a failed operation.
///
/// Codes are deliberately coarse: fine-grained context belongs in the
/// message, which every constructor requires for non-OK statuses.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// Caller passed an argument that violates the API contract.
  kInvalidArgument = 1,
  /// Input data (XML or XPath text) is syntactically malformed.
  kParseError = 2,
  /// Input is well-formed but violates a semantic rule (e.g. an XPath
  /// feature outside the supported XP{/,//,*,[]} fragment).
  kUnsupported = 3,
  /// An internal invariant was violated; indicates a bug in ViteX itself.
  kInternal = 4,
  /// An operating-system level failure (file not found, read error, ...).
  kIoError = 5,
  /// A configured resource limit (memory budget, depth limit) was exceeded.
  kResourceExhausted = 6,
};

/// Returns the canonical spelling of a code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (a single tagged pointer-sized
/// word; the message string is empty). Statuses must be checked; the
/// [[nodiscard]] attribute makes accidentally dropped errors a compiler
/// warning.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The human-readable message; empty for OK statuses.
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status, returning a new
  /// status: `s.WithContext("while parsing line 7")`.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller.
#define VITEX_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::vitex::Status _vitex_status = (expr);        \
    if (!_vitex_status.ok()) return _vitex_status; \
  } while (0)

}  // namespace vitex

#endif  // VITEX_COMMON_STATUS_H_
