// Stopwatch: wall-clock timing for the benchmark harness and examples.

#ifndef VITEX_COMMON_STOPWATCH_H_
#define VITEX_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace vitex {

/// A restartable wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic wall-clock in nanoseconds since an arbitrary epoch — the
/// timestamp the pipeline's stage-latency tracing stamps onto documents
/// (DESIGN.md §10). One steady_clock read, no allocation; differences of
/// two values are valid across threads.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace vitex

#endif  // VITEX_COMMON_STOPWATCH_H_
