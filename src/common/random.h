// Deterministic PRNG used by the workload generators and property tests.
//
// All randomized documents and queries in tests/benches are reproducible
// from a seed; std::mt19937_64 could differ across standard libraries only
// in distribution helpers, so we implement the distributions ourselves.

#ifndef VITEX_COMMON_RANDOM_H_
#define VITEX_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace vitex {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG with portable output.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool OneIn(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII identifier of the given length.
  std::string NextName(size_t length) {
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace vitex

#endif  // VITEX_COMMON_RANDOM_H_
