#include "common/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vitex {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsSpace(c)) return false;
  }
  return true;
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ParseXPathNumber(std::string_view s, double* out) {
  std::string_view trimmed = TrimWhitespace(s);
  if (trimmed.empty()) return false;
  // strtod accepts "inf"/"-inf"/"nan" and hex floats; XPath number() does
  // not. Restricting the alphabet up front rejects all of them (including
  // signed spellings) while leaving sign, fraction and exponent forms to
  // strtod's grammar check below.
  for (char c : trimmed) {
    bool ok = (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
              c == 'e' || c == 'E';
    if (!ok) return false;
  }
  // strtod needs NUL termination; realistic numeric tokens fit a stack
  // buffer, keeping the comparison hot path allocation-free. Oversized
  // (but still valid) spellings fall back to a heap copy.
  char stack_buf[64];
  std::string heap;
  const char* cstr;
  if (trimmed.size() < sizeof(stack_buf)) {
    std::memcpy(stack_buf, trimmed.data(), trimmed.size());
    stack_buf[trimmed.size()] = '\0';
    cstr = stack_buf;
  } else {
    heap.assign(trimmed);
    cstr = heap.c_str();
  }
  char* end = nullptr;
  double d = std::strtod(cstr, &end);
  if (end == cstr || *end != '\0') return false;
  *out = d;
  return true;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string HumanBytes(size_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string WithThousandsSeparators(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

bool IsNameStartChar(unsigned char c) {
  return std::isalpha(c) || c == '_' || c == ':' || c >= 0x80;
}

bool IsNameChar(unsigned char c) {
  return IsNameStartChar(c) || std::isdigit(c) || c == '-' || c == '.';
}

bool IsValidXmlName(std::string_view name) {
  if (name.empty()) return false;
  if (!IsNameStartChar(static_cast<unsigned char>(name[0]))) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameChar(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

}  // namespace vitex
