#include "common/cpu_features.h"

namespace vitex::common {

namespace {

CpuFeatures Detect() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(_M_X64)
  // SSE2 is part of the x86-64 baseline ABI: no probe needed.
  features.sse2 = true;
#if defined(__GNUC__) || defined(__clang__)
  // __builtin_cpu_supports consults cpuid (and xgetbv for AVX state, on
  // compilers new enough to matter) so an AVX2 binary never executes VEX
  // instructions on a CPU or OS that cannot run them.
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#endif
  return features;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string DescribeCpuFeatures() {
  const CpuFeatures& f = GetCpuFeatures();
  if (f.avx2) return "avx2+sse2";
  if (f.sse2) return "sse2";
  return "none";
}

}  // namespace vitex::common
