// MemoryTracker: live/peak byte accounting for the paper's memory experiment,
// plus the allocation-counting hook behind the zero-steady-state-allocation
// contract (DESIGN.md §12).
//
// The demo paper's feature 3 reports that "the memory requirement of ViteX
// when processing queries on a 75 MB Protein dataset is stable at 1MB".
// Reproducing that claim (experiment E2 in DESIGN.md) requires the engine to
// account for its own state precisely: every stack entry, candidate buffer
// and pending output fragment reports its size here.
//
// The versioned-memory work (§12) adds a second, harder claim: after warmup
// the match hot path performs NO heap allocation per document. That is
// pinned by counting real `operator new`/`operator delete` calls, not
// logical bytes: a test binary defines the global allocation operators to
// bump the per-thread AllocCounters below (see tests/twigm/zero_alloc_test.cc),
// and AllocationScope measures the delta across a region. The counters are
// thread-local so a scope only sees its own thread's traffic — engine work
// is single-threaded per shard, so that is exactly the hot path.

#ifndef VITEX_COMMON_MEMORY_TRACKER_H_
#define VITEX_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace vitex {

/// Tracks live and peak byte usage of one engine instance.
///
/// Not thread-safe: TwigM is a single-threaded stream operator, and each
/// machine owns its own tracker.
class MemoryTracker {
 public:
  /// Records an allocation of `bytes`.
  void Add(size_t bytes) {
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
  }

  /// Records a release of `bytes`. Releasing more than is live clamps to 0
  /// (and indicates an accounting bug; callers should keep Add/Release
  /// balanced).
  void Release(size_t bytes) {
    live_ = bytes > live_ ? 0 : live_ - bytes;
  }

  /// Bytes currently accounted as live.
  size_t live_bytes() const { return live_; }

  /// High-water mark since construction or the last ResetPeak().
  size_t peak_bytes() const { return peak_; }

  /// Resets the peak to the current live value (used between benchmark
  /// iterations).
  void ResetPeak() { peak_ = live_; }

 private:
  size_t live_ = 0;
  size_t peak_ = 0;
};

/// Per-thread heap traffic counters. Monotonic; callers measure deltas
/// (AllocationScope). They only advance when the running binary installs a
/// counting allocator — see AllocCountingInstalled().
struct AllocCounters {
  uint64_t allocations = 0;
  uint64_t deallocations = 0;
  uint64_t allocated_bytes = 0;
};

/// This thread's counters. The counting `operator new`/`delete` (when
/// linked) and tests both mutate through this accessor.
inline AllocCounters& ThreadAllocCounters() {
  thread_local AllocCounters counters;
  return counters;
}

/// Whether a counting global allocator is linked into this binary. Shared
/// across translation units (inline function-local static); the allocator
/// TU sets it from a static initializer. Tests gate hard 0-allocation
/// assertions on this so they stay meaningful if run without the hook.
inline bool& AllocCountingInstalled() {
  static bool installed = false;
  return installed;
}

/// Measures this thread's heap traffic between construction (or Restart())
/// and each query. Zero-cost when no counting allocator is linked (the
/// deltas just stay 0).
class AllocationScope {
 public:
  AllocationScope() { Restart(); }

  void Restart() { start_ = ThreadAllocCounters(); }

  uint64_t allocations() const {
    return ThreadAllocCounters().allocations - start_.allocations;
  }
  uint64_t deallocations() const {
    return ThreadAllocCounters().deallocations - start_.deallocations;
  }
  uint64_t allocated_bytes() const {
    return ThreadAllocCounters().allocated_bytes - start_.allocated_bytes;
  }

 private:
  AllocCounters start_;
};

}  // namespace vitex

#endif  // VITEX_COMMON_MEMORY_TRACKER_H_
