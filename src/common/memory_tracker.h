// MemoryTracker: live/peak byte accounting for the paper's memory experiment.
//
// The demo paper's feature 3 reports that "the memory requirement of ViteX
// when processing queries on a 75 MB Protein dataset is stable at 1MB".
// Reproducing that claim (experiment E2 in DESIGN.md) requires the engine to
// account for its own state precisely: every stack entry, candidate buffer
// and pending output fragment reports its size here.

#ifndef VITEX_COMMON_MEMORY_TRACKER_H_
#define VITEX_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace vitex {

/// Tracks live and peak byte usage of one engine instance.
///
/// Not thread-safe: TwigM is a single-threaded stream operator, and each
/// machine owns its own tracker.
class MemoryTracker {
 public:
  /// Records an allocation of `bytes`.
  void Add(size_t bytes) {
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
  }

  /// Records a release of `bytes`. Releasing more than is live clamps to 0
  /// (and indicates an accounting bug; callers should keep Add/Release
  /// balanced).
  void Release(size_t bytes) {
    live_ = bytes > live_ ? 0 : live_ - bytes;
  }

  /// Bytes currently accounted as live.
  size_t live_bytes() const { return live_; }

  /// High-water mark since construction or the last ResetPeak().
  size_t peak_bytes() const { return peak_; }

  /// Resets the peak to the current live value (used between benchmark
  /// iterations).
  void ResetPeak() { peak_ = live_; }

 private:
  size_t live_ = 0;
  size_t peak_ = 0;
};

}  // namespace vitex

#endif  // VITEX_COMMON_MEMORY_TRACKER_H_
