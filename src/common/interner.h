// Symbol interning: dense ids for XML tag and attribute names.
//
// A pub/sub stream touches a small, highly repetitive name vocabulary (the
// protein feed has a few dozen distinct tags across tens of megabytes). The
// pipeline therefore hashes every name at most once per *event* — in the SAX
// parser, against a caller-supplied SymbolTable — and everything downstream
// (TwigM match indexes, the multi-query dispatch index) works with dense
// `Symbol` integers: array indexing instead of string hashing.
//
// Ids are dense and allocation-ordered: the first distinct name interned is
// symbol 0, the next is 1, and so on. A consumer that interned its own names
// first (e.g. a TwigM machine interning its query's tests at build time) can
// size a direct-indexed table to `size()` at that moment; any symbol minted
// later is out of range and provably names nothing the consumer cares about.
//
// Name bytes are copied into an arena, so a Symbol and its name() view stay
// valid for the table's lifetime regardless of what happened to the caller's
// storage (see DESIGN.md §3 — this is what fixes the string_view lifetime
// hazard the old per-machine name map had).

#ifndef VITEX_COMMON_INTERNER_H_
#define VITEX_COMMON_INTERNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace vitex {

/// Dense id of an interned name. Valid symbols are 0..size()-1.
using Symbol = uint32_t;

/// "No symbol": a name that was never resolved against a table (events from
/// producers without a table), or a Lookup miss.
inline constexpr Symbol kNoSymbol = static_cast<Symbol>(-1);

/// "Resolved, but absent": producers stamp this on event names a Lookup
/// missed, so consumers sharing the table know not to repeat the hash. Like
/// kNoSymbol it is never a valid id, and it fails any `< size()` bounds
/// check the same way a post-construction id does.
inline constexpr Symbol kAbsentSymbol = static_cast<Symbol>(-2);

/// An arena-backed string→Symbol map with dense, allocation-ordered ids.
///
/// Thread-safety is phase-based rather than lock-based (DESIGN.md §9): the
/// table is *mutable* while being built (Intern; external exclusion
/// required, as for any container) and can then be frozen into an
/// explicitly *read-only* phase with Freeze(). While frozen, any number of
/// threads may call Lookup()/name()/size() concurrently without locks —
/// nothing mutates, so there is nothing to race.
///
/// The phase TRANSITIONS are where concurrent readers could be torn, so
/// the table owns the capability that synchronizes them (DESIGN.md §11):
/// Freeze()/Unfreeze() require mu() held exclusively, a compile-time fact
/// under Clang's thread safety analysis. Concurrent frozen-phase readers
/// hold mu() shared for the duration of their read phase (the service's
/// parser streams hold it across each parse); a writer that wants to mint
/// must take mu() exclusively — which quiesces every reader — then
/// Unfreeze → Intern → Freeze. Build-phase use (one thread, never frozen,
/// e.g. a private machine table or a test) needs no locking and keeps
/// calling Intern/Lookup directly; see the §11 capability map for where
/// the analysis boundary lies.
///
/// Owning a mutex pins the table: share it by pointer (everything in the
/// pipeline already does).
class SymbolTable {
 public:
  SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// The freeze capability: exclusive = may flip phases (and mint, via
  /// Unfreeze); shared = may read concurrently while frozen.
  SharedMutex& mu() const RETURN_CAPABILITY(mu_) { return mu_; }

  /// Returns the symbol for `name`, minting a new one on first sight.
  /// On a frozen table: returns the existing symbol if `name` was interned
  /// before the freeze, and kNoSymbol (after asserting in debug builds) if
  /// it would have to mint — a frozen table never mutates.
  Symbol Intern(std::string_view name);

  /// Returns the symbol for `name`, or kNoSymbol if it was never interned.
  /// Safe to call concurrently from many threads while the table is frozen.
  Symbol Lookup(std::string_view name) const;

  /// Enters the read-only phase: all mutation stops until Unfreeze().
  /// Requires mu() exclusively — no Intern can be in flight, and once the
  /// writer lock drops, readers need no further synchronization.
  void Freeze() REQUIRES(mu_) { frozen_ = true; }

  /// Leaves the read-only phase. Requires mu() exclusively, so no
  /// concurrent frozen-phase reader (they hold mu() shared) can observe
  /// the mutation that follows.
  void Unfreeze() REQUIRES(mu_) { frozen_ = false; }

  bool frozen() const { return frozen_; }

  /// The interned spelling. `symbol` must be < size(). The view is stable
  /// for the table's lifetime.
  std::string_view name(Symbol symbol) const { return names_[symbol]; }

  /// Number of distinct names interned so far (== the next id to be minted).
  size_t size() const { return names_.size(); }

  /// Bytes reserved by the name arena (diagnostics).
  size_t arena_bytes() const { return arena_.reserved_bytes(); }

 private:
  struct Slot {
    uint32_t hash = 0;
    Symbol symbol = kNoSymbol;  // kNoSymbol marks an empty slot
  };

  static uint32_t Hash(std::string_view s);
  /// Index of the slot holding `name`, or of the empty slot where it would
  /// be inserted.
  size_t FindSlot(std::string_view name, uint32_t hash) const;
  void Grow();

  std::vector<Slot> slots_;              // open addressing, pow2 capacity
  std::vector<std::string_view> names_;  // symbol -> arena-stable spelling
  Arena arena_;
  // The freeze capability (see mu()). The table's DATA is deliberately not
  // GUARDED_BY it: build-phase use is single-threaded and lock-free, and
  // frozen-phase reads are safe without any capability because nothing
  // mutates. The lock exists to order the phase transitions against the
  // concurrent readers, which is exactly what the Freeze()/Unfreeze()
  // REQUIRES annotations pin down.
  mutable SharedMutex mu_;
  bool frozen_ = false;  // read-only phase flag; see class comment
};

}  // namespace vitex

#endif  // VITEX_COMMON_INTERNER_H_
