// Small string helpers shared by the XML and XPath front ends.

#ifndef VITEX_COMMON_STRING_UTIL_H_
#define VITEX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vitex {

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view TrimWhitespace(std::string_view s);

/// True iff `s` consists solely of ASCII whitespace (or is empty).
bool IsAllWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// True iff `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-sensitive containment test.
bool Contains(std::string_view haystack, std::string_view needle);

/// Numeric coercion per XPath 1.0 `number()`: surrounding whitespace is
/// trimmed, then the whole remainder must be a decimal number (optional
/// sign, digits, optional fraction, optional exponent). Returns false —
/// leaving `*out` untouched — for empty, whitespace-only or non-numeric
/// input, and for the hex/infinity/NaN spellings strtod would accept but
/// XPath does not.
bool ParseXPathNumber(std::string_view s, double* out);

/// Joins `pieces` with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Formats a byte count as a human-readable string, e.g. "75.1 MB".
std::string HumanBytes(size_t bytes);

/// Formats `n` with thousands separators, e.g. "1,234,567".
std::string WithThousandsSeparators(uint64_t n);

/// True for XML NameStartChar in the ASCII+beyond subset we accept
/// (letters, '_', ':' and any byte >= 0x80, i.e. multi-byte UTF-8).
bool IsNameStartChar(unsigned char c);

/// True for XML NameChar (NameStartChar plus digits, '-', '.').
bool IsNameChar(unsigned char c);

/// True iff `name` is a syntactically valid XML name under the rules above.
bool IsValidXmlName(std::string_view name);

}  // namespace vitex

#endif  // VITEX_COMMON_STRING_UTIL_H_
