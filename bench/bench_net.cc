// Experiment N1: wire overhead of the TCP serving surface. Two numbers
// frame it:
//
//   * BM_NetEcho — one PING/PONG round trip over loopback: the floor the
//     framed protocol + epoll loop adds to any request (frame encode,
//     syscall, epoll dispatch, decode, response).
//   * BM_NetMatchDelivery — publish-to-received-MATCH latency through the
//     whole pipeline (PUBLISH frame -> ingest parse -> shard match ->
//     push sink -> outbuf -> client PollMatch), the number a subscriber
//     experiences, with a fan-out axis for the per-match cost once a
//     document matches many standing subscriptions.
//
//   VITEX_BENCH_JSON=bench_out ./bench_net
//
// Linux-only (epoll server); off Linux the binary runs zero benchmarks.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#if defined(__linux__)

#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/vitex.h"

namespace {

using vitex::net::Client;
using vitex::net::ClientOptions;
using vitex::net::Server;
using vitex::net::ServerOptions;

// One live service + server + connected client per benchmark run.
struct Rig {
  std::unique_ptr<vitex::Service> service;
  std::unique_ptr<Server> server;
  std::unique_ptr<Client> client;

  static std::unique_ptr<Rig> Make(size_t shards, benchmark::State& state) {
    auto rig = std::make_unique<Rig>();
    vitex::ServiceOptions service_options;
    service_options.shard_count = shards;
    service_options.stream_count = 1;
    rig->service = std::make_unique<vitex::Service>(service_options);
    auto server = Server::Start(rig->service.get(), ServerOptions{});
    if (!server.ok()) {
      state.SkipWithError(server.status().ToString().c_str());
      return nullptr;
    }
    rig->server = std::move(server).value();
    auto client =
        Client::Connect("127.0.0.1", rig->server->port(), ClientOptions{});
    if (!client.ok()) {
      state.SkipWithError(client.status().ToString().c_str());
      return nullptr;
    }
    rig->client = std::move(client).value();
    return rig;
  }
};

void BM_NetEcho(benchmark::State& state) {
  auto rig = Rig::Make(/*shards=*/1, state);
  if (rig == nullptr) return;
  for (auto _ : state) {
    vitex::Status status = rig->client->Ping();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.counters["pings_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetEcho)->Unit(benchmark::kMicrosecond);

// Arg: number of standing subscriptions the published document matches
// (fan-out). Measures publish -> ALL matches received on the client.
void BM_NetMatchDelivery(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  auto rig = Rig::Make(/*shards=*/2, state);
  if (rig == nullptr) return;
  for (int i = 0; i < fanout; ++i) {
    auto sub = rig->client->Subscribe("//item/val/text()");
    if (!sub.ok()) {
      state.SkipWithError(sub.status().ToString().c_str());
      return;
    }
  }
  const std::string doc =
      "<doc><item><val>quote lorem ipsum dolor sit amet</val></item></doc>";
  for (auto _ : state) {
    vitex::Status status = rig->client->Publish(doc);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    for (int i = 0; i < fanout; ++i) {
      auto match = rig->client->PollMatch(10000);
      if (!match.ok() || !match->has_value()) {
        state.SkipWithError("match did not arrive");
        return;
      }
    }
  }
  state.counters["matches_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * fanout,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetMatchDelivery)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

#endif  // defined(__linux__)

VITEX_BENCH_MAIN("net")
