// Experiment E11 (extension): many standing queries over one stream.
//
// The paper's motivating applications are pub/sub feeds with many
// subscribers. MultiQueryEngine parses once and fans events out to n TwigM
// machines; the marginal cost per additional query must be far below the
// cost of a separate parse (what n independent Engines would pay).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "twigm/engine.h"
#include "twigm/multi_query.h"
#include "workload/xmark_generator.h"

namespace {

const std::string& Doc() {
  static std::string doc = [] {
    vitex::workload::XmarkOptions options;
    options.items_per_region = 100;
    return vitex::workload::GenerateXmarkString(options).value();
  }();
  return doc;
}

// A family of distinct standing queries over the xmark schema.
std::string QueryN(int i) {
  switch (i % 8) {
    case 0:
      return "//item[incategory]/name";
    case 1:
      return "//open_auction[bidder]/current";
    case 2:
      return "//person[profile/income > " + std::to_string(20000 + i * 997) +
             "]/name";
    case 3:
      return "//item[quantity = " + std::to_string(1 + i % 9) + "]/@id";
    case 4:
      return "//open_auction[initial > " + std::to_string(50 + i) + "]/@id";
    case 5:
      return "//person[profile[interest]]//emailaddress";
    case 6:
      return "//item[description//listitem]//incategory/@category";
    default:
      return "//bidder/increase/text()";
  }
}

void BM_MultiQuerySharedParse(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  for (auto _ : state) {
    vitex::twigm::MultiQueryEngine engine;
    std::vector<std::unique_ptr<vitex::twigm::CountingResultHandler>> handlers;
    for (int i = 0; i < n; ++i) {
      handlers.push_back(
          std::make_unique<vitex::twigm::CountingResultHandler>());
      auto id = engine.AddQuery(QueryN(i), handlers.back().get());
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    vitex::Status s = engine.RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["queries"] = n;
}
BENCHMARK(BM_MultiQuerySharedParse)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The alternative a user would otherwise write: n independent engines, each
// re-parsing the stream.
void BM_IndependentEngines(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      vitex::twigm::CountingResultHandler results;
      auto engine = vitex::twigm::Engine::Create(QueryN(i), &results);
      if (!engine.ok()) {
        state.SkipWithError(engine.status().ToString().c_str());
        return;
      }
      vitex::Status s = engine->RunString(doc);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
  }
  state.SetBytesProcessed(state.iterations() * doc.size() * n);
  state.counters["queries"] = n;
}
BENCHMARK(BM_IndependentEngines)->Arg(1)->Arg(4)->Arg(16);

// Disjoint-tag standing subscriptions: the dispatch-index sweet spot. Each
// query names tags no other query mentions, so posting lists route every
// event to at most one machine and per-event work must stay flat as n grows
// (the `visits_per_event` counter is the thing to watch: naive fan-out
// would make it equal to `queries`).
void BM_MultiQueryDisjointTags(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  double visits_per_event = 0;
  for (auto _ : state) {
    vitex::twigm::MultiQueryEngine engine;
    vitex::twigm::CountingResultHandler results;
    // One query that matches real xmark tags; the rest watch tags that
    // never occur (disjoint standing subscriptions waiting for their feed).
    auto id = engine.AddQuery("//item[incategory]/name", &results);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    for (int i = 1; i < n; ++i) {
      auto r =
          engine.AddQuery("//subscription_" + std::to_string(i), nullptr);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    vitex::Status s = engine.RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    const vitex::twigm::DispatchStats& ds = engine.dispatch_stats();
    uint64_t events = ds.start_events + ds.end_events + ds.text_nodes;
    uint64_t visits = ds.start_visits + ds.end_visits + ds.text_visits;
    visits_per_event =
        events == 0 ? 0 : static_cast<double>(visits) / events;
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["queries"] = n;
  state.counters["visits_per_event"] = visits_per_event;
}
BENCHMARK(BM_MultiQueryDisjointTags)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

VITEX_BENCH_MAIN("multi_query");
