// Experiment E11 (extension): many standing queries over one stream.
//
// The paper's motivating applications are pub/sub feeds with many
// subscribers. MultiQueryEngine parses once and fans events out to n TwigM
// machines; the marginal cost per additional query must be far below the
// cost of a separate parse (what n independent Engines would pay).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "twigm/engine.h"
#include "twigm/multi_query.h"
#include "workload/xmark_generator.h"

namespace {

const std::string& Doc() {
  static std::string doc = [] {
    vitex::workload::XmarkOptions options;
    options.items_per_region = 100;
    return vitex::workload::GenerateXmarkString(options).value();
  }();
  return doc;
}

// A family of distinct standing queries over the xmark schema.
std::string QueryN(int i) {
  switch (i % 8) {
    case 0:
      return "//item[incategory]/name";
    case 1:
      return "//open_auction[bidder]/current";
    case 2:
      return "//person[profile/income > " + std::to_string(20000 + i * 997) +
             "]/name";
    case 3:
      return "//item[quantity = " + std::to_string(1 + i % 9) + "]/@id";
    case 4:
      return "//open_auction[initial > " + std::to_string(50 + i) + "]/@id";
    case 5:
      return "//person[profile[interest]]//emailaddress";
    case 6:
      return "//item[description//listitem]//incategory/@category";
    default:
      return "//bidder/increase/text()";
  }
}

void BM_MultiQuerySharedParse(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  for (auto _ : state) {
    vitex::twigm::MultiQueryEngine engine;
    std::vector<std::unique_ptr<vitex::twigm::CountingResultHandler>> handlers;
    for (int i = 0; i < n; ++i) {
      handlers.push_back(
          std::make_unique<vitex::twigm::CountingResultHandler>());
      auto id = engine.AddQuery(QueryN(i), handlers.back().get());
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    vitex::Status s = engine.RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["queries"] = n;
}
BENCHMARK(BM_MultiQuerySharedParse)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The alternative a user would otherwise write: n independent engines, each
// re-parsing the stream.
void BM_IndependentEngines(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      vitex::twigm::CountingResultHandler results;
      auto engine = vitex::twigm::Engine::Create(QueryN(i), &results);
      if (!engine.ok()) {
        state.SkipWithError(engine.status().ToString().c_str());
        return;
      }
      vitex::Status s = engine->RunString(doc);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
  }
  state.SetBytesProcessed(state.iterations() * doc.size() * n);
  state.counters["queries"] = n;
}
BENCHMARK(BM_IndependentEngines)->Arg(1)->Arg(4)->Arg(16);

// Disjoint-tag standing subscriptions: the dispatch-index sweet spot. Each
// query names tags no other query mentions, so posting lists route every
// event to at most one machine and per-event work must stay flat as n grows
// (the `visits_per_event` counter is the thing to watch: naive fan-out
// would make it equal to `queries`).
void BM_MultiQueryDisjointTags(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  double visits_per_event = 0;
  for (auto _ : state) {
    vitex::twigm::MultiQueryEngine engine;
    vitex::twigm::CountingResultHandler results;
    // One query that matches real xmark tags; the rest watch tags that
    // never occur (disjoint standing subscriptions waiting for their feed).
    auto id = engine.AddQuery("//item[incategory]/name", &results);
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    for (int i = 1; i < n; ++i) {
      auto r =
          engine.AddQuery("//subscription_" + std::to_string(i), nullptr);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    vitex::Status s = engine.RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    const vitex::twigm::DispatchStats& ds = engine.dispatch_stats();
    uint64_t events = ds.start_events + ds.end_events + ds.text_nodes;
    uint64_t visits = ds.start_visits + ds.end_visits + ds.text_visits;
    visits_per_event =
        events == 0 ? 0 : static_cast<double>(visits) / events;
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["queries"] = n;
  state.counters["visits_per_event"] = visits_per_event;
}
BENCHMARK(BM_MultiQueryDisjointTags)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The pub/sub population shape (DESIGN.md §7): n subscriptions drawn from
// 16 structural skeletons, differing only in comparison literals — every
// ticker symbol its own subscription. With plan sharing the engine
// hash-conses them into ~16 machines (plus 64-group overflow chains), so
// `machines` and `visits_per_event` must stay ~flat as n grows; with
// sharing off both scale with n. Run both modes to see the gap.
std::string SharedSkeletonQuery(int skeleton, int literal) {
  std::string lit = std::to_string(literal % 97);
  std::string qlit = "'" + lit + "'";
  switch (skeleton % 16) {
    case 0:
      return "//item[quantity = " + lit + "]/name";
    case 1:
      return "//item[quantity = " + qlit + "]/@id";
    case 2:
      return "//open_auction[initial > " + lit + "]/current";
    case 3:
      return "//open_auction[initial >= " + lit + "]/@id";
    case 4:
      return "//person[profile/income > " +
             std::to_string(20000 + literal * 37) + "]/name";
    case 5:
      return "//person[profile/income <= " +
             std::to_string(30000 + literal * 41) + "]//emailaddress";
    case 6:
      return "//item[incategory/@category = 'category" +
             std::to_string(literal % 10) + "']/name";
    case 7:
      return "//bidder[increase = " + qlit + "]/increase/text()";
    case 8:
      return "//item[not(quantity = " + qlit + ")]/@id";
    case 9:
      return "//open_auction[bidder and initial < " + lit + "]/@id";
    case 10:
      return "//person[profile[interest] and profile/income > " + lit +
             "]/name";
    case 11:
      return "//item[quantity = " + lit + " or quantity = " +
             std::to_string((literal + 1) % 97) + "]/name";
    case 12:
      return "//incategory[@category = 'category" +
             std::to_string(literal % 10) + "']";
    case 13:
      return "//open_auction[current > " + lit + "]/current/text()";
    case 14:
      return "//item[description and quantity >= " + lit + "]/name";
    default:
      return "//person[@id = 'person" + std::to_string(literal) + "']/name";
  }
}

void BM_MultiQuerySharedSkeletons(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool share = state.range(1) != 0;
  const std::string& doc = Doc();
  double visits_per_event = 0;
  double machines = 0;
  for (auto _ : state) {
    vitex::twigm::MultiQueryEngine::Options options;
    options.share_plans = share;
    vitex::twigm::MultiQueryEngine engine{vitex::xml::SaxParserOptions(),
                                          options};
    std::vector<std::unique_ptr<vitex::twigm::CountingResultHandler>> handlers;
    for (int i = 0; i < n; ++i) {
      handlers.push_back(
          std::make_unique<vitex::twigm::CountingResultHandler>());
      auto id = engine.AddQuery(SharedSkeletonQuery(i % 16, i / 16),
                                handlers.back().get());
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    vitex::Status s = engine.RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    const vitex::twigm::DispatchStats& ds = engine.dispatch_stats();
    uint64_t events = ds.start_events + ds.end_events + ds.text_nodes;
    uint64_t visits = ds.start_visits + ds.end_visits + ds.text_visits;
    visits_per_event =
        events == 0 ? 0 : static_cast<double>(visits) / events;
    machines = static_cast<double>(ds.machines);
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["subscriptions"] = n;
  state.counters["machines"] = machines;
  state.counters["visits_per_event"] = visits_per_event;
}
BENCHMARK(BM_MultiQuerySharedSkeletons)
    ->ArgNames({"subs", "shared"})
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({1024, 0});

}  // namespace

VITEX_BENCH_MAIN("multi_query");
