// Experiment E11 (extension): many standing queries over one stream.
//
// The paper's motivating applications are pub/sub feeds with many
// subscribers. MultiQueryEngine parses once and fans events out to n TwigM
// machines; the marginal cost per additional query must be far below the
// cost of a separate parse (what n independent Engines would pay).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "twigm/engine.h"
#include "twigm/multi_query.h"
#include "workload/xmark_generator.h"

namespace {

const std::string& Doc() {
  static std::string doc = [] {
    vitex::workload::XmarkOptions options;
    options.items_per_region = 100;
    return vitex::workload::GenerateXmarkString(options).value();
  }();
  return doc;
}

// A family of distinct standing queries over the xmark schema.
std::string QueryN(int i) {
  switch (i % 8) {
    case 0:
      return "//item[incategory]/name";
    case 1:
      return "//open_auction[bidder]/current";
    case 2:
      return "//person[profile/income > " + std::to_string(20000 + i * 997) +
             "]/name";
    case 3:
      return "//item[quantity = " + std::to_string(1 + i % 9) + "]/@id";
    case 4:
      return "//open_auction[initial > " + std::to_string(50 + i) + "]/@id";
    case 5:
      return "//person[profile[interest]]//emailaddress";
    case 6:
      return "//item[description//listitem]//incategory/@category";
    default:
      return "//bidder/increase/text()";
  }
}

void BM_MultiQuerySharedParse(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  for (auto _ : state) {
    vitex::twigm::MultiQueryEngine engine;
    std::vector<std::unique_ptr<vitex::twigm::CountingResultHandler>> handlers;
    for (int i = 0; i < n; ++i) {
      handlers.push_back(
          std::make_unique<vitex::twigm::CountingResultHandler>());
      auto id = engine.AddQuery(QueryN(i), handlers.back().get());
      if (!id.ok()) {
        state.SkipWithError(id.status().ToString().c_str());
        return;
      }
    }
    vitex::Status s = engine.RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["queries"] = n;
}
BENCHMARK(BM_MultiQuerySharedParse)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The alternative a user would otherwise write: n independent engines, each
// re-parsing the stream.
void BM_IndependentEngines(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  const std::string& doc = Doc();
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      vitex::twigm::CountingResultHandler results;
      auto engine = vitex::twigm::Engine::Create(QueryN(i), &results);
      if (!engine.ok()) {
        state.SkipWithError(engine.status().ToString().c_str());
        return;
      }
      vitex::Status s = engine->RunString(doc);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
  }
  state.SetBytesProcessed(state.iterations() * doc.size() * n);
  state.counters["queries"] = n;
}
BENCHMARK(BM_IndependentEngines)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
