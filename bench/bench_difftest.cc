// Throughput of the differential oracle itself: cross-checks per second
// over each workload, with and without the StreamService route (the only
// route that spins up threads per check). This bounds what an overnight
// difftest_main campaign can cover and flags regressions that would
// silently shrink nightly fuzz coverage.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "common/random.h"
#include "difftest/oracle.h"
#include "difftest/query_fuzzer.h"
#include "difftest/workload_corpus.h"

namespace {

using vitex::Random;
using vitex::difftest::Oracle;
using vitex::difftest::OracleOptions;
using vitex::difftest::QueryFuzzer;
using vitex::difftest::WorkloadKind;

void BM_OracleCheckBatch(benchmark::State& state) {
  WorkloadKind kind = static_cast<WorkloadKind>(state.range(0));
  bool with_service = state.range(1) != 0;

  // A fixed pool of (document, batch) cases so iterations measure the
  // oracle, not the generators.
  Random rng(1234);
  QueryFuzzer fuzzer(vitex::difftest::WorkloadAlphabet(kind));
  constexpr int kCases = 8;
  std::vector<std::string> docs;
  std::vector<std::vector<std::string>> batches;
  for (int i = 0; i < kCases; ++i) {
    docs.push_back(vitex::difftest::GenerateWorkloadDocument(
        kind, 100 + static_cast<uint64_t>(i), &rng));
    std::vector<std::string> batch;
    for (int q = 0; q < 4; ++q) batch.push_back(fuzzer.Next(&rng));
    batches.push_back(std::move(batch));
  }
  const std::vector<std::string> decoys = {"//*"};

  OracleOptions options;
  options.max_shards = with_service ? 4 : 0;
  Oracle oracle(options);
  int divergent = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto d = oracle.CheckBatch(batches[i % kCases], decoys, docs[i % kCases]);
    if (d.has_value()) ++divergent;
    ++i;
  }
  if (divergent > 0) state.SkipWithError("oracle found divergences");
  state.counters["checks_per_sec"] = benchmark::Counter(
      static_cast<double>(oracle.checks_run()), benchmark::Counter::kIsRate);
  state.SetLabel(std::string(vitex::difftest::WorkloadName(kind)) +
                 (with_service ? "/with_service" : "/no_service"));
}

}  // namespace

BENCHMARK(BM_OracleCheckBatch)
    ->ArgNames({"workload", "service"})
    ->ArgsProduct({{static_cast<long>(WorkloadKind::kProtein),
                    static_cast<long>(WorkloadKind::kBooks),
                    static_cast<long>(WorkloadKind::kXmark),
                    static_cast<long>(WorkloadKind::kRecursive),
                    static_cast<long>(WorkloadKind::kRandom)},
                   {0, 1}})
    ->Unit(benchmark::kMillisecond);

VITEX_BENCH_MAIN("difftest");
