// Experiment E4 (paper §2 feature 1): processing time is linear in the
// document size. Shape: bytes_per_second constant across the sweep.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "twigm/engine.h"
#include "workload/book_generator.h"
#include "workload/protein_generator.h"

namespace {

const std::string& ProteinDoc(uint64_t entries) {
  static std::map<uint64_t, std::string> cache;
  auto it = cache.find(entries);
  if (it == cache.end()) {
    vitex::workload::ProteinOptions options;
    options.entries = entries;
    it = cache
             .emplace(entries, vitex::workload::GenerateProteinString(options)
                                   .value())
             .first;
  }
  return it->second;
}

void RunQuery(benchmark::State& state, const char* query,
              const std::string& doc) {
  uint64_t results_count = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(query, &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    results_count = results.count();
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["doc_mb"] = static_cast<double>(doc.size()) / (1 << 20);
  state.counters["results"] = static_cast<double>(results_count);
}

void BM_DataScalingProtein(benchmark::State& state) {
  RunQuery(state, "//ProteinEntry[reference]/@id",
           ProteinDoc(static_cast<uint64_t>(state.range(0))));
}
BENCHMARK(BM_DataScalingProtein)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000);

void BM_DataScalingBook(benchmark::State& state) {
  static std::map<int, std::string> cache;
  int chains = static_cast<int>(state.range(0));
  auto it = cache.find(chains);
  if (it == cache.end()) {
    vitex::workload::BookOptions options;
    options.chains = chains;
    options.section_depth = 5;
    options.table_depth = 4;
    options.author_probability = 0.5;
    options.position_probability = 0.5;
    it = cache.emplace(chains,
                       vitex::workload::GenerateBookString(options).value())
             .first;
  }
  RunQuery(state, "//section[author]//table[position]//cell", it->second);
}
BENCHMARK(BM_DataScalingBook)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
