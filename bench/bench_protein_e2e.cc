// Experiment E1 (paper §2 feature 5): //ProteinEntry[reference]/@id over the
// Protein Sequence Database.
//
// Paper numbers (2005 testbed, 75 MB): 6.02 s total, of which 4.43 s is SAX
// parsing — i.e. parsing is ~74% of end-to-end time and TwigM adds ~36% on
// top of bare parsing. Absolute times differ on modern hardware; the shape
// to check is the SAX share and the flat memory (see bench_memory_profile).
//
// Counters: bytes_per_second (throughput), results, sax_share (E2E runs
// report the fraction of time bare parsing takes on the same input).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "common/stopwatch.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "xml/sax_parser.h"

namespace {

using vitex::twigm::CountingResultHandler;
using vitex::twigm::Engine;

const std::string& ProteinDoc(uint64_t entries) {
  static std::map<uint64_t, std::string> cache;
  auto it = cache.find(entries);
  if (it == cache.end()) {
    vitex::workload::ProteinOptions options;
    options.entries = entries;
    auto doc = vitex::workload::GenerateProteinString(options);
    it = cache.emplace(entries, std::move(doc).value()).first;
  }
  return it->second;
}

// The 4.43 s component: SAX parsing alone.
void BM_ProteinSaxOnly(benchmark::State& state) {
  const std::string& doc = ProteinDoc(state.range(0));
  for (auto _ : state) {
    vitex::xml::ContentHandler discard;
    vitex::Status s = vitex::xml::ParseString(doc, &discard);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["doc_mb"] = static_cast<double>(doc.size()) / (1 << 20);
}
BENCHMARK(BM_ProteinSaxOnly)->Arg(1000)->Arg(8000)->Arg(32000);

// The 6.02 s component: the full ViteX pipeline.
void BM_ProteinViteX(benchmark::State& state) {
  const std::string& doc = ProteinDoc(state.range(0));
  uint64_t results_count = 0;
  double sax_seconds = 0;
  {
    // Measure the bare-parse time once for the sax_share counter.
    vitex::xml::ContentHandler discard;
    vitex::Stopwatch timer;
    (void)vitex::xml::ParseString(doc, &discard);
    sax_seconds = timer.ElapsedSeconds();
  }
  double e2e_seconds = 0;
  for (auto _ : state) {
    CountingResultHandler results;
    auto engine = Engine::Create("//ProteinEntry[reference]/@id", &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Stopwatch timer;
    vitex::Status s = engine->RunString(doc);
    e2e_seconds = timer.ElapsedSeconds();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    results_count = results.count();
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["results"] = static_cast<double>(results_count);
  state.counters["doc_mb"] = static_cast<double>(doc.size()) / (1 << 20);
  if (e2e_seconds > 0) {
    // Paper shape: ~0.74 (4.43 / 6.02).
    state.counters["sax_share"] = sax_seconds / e2e_seconds;
  }
}
BENCHMARK(BM_ProteinViteX)->Arg(1000)->Arg(8000)->Arg(32000);

// Variants of the paper query on the same data.
void BM_ProteinQueryVariants(benchmark::State& state) {
  static const char* kQueries[] = {
      "//ProteinEntry[reference]/@id",        // the paper's query
      "//ProteinEntry/@id",                   // no predicate
      "//ProteinEntry[reference]//author",    // element output
      "//ProteinEntry[summary/length > 300]/@id",  // value predicate
      "//refinfo/@refid",                     // deeper target
  };
  const std::string& doc = ProteinDoc(8000);
  const char* query = kQueries[state.range(0)];
  uint64_t results_count = 0;
  for (auto _ : state) {
    CountingResultHandler results;
    auto engine = Engine::Create(query, &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    results_count = results.count();
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(query);
  state.counters["results"] = static_cast<double>(results_count);
}
BENCHMARK(BM_ProteinQueryVariants)->DenseRange(0, 4);

}  // namespace

VITEX_BENCH_MAIN("protein_e2e");
