// Experiment E7 (paper §1 / Figure 1): the number of explicit pattern
// matches vs TwigM's compact stack encoding, as recursion depth grows.
//
// Fixed query //a[p]//a[p]//a[p]//v (k=3); depth sweep. Naive instances
// grow as Θ(depth³); TwigM peak entries grow as Θ(depth).

#include <benchmark/benchmark.h>

#include <string>

#include "baseline/naive_matcher.h"
#include "twigm/engine.h"
#include "workload/recursive_generator.h"
#include "xml/sax_parser.h"

namespace {

std::string DocOfDepth(int depth) {
  vitex::workload::RecursiveOptions options;
  options.depth = depth;
  return vitex::workload::GenerateRecursiveString(options).value();
}

constexpr int kSteps = 3;

void BM_ExplosionNaive(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  std::string doc = DocOfDepth(depth);
  auto compiled = vitex::xpath::ParseAndCompile(
      vitex::workload::RecursiveChainQuery(kSteps));
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  uint64_t instances = 0, peak = 0;
  for (auto _ : state) {
    vitex::baseline::NaiveStreamMatcher naive(&compiled.value(), nullptr);
    vitex::Status s = vitex::xml::ParseString(doc, &naive);
    if (!s.ok() && !s.IsResourceExhausted()) {
      state.SkipWithError(s.ToString().c_str());
    }
    instances = naive.stats().instances_created;
    peak = naive.stats().peak_live_instances;
  }
  state.counters["depth"] = depth;
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["peak_live"] = static_cast<double>(peak);
}
BENCHMARK(BM_ExplosionNaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ExplosionTwigM(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  std::string doc = DocOfDepth(depth);
  uint64_t peak_entries = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(
        vitex::workload::RecursiveChainQuery(kSteps), &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    peak_entries = engine->machine().stats().peak_stack_entries;
  }
  state.counters["depth"] = depth;
  state.counters["peak_entries"] = static_cast<double>(peak_entries);
}
BENCHMARK(BM_ExplosionTwigM)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
