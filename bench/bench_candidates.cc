// Experiment E10 (paper §3.2 complexity): the B term — candidate-buffer
// behaviour as predicate resolution moves later in the stream.
//
// Document: <a> blocks whose predicate marker <k> appears before, between
// or after n candidate <c> elements. The later the marker, the longer
// candidates stay buffered; TwigM's cost is O(|D|·|Q|·(|Q|+B)), so time and
// peak candidate counts grow with B, not with pattern-match counts.

#include <benchmark/benchmark.h>

#include <string>

#include "twigm/engine.h"

namespace {

// mode 0: marker first (B ~ 0 resolution lag)
// mode 1: marker last (all candidates buffered until the end of the block)
// mode 2: no marker (all candidates buffered, then pruned)
std::string MakeDoc(int blocks, int candidates_per_block, int mode) {
  std::string doc = "<r>";
  for (int b = 0; b < blocks; ++b) {
    doc += "<a>";
    if (mode == 0) doc += "<k/>";
    for (int c = 0; c < candidates_per_block; ++c) {
      doc += "<c>payload-";
      doc += std::to_string(c);
      doc += "</c>";
    }
    if (mode == 1) doc += "<k/>";
    doc += "</a>";
  }
  doc += "</r>";
  return doc;
}

const char* ModeName(int mode) {
  static const char* kNames[] = {"marker_first", "marker_last", "no_marker"};
  return kNames[mode];
}

void BM_CandidateBuffering(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  int per_block = static_cast<int>(state.range(1));
  std::string doc = MakeDoc(200, per_block, mode);
  uint64_t peak_live = 0, pruned = 0, emitted = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create("//a[k]//c", &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    peak_live = engine->machine().candidate_stats().peak_live;
    pruned = engine->machine().candidate_stats().pruned;
    emitted = engine->machine().candidate_stats().emitted;
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(std::string(ModeName(mode)) + "/B=" +
                 std::to_string(per_block));
  state.counters["peak_live_candidates"] = static_cast<double>(peak_live);
  state.counters["pruned"] = static_cast<double>(pruned);
  state.counters["emitted"] = static_cast<double>(emitted);
}
BENCHMARK(BM_CandidateBuffering)
    ->ArgsProduct({{0, 1, 2}, {1, 8, 64}});

// Candidate size effect: larger buffered fragments cost proportionally.
void BM_CandidateFragmentSize(benchmark::State& state) {
  int payload = static_cast<int>(state.range(0));
  std::string doc = "<r>";
  for (int b = 0; b < 100; ++b) {
    doc += "<a><c>";
    doc += std::string(payload, 'x');
    doc += "</c><k/></a>";
  }
  doc += "</r>";
  size_t peak_bytes = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create("//a[k]//c", &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    peak_bytes = engine->machine().candidate_stats().peak_bytes;
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["payload"] = payload;
  state.counters["peak_candidate_kb"] =
      static_cast<double>(peak_bytes) / 1024.0;
}
BENCHMARK(BM_CandidateFragmentSize)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
