// Experiment E2 (paper §2 feature 3): "the memory requirement of ViteX when
// processing queries on a 75 MB Protein dataset is stable at 1MB".
//
// This harness streams progressively larger PSD documents and reports the
// engine's peak live memory. The paper's shape: peak memory is flat in the
// document size (it depends on depth and candidate backlog only). We also
// sample live memory during the stream to show stability over time.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "xml/dom.h"

namespace {

void BM_PeakMemoryVsDocSize(benchmark::State& state) {
  vitex::workload::ProteinOptions options;
  options.entries = static_cast<uint64_t>(state.range(0));
  auto doc = vitex::workload::GenerateProteinString(options);
  if (!doc.ok()) {
    state.SkipWithError(doc.status().ToString().c_str());
    return;
  }
  size_t peak = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(
        "//ProteinEntry[reference]/@id", &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc.value());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    peak = engine->machine().memory().peak_bytes();
  }
  state.SetBytesProcessed(state.iterations() * doc->size());
  state.counters["doc_mb"] = static_cast<double>(doc->size()) / (1 << 20);
  state.counters["peak_kb"] = static_cast<double>(peak) / 1024.0;
}
// 1x .. 64x document size; peak_kb must stay flat.
BENCHMARK(BM_PeakMemoryVsDocSize)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000);

// Live-memory samples during one long stream: the "stable at 1MB" claim.
void BM_LiveMemoryStability(benchmark::State& state) {
  vitex::workload::ProteinOptions options;
  options.entries = 20000;
  auto doc = vitex::workload::GenerateProteinString(options);
  if (!doc.ok()) {
    state.SkipWithError(doc.status().ToString().c_str());
    return;
  }
  size_t max_sample = 0, min_sample = SIZE_MAX;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(
        "//ProteinEntry[reference]/@id", &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    max_sample = 0;
    min_sample = SIZE_MAX;
    const size_t kChunk = 1 << 20;  // sample once per MB of input
    for (size_t pos = 0; pos < doc->size(); pos += kChunk) {
      size_t len = std::min(kChunk, doc->size() - pos);
      vitex::Status s =
          engine->Feed(std::string_view(doc.value()).substr(pos, len));
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        break;
      }
      size_t live = engine->machine().memory().live_bytes();
      max_sample = std::max(max_sample, live);
      min_sample = std::min(min_sample, live);
    }
    (void)engine->Finish();
  }
  state.SetBytesProcessed(state.iterations() * doc->size());
  state.counters["live_max_kb"] = static_cast<double>(max_sample) / 1024.0;
  state.counters["live_min_kb"] =
      static_cast<double>(min_sample == SIZE_MAX ? 0 : min_sample) / 1024.0;
}
BENCHMARK(BM_LiveMemoryStability);

// Contrast: what a DOM-building consumer would hold live for the same data
// (the memory ViteX avoids). Reported as dom_kb vs twigm peak_kb above.
void BM_DomMemoryContrast(benchmark::State& state) {
  vitex::workload::ProteinOptions options;
  options.entries = 8000;
  auto doc = vitex::workload::GenerateProteinString(options);
  if (!doc.ok()) {
    state.SkipWithError(doc.status().ToString().c_str());
    return;
  }
  size_t dom_bytes = 0;
  for (auto _ : state) {
    auto dom = vitex::xml::ParseIntoDom(doc.value());
    if (!dom.ok()) {
      state.SkipWithError(dom.status().ToString().c_str());
      break;
    }
    dom_bytes = dom->arena()->allocated_bytes();
    benchmark::DoNotOptimize(dom);
  }
  state.SetBytesProcessed(state.iterations() * doc->size());
  state.counters["dom_kb"] = static_cast<double>(dom_bytes) / 1024.0;
}
BENCHMARK(BM_DomMemoryContrast);

}  // namespace

BENCHMARK_MAIN();
