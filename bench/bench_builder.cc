// Experiment E6 (paper §2 feature 2 / §3.1): "TwigM can be constructed from
// an XPath query in time which is linear in the size of the query." Shape:
// ns/op grows linearly with the number of twig nodes.

#include <benchmark/benchmark.h>

#include <string>

#include "twigm/builder.h"
#include "xpath/parser.h"
#include "xpath/query.h"

namespace {

// A query with `n` predicate branches: //a[p0][p1]...[p(n-1)]//leaf.
std::string WideQuery(int n) {
  std::string q = "//a";
  for (int i = 0; i < n; ++i) q += "[p" + std::to_string(i % 60) + "]";
  q += "//leaf";
  return q;
}

// A query with an n-step main path.
std::string DeepQuery(int n) {
  std::string q;
  for (int i = 0; i < n; ++i) q += "//s" + std::to_string(i);
  return q;
}

void BM_ParseAndCompile(benchmark::State& state) {
  std::string q = DeepQuery(static_cast<int>(state.range(0)));
  size_t nodes = 0;
  for (auto _ : state) {
    auto compiled = vitex::xpath::ParseAndCompile(q);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      break;
    }
    nodes = compiled->size();
    benchmark::DoNotOptimize(compiled);
  }
  state.counters["twig_nodes"] = static_cast<double>(nodes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParseAndCompile)->Range(4, 2048)->Complexity(benchmark::oN);

void BM_MachineConstruction(benchmark::State& state) {
  std::string q = DeepQuery(static_cast<int>(state.range(0)));
  auto compiled = vitex::xpath::ParseAndCompile(q);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    vitex::twigm::TwigMachine machine(&compiled.value(), nullptr);
    benchmark::DoNotOptimize(machine.stats());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MachineConstruction)->Range(4, 2048)->Complexity(benchmark::oN);

void BM_BuildWidePredicates(benchmark::State& state) {
  std::string q = WideQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto built = vitex::twigm::TwigMBuilder::Build(q, nullptr);
    if (!built.ok()) {
      state.SkipWithError(built.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(built);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildWidePredicates)->Range(2, 32)->Complexity();

}  // namespace

BENCHMARK_MAIN();
