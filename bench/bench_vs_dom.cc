// Experiment E9 (paper §1, implied): the streaming engine vs the
// non-streaming DOM baseline. Shape: comparable or better end-to-end time,
// and O(1) memory vs O(document) memory.

#include <benchmark/benchmark.h>

#include <string>

#include "baseline/dom_evaluator.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "workload/xmark_generator.h"

namespace {

struct Case {
  const char* name;
  const char* query;
};

const Case kCases[] = {
    {"protein_id", "//ProteinEntry[reference]/@id"},
    {"protein_author", "//ProteinEntry[reference]//author"},
    {"xmark_name", "//item[incategory]/name"},
    {"xmark_current", "//open_auction[bidder]/current"},
};

const std::string& DocFor(int c) {
  static std::string protein = [] {
    vitex::workload::ProteinOptions options;
    options.entries = 4000;
    return vitex::workload::GenerateProteinString(options).value();
  }();
  static std::string xmark = [] {
    vitex::workload::XmarkOptions options;
    options.items_per_region = 400;
    return vitex::workload::GenerateXmarkString(options).value();
  }();
  return c < 2 ? protein : xmark;
}

void BM_StreamingTwigM(benchmark::State& state) {
  const Case& c = kCases[state.range(0)];
  const std::string& doc = DocFor(static_cast<int>(state.range(0)));
  size_t peak = 0;
  uint64_t results_count = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(c.query, &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    peak = engine->machine().memory().peak_bytes();
    results_count = results.count();
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(c.name);
  state.counters["peak_kb"] = static_cast<double>(peak) / 1024.0;
  state.counters["results"] = static_cast<double>(results_count);
}
BENCHMARK(BM_StreamingTwigM)->DenseRange(0, 3);

void BM_DomBaseline(benchmark::State& state) {
  const Case& c = kCases[state.range(0)];
  const std::string& doc = DocFor(static_cast<int>(state.range(0)));
  auto query = vitex::xpath::ParseAndCompile(c.query);
  if (!query.ok()) {
    state.SkipWithError(query.status().ToString().c_str());
    return;
  }
  size_t dom_bytes = 0;
  uint64_t results_count = 0;
  for (auto _ : state) {
    // End-to-end: parse into DOM, then evaluate (what a non-streaming
    // system must do).
    auto dom = vitex::xml::ParseIntoDom(doc);
    if (!dom.ok()) {
      state.SkipWithError(dom.status().ToString().c_str());
      break;
    }
    vitex::baseline::DomEvaluator eval(&dom.value());
    auto nodes = eval.Evaluate(query.value());
    benchmark::DoNotOptimize(nodes);
    results_count = nodes.size();
    dom_bytes = dom->arena()->allocated_bytes();
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(c.name);
  state.counters["dom_kb"] = static_cast<double>(dom_bytes) / 1024.0;
  state.counters["results"] = static_cast<double>(results_count);
}
BENCHMARK(BM_DomBaseline)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
