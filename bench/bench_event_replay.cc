// Experiment E12 (ablation): isolate the TwigM matcher from the SAX parser
// by replaying a pre-parsed event log. The paper reports the split 6.02 s
// total / 4.43 s SAX — i.e. the matcher alone costs ~1.6 s. Replaying
// events measures exactly that residual, plus how it scales with query
// complexity at zero parsing cost.

#include <benchmark/benchmark.h>

#include <string>

#include "twigm/machine.h"
#include "twigm/result.h"
#include "workload/protein_generator.h"
#include "xml/event_log.h"
#include "xpath/query.h"

namespace {

const vitex::xml::EventLog& Log() {
  static vitex::xml::EventLog log = [] {
    vitex::workload::ProteinOptions options;
    options.entries = 8000;
    auto doc = vitex::workload::GenerateProteinString(options).value();
    return vitex::xml::RecordEvents(doc).value();
  }();
  return log;
}

const std::string& Doc() {
  static std::string doc = [] {
    vitex::workload::ProteinOptions options;
    options.entries = 8000;
    return vitex::workload::GenerateProteinString(options).value();
  }();
  return doc;
}

void BM_MatcherOnlyReplay(benchmark::State& state) {
  static const char* kQueries[] = {
      "//ProteinEntry/@id",
      "//ProteinEntry[reference]/@id",
      "//ProteinEntry[reference][organism/source]//author",
      "//*[reference]//*/@refid",
  };
  const char* query = kQueries[state.range(0)];
  auto compiled = vitex::xpath::ParseAndCompile(query);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  const vitex::xml::EventLog& log = Log();
  uint64_t results_count = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    vitex::twigm::TwigMachine machine(&compiled.value(), &results);
    vitex::Status s = log.Replay(&machine);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    results_count = results.count();
  }
  // Normalize by the original document bytes so MB/s compares directly
  // with the parse+match pipeline.
  state.SetBytesProcessed(state.iterations() * Doc().size());
  state.SetLabel(query);
  state.counters["results"] = static_cast<double>(results_count);
  state.counters["events"] = static_cast<double>(log.size());
}
BENCHMARK(BM_MatcherOnlyReplay)->DenseRange(0, 3);

// Baseline for the same comparison: replay into a no-op handler (the cost
// of event dispatch itself).
void BM_NoopReplay(benchmark::State& state) {
  const vitex::xml::EventLog& log = Log();
  for (auto _ : state) {
    vitex::xml::ContentHandler noop;
    vitex::Status s = log.Replay(&noop);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * Doc().size());
}
BENCHMARK(BM_NoopReplay);

}  // namespace

BENCHMARK_MAIN();
