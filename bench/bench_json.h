// Machine-readable benchmark output.
//
// Replace BENCHMARK_MAIN() with VITEX_BENCH_MAIN("name") and the binary
// gains an opt-in JSON mirror of its results: when the VITEX_BENCH_JSON
// environment variable is set, a Google-Benchmark JSON report is written to
// BENCH_<name>.json (in $VITEX_BENCH_JSON when it names a directory, else
// the current directory) alongside the usual console output. CI and future
// PRs append these files to a trajectory to track perf over time:
//
//   VITEX_BENCH_JSON=bench_out ./bench_multi_query
//   jq '.benchmarks[] | {name, real_time, counters}' bench.json
//       (where bench.json is bench_out/BENCH_multi_query.json)

#ifndef VITEX_BENCH_BENCH_JSON_H_
#define VITEX_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

// CMake injects -DVITEX_BENCH_BUILD_TYPE="<CMAKE_BUILD_TYPE>" per bench
// target; a bare compile (no CMake) still builds.
#ifndef VITEX_BENCH_BUILD_TYPE
#define VITEX_BENCH_BUILD_TYPE "unknown"
#endif

namespace vitex::bench {

/// Runs all registered benchmarks; mirrors results to BENCH_<name>.json
/// when VITEX_BENCH_JSON is set. Returns the process exit code.
///
/// The mirror rides the library's own --benchmark_out machinery (the flags
/// are injected before Initialize), so it works across Benchmark versions
/// and composes with any flags the caller passes explicitly.
inline int RunWithJson(const char* bench_name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  const char* env = std::getenv("VITEX_BENCH_JSON");
  if (env != nullptr) {
    std::string dir(env);
    if (dir.empty() || dir == "1") dir = ".";
    out_flag = "--benchmark_out=" + dir + "/BENCH_" + bench_name + ".json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  // Stamp OUR build type into the JSON context. The library's own
  // `library_build_type` reflects how libbenchmark was compiled (debug for
  // the distro package), not how this binary was; tools/bench_compare.py
  // keys its cross-build-type warning on this field instead.
  benchmark::AddCustomContext("vitex_build_type", VITEX_BENCH_BUILD_TYPE);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!out_flag.empty()) {
    std::cout << "benchmark JSON written to "
              << out_flag.substr(out_flag.find('=') + 1) << "\n";
  }
  return 0;
}

}  // namespace vitex::bench

/// Drop-in replacement for BENCHMARK_MAIN() with the JSON mirror.
#define VITEX_BENCH_MAIN(name)                          \
  int main(int argc, char** argv) {                     \
    return vitex::bench::RunWithJson(name, argc, argv); \
  }

#endif  // VITEX_BENCH_BENCH_JSON_H_
