// Experiment S1: pub/sub service throughput vs. shard count × subscription
// count × publisher stream count. The paper's motivating deployment — a
// document feed fanned out to many standing subscriptions — run through
// service::StreamService: documents parsed on per-stream ingest threads
// (concurrent against the frozen symbol table), replayed into every shard,
// match work split across shards by subscription hash-partitioning.
//
// The scaling claim (ISSUE 2 acceptance): with ≥256 disjoint-tag
// subscriptions, total replayed events/sec grows with the shard count —
// each shard carries 1/N of the machines, so its per-event dispatch and
// text-interest work shrinks while shards run in parallel. Even on a
// single core, events_per_sec scales near-linearly (per-shard cost is
// ~1/N, so N shards replay N× the events in the same wall time);
// docs_per_sec additionally improves once shards have real cores to
// spread over.
//
//   VITEX_BENCH_JSON=bench_out ./bench_service
//   jq '.benchmarks[] | {name, events_per_sec: .counters.events_per_sec}'
//       over bench_out/BENCH_service.json

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "service/stream_service.h"
#include "xml/simd_scan.h"

namespace {

// A feed document cycling over `tags` distinct item tags, text-heavy so
// subscription-side work (text-interest checks, value capture) dominates
// the fixed per-event replay cost.
std::string MakeFeedDoc(int tags, int items, int salt) {
  std::string doc = "<feed>";
  for (int i = 0; i < items; ++i) {
    int tag = (i * 7 + salt) % tags;
    doc += "<item" + std::to_string(tag) + "><val>quote " +
           std::to_string(salt) + "." + std::to_string(i) +
           " lorem ipsum dolor sit amet</val><aux>x</aux></item" +
           std::to_string(tag) + ">";
  }
  doc += "</feed>";
  return doc;
}

// Throughput of the full pipeline: Publish -> per-stream ingest parse ->
// fan-out -> sharded match -> sink delivery. Args: {shard_count,
// subscriptions, stream_count}. The streams axis is the ISSUE 6 headline:
// with >1 publisher streams, documents parse concurrently on independent
// parser threads against the frozen symbol table, so docs/sec scales past
// the single-parser ceiling once real cores are available.
void BM_ServiceThroughput(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int subs = static_cast<int>(state.range(1));
  const int streams = static_cast<int>(state.range(2));
  const int items_per_doc = static_cast<int>(state.range(3));
  constexpr int kDocsPerIteration = 8;

  vitex::service::StreamServiceOptions options;
  options.shard_count = static_cast<size_t>(shards);
  options.stream_count = static_cast<size_t>(streams);
  options.queue_capacity = 32;
  vitex::service::StreamService service(options);
  // Disjoint-tag subscriptions: //item<i>/val/text(), one per tag.
  for (int i = 0; i < subs; ++i) {
    auto id = service.Subscribe("//item" + std::to_string(i) +
                                "/val/text()");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  std::vector<std::string> docs;
  uint64_t doc_bytes = 0;
  for (int d = 0; d < kDocsPerIteration; ++d) {
    docs.push_back(MakeFeedDoc(subs, items_per_doc, d));
    doc_bytes += docs.back().size();
  }
  vitex::Status status = service.Flush();  // all machines installed
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }

  for (auto _ : state) {
    for (const std::string& doc : docs) {
      status = service.Publish(doc);
      if (!status.ok()) break;
    }
    if (status.ok()) status = service.Flush();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }

  vitex::service::ServiceStats stats = service.stats();
  state.SetBytesProcessed(state.iterations() * doc_bytes);
  state.counters["shards"] = shards;
  state.counters["subscriptions"] = subs;
  state.counters["streams"] = streams;
  // Total replayed events/sec across all shards: the scaling headline.
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.events_replayed), benchmark::Counter::kIsRate);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kDocsPerIteration),
      benchmark::Counter::kIsRate);
  state.counters["results"] =
      static_cast<double>(stats.results_delivered) /
      static_cast<double>(state.iterations());
  // The ingest parse rides the scan kernels; label which tier ran so
  // end-to-end numbers are comparable across the CI scan matrix.
  state.SetLabel("scan:" + std::string(vitex::xml::scan::ScanModeName(
                               vitex::xml::scan::ActiveScanMode())));
}
BENCHMARK(BM_ServiceThroughput)
    ->ArgNames({"shards", "subs", "streams", "items"})
    // Shard-scaling axis (ISSUE 2), single ingest stream.
    ->Args({1, 256, 1, 256})
    ->Args({2, 256, 1, 256})
    ->Args({4, 256, 1, 256})
    ->Args({8, 256, 1, 256})
    ->Args({1, 1024, 1, 256})
    ->Args({4, 1024, 1, 256})
    ->Args({8, 1024, 1, 256})
    // Stream-scaling axis (ISSUE 6): fixed shard/sub shape, publisher
    // streams 1 -> 8. streams:1 doubles as the no-regression pin against
    // the pre-multi-stream single-parser service.
    ->Args({4, 256, 2, 256})
    ->Args({4, 256, 4, 256})
    ->Args({4, 256, 8, 256})
    // Small-docs axis (ISSUE 9): ≤1KB documents, where per-document reset
    // and allocation overhead — not match work — dominates. The versioned
    // O(1) reset and pooled hot path pay off here.
    ->Args({1, 256, 1, 8})
    ->Args({4, 256, 1, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Small-documents end-to-end (ISSUE 9 acceptance): the full pub/sub
// pipeline fed ≤1KB documents. At this size a document is a few dozen
// events, so fixed per-document costs — machine/store resets, dispatcher
// doc-boundary bookkeeping, per-doc allocation — dominate the profile and
// the generation-stamped O(1) reset shows up directly in docs_per_sec.
// Args: {shard_count, stream_count}.
void BM_SmallDocsE2E(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int streams = static_cast<int>(state.range(1));
  constexpr int kSubs = 64;
  constexpr int kDocsPerIteration = 64;
  constexpr int kItemsPerDoc = 4;  // ~400-byte documents

  vitex::service::StreamServiceOptions options;
  options.shard_count = static_cast<size_t>(shards);
  options.stream_count = static_cast<size_t>(streams);
  options.queue_capacity = 128;
  vitex::service::StreamService service(options);
  for (int i = 0; i < kSubs; ++i) {
    auto id = service.Subscribe("//item" + std::to_string(i) +
                                "/val/text()");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  std::vector<std::string> docs;
  uint64_t doc_bytes = 0;
  for (int d = 0; d < kDocsPerIteration; ++d) {
    docs.push_back(MakeFeedDoc(kSubs, kItemsPerDoc, d));
    doc_bytes += docs.back().size();
  }
  vitex::Status status = service.Flush();
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }

  for (auto _ : state) {
    for (const std::string& doc : docs) {
      status = service.Publish(doc);
      if (!status.ok()) break;
    }
    if (status.ok()) status = service.Flush();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }

  vitex::service::ServiceStats stats = service.stats();
  state.SetBytesProcessed(state.iterations() * doc_bytes);
  state.counters["doc_bytes"] =
      static_cast<double>(doc_bytes) / kDocsPerIteration;
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.events_replayed), benchmark::Counter::kIsRate);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kDocsPerIteration),
      benchmark::Counter::kIsRate);
  state.counters["results"] =
      static_cast<double>(stats.results_delivered) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SmallDocsE2E)
    ->ArgNames({"shards", "streams"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The observability tax (ISSUE 7 acceptance): BM_ServiceThroughput's
// shards:4/subs:256/streams:4 shape with stage-latency tracing on vs
// flagged off. Tracing costs a few steady_clock reads and relaxed
// histogram increments per document per shard; the acceptance bar is
// tracing:1 within 3% of tracing:0 on this axis. The bench-regression
// gate then keeps both rows honest against bench/baseline/.
void BM_MetricsOverhead(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  constexpr int kShards = 4;
  constexpr int kSubs = 256;
  constexpr int kStreams = 4;
  constexpr int kDocsPerIteration = 8;
  constexpr int kItemsPerDoc = 256;

  vitex::service::StreamServiceOptions options;
  options.shard_count = kShards;
  options.stream_count = kStreams;
  options.queue_capacity = 32;
  options.enable_tracing = tracing;
  vitex::service::StreamService service(options);
  for (int i = 0; i < kSubs; ++i) {
    auto id = service.Subscribe("//item" + std::to_string(i) +
                                "/val/text()");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  std::vector<std::string> docs;
  uint64_t doc_bytes = 0;
  for (int d = 0; d < kDocsPerIteration; ++d) {
    docs.push_back(MakeFeedDoc(kSubs, kItemsPerDoc, d));
    doc_bytes += docs.back().size();
  }
  vitex::Status status = service.Flush();
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }

  for (auto _ : state) {
    for (const std::string& doc : docs) {
      status = service.Publish(doc);
      if (!status.ok()) break;
    }
    if (status.ok()) status = service.Flush();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }

  vitex::service::ServiceStats stats = service.stats();
  state.SetBytesProcessed(state.iterations() * doc_bytes);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.events_replayed), benchmark::Counter::kIsRate);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kDocsPerIteration),
      benchmark::Counter::kIsRate);
  if (tracing) {
    // Sanity: the traced run really recorded every stage sample (one
    // parse per doc; the exposition itself is what /statsz serves).
    std::string statsz = service.StatszText();
    if (statsz.find("vitex_stage_e2e_nanos_count") == std::string::npos) {
      state.SkipWithError("tracing on but stage histograms missing");
      return;
    }
  }
}
BENCHMARK(BM_MetricsOverhead)
    ->ArgNames({"tracing"})
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Subscription lifecycle cost: how fast can subscribers churn while a
// stream is live? Measures Subscribe+Unsubscribe round trips (validation,
// shared-table compile, epoch-boundary install/remove).
void BM_SubscriptionChurn(benchmark::State& state) {
  vitex::service::StreamServiceOptions options;
  options.shard_count = 4;
  vitex::service::StreamService service(options);
  for (int i = 0; i < 64; ++i) {
    auto id = service.Subscribe("//item" + std::to_string(i) + "/@id");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  std::string doc = MakeFeedDoc(64, 64, 1);
  int churn_tag = 64;
  for (auto _ : state) {
    auto id =
        service.Subscribe("//item" + std::to_string(churn_tag) + "/@id");
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
    vitex::Status status = service.Publish(doc);
    if (status.ok()) status = service.Unsubscribe(id.value());
    if (status.ok()) status = service.Flush();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    ++churn_tag;
  }
  state.counters["docs"] = static_cast<double>(state.iterations());
}
BENCHMARK(BM_SubscriptionChurn)->Unit(benchmark::kMillisecond);

}  // namespace

VITEX_BENCH_MAIN("service")
