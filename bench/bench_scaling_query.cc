// Experiment E5 (paper §2 feature 1): processing time is polynomial (near
// linear) in the query size, at fixed data. Shape: time grows gently and
// smoothly with |Q| — no blowup.

#include <benchmark/benchmark.h>

#include <string>

#include "twigm/engine.h"
#include "workload/protein_generator.h"

namespace {

const std::string& Doc() {
  static std::string doc = [] {
    vitex::workload::ProteinOptions options;
    options.entries = 4000;
    return vitex::workload::GenerateProteinString(options).value();
  }();
  return doc;
}

// Queries of growing twig size over the protein schema.
std::string QueryOfSize(int variant) {
  switch (variant) {
    case 0:
      return "//ProteinEntry";  // |Q| = 1
    case 1:
      return "//ProteinEntry/@id";  // 2
    case 2:
      return "//ProteinEntry[reference]/@id";  // 3
    case 3:
      return "//ProteinEntry[reference][organism]/@id";  // 4
    case 4:
      return "//ProteinEntry[reference/refinfo][organism/source]/@id";  // 6
    case 5:
      return "//ProteinEntry[reference/refinfo/authors/author]"
             "[organism/source][protein/name]/@id";  // 9
    case 6:
      return "//ProteinEntry[reference/refinfo[authors/author][year]]"
             "[organism[source][common]][protein/classification]"
             "[summary/type]/@id";  // 13
    default:
      return "//ProteinEntry";
  }
}

void BM_QuerySizeScaling(benchmark::State& state) {
  std::string query = QueryOfSize(static_cast<int>(state.range(0)));
  const std::string& doc = Doc();
  size_t query_size = 0;
  uint64_t results_count = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(query, &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    query_size = engine->query().size();
    results_count = results.count();
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(query);
  state.counters["twig_nodes"] = static_cast<double>(query_size);
  state.counters["results"] = static_cast<double>(results_count);
}
BENCHMARK(BM_QuerySizeScaling)->DenseRange(0, 6);

// Long main paths (wildcard chains) at fixed data.
void BM_MainPathLength(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  std::string query;
  query += "//ProteinEntry";
  for (int i = 1; i < steps; ++i) query += "//*";
  const std::string& doc = Doc();
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(query, &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["steps"] = steps;
}
BENCHMARK(BM_MainPathLength)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
