// Experiment E3 (paper §1): TwigM's polynomial time vs the naive
// pattern-match enumeration's exponential time, as the query size grows on
// recursive data.
//
// Data: one spine of depth 18, every level marked. Query: the k-step chain
// //a[p]//a[p]//...//v. Naive instance count is C(depth, k)-shaped; TwigM
// work is linear in k. The paper's shape: the naive curve explodes past
// k≈4-6 while TwigM's grows gently.

#include <benchmark/benchmark.h>

#include <string>

#include "baseline/naive_matcher.h"
#include "twigm/engine.h"
#include "workload/recursive_generator.h"
#include "xml/sax_parser.h"

namespace {

const std::string& RecursiveDoc() {
  static std::string doc = [] {
    vitex::workload::RecursiveOptions options;
    options.depth = 18;
    return vitex::workload::GenerateRecursiveString(options).value();
  }();
  return doc;
}

void BM_TwigMChainQuery(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string query = vitex::workload::RecursiveChainQuery(k);
  const std::string& doc = RecursiveDoc();
  uint64_t peak_entries = 0;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(query, &results);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    vitex::Status s = engine->RunString(doc);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    peak_entries = engine->machine().stats().peak_stack_entries;
  }
  state.counters["k"] = k;
  state.counters["peak_entries"] = static_cast<double>(peak_entries);
}
BENCHMARK(BM_TwigMChainQuery)->DenseRange(1, 8);

void BM_NaiveChainQuery(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string query = vitex::workload::RecursiveChainQuery(k);
  const std::string& doc = RecursiveDoc();
  auto compiled = vitex::xpath::ParseAndCompile(query);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  uint64_t instances = 0;
  bool blew_budget = false;
  for (auto _ : state) {
    vitex::twigm::CountingResultHandler results;
    vitex::baseline::NaiveStreamMatcher naive(&compiled.value(), &results);
    vitex::Status s = vitex::xml::ParseString(doc, &naive);
    instances = naive.stats().instances_created;
    if (s.IsResourceExhausted()) {
      blew_budget = true;  // the expected exponential blowup
    } else if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
    }
  }
  state.counters["k"] = k;
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["blew_budget"] = blew_budget ? 1 : 0;
}
BENCHMARK(BM_NaiveChainQuery)->DenseRange(1, 8);

}  // namespace

BENCHMARK_MAIN();
