// Experiment E8 (paper §3, SAX module): throughput of the SAX substrate in
// isolation — the paper's 4.43 s component. Measured across the workload
// generators (different markup densities) and chunk sizes.

#include <benchmark/benchmark.h>

#include <string>

#include "workload/book_generator.h"
#include "workload/protein_generator.h"
#include "workload/recursive_generator.h"
#include "workload/xmark_generator.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace {

std::string MakeDoc(int which) {
  switch (which) {
    case 0: {  // protein: text-heavy
      vitex::workload::ProteinOptions options;
      options.entries = 4000;
      return vitex::workload::GenerateProteinString(options).value();
    }
    case 1: {  // xmark: attribute-heavy
      vitex::workload::XmarkOptions options;
      options.items_per_region = 200;
      return vitex::workload::GenerateXmarkString(options).value();
    }
    case 2: {  // book: markup-heavy
      vitex::workload::BookOptions options;
      options.chains = 2000;
      options.section_depth = 4;
      options.table_depth = 3;
      return vitex::workload::GenerateBookString(options).value();
    }
    default: {  // deep recursion
      vitex::workload::RecursiveOptions options;
      options.depth = 1000;
      options.width = 40;
      return vitex::workload::GenerateRecursiveString(options).value();
    }
  }
}

const char* DocName(int which) {
  static const char* kNames[] = {"protein", "xmark", "book", "recursive"};
  return kNames[which];
}

void BM_SaxThroughput(benchmark::State& state) {
  std::string doc = MakeDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    vitex::xml::ContentHandler discard;
    vitex::Status s = vitex::xml::ParseString(doc, &discard);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(DocName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SaxThroughput)->DenseRange(0, 3);

void BM_SaxChunked(benchmark::State& state) {
  static std::string doc = MakeDoc(0);
  size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    vitex::xml::ContentHandler discard;
    vitex::xml::SaxParser parser(&discard);
    vitex::Status s;
    for (size_t pos = 0; pos < doc.size() && s.ok(); pos += chunk) {
      s = parser.Feed(
          std::string_view(doc).substr(pos, std::min(chunk, doc.size() - pos)));
    }
    if (s.ok()) s = parser.Finish();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["chunk"] = static_cast<double>(chunk);
}
BENCHMARK(BM_SaxChunked)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_DomBuild(benchmark::State& state) {
  static std::string doc = MakeDoc(0);
  for (auto _ : state) {
    auto dom = vitex::xml::ParseIntoDom(doc);
    if (!dom.ok()) state.SkipWithError(dom.status().ToString().c_str());
    benchmark::DoNotOptimize(dom);
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_DomBuild);

}  // namespace

BENCHMARK_MAIN();
