// Experiment E8 (paper §3, SAX module): throughput of the SAX substrate in
// isolation — the paper's 4.43 s component. Measured across the workload
// generators (different markup densities) and chunk sizes, and across the
// scan-kernel tiers (xml/simd_scan.h): every throughput benchmark runs
// once per available scan mode, labelled "<doc>/<mode>", so the
// scalar-vs-SIMD ratio is pinned in the JSON trajectory that
// tools/bench_compare.py gates in CI.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_json.h"
#include "workload/book_generator.h"
#include "workload/protein_generator.h"
#include "workload/recursive_generator.h"
#include "workload/xmark_generator.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"
#include "xml/simd_scan.h"

namespace {

using vitex::xml::scan::ActiveScanMode;
using vitex::xml::scan::ForceScanMode;
using vitex::xml::scan::ResetScanModeFromEnvironment;
using vitex::xml::scan::ScanMode;
using vitex::xml::scan::ScanModeName;

// Markup-sparse, text-heavy document: long character-data runs between
// sparse tags, the shape where byte scanning (not per-event dispatch)
// dominates the parse. No entities, so the run is one FindMarkup sweep.
std::string MakeTextHeavyDoc(int sections, int run_bytes) {
  static const char kFiller[] =
      "the quick brown fox jumps over the lazy dog while streaming xpath "
      "matches twigs against an unbounded document feed ";
  std::string run;
  while (static_cast<int>(run.size()) < run_bytes) run += kFiller;
  run.resize(run_bytes);
  std::string doc = "<doc>";
  for (int i = 0; i < sections; ++i) {
    doc += "<section><p>";
    doc += run;
    doc += "</p></section>";
  }
  doc += "</doc>";
  return doc;
}

std::string MakeDoc(int which) {
  switch (which) {
    case 0: {  // protein: text-heavy
      vitex::workload::ProteinOptions options;
      options.entries = 4000;
      return vitex::workload::GenerateProteinString(options).value();
    }
    case 1: {  // xmark: attribute-heavy
      vitex::workload::XmarkOptions options;
      options.items_per_region = 200;
      return vitex::workload::GenerateXmarkString(options).value();
    }
    case 2: {  // book: markup-heavy
      vitex::workload::BookOptions options;
      options.chains = 2000;
      options.section_depth = 4;
      options.table_depth = 3;
      return vitex::workload::GenerateBookString(options).value();
    }
    case 3: {  // deep recursion
      vitex::workload::RecursiveOptions options;
      options.depth = 1000;
      options.width = 40;
      return vitex::workload::GenerateRecursiveString(options).value();
    }
    default:  // markup-sparse long text runs
      return MakeTextHeavyDoc(/*sections=*/512, /*run_bytes=*/4096);
  }
}

const char* DocName(int which) {
  static const char* kNames[] = {"protein", "xmark", "book", "recursive",
                                 "textheavy"};
  return kNames[which];
}

// Pins the requested scan mode for the duration of one benchmark run and
// restores the environment-resolved mode afterwards. mode_arg 0 keeps the
// auto-resolved tier (AVX2 on the CI runners), 1 forces scalar.
class ScopedScanMode {
 public:
  explicit ScopedScanMode(int64_t mode_arg) {
    if (mode_arg == 1) ForceScanMode(ScanMode::kScalar);
  }
  ~ScopedScanMode() { ResetScanModeFromEnvironment(); }
};

void BM_SaxThroughput(benchmark::State& state) {
  std::string doc = MakeDoc(static_cast<int>(state.range(0)));
  ScopedScanMode scoped(state.range(1));
  for (auto _ : state) {
    vitex::xml::ContentHandler discard;
    vitex::Status s = vitex::xml::ParseString(doc, &discard);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(std::string(DocName(static_cast<int>(state.range(0)))) +
                 "/" + std::string(ScanModeName(ActiveScanMode())));
}
BENCHMARK(BM_SaxThroughput)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->ArgNames({"doc", "forced_scalar"});

void BM_SaxChunked(benchmark::State& state) {
  static std::string doc = MakeDoc(0);
  size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    vitex::xml::ContentHandler discard;
    vitex::xml::SaxParser parser(&discard);
    vitex::Status s;
    for (size_t pos = 0; pos < doc.size() && s.ok(); pos += chunk) {
      s = parser.Feed(
          std::string_view(doc).substr(pos, std::min(chunk, doc.size() - pos)));
    }
    if (s.ok()) s = parser.Finish();
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.counters["chunk"] = static_cast<double>(chunk);
  state.SetLabel(std::string(ScanModeName(ActiveScanMode())));
}
BENCHMARK(BM_SaxChunked)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_DomBuild(benchmark::State& state) {
  static std::string doc = MakeDoc(0);
  for (auto _ : state) {
    auto dom = vitex::xml::ParseIntoDom(doc);
    if (!dom.ok()) state.SkipWithError(dom.status().ToString().c_str());
    benchmark::DoNotOptimize(dom);
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
  state.SetLabel(std::string(ScanModeName(ActiveScanMode())));
}
BENCHMARK(BM_DomBuild);

}  // namespace

VITEX_BENCH_MAIN("sax")
