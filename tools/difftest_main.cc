// difftest_main: long-running differential fuzzer over the five evaluation
// routes (DomEvaluator ground truth, TwigMachine, per-query
// MultiQueryEngine with decoys, StreamService replay across 1-4 shards ×
// 1-4 publisher streams (one published copy per stream), and the
// shared-plan MultiQueryEngine). Odd iterations draw SharedSkeletonBatch
// query families — literal/tag variants of one template — so the plan cache
// is hammered with the subscriber-population shape it hash-conses. Designed
// for overnight runs:
//
//   ./difftest_main --iterations 100000 --seed 1 --workload all
//       --repro-dir difftest_repros   (one command line)
//
// Every iteration draws one document from the selected workload generator
// and a batch of fuzzed queries from the matching tag alphabet, then
// cross-checks them. Divergences are printed and written as repro files
// (query.txt / document.xml / report.txt) into --repro-dir; the exit code
// is the number of divergent iterations (capped at 125). A failure
// reported as [books seed=S iter=I] replays with:
//
//   ./difftest_main --workload books --seed S --iterations I+1
//
// (iteration I of seed S is deterministic: the generator state depends
// only on the workload kind, seed and iteration index — not on which
// other workloads were selected).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "difftest/oracle.h"
#include "difftest/query_fuzzer.h"
#include "difftest/workload_corpus.h"
#include "xml/simd_scan.h"

namespace {

using vitex::Random;
using vitex::difftest::Oracle;
using vitex::difftest::OracleOptions;
using vitex::difftest::QueryFuzzer;
using vitex::difftest::WorkloadKind;

struct Args {
  uint64_t seed = 1;
  uint64_t iterations = 1000;
  std::string workload = "all";  // all|protein|books|xmark|recursive|random
  size_t batch = 4;
  size_t decoys = 2;
  size_t max_shards = 4;
  size_t max_streams = 4;
  size_t chunk_bytes = 0;
  std::string repro_dir = "difftest_repros";
  bool no_minimize = false;
  bool no_service = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--iterations N] [--workload all|protein|books|"
      "xmark|recursive|random]\n"
      "          [--batch N] [--decoys N] [--max-shards N] [--max-streams N]\n"
      "          [--chunk BYTES]\n"
      "          [--repro-dir DIR] [--no-minimize] [--no-service]\n",
      argv0);
  std::exit(2);
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      args.iterations = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      args.workload = next();
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      args.batch = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--decoys") == 0) {
      args.decoys = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-shards") == 0) {
      args.max_shards = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-streams") == 0) {
      args.max_streams = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--chunk") == 0) {
      args.chunk_bytes = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--repro-dir") == 0) {
      args.repro_dir = next();
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      args.no_minimize = true;
    } else if (std::strcmp(argv[i], "--no-service") == 0) {
      args.no_service = true;
    } else {
      Usage(argv[0]);
    }
  }
  if (args.batch == 0) args.batch = 1;
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  // The nightly CI sweep runs half its iterations under
  // VITEX_FORCE_SCALAR_SCAN=1; log which scan tier this run exercises so
  // divergence reports are attributable to a kernel path.
  std::fprintf(stderr, "scan mode: %s\n",
               std::string(vitex::xml::scan::ScanModeName(
                               vitex::xml::scan::ActiveScanMode()))
                   .c_str());

  std::vector<WorkloadKind> selected;
  if (args.workload == "all") {
    selected = vitex::difftest::AllWorkloads();
  } else {
    WorkloadKind kind;
    if (!vitex::difftest::WorkloadFromName(args.workload, &kind)) {
      Usage(argv[0]);
    }
    selected.push_back(kind);
  }

  OracleOptions oracle_options;
  oracle_options.max_shards = args.no_service ? 0 : args.max_shards;
  oracle_options.max_streams = args.max_streams;
  oracle_options.feed_chunk_bytes = args.chunk_bytes;
  oracle_options.minimize = !args.no_minimize;
  Oracle oracle(oracle_options);

  int divergent = 0;
  for (uint64_t iter = 0; iter < args.iterations; ++iter) {
    WorkloadKind kind = selected[iter % selected.size()];
    // Deterministic per (workload, seed, iteration) — NOT per selected-set
    // size — so a divergence reported as [books seed=S iter=I] under
    // --workload all replays exactly with --workload books --seed S and at
    // least I+1 iterations.
    Random rng(args.seed * 0x9e3779b97f4a7c15ull + iter * 2654435761ull +
               static_cast<uint64_t>(kind) * 0x517cc1b727220a95ull);
    QueryFuzzer fuzzer(vitex::difftest::WorkloadAlphabet(kind));
    std::string doc =
        vitex::difftest::GenerateWorkloadDocument(kind, args.seed + iter, &rng);

    std::vector<std::string> queries;
    if (iter % 2 == 1) {
      // Shared-skeleton family: the whole batch instantiates one template.
      queries = fuzzer.NextSharedBatch(static_cast<int>(args.batch), &rng);
    } else {
      for (size_t q = 0; q < args.batch; ++q) {
        queries.push_back(fuzzer.Next(&rng));
      }
    }
    std::vector<std::string> decoys;
    for (size_t q = 0; q < args.decoys; ++q) decoys.push_back(fuzzer.Next(&rng));
    if (args.decoys > 0) decoys.push_back("//*");  // recording broadcast decoy

    auto divergence = oracle.CheckBatch(queries, decoys, doc);
    if (divergence.has_value()) {
      ++divergent;
      std::fprintf(stderr, "[%s seed=%llu iter=%llu]\n%s\n",
                   std::string(vitex::difftest::WorkloadName(kind)).c_str(),
                   static_cast<unsigned long long>(args.seed),
                   static_cast<unsigned long long>(iter),
                   divergence->ToString().c_str());
      auto written = vitex::difftest::WriteReproFiles(
          *divergence, args.repro_dir, divergent);
      if (written.ok()) {
        std::fprintf(stderr, "repro written: %s\n", written.value().c_str());
      } else {
        std::fprintf(stderr, "repro write failed: %s\n",
                     written.status().ToString().c_str());
      }
    }
    if ((iter + 1) % 500 == 0) {
      std::fprintf(stderr, "... %llu/%llu iterations, %llu checks, %d divergent\n",
                   static_cast<unsigned long long>(iter + 1),
                   static_cast<unsigned long long>(args.iterations),
                   static_cast<unsigned long long>(oracle.checks_run()),
                   divergent);
    }
  }

  std::printf("%llu iterations, %llu (query, document) checks, %d divergent\n",
              static_cast<unsigned long long>(args.iterations),
              static_cast<unsigned long long>(oracle.checks_run()), divergent);
  return divergent > 125 ? 125 : divergent;
}
