#!/usr/bin/env python3
"""Repo-invariant linter: structural rules the compiler cannot check.

The build system and source tree carry a handful of load-bearing
conventions (DESIGN.md §11). Each is easy to break in a way that compiles
clean and passes every test on the machine that broke it:

  avx2-isolation      -mavx2 may be applied to exactly one translation
                      unit, src/xml/simd_scan_avx2.cc. Any other TU built
                      with it would emit AVX2 instructions outside the
                      cpuid-dispatch guard and SIGILL on baseline x86-64.
  ctest-timeout       every ctest target declares a TIMEOUT, so a wedged
                      test kills its own slot instead of hanging CI.
  relaxed-confinement std::memory_order_relaxed is confined to src/obs/
                      (the lock-free metrics core, designed for it) and to
                      files carrying an explicit `// lint: relaxed-ok(...)`
                      waiver naming why the relaxed ordering is sound.
  iostream-free-headers  src/ headers must not include <iostream>: it
                      injects a static initializer into every includer.
  bench-baseline-release  checked-in bench baselines must be stamped
                      vitex_build_type=Release; comparing a Release run
                      against a Debug baseline silently passes any gate.
  reset-ok            generation-stamped pools in src/twigm/ (slots_,
                      free_list_, recordings_, seen_, per-node stacks —
                      DESIGN.md §12) must never be .clear()ed: document
                      reset is a generation bump, and a clear() both
                      reintroduces a per-document O(n) walk and discards
                      the pooled capacity the zero-alloc contract depends
                      on. Lines that intentionally drop state carry a
                      `// lint: reset-ok(<why>)` waiver.

Run `tools/lint_invariants.py --root <repo>`; exit 0 when clean, 1 with
one `rule: path: message` line per violation. tests/tools/ has fixtures.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# CMake statement parsing (shared by the two build-system rules)
# ---------------------------------------------------------------------------


def strip_cmake_comments(text):
    """Removes `# ...` comments (CMake has no block comments we use)."""
    return re.sub(r"#[^\n]*", "", text)


def cmake_statements(text):
    """Yields (command_lower, argstring) for each `command(...)` statement.

    Statements are recovered by paren balancing so multi-line calls (the
    normal case for add_test / set_source_files_properties) come back as
    one unit.
    """
    text = strip_cmake_comments(text)
    for match in re.finditer(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(", text):
        depth = 1
        pos = match.end()
        while pos < len(text) and depth:
            if text[pos] == "(":
                depth += 1
            elif text[pos] == ")":
                depth -= 1
            pos += 1
        yield match.group(1).lower(), text[match.end() : pos - 1]


def expand_cmake_vars(argstring, variables):
    """Single-level ${VAR} expansion from set() definitions already seen."""
    return re.sub(
        r"\$\{([A-Za-z0-9_]+)\}",
        lambda m: variables.get(m.group(1), m.group(0)),
        argstring,
    )


def _generated(path):
    """True for build trees and VCS internals — not checked-in sources."""
    return any(
        part.startswith("build") or part in (".git", "CMakeFiles")
        for part in path.parts
    )


def cmake_files(root):
    for path in sorted(root.rglob("CMakeLists.txt")):
        if not _generated(path.relative_to(root)):
            yield path
    for path in sorted(root.rglob("*.cmake")):
        if not _generated(path.relative_to(root)):
            yield path


# ---------------------------------------------------------------------------
# Rules. Each returns a list of (rule, path, message) tuples.
# ---------------------------------------------------------------------------

AVX2_TU = "simd_scan_avx2.cc"


def check_avx2_isolation(root):
    """-mavx2 only in the probe and the dedicated TU's per-file property."""
    violations = []
    for path in cmake_files(root):
        for command, args in cmake_statements(path.read_text()):
            if "-mavx2" not in args:
                continue
            if command == "check_cxx_compiler_flag":
                continue  # the capability probe, compiles nothing we ship
            if command == "set_source_files_properties" and AVX2_TU in args:
                continue
            violations.append(
                (
                    "avx2-isolation",
                    path,
                    f"-mavx2 outside the per-file property of {AVX2_TU} "
                    f"(in {command}()); AVX2 code must stay behind the "
                    "cpuid dispatch boundary",
                )
            )
    return violations


def check_ctest_timeout(root):
    """Every add_test / gtest_discover_tests declares a TIMEOUT."""
    violations = []
    for path in cmake_files(root):
        variables = {}
        pending = {}  # test name -> first statement missing a timeout
        covered = set()
        for command, args in cmake_statements(path.read_text()):
            if command == "set":
                parts = args.split()
                if parts:
                    variables[parts[0]] = " ".join(parts[1:])
            elif command == "add_test":
                expanded = expand_cmake_vars(args, variables)
                name_match = re.search(r"\bNAME\s+(\S+)", expanded)
                name = name_match.group(1) if name_match else expanded.split()[0]
                pending.setdefault(name, path)
            elif command == "set_tests_properties":
                expanded = expand_cmake_vars(args, variables)
                if re.search(r"\bTIMEOUT\b", expanded):
                    covered.update(expanded.split())
            elif command == "gtest_discover_tests":
                expanded = expand_cmake_vars(args, variables)
                if not re.search(r"\bTIMEOUT\b", expanded):
                    violations.append(
                        (
                            "ctest-timeout",
                            path,
                            "gtest_discover_tests() without TIMEOUT in its "
                            "PROPERTIES; a hung test would stall CI",
                        )
                    )
        for name, stmt_path in pending.items():
            if name not in covered:
                violations.append(
                    (
                        "ctest-timeout",
                        stmt_path,
                        f"add_test(NAME {name}) has no "
                        "set_tests_properties(... TIMEOUT ...)",
                    )
                )
    return violations


RELAXED_WAIVER = re.compile(r"//\s*lint:\s*relaxed-ok\([^)\n]+\)")


def check_relaxed_confinement(root):
    """memory_order_relaxed only in src/obs/ or explicitly waived files."""
    violations = []
    src = root / "src"
    if not src.is_dir():
        return violations
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        text = path.read_text()
        if "memory_order_relaxed" not in text:
            continue
        rel = path.relative_to(root)
        if rel.parts[:2] == ("src", "obs"):
            continue
        if RELAXED_WAIVER.search(text):
            continue
        violations.append(
            (
                "relaxed-confinement",
                path,
                "memory_order_relaxed outside src/obs/ without a "
                "`// lint: relaxed-ok(<why it is sound>)` waiver",
            )
        )
    return violations


IOSTREAM_INCLUDE = re.compile(r"^\s*#\s*include\s*<iostream>", re.MULTILINE)


def check_iostream_free_headers(root):
    """src/ headers must not include <iostream>."""
    violations = []
    src = root / "src"
    if not src.is_dir():
        return violations
    for path in sorted(src.rglob("*.h")):
        if IOSTREAM_INCLUDE.search(path.read_text()):
            violations.append(
                (
                    "iostream-free-headers",
                    path,
                    "#include <iostream> in a src/ header drags a static "
                    "initializer into every includer",
                )
            )
    return violations


def check_bench_baseline_release(root):
    """Checked-in bench baselines were recorded from a Release build."""
    violations = []
    baseline_dir = root / "bench" / "baseline"
    if not baseline_dir.is_dir():
        return violations
    for path in sorted(baseline_dir.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            violations.append(
                ("bench-baseline-release", path, f"unparseable JSON: {err}")
            )
            continue
        build_type = (data.get("context") or {}).get("vitex_build_type")
        if build_type != "Release":
            violations.append(
                (
                    "bench-baseline-release",
                    path,
                    f"context.vitex_build_type is {build_type!r}, "
                    "baselines must be recorded from a Release build",
                )
            )
    return violations


RESET_WAIVER = re.compile(r"//\s*lint:\s*reset-ok\([^)\n]+\)")
# The generation-stamped pools of DESIGN.md §12. `stack` covers the
# MachineNode per-node entry stacks (`node.stack`), whose live prefix is
# tracked by stack_size/stack_gen rather than the vector's own size.
STAMPED_CLEAR = re.compile(
    r"\b(?:slots_|free_list_|recordings_|seen_|stack)\s*\.\s*clear\s*\("
)


def check_reset_ok(root):
    """Generation-stamped containers in src/twigm/ are never clear()ed."""
    violations = []
    twigm = root / "src" / "twigm"
    if not twigm.is_dir():
        return violations
    for path in sorted(twigm.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = STAMPED_CLEAR.search(line)
            if match is None or RESET_WAIVER.search(line):
                continue
            violations.append(
                (
                    "reset-ok",
                    path,
                    f"line {lineno}: .clear() on generation-stamped "
                    f"container `{match.group(0).split('.')[0].strip()}`; "
                    "reset is a generation bump (DESIGN.md §12) — add a "
                    "`// lint: reset-ok(<why>)` waiver if the state drop "
                    "is intentional",
                )
            )
    return violations


RULES = [
    check_avx2_isolation,
    check_ctest_timeout,
    check_relaxed_confinement,
    check_iostream_free_headers,
    check_bench_baseline_release,
    check_reset_ok,
]


def run(root):
    violations = []
    for rule in RULES:
        violations.extend(rule(root))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: this checkout)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    violations = run(root)
    for rule, path, message in violations:
        try:
            shown = path.relative_to(root)
        except ValueError:
            shown = path
        print(f"{rule}: {shown}: {message}")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
