#!/usr/bin/env bash
# clang-tidy driver for the static-analysis gate (DESIGN.md §11).
#
# Runs the curated .clang-tidy check set over the library sources using
# the compile database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS
# is always ON). Findings are errors: the gate passes only at zero.
#
#   tools/run_clang_tidy.sh [-p <build dir>] [--diff [<base ref>]] [files...]
#
#   -p <dir>     build directory holding compile_commands.json
#                (default: build)
#   --diff [ref] lint only files changed relative to <ref> (default:
#                origin/main, falling back to HEAD~1) — the fast local
#                loop. CI lints the full tree.
#   files...     explicit files to lint (overrides both modes)
#
# Only .cc files under src/ are linted (headers are covered through their
# includers via HeaderFilterRegex). Files outside the compile database —
# e.g. the negative-compile TUs in tests/analysis/ — are skipped.

set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
diff_mode=0
diff_base=""
explicit_files=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    -p)
      build_dir="$2"
      shift 2
      ;;
    --diff)
      diff_mode=1
      shift
      if [[ $# -gt 0 && "$1" != -* ]]; then
        diff_base="$1"
        shift
      fi
      ;;
    -h|--help)
      sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      explicit_files+=("$1")
      shift
      ;;
  esac
done

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null; then
  echo "error: $tidy not found (set CLANG_TIDY to override)" >&2
  exit 2
fi

declare -a files
if [[ ${#explicit_files[@]} -gt 0 ]]; then
  files=("${explicit_files[@]}")
elif [[ $diff_mode -eq 1 ]]; then
  if [[ -z "$diff_base" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      diff_base=origin/main
    else
      diff_base=HEAD~1
    fi
  fi
  mapfile -t files < <(git diff --name-only --diff-filter=d "$diff_base" -- \
                         'src/*.cc' 'src/*/*.cc')
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

# Keep only files the compile database knows how to build.
declare -a lintable
for f in "${files[@]:-}"; do
  [[ -z "$f" ]] && continue
  if grep -q "$(basename "$f")" "$build_dir/compile_commands.json"; then
    lintable+=("$f")
  else
    echo "skip (not in compile db): $f" >&2
  fi
done

if [[ ${#lintable[@]:-0} -eq 0 ]]; then
  echo "run_clang_tidy: nothing to lint"
  exit 0
fi

echo "run_clang_tidy: ${#lintable[@]} file(s), build dir $build_dir"
jobs="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${lintable[@]}" \
  | xargs -P "$jobs" -n 1 "$tidy" -p "$build_dir" --quiet
echo "run_clang_tidy: clean"
