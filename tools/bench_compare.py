#!/usr/bin/env python3
"""Bench-regression gate: diff BENCH_*.json runs against a baseline.

Compares the Google-Benchmark JSON files produced by the CI smoke run
(VITEX_BENCH_JSON=dir ./bench_*) against the checked-in snapshot under
bench/baseline/ and fails when any benchmark's throughput regressed by
more than --threshold (default 25%).

Metric selection per benchmark, in order of preference:
  bytes_per_second > items_per_second > a *_per_sec counter > 1/real_time.
All are "higher is better". The SAME metric key must resolve on both
sides; a mismatch (e.g. a benchmark gained SetBytesProcessed after the
snapshot) fails the gate with a prompt to refresh — silently comparing
two different metrics would un-gate the benchmark forever.

Machine drift: the baseline is a snapshot from one machine class, while
CI runners vary in CPU model and noisy neighbors. By default the gate
therefore normalizes by the MEDIAN current/baseline ratio across all
compared benchmarks — a uniform slowdown (slower runner) shifts the
median and cancels out; a real regression moves one benchmark against
the fleet and still fires. The raw global factor is printed so a
genuine across-the-board regression is visible in the log; pass
--no-normalize for raw absolute comparison (sensible when baseline and
current come from the same machine).

Build types: the JSON context block records library_build_type; a
baseline recorded from a Debug build compared against a Release run (or
vice versa) prints a loud warning — such ratios are dominated by the
compiler, not the code. Record baselines with tools/bench_record.sh,
which forces a Release build.

Usage:
  python3 tools/bench_compare.py --baseline bench/baseline --current bench_out
  python3 tools/bench_compare.py ... --threshold 0.4   # looser gate
  python3 tools/bench_compare.py ... --update          # refresh baseline

New benchmarks (in current, not in baseline) are listed as "new" and
ignored until committed with --update. A baselined benchmark MISSING from
the current run, or whose metric key no longer resolves the same way
(METRIC-DRIFT), is a failure in its own class: silently dropping it would
un-gate that benchmark forever. Failure messages always carry the
baseline and current values, not just the ratio.

Exit codes:
  0  gate passed
  1  throughput regression(s) beyond --threshold
  2  usage / IO problems (missing dirs, nothing compared)
  3  baselined benchmark or metric missing from the current run
     (renames and intentional removals need a --update refresh);
     when regressions are ALSO present, 1 wins — it is the louder signal.

After intentional perf changes — or when CI runner hardware shifts —
refresh the snapshot with --update and commit the result.
"""

import argparse
import json
import os
import statistics
import sys

PREFERRED_RATE_KEYS = ("bytes_per_second", "items_per_second")


def load_benchmarks(path):
    """Returns ({benchmark name: metrics dict}, build_type) for one
    BENCH_*.json file. build_type prefers the vitex_build_type custom
    context (the CMAKE_BUILD_TYPE the bench binary was compiled under,
    stamped by bench/bench_json.h) and falls back to the library's own
    library_build_type; None when absent (very old files)."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count; smoke
        # runs emit plain iterations only, but be safe.
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    context = data.get("context", {})
    return out, context.get("vitex_build_type",
                            context.get("library_build_type"))


def build_class(build_type):
    """Collapses build-type strings into comparable classes: every
    optimized flavor (Release, RelWithDebInfo, MinSizeRel) performs in the
    same ballpark; Debug (or unknown) does not."""
    if build_type and build_type.lower() in (
            "release", "relwithdebinfo", "minsizerel"):
        return "optimized"
    return "unoptimized-or-unknown"


def metric_key_of(bench):
    """Picks the preferred throughput metric key for one benchmark row."""
    for key in PREFERRED_RATE_KEYS:
        if key in bench and bench[key]:
            return key
    for key, value in sorted(bench.items()):
        if key.endswith("_per_sec") and isinstance(value, (int, float)) and value:
            return key
    if bench.get("real_time"):
        return "1/real_time"
    return None


def metric_value(bench, key):
    """Higher-is-better value of `key` on `bench`, or None if absent."""
    if key == "1/real_time":
        real = bench.get("real_time")
        # Same key implies same time_unit only if the benchmark didn't
        # change units; treat a unit mismatch like a metric mismatch.
        return 1.0 / float(real) if real else None
    value = bench.get(key)
    return float(value) if value else None


def collect_pairs(baseline, current, fname):
    """Returns (rows, pairs, missing): display rows, comparable
    (row_index, ratio, key, base_value, cur_value) pairs, and
    missing-metric messages (baselined benchmark absent from the current
    run, or its metric key drifted)."""
    rows, pairs, missing = [], [], []
    for bench_name in sorted(set(baseline) | set(current)):
        if bench_name not in current:
            base_row = baseline[bench_name]
            key = metric_key_of(base_row)
            base_value = metric_value(base_row, key) if key else None
            baseline_text = (f"baseline {key}={base_value:.3g}"
                             if base_value else "no baseline metric")
            rows.append([bench_name, "MISSING", key or "", ""])
            missing.append(
                f"{fname}: {bench_name} is baselined ({baseline_text}) but "
                f"absent from the current run — renamed or dropped? refresh "
                f"with --update if intentional"
            )
            continue
        if bench_name not in baseline:
            rows.append([bench_name, "new", "", ""])
            continue
        base_row, cur_row = baseline[bench_name], current[bench_name]
        key = metric_key_of(base_row)
        if key is None:
            rows.append([bench_name, "no-metric", "", ""])
            continue
        cur_key = metric_key_of(cur_row)
        if cur_key != key or (
            key == "1/real_time"
            and base_row.get("time_unit") != cur_row.get("time_unit")
        ):
            base_value = metric_value(base_row, key)
            cur_value = metric_value(cur_row, cur_key) if cur_key else None
            rows.append([bench_name, "METRIC-DRIFT", key, ""])
            missing.append(
                f"{fname}: {bench_name} baseline metric "
                f"'{key}/{base_row.get('time_unit')}'="
                f"{base_value if base_value is None else format(base_value, '.3g')}"
                f" vs current '{cur_key}/{cur_row.get('time_unit')}'="
                f"{cur_value if cur_value is None else format(cur_value, '.3g')}"
                f" — refresh the baseline with --update"
            )
            continue
        base_value = metric_value(base_row, key)
        cur_value = metric_value(cur_row, key)
        if not base_value or not cur_value:
            rows.append([bench_name, "no-metric", key, ""])
            continue
        pairs.append((len(rows), cur_value / base_value, key,
                      base_value, cur_value))
        rows.append([bench_name, "?", key, ""])
    return rows, pairs, missing


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory of checked-in BENCH_*.json files")
    parser.add_argument("--current", default="bench_out",
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional throughput drop that fails the "
                             "gate (default 0.25 = 25%%)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw values instead of dividing out "
                             "the median machine-drift factor")
    parser.add_argument("--update", action="store_true",
                        help="copy current JSONs over the baseline instead "
                             "of comparing")
    args = parser.parse_args()

    if not os.path.isdir(args.current):
        print(f"bench_compare: current dir '{args.current}' missing",
              file=sys.stderr)
        return 2

    current_files = sorted(
        f for f in os.listdir(args.current)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not current_files:
        print(f"bench_compare: no BENCH_*.json under '{args.current}'",
              file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for fname in current_files:
            with open(os.path.join(args.current, fname), "rb") as src:
                payload = src.read()
            with open(os.path.join(args.baseline, fname), "wb") as dst:
                dst.write(payload)
            print(f"baseline updated: {os.path.join(args.baseline, fname)}")
        return 0

    if not os.path.isdir(args.baseline):
        print(f"bench_compare: baseline dir '{args.baseline}' missing "
              f"(run with --update to create it)", file=sys.stderr)
        return 2

    # Pass 1: collect every comparable (benchmark, ratio) across all files
    # so the machine-drift factor is estimated over the whole fleet.
    per_file = []
    all_ratios = []
    all_missing = []
    for fname in current_files:
        base_path = os.path.join(args.baseline, fname)
        if not os.path.exists(base_path):
            per_file.append((fname, None, None))
            continue
        baseline, base_build = load_benchmarks(base_path)
        current, cur_build = load_benchmarks(os.path.join(args.current, fname))
        if build_class(base_build) != build_class(cur_build):
            # Debug-vs-optimized throughput differs by integer factors that
            # normalization can't honestly absorb; the comparison is noise.
            # Warn loudly rather than fail: --update runs hit this once by
            # design when upgrading an old baseline.
            print(f"WARNING: [{fname}] build-type mismatch — baseline "
                  f"'{base_build}' vs current '{cur_build}'. Ratios below "
                  f"are not meaningful; re-record the baseline with "
                  f"tools/bench_record.sh (forces Release).",
                  file=sys.stderr)
        rows, pairs, missing = collect_pairs(baseline, current, fname)
        all_missing.extend(missing)
        all_ratios.extend(ratio for _, ratio, _, _, _ in pairs)
        per_file.append((fname, rows, pairs))

    drift_factor = 1.0
    if not args.no_normalize and all_ratios:
        drift_factor = statistics.median(all_ratios)
        print(f"machine-drift factor (median current/baseline ratio over "
              f"{len(all_ratios)} benchmarks): {drift_factor:.2f}")
        if not 0.3 <= drift_factor <= 3.0:
            print("  note: factor far from 1.0 — the committed baseline "
                  "was likely recorded on a very different machine class; "
                  "consider refreshing with --update", file=sys.stderr)

    # Pass 2: judge each benchmark against the drift-normalized baseline.
    regressions = []
    compared = 0
    for fname, rows, pairs in per_file:
        if rows is None:
            print(f"[{fname}] no baseline — skipped (commit one with "
                  f"--update to gate it)")
            continue
        compared += 1
        for row_index, ratio, key, base_value, cur_value in pairs:
            adjusted = ratio / drift_factor
            rows[row_index][3] = f"{adjusted:.2%}"
            if adjusted < 1.0 - args.threshold:
                rows[row_index][1] = "REGRESSION"
                regressions.append(
                    f"{fname}: {rows[row_index][0]} {key} {base_value:.3g} "
                    f"-> {cur_value:.3g} ({adjusted:.2%} of baseline after "
                    f"drift normalization)"
                )
            else:
                rows[row_index][1] = "ok"
        print(f"[{fname}]")
        for bench_name, status, metric, ratio_text in rows:
            detail = f" {metric} {ratio_text}" if metric else ""
            print(f"  {status:>12}  {bench_name}{detail}")

    if compared == 0:
        print("bench_compare: nothing compared (no overlapping files)",
              file=sys.stderr)
        return 2
    if regressions or all_missing:
        print(f"\n{len(regressions)} throughput regression(s) beyond "
              f"{args.threshold:.0%}, {len(all_missing)} missing/drifted "
              f"metric(s):", file=sys.stderr)
        for line in regressions + all_missing:
            print(f"  {line}", file=sys.stderr)
        # Regression (1) outranks missing-metric (3) when both are present.
        return 1 if regressions else 3
    print(f"\nbench gate OK: {compared} file(s), no regression beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
