#!/usr/bin/env bash
# Records the bench/baseline/BENCH_*.json snapshot the CI bench-regression
# gate compares against.
#
# Always configures a dedicated Release build (build-bench/): baselines
# recorded from Debug or ad-hoc trees made the gate compare compiler
# flags, not code. tools/bench_compare.py cross-checks the build type
# stamped into each JSON (context.vitex_build_type) and warns on
# mismatches; this script is the supported way to refresh the snapshot.
#
# The filters below mirror the CI tier-1 "Benchmark smoke" step exactly —
# the gate only compares benchmark names present on BOTH sides, so the
# baseline must be recorded with the same filters CI runs.
#
# Usage:
#   tools/bench_record.sh            # record into bench/baseline/
#   tools/bench_record.sh --dry-run  # run + compare only, no update
#   BENCH_MIN_TIME=0.5 tools/bench_record.sh   # steadier numbers

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT_DIR=${OUT_DIR:-bench_out}
MIN_TIME=${BENCH_MIN_TIME:-0.05}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DVITEX_BUILD_TESTS=OFF -DVITEX_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j --target \
  bench_multi_query bench_protein_e2e bench_service bench_difftest bench_sax \
  bench_net

mkdir -p "$OUT_DIR"
# Keep these invocations in lockstep with .github/workflows/ci.yml
# ("Benchmark smoke" step in the tier1 job).
VITEX_BENCH_JSON="$OUT_DIR" "$BUILD_DIR"/bench_multi_query \
  --benchmark_filter='DisjointTags|SharedSkeletons' \
  --benchmark_min_time="$MIN_TIME"
VITEX_BENCH_JSON="$OUT_DIR" "$BUILD_DIR"/bench_protein_e2e \
  --benchmark_filter='BM_ProteinViteX/1000$' --benchmark_min_time="$MIN_TIME"
VITEX_BENCH_JSON="$OUT_DIR" "$BUILD_DIR"/bench_service \
  --benchmark_filter='shards:[148]/subs:256|BM_MetricsOverhead|BM_SmallDocsE2E' \
  --benchmark_min_time="$MIN_TIME"
VITEX_BENCH_JSON="$OUT_DIR" "$BUILD_DIR"/bench_difftest \
  --benchmark_filter='service:0' --benchmark_min_time="$MIN_TIME"
VITEX_BENCH_JSON="$OUT_DIR" "$BUILD_DIR"/bench_sax \
  --benchmark_filter='BM_SaxThroughput' --benchmark_min_time="$MIN_TIME"
VITEX_BENCH_JSON="$OUT_DIR" "$BUILD_DIR"/bench_net \
  --benchmark_min_time="$MIN_TIME"

if [[ "${1:-}" == "--dry-run" ]]; then
  python3 tools/bench_compare.py --baseline bench/baseline \
    --current "$OUT_DIR" || true
else
  python3 tools/bench_compare.py --current "$OUT_DIR" --update
  echo "baseline refreshed from a Release build; review and commit" \
       "bench/baseline/"
fi
