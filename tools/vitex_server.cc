// vitex_server: the ViteX TCP front end as a standalone process
// (DESIGN.md §13).
//
// Runs an in-process vitex::Service and serves the framed wire protocol
// (net/protocol.h) plus HTTP GET /statsz on one port:
//
//   ./vitex_server [--port N] [--shards N] [--streams N] [--queue N]
//                  [--auth TOKEN] [--outbuf BYTES] [--policy disconnect|drop]
//                  [--duration SECONDS]
//
// With --port 0 (default) the kernel picks a port, printed on stdout as
//     LISTENING <port>
// so scripts (and the load driver's --connect mode) can parse it. The
// process runs until SIGINT/SIGTERM, or --duration seconds if given.
//
// Scrape while it runs:   curl http://127.0.0.1:<port>/statsz

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/server.h"
#include "service/vitex.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  vitex::ServiceOptions service_options;
  vitex::net::ServerOptions server_options;
  int duration_s = 0;  // 0 = run until signaled

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      server_options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--shards") {
      service_options.shard_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--streams") {
      service_options.stream_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--queue") {
      service_options.queue_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--auth") {
      server_options.auth_token = next();
    } else if (arg == "--outbuf") {
      server_options.max_outbuf_bytes = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--policy") {
      std::string policy = next();
      if (policy == "disconnect") {
        server_options.slow_consumer_policy =
            vitex::net::SlowConsumerPolicy::kDisconnect;
      } else if (policy == "drop") {
        server_options.slow_consumer_policy =
            vitex::net::SlowConsumerPolicy::kDropMatches;
      } else {
        std::fprintf(stderr, "--policy must be disconnect or drop\n");
        return 2;
      }
    } else if (arg == "--duration") {
      duration_s = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  vitex::Service service(service_options);
  auto server = vitex::net::Server::Start(&service, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("LISTENING %u\n", server.value()->port());
  std::printf("vitex_server: %zu shard(s), %zu stream(s); "
              "scrape http://%s:%u/statsz\n",
              service.shard_count(), service.stream_count(),
              server_options.bind_address.c_str(), server.value()->port());
  std::fflush(stdout);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(duration_s);
  while (!g_stop.load()) {
    if (duration_s > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  vitex::net::NetStatsSnapshot net = server.value()->stats();
  vitex::Status stopped = server.value()->Stop();
  std::printf("vitex_server: stopped (%s); %llu conns accepted, "
              "%llu evicted, %llu matches sent, %llu dropped\n",
              stopped.ToString().c_str(),
              static_cast<unsigned long long>(net.connections_accepted),
              static_cast<unsigned long long>(net.connections_evicted),
              static_cast<unsigned long long>(net.matches_sent),
              static_cast<unsigned long long>(net.matches_dropped));
  return 0;
}
