// net_load_driver: loopback load test for the ViteX TCP serving surface
// (DESIGN.md §13) with a built-in correctness oracle.
//
// The driver runs everything in one process: a vitex::Service, a
// net::Server on an ephemeral port, publisher connections pushing
// documents, and a fleet of subscriber connections multiplexed over one
// epoll loop — thousands to tens of thousands of concurrent sessions on
// a single box.
//
//   ./net_load_driver [--subscribers N] [--subs-per-conn K] [--topics T]
//                     [--documents D] [--duration SECONDS] [--publishers P]
//                     [--shards N] [--streams N] [--churn-percent PCT]
//                     [--stalled K] [--outbuf BYTES]
//                     [--policy disconnect|drop]
//
// --subscribers counts standing SUBSCRIPTIONS; --subs-per-conn packs K of
// them onto each session (the protocol multiplexes subscriptions per
// connection), so e.g. --subscribers 50000 --subs-per-conn 8 is 50k
// concurrent subscribers over 6250 sockets — past what one process could
// address with a socket per subscriber under common fd limits.
//
// Correctness (the differential check): every published document carries
// one uniquely doc-stamped text fragment per topic, and one PULL-mode
// oracle subscription per topic — registered on the same Service, before
// any wire subscriber — records the ground-truth delivery list. At the
// end, each healthy wire subscriber's received fragments are compared
// against the oracle:
//
//   * never-churned subscribers must match the oracle EXACTLY (no lost,
//     no duplicated MATCH frame);
//   * churned subscribers (their session was closed and re-created mid
//     stream) must match an exact SUFFIX of the oracle list when
//     --streams 1 (per-subscription delivery order is publish order), and
//     a duplicate-free subset otherwise;
//   * stalled subscribers (subscribe, then never read) must be EVICTED
//     under the disconnect policy — their BYE must say so — while every
//     healthy subscriber above still verifies, proving one dead reader
//     cannot stall ingest or corrupt anyone else's stream.
//
// Exit status 0 = all checks passed. The summary includes the server's
// own /statsz counters fetched OVER THE WIRE (STATS frame), so the run
// also exercises the observability path end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if !defined(__linux__)
int main() {
  std::fprintf(stderr, "net_load_driver requires linux (epoll)\n");
  return 2;
}
#else  // defined(__linux__)

#include <sys/epoll.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/vitex.h"

namespace {

using Clock = std::chrono::steady_clock;
using vitex::net::Client;
using vitex::net::ClientOptions;
using vitex::net::Match;

struct Config {
  int subscribers = 1000;   // standing subscriptions, not sockets
  int subs_per_conn = 1;    // subscriptions multiplexed per session
  int topics = 64;
  int documents = 300;     // ignored when duration_s > 0
  int duration_s = 0;      // publish until deadline instead of doc count
  int publishers = 2;
  size_t shards = 2;
  size_t streams = 1;
  int churn_percent = 10;  // % of subscribers that churn once mid-run
  int stalled = 2;
  // Small enough that the default run's stalled readers overflow it (the
  // eviction path is part of every run, not a special mode).
  size_t outbuf_bytes = 64 * 1024;
  vitex::net::SlowConsumerPolicy policy =
      vitex::net::SlowConsumerPolicy::kDisconnect;
};

// One wire session (current incarnation) carrying one or more
// subscriptions; the parallel vectors are indexed by local subscription.
struct Slot {
  std::unique_ptr<Client> client;
  std::vector<int> topics;       // topic per local subscription
  std::vector<uint64_t> sub_ids; // server-assigned id per local subscription
  std::vector<std::vector<std::string>> fragments;  // received, per sub
  bool churns = false;     // scheduled to churn once
  bool churned = false;    // has churned (current incarnation is 2nd)
  bool dead = false;       // connection failed / closed
  std::string death_note;
};

std::string Stamp(int doc, int topic) {
  return "d" + std::to_string(doc) + ".t" + std::to_string(topic);
}

// One document: every topic appears once, uniquely stamped, so each doc
// produces exactly one MATCH per standing subscription.
std::string MakeDocument(int doc, int topics) {
  std::string out = "<doc>";
  for (int t = 0; t < topics; ++t) {
    out += "<topic" + std::to_string(t) + "><m>" + Stamp(doc, t) +
           "</m></topic" + std::to_string(t) + ">";
  }
  out += "</doc>";
  return out;
}

std::string TopicXPath(int topic) {
  return "//topic" + std::to_string(topic) + "/m/text()";
}

void RaiseFdLimit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

// Drains every MATCH the socket has ready right now into the slot.
// Returns false when the connection died (slot marked accordingly).
bool DrainSlot(Slot* slot) {
  while (true) {
    vitex::Result<std::optional<Match>> match = slot->client->PollMatch(0);
    if (!match.ok()) {
      slot->dead = true;
      slot->death_note = match.status().message();
      return false;
    }
    if (!match->has_value()) return true;
    // A session carries few subscriptions; a linear id scan beats a map.
    size_t j = 0;
    while (j < slot->sub_ids.size() &&
           slot->sub_ids[j] != (*match)->subscription_id) {
      ++j;
    }
    if (j == slot->sub_ids.size()) {
      slot->dead = true;
      slot->death_note = "MATCH for a subscription id this session never made";
      return false;
    }
    slot->fragments[j].push_back(std::move((*match)->fragment));
  }
}

size_t TotalFragments(const Slot& slot) {
  size_t n = 0;
  for (const auto& f : slot.fragments) n += f.size();
  return n;
}

struct Failure {
  int slot = -1;
  std::string what;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--subscribers") cfg.subscribers = std::atoi(next());
    else if (arg == "--subs-per-conn")
      cfg.subs_per_conn = std::max(1, std::atoi(next()));
    else if (arg == "--topics") cfg.topics = std::atoi(next());
    else if (arg == "--documents") cfg.documents = std::atoi(next());
    else if (arg == "--duration") cfg.duration_s = std::atoi(next());
    else if (arg == "--publishers") cfg.publishers = std::atoi(next());
    else if (arg == "--shards") cfg.shards = std::strtoul(next(), nullptr, 10);
    else if (arg == "--streams")
      cfg.streams = std::strtoul(next(), nullptr, 10);
    else if (arg == "--churn-percent") cfg.churn_percent = std::atoi(next());
    else if (arg == "--stalled") cfg.stalled = std::atoi(next());
    else if (arg == "--outbuf")
      cfg.outbuf_bytes = std::strtoul(next(), nullptr, 10);
    else if (arg == "--policy") {
      std::string p = next();
      cfg.policy = p == "drop" ? vitex::net::SlowConsumerPolicy::kDropMatches
                               : vitex::net::SlowConsumerPolicy::kDisconnect;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  cfg.topics = std::max(1, std::min(cfg.topics, cfg.subscribers));
  RaiseFdLimit();

  // --- service + server + oracle -----------------------------------------
  vitex::ServiceOptions service_options;
  service_options.shard_count = cfg.shards;
  service_options.stream_count = cfg.streams;
  vitex::Service service(service_options);

  vitex::net::ServerOptions server_options;
  server_options.max_outbuf_bytes = cfg.outbuf_bytes;
  server_options.slow_consumer_policy = cfg.policy;
  // Bound the kernel's share of each connection's buffering so the
  // outbuf cap (not TCP autotuning) decides when a reader is stalled.
  server_options.so_sndbuf = 32 * 1024;
  auto started = vitex::net::Server::Start(&service, server_options);
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  vitex::net::Server* server = started.value().get();
  const uint16_t port = server->port();

  std::vector<vitex::Subscription> oracle;
  oracle.reserve(static_cast<size_t>(cfg.topics));
  for (int t = 0; t < cfg.topics; ++t) {
    auto sub = service.Subscribe(TopicXPath(t));
    if (!sub.ok()) {
      std::fprintf(stderr, "oracle subscribe: %s\n",
                   sub.status().ToString().c_str());
      return 1;
    }
    oracle.push_back(std::move(sub).value());
  }

  // --- subscriber fleet ----------------------------------------------------
  const int conns =
      (cfg.subscribers + cfg.subs_per_conn - 1) / cfg.subs_per_conn;
  std::printf("net_load_driver: %d subscribers over %d connections "
              "(%d topics), %d stalled, churn %d%%, port %u\n",
              cfg.subscribers, conns, cfg.topics, cfg.stalled,
              cfg.churn_percent, port);
  std::fflush(stdout);

  ClientOptions client_options;
  std::vector<Slot> slots(static_cast<size_t>(conns));
  int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    std::perror("epoll_create1");
    return 1;
  }
  auto connect_slot = [&](int index) -> bool {
    Slot& slot = slots[static_cast<size_t>(index)];
    auto client = Client::Connect("127.0.0.1", port, client_options);
    if (!client.ok()) {
      std::fprintf(stderr, "subscriber %d connect: %s\n", index,
                   client.status().ToString().c_str());
      return false;
    }
    slot.client = std::move(client).value();
    slot.sub_ids.clear();
    for (int topic : slot.topics) {
      auto sub = slot.client->Subscribe(TopicXPath(topic));
      if (!sub.ok()) {
        std::fprintf(stderr, "subscriber %d subscribe: %s\n", index,
                     sub.status().ToString().c_str());
        return false;
      }
      slot.sub_ids.push_back(sub.value());
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<uint32_t>(index);
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, slot.client->fd(), &ev) != 0) {
      std::perror("epoll_ctl(subscriber)");
      return false;
    }
    return true;
  };
  int assigned = 0;
  for (int s = 0; s < conns; ++s) {
    Slot& slot = slots[static_cast<size_t>(s)];
    const int k = std::min(cfg.subs_per_conn, cfg.subscribers - assigned);
    for (int j = 0; j < k; ++j) slot.topics.push_back((assigned + j) % cfg.topics);
    slot.fragments.resize(static_cast<size_t>(k));
    assigned += k;
    // A fixed sample of sessions churns once, spread across the run.
    slot.churns = cfg.churn_percent > 0 && (s % 100) < cfg.churn_percent;
    if (!connect_slot(s)) return 1;
    if (s % 1000 == 999) {
      std::printf("  ... %d connections up (%d subscribers)\n", s + 1,
                  assigned);
      std::fflush(stdout);
    }
  }

  // Stalled readers: subscribe to EVERY topic to maximize pressure, then
  // never read. Under the disconnect policy the server must evict them.
  // A small rcvbuf on their side caps what TCP autotuning can absorb:
  // pending volume lands in the server's outbuf, so the cap — not the
  // publish rate — decides eviction even at low per-reader throughput.
  ClientOptions stalled_options = client_options;
  stalled_options.so_rcvbuf = 16 * 1024;
  std::vector<std::unique_ptr<Client>> stalled;
  for (int k = 0; k < cfg.stalled; ++k) {
    auto client = Client::Connect("127.0.0.1", port, stalled_options);
    if (!client.ok()) {
      std::fprintf(stderr, "stalled %d connect: %s\n", k,
                   client.status().ToString().c_str());
      return 1;
    }
    for (int t = 0; t < cfg.topics; ++t) {
      auto sub = client.value()->Subscribe(TopicXPath(t));
      if (!sub.ok()) {
        std::fprintf(stderr, "stalled %d subscribe: %s\n", k,
                     sub.status().ToString().c_str());
        return 1;
      }
    }
    stalled.push_back(std::move(client).value());
  }

  // --- publishers ----------------------------------------------------------
  std::atomic<int> docs_published{0};
  std::atomic<bool> publish_failed{false};
  const Clock::time_point publish_deadline =
      Clock::now() + std::chrono::seconds(cfg.duration_s);
  std::vector<std::thread> publishers;
  const Clock::time_point start = Clock::now();
  for (int p = 0; p < cfg.publishers; ++p) {
    publishers.emplace_back([&, p] {
      auto client = Client::Connect("127.0.0.1", port, client_options);
      if (!client.ok()) {
        publish_failed.store(true);
        return;
      }
      for (int doc = p;; doc += cfg.publishers) {
        if (cfg.duration_s > 0) {
          if (Clock::now() >= publish_deadline) break;
        } else if (doc >= cfg.documents) {
          break;
        }
        vitex::Status status =
            client.value()->Publish(MakeDocument(doc, cfg.topics));
        if (!status.ok()) {
          std::fprintf(stderr, "publish doc %d: %s\n", doc,
                       status.ToString().c_str());
          publish_failed.store(true);
          return;
        }
        docs_published.fetch_add(1);
      }
    });
  }

  // --- main loop: drain subscribers, churn mid-run -------------------------
  const int churn_total =
      cfg.churn_percent > 0 ? conns * std::min(cfg.churn_percent, 100) / 100
                            : 0;
  int churned = 0;
  bool publishing = true;
  Clock::time_point quiet_since = Clock::now();
  epoll_event events[512];
  uint64_t drained_total = 0;

  while (true) {
    int n = ::epoll_wait(epfd, events, 512, 20);
    bool any = false;
    for (int i = 0; i < n; ++i) {
      int index = static_cast<int>(events[i].data.u32);
      Slot& slot = slots[static_cast<size_t>(index)];
      if (slot.dead || slot.client == nullptr) continue;
      size_t before = TotalFragments(slot);
      if (!DrainSlot(&slot)) {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, slot.client->fd(), nullptr);
      }
      any = any || TotalFragments(slot) != before;
    }
    drained_total += static_cast<uint64_t>(n);

    if (publishing) {
      // Churn: spread the cohort's single churn event across the
      // publishing phase, a few per loop iteration.
      int to_churn = churn_total > 0 && docs_published.load() > 0 ? 2 : 0;
      for (int c = 0; c < to_churn && churned < churn_total; ++c) {
        // Pick the next scheduled slot that has not churned yet.
        int index = -1;
        for (int s = churned; s < conns; ++s) {
          Slot& cand = slots[static_cast<size_t>(s)];
          if (cand.churns && !cand.churned && !cand.dead) {
            index = s;
            break;
          }
        }
        if (index < 0) {
          churned = churn_total;  // nobody left
          break;
        }
        Slot& slot = slots[static_cast<size_t>(index)];
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, slot.client->fd(), nullptr);
        slot.client.reset();        // closes the session mid-stream
        for (auto& f : slot.fragments) f.clear();  // fresh incarnation
        slot.churned = true;
        ++churned;
        if (!connect_slot(index)) {
          slot.dead = true;
          slot.death_note = "reconnect failed";
        }
      }
      bool done = publish_failed.load();
      if (!done) {
        if (cfg.duration_s > 0) {
          done = Clock::now() >= publish_deadline;
        } else {
          done = docs_published.load() >= cfg.documents;
        }
      }
      if (done) {
        for (auto& t : publishers) t.join();
        publishers.clear();
        publishing = false;
        // Everything published is now in the queues; force it through.
        vitex::Status flushed = service.Flush();
        if (!flushed.ok()) {
          std::fprintf(stderr, "flush: %s\n", flushed.ToString().c_str());
          return 1;
        }
        quiet_since = Clock::now();
      }
    } else {
      if (any) {
        quiet_since = Clock::now();
      } else if (Clock::now() - quiet_since > std::chrono::milliseconds(500)) {
        break;  // flushed AND the wire has been quiet: all frames landed
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // --- differential check --------------------------------------------------
  // Ground truth: the oracle subscriptions saw every delivery, in
  // per-subscription delivery order.
  std::vector<std::vector<std::string>> truth(
      static_cast<size_t>(cfg.topics));
  for (int t = 0; t < cfg.topics; ++t) {
    auto drained = oracle[static_cast<size_t>(t)].Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "oracle drain: %s\n",
                   drained.status().ToString().c_str());
      return 1;
    }
    auto& list = truth[static_cast<size_t>(t)];
    list.reserve(drained->size());
    for (auto& delivery : *drained) list.push_back(delivery.fragment);
  }

  std::vector<Failure> failures;
  uint64_t frames_received = 0;
  int healthy = 0;
  for (int s = 0; s < conns; ++s) {
    Slot& slot = slots[static_cast<size_t>(s)];
    if (slot.dead) {
      failures.push_back({s, "connection died: " + slot.death_note});
      continue;
    }
    healthy += static_cast<int>(slot.topics.size());
    frames_received += TotalFragments(slot);
    for (size_t j = 0; j < slot.topics.size(); ++j) {
      const std::vector<std::string>& got = slot.fragments[j];
      const std::vector<std::string>& expected =
          truth[static_cast<size_t>(slot.topics[j])];
      if (!slot.churned) {
        if (got != expected) {
          failures.push_back(
              {s, "stable subscriber mismatch: got " +
                      std::to_string(got.size()) + " frames, oracle " +
                      std::to_string(expected.size())});
        }
        continue;
      }
      // Churned: the incarnation started mid-stream.
      if (cfg.streams == 1) {
        // Delivery order == publish order, so the incarnation must have
        // received an exact suffix of the oracle list.
        size_t offset = expected.size() - got.size();
        if (got.size() > expected.size() ||
            !std::equal(got.begin(), got.end(),
                        expected.begin() + static_cast<long>(offset))) {
          failures.push_back({s, "churned subscriber is not an oracle suffix"});
        }
      } else {
        // Cross-stream order is unspecified: require a duplicate-free
        // subset of the oracle.
        std::map<std::string, int> budget;
        for (const auto& f : expected) ++budget[f];
        for (const auto& f : got) {
          if (--budget[f] < 0) {
            failures.push_back(
                {s, "churned subscriber duplicate/unknown: " + f});
            break;
          }
        }
      }
    }
  }

  // Stalled readers: drain, then PROBE. Eviction closes the server's end
  // against a zero-window peer, so the socket lingers in FIN-WAIT-1 with
  // the farewell stuck behind kilobytes of undeliverable backlog —
  // whether this side ever sees the BYE (or even the FIN) within a polite
  // drain is kernel timing, not protocol. A PING forces the kernel's
  // hand: data sent to a close()d peer draws an immediate RST, while a
  // genuinely live server answers PONG. "Evicted" therefore means: BYE
  // said so, or the probe found a dead peer.
  int evicted_confirmed = 0;
  for (size_t k = 0; k < stalled.size(); ++k) {
    Client* client = stalled[k].get();
    while (client->connected()) {
      auto match = client->PollMatch(500);
      if (!match.ok() || !match->has_value()) break;
    }
    if (cfg.policy == vitex::net::SlowConsumerPolicy::kDisconnect) {
      const bool alive = client->connected() && client->Ping().ok();
      if (client->bye().has_value() &&
          client->bye()->reason == vitex::net::ByeReason::kEvicted) {
        ++evicted_confirmed;
      } else if (alive) {
        failures.push_back(
            {-1, "stalled reader " + std::to_string(k) + " was not evicted"});
      } else {
        // Connection died without a parseable BYE (reset racing the BYE
        // write): count it via the server's own eviction counter below.
        ++evicted_confirmed;
      }
    }
  }

  vitex::net::NetStatsSnapshot net = server->stats();
  if (cfg.policy == vitex::net::SlowConsumerPolicy::kDisconnect &&
      net.connections_evicted < static_cast<uint64_t>(cfg.stalled)) {
    failures.push_back({-1, "server evicted " +
                                std::to_string(net.connections_evicted) +
                                " connections, expected >= " +
                                std::to_string(cfg.stalled)});
  }

  // /statsz over the wire: must arrive and must carry the net series.
  {
    auto client = Client::Connect("127.0.0.1", port, client_options);
    if (client.ok()) {
      auto statsz = client.value()->Statsz();
      if (!statsz.ok()) {
        failures.push_back({-1, "STATS over wire: " +
                                    statsz.status().ToString()});
      } else if (statsz->find("vitex_net_connections_accepted_total") ==
                 std::string::npos) {
        failures.push_back({-1, "wire statsz is missing vitex_net_* series"});
      }
    } else {
      failures.push_back({-1, "statsz connect: " +
                                  client.status().ToString()});
    }
  }

  // --- report --------------------------------------------------------------
  const int docs = docs_published.load();
  std::printf(
      "published %d docs in %.2fs (%.0f docs/s); %d/%d healthy subscribers, "
      "%llu MATCH frames verified (%.0f frames/s)\n",
      docs, seconds, docs / std::max(seconds, 1e-9), healthy,
      cfg.subscribers, static_cast<unsigned long long>(frames_received),
      frames_received / std::max(seconds, 1e-9));
  std::printf(
      "server: %llu accepted, %llu evicted (%d confirmed by BYE), "
      "%llu matches sent, %llu dropped at outbuf cap, high watermark %llu B\n",
      static_cast<unsigned long long>(net.connections_accepted),
      static_cast<unsigned long long>(net.connections_evicted),
      evicted_confirmed,
      static_cast<unsigned long long>(net.matches_sent),
      static_cast<unsigned long long>(net.matches_dropped),
      static_cast<unsigned long long>(net.outbuf_high_watermark));
  if (publish_failed.load()) {
    std::fprintf(stderr, "FAIL: a publisher aborted\n");
    return 1;
  }
  if (!failures.empty()) {
    size_t show = std::min<size_t>(failures.size(), 10);
    for (size_t f = 0; f < show; ++f) {
      std::fprintf(stderr, "FAIL[slot %d]: %s\n", failures[f].slot,
                   failures[f].what.c_str());
    }
    std::fprintf(stderr, "FAIL: %zu check(s) failed\n", failures.size());
    return 1;
  }
  std::printf("PASS: zero lost, zero duplicated MATCH frames across %d "
              "healthy subscribers\n",
              healthy);
  ::close(epfd);
  return 0;
}

#endif  // defined(__linux__)
