// statsz_dump: run a small pub/sub workload through StreamService and
// print the /statsz payload (Prometheus text exposition, DESIGN.md §10)
// to stdout — the quickest way to eyeball the pipeline's counters, queue
// watermarks, and per-stage latency distributions, and the CI smoke check
// that the exposition never goes empty or malformed.
//
//   ./statsz_dump [--shards N] [--streams M] [--subs K] [--documents D]
//                 [--no-tracing] [--check]
//
// --check re-parses the emitted text with a strict line validator (every
// line must be a HELP/TYPE comment or a `name{labels} value` sample) and
// verifies the headline series are present; exit 1 on any violation.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/stream_service.h"

namespace {

std::string MakeFeedDoc(int tags, int items, int salt) {
  std::string doc = "<feed>";
  for (int i = 0; i < items; ++i) {
    int tag = (i * 7 + salt) % tags;
    doc += "<item" + std::to_string(tag) + "><val>quote " +
           std::to_string(salt) + "." + std::to_string(i) +
           " lorem ipsum</val></item" + std::to_string(tag) + ">";
  }
  doc += "</feed>";
  return doc;
}

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

// Validates one non-comment exposition line: name{labels} value.
bool ValidSampleLine(const std::string& line) {
  size_t i = 0;
  if (i >= line.size() || !IsMetricNameChar(line[i], true)) return false;
  while (i < line.size() && IsMetricNameChar(line[i], false)) ++i;
  if (i < line.size() && line[i] == '{') {
    // Labels: consume to the matching '}', honoring quoted values.
    ++i;
    bool in_quotes = false;
    while (i < line.size()) {
      char c = line[i];
      if (in_quotes) {
        if (c == '\\') {
          ++i;  // escaped char
        } else if (c == '"') {
          in_quotes = false;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == '}') {
        break;
      }
      ++i;
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  // Value: a float strtod fully consumes.
  const char* start = line.c_str() + i;
  char* end = nullptr;
  std::strtod(start, &end);
  return end != start && *end == '\0';
}

// Full-payload validation: every line parses, and the headline series the
// issue's acceptance criteria name are present.
bool CheckExposition(const std::string& text, bool tracing) {
  if (text.empty()) {
    std::fprintf(stderr, "statsz_dump --check: exposition is EMPTY\n");
    return false;
  }
  size_t samples = 0, pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      std::fprintf(stderr, "--check: missing trailing newline\n");
      return false;
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        std::fprintf(stderr, "--check: bad comment line: %s\n", line.c_str());
        return false;
      }
      continue;
    }
    if (!ValidSampleLine(line)) {
      std::fprintf(stderr, "--check: unparseable line: %s\n", line.c_str());
      return false;
    }
    ++samples;
  }
  if (samples == 0) {
    std::fprintf(stderr, "--check: no sample lines\n");
    return false;
  }
  std::vector<std::string> required = {
      "vitex_documents_published_total ",
      "vitex_stream_queue_high_watermark{",
      "vitex_shard_inbox_high_watermark{",
      "vitex_shard_dispatch_start_visits_total{",
  };
  if (tracing) {
    required.push_back("vitex_stage_parse_nanos_bucket{");
    required.push_back("vitex_stage_e2e_nanos_p99 ");
    required.push_back("vitex_stage_match_nanos_p50 ");
  }
  for (const std::string& needle : required) {
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "--check: required series missing: %s\n",
                   needle.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t shards = 2, streams = 2;
  int subs = 32, documents = 50;
  bool tracing = true, check = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::strtoul(next("--shards"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      streams = std::strtoul(next("--streams"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--subs") == 0) {
      subs = std::atoi(next("--subs"));
    } else if (std::strcmp(argv[i], "--documents") == 0) {
      documents = std::atoi(next("--documents"));
    } else if (std::strcmp(argv[i], "--no-tracing") == 0) {
      tracing = false;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: statsz_dump [--shards N] [--streams M] [--subs K] "
                   "[--documents D] [--no-tracing] [--check]\n");
      return 2;
    }
  }

  vitex::service::StreamServiceOptions options;
  options.shard_count = shards;
  options.stream_count = streams;
  options.queue_capacity = 8;  // small on purpose: show real backpressure
  options.enable_tracing = tracing;
  vitex::service::StreamService service(options);
  for (int i = 0; i < subs; ++i) {
    auto id =
        service.Subscribe("//item" + std::to_string(i) + "/val/text()");
    if (!id.ok()) {
      std::fprintf(stderr, "subscribe: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  for (int d = 0; d < documents; ++d) {
    if (d == documents / 2) {
      // One malformed publication: the rejected-documents series should be
      // live in the dump, not perpetually zero.
      (void)service.Publish("<feed><unclosed>");
    }
    if (!service.Publish(MakeFeedDoc(subs, 64, d)).ok()) {
      std::fprintf(stderr, "publish failed\n");
      return 1;
    }
  }
  vitex::Status status = service.Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::string text = service.StatszText();
  std::fputs(text.c_str(), stdout);
  if (check && !CheckExposition(text, tracing)) return 1;
  return 0;
}
