// Quickstart: evaluate one XPath query over an XML stream in ~20 lines.
//
//   $ ./quickstart
//   $ ./quickstart "//book[price]/title" document.xml

#include <cstdio>
#include <string>

#include "twigm/engine.h"

namespace {

const char kDefaultQuery[] = "//book[author]//title";
const char kDefaultDocument[] = R"(<library>
  <book><author>Chen</author><title>Streaming XPath</title></book>
  <book><title>No Author Here</title></book>
  <shelf>
    <book><author>Davidson</author><section><title>Nested</title></section></book>
  </shelf>
</library>)";

// Results arrive incrementally, as soon as qualification is proven.
class PrintingHandler : public vitex::twigm::ResultHandler {
 public:
  void OnResult(std::string_view fragment, uint64_t sequence) override {
    std::printf("match #%llu: %.*s\n",
                static_cast<unsigned long long>(sequence),
                static_cast<int>(fragment.size()), fragment.data());
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string query = argc > 1 ? argv[1] : kDefaultQuery;
  PrintingHandler handler;

  // 1. Compile the query and build the engine (XPath parser → TwigM
  //    builder → SAX parser → TwigM machine, the paper's Figure 2).
  auto engine = vitex::twigm::Engine::Create(query, &handler);
  if (!engine.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\ncompiled twig:\n%s\n", query.c_str(),
              engine->query().ToString().c_str());

  // 2. Stream the document through it.
  vitex::Status s = argc > 2 ? engine->RunFile(argv[2])
                             : engine->RunString(kDefaultDocument);
  if (!s.ok()) {
    std::fprintf(stderr, "stream error: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Inspect the run.
  const auto& stats = engine->machine().stats();
  std::printf(
      "\nprocessed %llu elements, %llu results, peak machine memory %zu B\n",
      static_cast<unsigned long long>(stats.start_events),
      static_cast<unsigned long long>(stats.results_emitted),
      engine->machine().memory().peak_bytes());
  return 0;
}
