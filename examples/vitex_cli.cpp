// vitex_cli: a command-line XPath-over-stream tool — the shape in which a
// downstream user would actually deploy ViteX.
//
//   vitex_cli QUERY [FILE]          stream FILE (or stdin) through QUERY
//   vitex_cli --count QUERY [FILE]  print only the match count and stats
//
// Examples:
//   ./vitex_cli '//book[author]//title' catalog.xml
//   cat feed.xml | ./vitex_cli --count '//trade[volume > 5000]'

#include <cstdio>
#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "twigm/engine.h"

namespace {

class PrintingHandler : public vitex::twigm::ResultHandler {
 public:
  void OnResult(std::string_view fragment, uint64_t sequence) override {
    (void)sequence;
    std::fwrite(fragment.data(), 1, fragment.size(), stdout);
    std::fputc('\n', stdout);
    ++count;
  }
  uint64_t count = 0;
};

int Usage() {
  std::fprintf(stderr,
               "usage: vitex_cli [--count] QUERY [FILE]\n"
               "Streams FILE (or stdin) through the XPath QUERY and prints\n"
               "each matching fragment as it qualifies.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool count_only = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--count") == 0) {
    count_only = true;
    ++arg;
  }
  if (arg >= argc) return Usage();
  const char* query = argv[arg++];
  const char* file = arg < argc ? argv[arg] : nullptr;

  PrintingHandler printer;
  vitex::twigm::CountingResultHandler counter;
  vitex::twigm::ResultHandler* handler =
      count_only ? static_cast<vitex::twigm::ResultHandler*>(&counter)
                 : &printer;

  auto engine = vitex::twigm::Engine::Create(query, handler);
  if (!engine.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  vitex::Stopwatch timer;
  vitex::Status status;
  if (file != nullptr) {
    status = engine->RunFile(file);
  } else {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
      status = engine->Feed(std::string_view(buf, n));
      if (!status.ok()) break;
    }
    if (status.ok()) status = engine->Finish();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "stream error: %s\n", status.ToString().c_str());
    return 1;
  }

  uint64_t total = count_only ? counter.count() : printer.count;
  std::fprintf(stderr,
               "-- %llu matches in %.3f s; peak engine memory %s\n",
               static_cast<unsigned long long>(total), timer.ElapsedSeconds(),
               vitex::HumanBytes(engine->machine().memory().peak_bytes())
                   .c_str());
  return 0;
}
