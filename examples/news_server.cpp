// A miniature news *server*: the paper's pub/sub deployment at scale,
// driven through the public facade (vitex::Service, service/vitex.h).
// Hundreds of subscribers with standing XPath subscriptions, a publisher
// pushing documents as fast as the service accepts them (bounded queues =
// backpressure), subscribers joining and leaving while the stream runs,
// and a ServiceStats dashboard at the end.
//
//   ./news_server [shards] [subscribers] [documents] [streams]
//
// Compare wall-clock across shard counts to see the sharded runtime use
// the hardware: ./news_server 1 512 200  vs  ./news_server 8 512 200.
// On a multi-core box, also raise the publisher stream count to lift the
// ingest-parse ceiling: ./news_server 8 512 200 4 parses four documents
// concurrently (DESIGN.md §9); the mid-stream churn below then exercises
// the cross-stream epoch barrier, not just a single queue.
//
// After the dashboard the run prints the live /statsz payload (DESIGN.md
// §10): the same Prometheus text a scrape endpoint would serve, with the
// per-stage latency histograms and queue-watermark gauges for THIS run.
// To serve the same thing over a real socket, see tools/vitex_server.cc
// (the TCP front end, DESIGN.md §13).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "service/vitex.h"
#include "workload/text_corpus.h"

namespace {

std::string MakeIssue(vitex::Random* rng, int topics, int issue) {
  std::string doc = "<issue no=\"" + std::to_string(issue) + "\">";
  int articles = 20 + static_cast<int>(rng->Uniform(20));
  for (int a = 0; a < articles; ++a) {
    int topic = static_cast<int>(rng->Uniform(topics));
    doc += "<topic" + std::to_string(topic) + "><headline>" +
           vitex::workload::RandomSentence(rng, 5) +
           "</headline><body>" + vitex::workload::RandomSentence(rng, 12) +
           "</body></topic" + std::to_string(topic) + ">";
  }
  doc += "</issue>";
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  size_t shards = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  int subscribers = argc > 2 ? std::atoi(argv[2]) : 512;
  int documents = argc > 3 ? std::atoi(argv[3]) : 100;
  size_t streams = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 1;
  int topics = subscribers;  // disjoint-tag subscriptions

  vitex::ServiceOptions options;
  options.shard_count = shards;
  options.stream_count = streams;
  options.queue_capacity = 32;
  vitex::Service service(options);

  std::printf(
      "news_server: %zu shard(s), %d subscriber(s), %d document(s), "
      "%zu publisher stream(s)\n",
      service.shard_count(), subscribers, documents, service.stream_count());
  std::vector<vitex::Subscription> subs;
  for (int s = 0; s < subscribers; ++s) {
    auto sub = service.Subscribe("//topic" + std::to_string(s % topics) +
                                 "/headline/text()");
    if (!sub.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   sub.status().ToString().c_str());
      return 1;
    }
    subs.push_back(std::move(sub).value());
  }

  vitex::Random rng(42);
  vitex::Stopwatch watch;
  for (int d = 0; d < documents; ++d) {
    // A tenth of the subscriber base churns mid-stream: the dynamic
    // subscription lifecycle under load. Unsubscribe() on the RAII handle
    // ends the subscription right now (destruction would, too).
    if (d == documents / 2) {
      for (int s = 0; s < subscribers / 10; ++s) {
        if (!subs[s].Unsubscribe().ok()) return 1;
      }
      std::printf("  [doc %d] %d subscribers left\n", d, subscribers / 10);
    }
    if (!service.Publish(MakeIssue(&rng, topics, d)).ok()) {
      std::fprintf(stderr, "publish failed\n");
      return 1;
    }
  }
  vitex::Status status = service.Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  double seconds = watch.ElapsedSeconds();

  uint64_t pending = 0;
  for (size_t s = subscribers / 10; s < subs.size(); ++s) {
    auto drained = subs[s].Drain();
    if (drained.ok()) pending += drained->size();
  }

  vitex::ServiceStats stats = service.stats();
  std::printf("\n--- ServiceStats ---\n");
  std::printf("documents: %llu published, %llu processed by all shards\n",
              static_cast<unsigned long long>(stats.documents_published),
              static_cast<unsigned long long>(stats.documents_processed));
  std::printf("events: %llu parsed once, %llu replayed across shards\n",
              static_cast<unsigned long long>(stats.events_parsed),
              static_cast<unsigned long long>(stats.events_replayed));
  std::printf("results: %llu delivered (%llu drained just now)\n",
              static_cast<unsigned long long>(stats.results_delivered),
              static_cast<unsigned long long>(pending));
  std::printf("stream wall time: %.3f s  (%.0f docs/s, %.2fM replayed "
              "events/s)\n",
              seconds, stats.documents_processed / seconds,
              stats.events_replayed / seconds / 1e6);
  for (size_t i = 0; i < stats.streams.size(); ++i) {
    const vitex::StreamStatsSnapshot& st = stats.streams[i];
    std::printf("  stream %zu: %llu published, %llu parsed, %llu rejected\n",
                i, static_cast<unsigned long long>(st.documents_published),
                static_cast<unsigned long long>(st.documents_parsed),
                static_cast<unsigned long long>(st.documents_rejected));
  }
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    const vitex::ShardStatsSnapshot& sh = stats.shards[i];
    std::printf(
        "  shard %zu: %zu live queries, %llu docs, %llu events, "
        "%llu start-visits (%llu broadcast)\n",
        i, sh.live_queries, static_cast<unsigned long long>(sh.documents),
        static_cast<unsigned long long>(sh.events),
        static_cast<unsigned long long>(sh.dispatch.start_visits),
        static_cast<unsigned long long>(sh.dispatch.broadcast_visits));
  }

  // The observability tentpole, live: what a /statsz scrape of this
  // process would return right now.
  std::printf("\n--- /statsz (Prometheus text exposition) ---\n");
  std::fputs(service.StatszText().c_str(), stdout);
  return 0;
}
