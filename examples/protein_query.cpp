// The paper's headline experiment (§2, feature 5): run
// //ProteinEntry[reference]/@id over a Protein Sequence Database document.
//
// The paper reports 6.02 s total on the 75 MB PSD, of which 4.43 s is SAX
// parsing, with memory stable at 1 MB. This example reproduces the setup on
// a synthetic PSD of configurable size (default 16 MB to keep the example
// snappy; pass a size in MB for the full run):
//
//   $ ./protein_query        # 16 MB
//   $ ./protein_query 75     # the paper's size

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "xml/sax_parser.h"

int main(int argc, char** argv) {
  uint64_t mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  std::string path = "/tmp/vitex_psd.xml";

  std::printf("generating ~%llu MB synthetic Protein Sequence Database...\n",
              static_cast<unsigned long long>(mb));
  auto entries =
      vitex::workload::GenerateProteinFile(path, mb << 20, /*seed=*/2005);
  if (!entries.ok()) {
    std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
    return 1;
  }
  std::printf("  %s entries written to %s\n",
              vitex::WithThousandsSeparators(entries.value()).c_str(),
              path.c_str());

  // Pass 1: SAX parsing alone (the paper's 4.43 s component).
  {
    vitex::xml::ContentHandler discard;
    vitex::Stopwatch timer;
    vitex::Status s = vitex::xml::ParseFile(path, &discard);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("SAX parsing alone:   %.2f s\n", timer.ElapsedSeconds());
  }

  // Pass 2: the full ViteX pipeline (the paper's 6.02 s component).
  vitex::twigm::CountingResultHandler results;
  auto engine = vitex::twigm::Engine::Create(
      "//ProteinEntry[reference]/@id", &results);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  vitex::Stopwatch timer;
  vitex::Status s = engine->RunFile(path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  double total = timer.ElapsedSeconds();
  std::printf("SAX + TwigM (ViteX): %.2f s\n", total);
  std::printf("results:             %s ids\n",
              vitex::WithThousandsSeparators(results.count()).c_str());
  std::printf("peak engine memory:  %s (paper: ~1 MB, stable)\n",
              vitex::HumanBytes(engine->machine().memory().peak_bytes()).c_str());
  std::remove(path.c_str());
  return 0;
}
