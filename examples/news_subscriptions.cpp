// "Electronic personalized newspapers" (paper §1): one news stream, many
// subscribers, each with a standing XPath subscription. PR 1 evaluated them
// together in a single pass (MultiQueryEngine); this demo runs the same
// scenario through the public facade (vitex::Service, service/vitex.h):
// the stream is parsed once on the ingest thread, replayed into worker
// shards, and — the new part — subscribers join and leave MID-STREAM, with
// changes taking effect at exact document boundaries. Subscriptions are
// RAII handles: the ones still alive at the end unsubscribe themselves.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "service/vitex.h"
#include "workload/text_corpus.h"

namespace {

struct Subscriber {
  const char* name;
  const char* subscription;
};

const Subscriber kSubscribers[] = {
    {"alice", "//article[category = 'markets']/headline/text()"},
    {"bob", "//article[priority > 7]//headline"},
    {"carol", "//article[category = 'sports'][region = 'eu']/headline/text()"},
    {"dave", "//article[not(paywalled)]/@id"},
};

std::string MakeArticle(vitex::Random* rng, int id) {
  static const char* kCategories[] = {"markets", "sports", "politics",
                                      "science"};
  static const char* kRegions[] = {"eu", "us", "asia"};
  std::string a = "<newswire><article id=\"n" + std::to_string(id) + "\">";
  a += "<category>" + std::string(kCategories[rng->Uniform(4)]) +
       "</category>";
  a += "<region>" + std::string(kRegions[rng->Uniform(3)]) + "</region>";
  a += "<priority>" + std::to_string(rng->Uniform(10)) + "</priority>";
  if (rng->OneIn(0.3)) a += "<paywalled/>";
  a += "<headline>" + vitex::workload::RandomSentence(rng, 4) + "</headline>";
  a += "</article></newswire>";
  return a;
}

int Deliver(vitex::Subscription* sub, const char* name) {
  auto drained = sub->Drain();
  if (!drained.ok()) return 0;
  for (const vitex::Delivery& d : drained.value()) {
    std::printf("  -> %s receives: %s\n", name, d.fragment.c_str());
  }
  return static_cast<int>(drained->size());
}

}  // namespace

int main() {
  vitex::ServiceOptions options;
  options.shard_count = 2;
  vitex::Service service(options);

  std::vector<vitex::Subscription> subs;
  std::vector<int> delivered(std::size(kSubscribers), 0);
  // alice, bob and carol subscribe before the stream starts; dave joins
  // mid-stream and carol leaves mid-stream.
  for (size_t s = 0; s < 3; ++s) {
    auto sub = service.Subscribe(kSubscribers[s].subscription);
    if (!sub.ok()) {
      std::fprintf(stderr, "bad subscription for %s: %s\n",
                   kSubscribers[s].name, sub.status().ToString().c_str());
      return 1;
    }
    subs.push_back(std::move(sub).value());
    std::printf("%s subscribed: %s\n", kSubscribers[s].name,
                kSubscribers[s].subscription);
  }

  std::printf("\nstreaming 12 articles (one document each)...\n");
  vitex::Random rng(7);
  for (int i = 0; i < 12; ++i) {
    if (i == 4) {
      // dave joins mid-stream: sees articles 4.. but never 0-3.
      auto sub = service.Subscribe(kSubscribers[3].subscription);
      if (!sub.ok()) return 1;
      subs.push_back(std::move(sub).value());
      std::printf("[article %d] dave joins: %s\n", i,
                  kSubscribers[3].subscription);
    }
    if (i == 8) {
      // carol leaves mid-stream: her machine is removed from its shard at
      // the next document boundary. Flush first so articles 0-7 — which
      // she was subscribed for — are fully processed before the farewell
      // drain (unsubscribing discards undrained results).
      if (!service.Flush().ok()) return 1;
      delivered[2] += Deliver(&subs[2], "carol");
      if (!subs[2].Unsubscribe().ok()) return 1;
      std::printf("[article %d] carol leaves\n", i);
    }
    if (!service.Publish(MakeArticle(&rng, i)).ok()) return 1;
  }
  vitex::Status status = service.Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("\ndeliveries:\n");
  for (size_t s = 0; s < subs.size(); ++s) {
    if (s == 2) continue;  // carol already drained at departure
    delivered[s] += Deliver(&subs[s], kSubscribers[s].name);
  }
  std::printf("\ntotals:\n");
  for (size_t s = 0; s < std::size(kSubscribers); ++s) {
    std::printf("  %-6s %d article(s)%s\n", kSubscribers[s].name,
                delivered[s],
                s == 2 ? " (left at article 8)"
                       : (s == 3 ? " (joined at article 4)" : ""));
  }
  vitex::ServiceStats stats = service.stats();
  std::printf(
      "service: %llu documents through %zu shards, %llu events replayed, "
      "%llu results delivered\n",
      static_cast<unsigned long long>(stats.documents_processed),
      service.shard_count(),
      static_cast<unsigned long long>(stats.events_replayed),
      static_cast<unsigned long long>(stats.results_delivered));
  return 0;
}
