// "Electronic personalized newspapers" (paper §1): one news stream, many
// subscribers, each with a standing XPath subscription — evaluated together
// in a single pass by MultiQueryEngine. The stream is parsed once; each
// subscriber pays only their own TwigM machine.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "twigm/multi_query.h"
#include "workload/text_corpus.h"

namespace {

struct Subscriber {
  const char* name;
  const char* subscription;
};

const Subscriber kSubscribers[] = {
    {"alice", "//article[category = 'markets']/headline/text()"},
    {"bob", "//article[priority > 7]//headline"},
    {"carol", "//article[category = 'sports'][region = 'eu']/headline/text()"},
    {"dave", "//article[not(paywalled)]/@id"},
};

class NamedHandler : public vitex::twigm::ResultHandler {
 public:
  explicit NamedHandler(const char* name) : name_(name) {}
  void OnResult(std::string_view fragment, uint64_t sequence) override {
    (void)sequence;
    std::printf("  -> %s receives: %.*s\n", name_,
                static_cast<int>(fragment.size()), fragment.data());
    ++delivered;
  }
  int delivered = 0;

 private:
  const char* name_;
};

std::string MakeArticle(vitex::Random* rng, int id) {
  static const char* kCategories[] = {"markets", "sports", "politics",
                                      "science"};
  static const char* kRegions[] = {"eu", "us", "asia"};
  std::string a = "<article id=\"n" + std::to_string(id) + "\">";
  a += "<category>" + std::string(kCategories[rng->Uniform(4)]) +
       "</category>";
  a += "<region>" + std::string(kRegions[rng->Uniform(3)]) + "</region>";
  a += "<priority>" + std::to_string(rng->Uniform(10)) + "</priority>";
  if (rng->OneIn(0.3)) a += "<paywalled/>";
  a += "<headline>" + vitex::workload::RandomSentence(rng, 4) + "</headline>";
  a += "</article>";
  return a;
}

}  // namespace

int main() {
  vitex::twigm::MultiQueryEngine engine;
  std::vector<std::unique_ptr<NamedHandler>> handlers;
  for (const Subscriber& s : kSubscribers) {
    handlers.push_back(std::make_unique<NamedHandler>(s.name));
    auto id = engine.AddQuery(s.subscription, handlers.back().get());
    if (!id.ok()) {
      std::fprintf(stderr, "bad subscription for %s: %s\n", s.name,
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("%s subscribed: %s\n", s.name, s.subscription);
  }

  std::printf("\nstreaming 12 articles...\n");
  vitex::Random rng(7);
  vitex::Status status = engine.Feed("<newswire>");
  for (int i = 0; i < 12 && status.ok(); ++i) {
    status = engine.Feed(MakeArticle(&rng, i));
  }
  if (status.ok()) status = engine.Feed("</newswire>");
  if (status.ok()) status = engine.Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("\ndeliveries:\n");
  for (size_t i = 0; i < handlers.size(); ++i) {
    std::printf("  %-6s %d article(s)\n", kSubscribers[i].name,
                handlers[i]->delivered);
  }
  std::printf("aggregate live engine memory after stream: %zu bytes\n",
              engine.total_live_bytes());
  return 0;
}
