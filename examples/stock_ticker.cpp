// Streaming motivation from §1: "stock market data, sports tickers,
// electronic personalized newspapers" — data arrives as an unbounded XML
// stream and results must flow out before the stream ends.
//
// This example simulates a live stock ticker feed arriving in small network
// packets and runs a standing query for large trades of one symbol:
//
//     //trade[symbol = 'VITX'][volume > 5000]/price
//
// Each alert is printed the moment the qualifying </trade> closes — the
// "incrementally produce and distribute query results" requirement.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "twigm/engine.h"

namespace {

class AlertHandler : public vitex::twigm::ResultHandler {
 public:
  void OnResult(std::string_view fragment, uint64_t sequence) override {
    std::printf("  ALERT (event %llu): VITX block trade at price %.*s\n",
                static_cast<unsigned long long>(sequence),
                static_cast<int>(fragment.size()), fragment.data());
    ++alerts;
  }
  int alerts = 0;
};

// Produces one <trade> element of the feed.
std::string MakeTrade(vitex::Random* rng) {
  static const char* kSymbols[] = {"VITX", "ACME", "XBRL", "SAXQ"};
  std::string symbol = kSymbols[rng->Uniform(4)];
  int volume = static_cast<int>(rng->Uniform(10000)) + 1;
  double price = 10.0 + rng->NextDouble() * 90.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<trade><symbol>%s</symbol><volume>%d</volume>"
                "<price>%.2f</price></trade>",
                symbol.c_str(), volume, price);
  return buf;
}

}  // namespace

int main() {
  AlertHandler alerts;
  auto engine = vitex::twigm::Engine::Create(
      "//trade[symbol = 'VITX'][volume > 5000]/price/text()", &alerts);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  vitex::Random rng(2005);
  // The feed opens once and keeps streaming; we simulate 200 trades split
  // into packets of ~48 bytes, as a TCP stream would deliver them.
  std::string pending = "<feed>";
  int trades = 0;
  for (int packet = 0; trades < 200;) {
    while (pending.size() < 48 && trades < 200) {
      pending += MakeTrade(&rng);
      ++trades;
    }
    std::string chunk = pending.substr(0, 48);
    pending.erase(0, 48);
    vitex::Status s = engine->Feed(chunk);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    ++packet;
  }
  vitex::Status s = engine->Feed(pending);
  if (s.ok()) s = engine->Feed("</feed>");
  if (s.ok()) s = engine->Finish();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\n%d trades streamed, %d alerts fired.\n", 200, alerts.alerts);
  std::printf("peak engine memory: %zu bytes (independent of feed length)\n",
              engine->machine().memory().peak_bytes());
  return 0;
}
