// The paper's §1 walkthrough, executable: Figure 1's document against
// //section[author]//table[position]//cell, narrated step by step, followed
// by the match-explosion comparison between TwigM and the naive
// pattern-match enumeration on deeper recursive data.

#include <cstdio>
#include <string>

#include "baseline/naive_matcher.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "twigm/engine.h"
#include "workload/book_generator.h"
#include "workload/recursive_generator.h"
#include "xml/sax_parser.h"

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void Figure1Walkthrough() {
  Banner("Paper Figure 1 walkthrough");
  const char* query = "//section[author]//table[position]//cell";
  vitex::twigm::VectorResultCollector results;
  auto engine = vitex::twigm::Engine::Create(query, &results);
  if (!engine.ok()) return;

  std::printf("query: %s\n", query);
  // Feed up to the <cell> start tag — the moment the paper counts 9
  // pattern matches.
  // The demo document is well-formed by construction, so parse errors are
  // impossible; discard the statuses rather than clutter the walkthrough.
  (void)engine->Feed(
      "<book><section><section><section><table><table><table><cell>");
  std::printf(
      "\nat line 8 (<cell> open): 3 sections x 3 tables = 9 naive pattern "
      "matches\nTwigM stack entries instead: %zu\n",
      engine->machine().live_stack_entries());
  std::printf("%s", engine->machine().DebugString().c_str());

  (void)engine->Feed("A</cell></table></table><position>B</position></table>"
                     "</section></section><author>C</author></section></book>");
  (void)engine->Finish();
  std::printf("solutions: %zu (expected 1)\n", results.size());
  for (const auto& r : results.results()) {
    std::printf("  %s\n", r.fragment.c_str());
  }
  const auto& cs = engine->machine().candidate_stats();
  std::printf("candidates: created=%llu emitted=%llu pruned=%llu\n",
              static_cast<unsigned long long>(cs.created),
              static_cast<unsigned long long>(cs.emitted),
              static_cast<unsigned long long>(cs.pruned));
}

void MatchExplosion() {
  Banner("Match explosion on recursive data (depth 24, query //a[p] x k)");
  vitex::workload::RecursiveOptions options;
  options.depth = 24;
  auto doc = vitex::workload::GenerateRecursiveString(options);
  if (!doc.ok()) return;

  std::printf("%-6s %20s %20s\n", "k", "naive instances", "TwigM entries");
  for (int k = 1; k <= 6; ++k) {
    std::string query = vitex::workload::RecursiveChainQuery(k);
    auto compiled = vitex::xpath::ParseAndCompile(query);
    if (!compiled.ok()) return;

    vitex::baseline::NaiveStreamMatcher naive(&compiled.value(), nullptr);
    vitex::Status ns = vitex::xml::ParseString(doc.value(), &naive);
    std::string naive_cell =
        ns.ok() ? vitex::WithThousandsSeparators(naive.stats().instances_created)
                : "(budget blown)";

    vitex::twigm::CountingResultHandler results;
    auto engine = vitex::twigm::Engine::Create(query, &results);
    if (!engine.ok()) return;
    (void)engine->RunString(doc.value());
    std::printf("%-6d %20s %20s\n", k, naive_cell.c_str(),
                vitex::WithThousandsSeparators(
                    engine->machine().stats().peak_stack_entries)
                    .c_str());
  }
  std::printf("\nnaive grows binomially (exponential in k); TwigM stays "
              "linear in depth x k.\n");
}

}  // namespace

int main() {
  Figure1Walkthrough();
  MatchExplosion();
  return 0;
}
