#include "twigm/candidate_store.h"

#include <gtest/gtest.h>

namespace vitex::twigm {
namespace {

TEST(CandidateStoreTest, CreateHoldsFragment) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("frag", 7);
  EXPECT_EQ(store.fragment(id), "frag");
  EXPECT_EQ(store.sequence(id), 7u);
  EXPECT_EQ(store.live(), 1u);
}

TEST(CandidateStoreTest, RefCountingReclaims) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  store.Ref(id);
  store.Unref(id);
  EXPECT_EQ(store.live(), 1u);
  store.Unref(id);
  EXPECT_EQ(store.live(), 0u);
}

TEST(CandidateStoreTest, UnemittedReclaimCountsAsPruned) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  store.Unref(id);
  EXPECT_EQ(store.stats().pruned, 1u);
  EXPECT_EQ(store.stats().emitted, 0u);
}

TEST(CandidateStoreTest, EmittedReclaimNotPruned) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  EXPECT_TRUE(store.MarkEmitted(id));
  store.Unref(id);
  EXPECT_EQ(store.stats().pruned, 0u);
  EXPECT_EQ(store.stats().emitted, 1u);
}

TEST(CandidateStoreTest, MarkEmittedOnlyOnce) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  EXPECT_TRUE(store.MarkEmitted(id));
  EXPECT_FALSE(store.MarkEmitted(id));
  store.Unref(id);
}

TEST(CandidateStoreTest, SlotsRecycled) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId a = store.Create("a", 1);
  store.Unref(a);
  CandidateId b = store.Create("b", 2);
  EXPECT_EQ(a, b);  // the freed slot is reused
  EXPECT_EQ(store.fragment(b), "b");
}

TEST(CandidateStoreTest, MemoryAccountedAndReleased) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create(std::string(1000, 'x'), 1);
  EXPECT_GE(memory.live_bytes(), 1000u);
  store.Unref(id);
  EXPECT_EQ(memory.live_bytes(), 0u);
}

TEST(CandidateStoreTest, PeakStatsTrackHighWater) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId a = store.Create("aaaa", 1);
  CandidateId b = store.Create("bbbb", 2);
  store.Unref(a);
  store.Unref(b);
  EXPECT_EQ(store.stats().peak_live, 2u);
  EXPECT_EQ(store.stats().peak_bytes, 8u);
  EXPECT_EQ(store.live(), 0u);
}

TEST(CandidateStoreTest, ResetClearsEverything) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  store.Create("x", 1);
  store.Reset();
  EXPECT_EQ(store.live(), 0u);
  EXPECT_EQ(store.stats().created, 0u);
}

}  // namespace
}  // namespace vitex::twigm
