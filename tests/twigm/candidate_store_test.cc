#include "twigm/candidate_store.h"

#include <gtest/gtest.h>

namespace vitex::twigm {
namespace {

TEST(CandidateStoreTest, CreateHoldsFragment) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("frag", 7);
  EXPECT_EQ(store.fragment(id), "frag");
  EXPECT_EQ(store.sequence(id), 7u);
  EXPECT_EQ(store.live(), 1u);
}

TEST(CandidateStoreTest, RefCountingReclaims) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  store.Ref(id);
  store.Unref(id);
  EXPECT_EQ(store.live(), 1u);
  store.Unref(id);
  EXPECT_EQ(store.live(), 0u);
}

TEST(CandidateStoreTest, UnemittedReclaimCountsAsPruned) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  store.Unref(id);
  EXPECT_EQ(store.stats().pruned, 1u);
  EXPECT_EQ(store.stats().emitted, 0u);
}

TEST(CandidateStoreTest, EmittedReclaimNotPruned) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  EXPECT_TRUE(store.MarkEmitted(id));
  store.Unref(id);
  EXPECT_EQ(store.stats().pruned, 0u);
  EXPECT_EQ(store.stats().emitted, 1u);
}

TEST(CandidateStoreTest, MarkEmittedOnlyOnce) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create("x", 1);
  EXPECT_TRUE(store.MarkEmitted(id));
  EXPECT_FALSE(store.MarkEmitted(id));
  store.Unref(id);
}

TEST(CandidateStoreTest, SlotsRecycled) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId a = store.Create("a", 1);
  store.Unref(a);
  CandidateId b = store.Create("b", 2);
  EXPECT_EQ(a, b);  // the freed slot is reused
  EXPECT_EQ(store.fragment(b), "b");
}

TEST(CandidateStoreTest, MemoryAccountedAndReleased) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId id = store.Create(std::string(1000, 'x'), 1);
  EXPECT_GE(memory.live_bytes(), 1000u);
  store.Unref(id);
  EXPECT_EQ(memory.live_bytes(), 0u);
}

TEST(CandidateStoreTest, PeakStatsTrackHighWater) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId a = store.Create("aaaa", 1);
  CandidateId b = store.Create("bbbb", 2);
  store.Unref(a);
  store.Unref(b);
  EXPECT_EQ(store.stats().peak_live, 2u);
  EXPECT_EQ(store.stats().peak_bytes, 8u);
  EXPECT_EQ(store.live(), 0u);
}

TEST(CandidateStoreTest, ResetClearsEverything) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  store.Create("x", 1);
  store.Reset();
  EXPECT_EQ(store.live(), 0u);
  EXPECT_EQ(store.stats().created, 0u);
}

// Regression (DESIGN.md §12): a slot id freed in document N must not be
// observable in document N+1. Reset used to clear slots_ and free_list_
// outright; now liveness is generational and both tests below pin the new
// contract.
TEST(CandidateStoreTest, FreedSlotIdNotLiveAcrossDocuments) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  CandidateId a = store.Create("a", 1);
  CandidateId b = store.Create("b", 2);
  store.Unref(a);  // a sits on doc N's free list at the boundary
  store.Reset();
  EXPECT_FALSE(store.is_live(a));
  EXPECT_FALSE(store.is_live(b));  // even still-referenced slots die
  // Doc N+1 allocates from the rewound cursor, not doc N's stale free
  // list: the first id is the recycled slot 0, freshly stamped.
  CandidateId c = store.Create("c", 3);
  EXPECT_EQ(c, a);  // same raw slot id, new generation
  EXPECT_TRUE(store.is_live(c));
  EXPECT_EQ(store.fragment(c), "c");
  EXPECT_EQ(store.sequence(c), 3u);
}

TEST(CandidateStoreTest, ResetKeepsPooledCapacity) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  std::vector<CandidateId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(store.Create("x", static_cast<uint64_t>(i)));
  }
  for (CandidateId id : ids) store.Unref(id);
  EXPECT_EQ(store.pooled_slots(), 16u);
  store.Reset();
  // Capacity survives the document boundary ...
  EXPECT_EQ(store.pooled_slots(), 16u);
  // ... and the next document reuses it without growing the pool.
  for (int i = 0; i < 16; ++i) store.Create("y", static_cast<uint64_t>(i));
  EXPECT_EQ(store.pooled_slots(), 16u);
  EXPECT_EQ(store.live(), 16u);
}

TEST(CandidateStoreTest, GenerationAdvancesPerDocument) {
  MemoryTracker memory;
  CandidateStore store(&memory);
  uint64_t g = store.generation();
  store.Reset();
  EXPECT_EQ(store.generation(), g + 1);
  store.Reset();
  EXPECT_EQ(store.generation(), g + 2);
}

}  // namespace
}  // namespace vitex::twigm
