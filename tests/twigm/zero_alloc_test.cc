// Allocation-counting harness for the versioned-memory hot path
// (DESIGN.md §12): after a few warmup documents have grown every pool to
// its steady-state high-water mark, replaying further documents through
// MultiQueryEngine::RunEvents — the exact path StreamService shards drive —
// must perform ZERO heap allocations, on both the shared-plan and
// private-machine configurations.
//
// This TU (and only this TU) replaces the global operator new/delete with
// counting versions that tick vitex::ThreadAllocCounters(). The counters
// are thread-local, so allocations from unrelated threads never leak into a
// measurement; AllocationScope snapshots the counters around the measured
// region.

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "twigm/multi_query.h"
#include "twigm/result.h"
#include "workload/protein_generator.h"
#include "workload/xmark_generator.h"
#include "xml/event_log.h"
#include "xml/sax_parser.h"

namespace {

void* CountedAlloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  vitex::AllocCounters& c = vitex::ThreadAllocCounters();
  ++c.allocations;
  c.allocated_bytes += size;
  return p;
}

void* CountedAllocNoThrow(std::size_t size) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    vitex::AllocCounters& c = vitex::ThreadAllocCounters();
    ++c.allocations;
    c.allocated_bytes += size;
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  vitex::AllocCounters& c = vitex::ThreadAllocCounters();
  ++c.allocations;
  c.allocated_bytes += size;
  return p;
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  ++vitex::ThreadAllocCounters().deallocations;
  std::free(p);
}

struct InstallCounting {
  InstallCounting() { vitex::AllocCountingInstalled() = true; }
};
InstallCounting install_counting;

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocNoThrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocNoThrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}

namespace vitex::twigm {
namespace {

constexpr int kWarmupDocs = 3;
constexpr int kMeasuredDocs = 5;

std::string ProteinDoc() {
  workload::ProteinOptions options;
  options.entries = 64;
  options.seed = 7;
  auto doc = workload::GenerateProteinString(options);
  EXPECT_TRUE(doc.ok());
  return doc.ok() ? std::move(doc).value() : std::string();
}

std::string XmarkDoc() {
  workload::XmarkOptions options;
  options.items_per_region = 8;
  options.seed = 11;
  auto doc = workload::GenerateXmarkString(options);
  EXPECT_TRUE(doc.ok());
  return doc.ok() ? std::move(doc).value() : std::string();
}

// The paper's PSD workload query plus shared-skeleton variants (same twig,
// different literals — one shared plan, several groups when share_plans is
// on), an element-output query (exercises the recording/candidate pools)
// and a value-predicate query (exercises the comparison path).
std::vector<std::string> ProteinQueries() {
  return {
      "//ProteinEntry[reference]/@id",
      "//header[uid = '9000001']/accession",
      "//header[uid = '9000002']/accession",
      "//reference/refinfo/authors",
      "//organism/source",
  };
}

std::vector<std::string> XmarkQueries() {
  return {
      "//item[incategory]/name",
      "//person/@id",
      "//open_auction[initial = '12.00']/@id",
      "//open_auction[initial = '99.00']/@id",
      "//bidder/personref/@person",
  };
}

// Runs `doc` through a fresh engine: warmup documents grow the pools, then
// kMeasuredDocs further replays must not touch the heap.
void ExpectZeroAllocSteadyState(const std::string& doc,
                                const std::vector<std::string>& queries,
                                bool share_plans) {
  ASSERT_TRUE(AllocCountingInstalled());

  MultiQueryEngine::Options options;
  options.share_plans = share_plans;
  MultiQueryEngine engine({}, options);

  std::vector<std::unique_ptr<CountingResultHandler>> sinks;
  for (const std::string& q : queries) {
    sinks.push_back(std::make_unique<CountingResultHandler>());
    auto id = engine.AddQuery(q, sinks.back().get());
    ASSERT_TRUE(id.ok()) << q << ": " << id.status().message();
  }

  // Record once with the engine's symbol table, as StreamService does, so
  // replay dispatches on pre-stamped symbols.
  xml::SaxParserOptions record_options;
  record_options.symbols = engine.symbols();
  auto log = xml::RecordEvents(doc, record_options);
  ASSERT_TRUE(log.ok()) << log.status().message();

  for (int i = 0; i < kWarmupDocs; ++i) {
    ASSERT_TRUE(engine.RunEvents(log.value()).ok());
  }
  uint64_t warm_results = 0;
  for (const auto& sink : sinks) warm_results += sink->count();
  ASSERT_GT(warm_results, 0u) << "queries never matched; test is vacuous";

  AllocationScope scope;
  bool all_ok = true;
  for (int i = 0; i < kMeasuredDocs; ++i) {
    all_ok = all_ok && engine.RunEvents(log.value()).ok();
  }
  uint64_t allocations = scope.allocations();
  uint64_t bytes = scope.allocated_bytes();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocations, 0u)
      << "steady-state replay allocated " << allocations << " times ("
      << bytes << " bytes) over " << kMeasuredDocs
      << " documents (share_plans=" << share_plans << ")";

  // The documents actually produced results during the measured region —
  // the zero-alloc replay did real matching work.
  uint64_t total_results = 0;
  for (const auto& sink : sinks) total_results += sink->count();
  EXPECT_GT(total_results, warm_results);
}

TEST(ZeroAllocTest, ProteinSharedPlans) {
  ExpectZeroAllocSteadyState(ProteinDoc(), ProteinQueries(),
                             /*share_plans=*/true);
}

TEST(ZeroAllocTest, ProteinPrivateMachines) {
  ExpectZeroAllocSteadyState(ProteinDoc(), ProteinQueries(),
                             /*share_plans=*/false);
}

TEST(ZeroAllocTest, XmarkSharedPlans) {
  ExpectZeroAllocSteadyState(XmarkDoc(), XmarkQueries(),
                             /*share_plans=*/true);
}

TEST(ZeroAllocTest, XmarkPrivateMachines) {
  ExpectZeroAllocSteadyState(XmarkDoc(), XmarkQueries(),
                             /*share_plans=*/false);
}

// The counting hook itself: AllocationScope sees exactly the allocations
// made between construction and the read.
TEST(ZeroAllocTest, AllocationScopeCountsThisThread) {
  AllocationScope scope;
  uint64_t base = scope.allocations();
  auto* p = new std::string(1024, 'x');
  EXPECT_GT(scope.allocations(), base);
  uint64_t after_new = scope.allocations();
  delete p;
  EXPECT_EQ(scope.allocations(), after_new);
  EXPECT_GE(scope.deallocations(), 1u);
}

}  // namespace
}  // namespace vitex::twigm
