// The paper's worked example, verified event by event: Figure 1's document
// against //section[author]//table[position]//cell (§1 and §3.2).

#include <gtest/gtest.h>

#include "twigm/engine.h"
#include "workload/book_generator.h"

namespace vitex::twigm {
namespace {

constexpr char kQuery[] = "//section[author]//table[position]//cell";

TEST(Figure1Test, GeneratorReproducesTheFigure) {
  std::string doc = workload::Figure1Document();
  // Lines 1-17 of the figure, compactly serialized.
  EXPECT_NE(doc.find("<book>"), std::string::npos);
  EXPECT_NE(doc.find("<cell>A</cell>"), std::string::npos);
  EXPECT_NE(doc.find("<position>B</position>"), std::string::npos);
  EXPECT_NE(doc.find("<author>C</author>"), std::string::npos);
}

TEST(Figure1Test, CellQualifiesAsTheSolution) {
  // The paper: matches through table₅ and table₆ are discarded when those
  // tables close without <position>; the match through table₇ (line 5, the
  // outermost) survives, and <author> at line 15 completes the predicate on
  // section₂. cell₈ is the unique solution.
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->RunString(workload::Figure1Document()).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.results()[0].fragment, "<cell>A</cell>");
}

TEST(Figure1Test, NinePatternMatchesEncodedInSevenEntries) {
  // When <cell> opens (line 8), the naive view has 3 sections × 3 tables =
  // 9 pattern matches. TwigM's stacks hold 3 section entries + 3 table
  // entries + 1 cell entry = 7.
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok());
  // Feed up to and including the <cell> start tag.
  const char* prefix =
      "<book><section><section><section><table><table><table><cell>";
  ASSERT_TRUE(engine->Feed(prefix).ok());
  EXPECT_EQ(engine->machine().live_stack_entries(), 7u);
  // Finish the document.
  ASSERT_TRUE(engine
                  ->Feed("A</cell></table></table><position>B</position>"
                         "</table></section></section>"
                         "<author>C</author></section></book>")
                  .ok());
  ASSERT_TRUE(engine->Finish().ok());
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(engine->machine().live_stack_entries(), 0u);
}

TEST(Figure1Test, CandidateIsBufferedNotEmittedEarly) {
  // After </cell> the candidate exists but cannot be emitted: position and
  // author are still unknown.
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine
                  ->Feed("<book><section><section><section><table><table>"
                         "<table><cell>A</cell>")
                  .ok());
  EXPECT_EQ(results.size(), 0u);
  EXPECT_GE(engine->machine().candidate_stats().created, 1u);
  ASSERT_TRUE(engine
                  ->Feed("</table></table><position>B</position></table>"
                         "</section></section><author>C</author></section>"
                         "</book>")
                  .ok());
  ASSERT_TRUE(engine->Finish().ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST(Figure1Test, WithoutAuthorNothingEmitted) {
  const char* doc =
      "<book><section><section><section><table><table><table>"
      "<cell>A</cell></table></table><position>B</position></table>"
      "</section></section></section></book>";
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString(doc).ok());
  EXPECT_EQ(results.size(), 0u);
  EXPECT_EQ(engine->machine().candidate_stats().pruned, 1u);
}

TEST(Figure1Test, WithoutPositionNothingEmitted) {
  const char* doc =
      "<book><section><section><section><table><table><table>"
      "<cell>A</cell></table></table></table></section></section>"
      "<author>C</author></section></book>";
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString(doc).ok());
  EXPECT_EQ(results.size(), 0u);
}

TEST(Figure1Test, PositionOnInnerTableAlsoQualifies) {
  // Moving <position> into table₇ (innermost) still qualifies cell via the
  // innermost table match.
  const char* doc =
      "<book><section><section><section><table><table><table>"
      "<cell>A</cell><position>B</position></table></table></table>"
      "</section></section><author>C</author></section></book>";
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString(doc).ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST(Figure1Test, AuthorOnInnerSectionAlsoQualifies) {
  const char* doc =
      "<book><section><section><section><author>C</author><table><table>"
      "<table><cell>A</cell></table></table><position>B</position></table>"
      "</section></section></section></book>";
  VectorResultCollector results;
  auto engine = Engine::Create(kQuery, &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString(doc).ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST(Figure1Test, EveryChunkingGivesTheSameAnswer) {
  std::string doc = workload::Figure1Document();
  for (size_t chunk : {1u, 2u, 5u, 16u}) {
    VectorResultCollector results;
    auto engine = Engine::Create(kQuery, &results);
    ASSERT_TRUE(engine.ok());
    for (size_t i = 0; i < doc.size(); i += chunk) {
      ASSERT_TRUE(
          engine->Feed(std::string_view(doc).substr(i, chunk)).ok());
    }
    ASSERT_TRUE(engine->Finish().ok());
    EXPECT_EQ(results.size(), 1u) << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace vitex::twigm
