#include "twigm/machine.h"

#include <gtest/gtest.h>

#include "twigm/builder.h"
#include "twigm/engine.h"
#include "xml/sax_parser.h"

namespace vitex::twigm {
namespace {

// Runs `query` over `doc` and returns the fragments in document order.
std::vector<std::string> EvalQuery(std::string_view query, std::string_view doc) {
  VectorResultCollector results;
  auto engine = Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

TEST(MachineBasicTest, SingleElementMatch) {
  auto r = EvalQuery("//a", "<a/>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a/>");
}

TEST(MachineBasicTest, RootChildAxis) {
  EXPECT_EQ(EvalQuery("/a", "<a/>").size(), 1u);
  EXPECT_EQ(EvalQuery("/b", "<a><b/></a>").size(), 0u);  // b is not the root
}

TEST(MachineBasicTest, ChildAxisExactDepth) {
  auto r = EvalQuery("/a/b", "<a><b/><c><b/></c></a>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<b/>");
}

TEST(MachineBasicTest, DescendantAxisAllDepths) {
  auto r = EvalQuery("//b", "<a><b/><c><b/></c></a>");
  EXPECT_EQ(r.size(), 2u);
}

TEST(MachineBasicTest, DescendantIsStrict) {
  // //a//a requires two distinct nested a's.
  EXPECT_EQ(EvalQuery("//a//a", "<a/>").size(), 0u);
  EXPECT_EQ(EvalQuery("//a//a", "<a><a/></a>").size(), 1u);
}

TEST(MachineBasicTest, SubtreeFragmentSerialized) {
  auto r = EvalQuery("//b", "<a><b x=\"1\">t<c/>u</b></a>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<b x=\"1\">t<c/>u</b>");
}

TEST(MachineBasicTest, TextEscapedInFragments) {
  auto r = EvalQuery("//b", "<a><b>x&lt;y&amp;z</b></a>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<b>x&lt;y&amp;z</b>");
}

TEST(MachineBasicTest, WildcardStep) {
  auto r = EvalQuery("/a/*", "<a><b/><c/></a>");
  EXPECT_EQ(r.size(), 2u);
}

TEST(MachineBasicTest, WildcardDescendant) {
  auto r = EvalQuery("//*", "<a><b><c/></b></a>");
  EXPECT_EQ(r.size(), 3u);
}

TEST(MachineBasicTest, MixedAxesChain) {
  auto r = EvalQuery("/a//c/d", "<a><b><c><d/></c></b><c><e><d/></e></c></a>");
  // First d: parent c — matches. Second d: parent e — child axis fails.
  ASSERT_EQ(r.size(), 1u);
}

TEST(MachineBasicTest, AttributeOutput) {
  auto r = EvalQuery("//b/@id", "<a><b id=\"one\"/><b id=\"two\"/><b/></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "one");
  EXPECT_EQ(r[1], "two");
}

TEST(MachineBasicTest, DescendantAttributeIncludesSelf) {
  // //b//@id: id of b itself or of any descendant.
  auto r = EvalQuery("//b//@id", "<a><b id=\"self\"><c id=\"deep\"/></b></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "self");
  EXPECT_EQ(r[1], "deep");
}

TEST(MachineBasicTest, ChildAttributeExcludesDescendants) {
  auto r = EvalQuery("//b/@id", "<a><b><c id=\"deep\"/></b></a>");
  EXPECT_EQ(r.size(), 0u);
}

TEST(MachineBasicTest, BareAttributeQuery) {
  auto r = EvalQuery("//@id", "<a id=\"1\"><b id=\"2\"/><c x=\"3\"/></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "1");
  EXPECT_EQ(r[1], "2");
}

TEST(MachineBasicTest, AttributeWildcard) {
  auto r = EvalQuery("//b/@*", "<a><b x=\"1\" y=\"2\"/></a>");
  EXPECT_EQ(r.size(), 2u);
}

TEST(MachineBasicTest, TextOutput) {
  auto r = EvalQuery("//b/text()", "<a><b>hello</b><b>world</b></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "hello");
  EXPECT_EQ(r[1], "world");
}

TEST(MachineBasicTest, TextOutputIsDirectOnly) {
  auto r = EvalQuery("//b/text()", "<a><b><c>inner</c></b></a>");
  EXPECT_EQ(r.size(), 0u);
}

TEST(MachineBasicTest, DescendantTextOutput) {
  auto r = EvalQuery("//b//text()", "<a><b>x<c>y</c></b></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "x");
  EXPECT_EQ(r[1], "y");
}

TEST(MachineBasicTest, BareTextQuery) {
  auto r = EvalQuery("//text()", "<a>x<b>y</b></a>");
  EXPECT_EQ(r.size(), 2u);
}

TEST(MachineBasicTest, MixedContentTextNodes) {
  // <b>x<c/>y</b>: two text nodes under b.
  auto r = EvalQuery("//b/text()", "<a><b>x<c/>y</b></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "x");
  EXPECT_EQ(r[1], "y");
}

TEST(MachineBasicTest, NoMatchesOnForeignDocument) {
  EXPECT_EQ(EvalQuery("//zzz", "<a><b/><c/></a>").size(), 0u);
}

TEST(MachineBasicTest, NestedOutputMatchesBothEmitted) {
  auto r = EvalQuery("//a", "<a><a/></a>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "<a><a/></a>");
  EXPECT_EQ(r[1], "<a/>");
}

TEST(MachineBasicTest, DeeplyNestedOutputs) {
  auto r = EvalQuery("//a", "<a><a><a><a/></a></a></a>");
  EXPECT_EQ(r.size(), 4u);
}

TEST(MachineBasicTest, StacksEmptyAtEnd) {
  VectorResultCollector results;
  auto engine = Engine::Create("//a[b]//c", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString("<a><b/><c/><a><c/></a></a>").ok());
  EXPECT_EQ(engine->machine().live_stack_entries(), 0u);
}

TEST(MachineBasicTest, StatsCountEvents) {
  VectorResultCollector results;
  auto engine = Engine::Create("//b", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString("<a><b>t</b><b/></a>").ok());
  const MachineStats& stats = engine->machine().stats();
  EXPECT_EQ(stats.start_events, 3u);
  EXPECT_EQ(stats.end_events, 3u);
  EXPECT_EQ(stats.text_events, 1u);
  EXPECT_EQ(stats.pushes, 2u);  // two b entries
  EXPECT_EQ(stats.results_emitted, 2u);
}

TEST(MachineBasicTest, ReuseAcrossDocuments) {
  VectorResultCollector results;
  auto engine = Engine::Create("//b", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString("<a><b/></a>").ok());
  engine->ResetStream();
  ASSERT_TRUE(engine->RunString("<x><b/><b/></x>").ok());
  // Collector accumulated across both documents: 1 + 2.
  EXPECT_EQ(results.size(), 3u);
}

TEST(MachineBasicTest, MemoryLimitEnforced) {
  Engine::Options options;
  options.machine.memory_limit_bytes = 128;
  VectorResultCollector results;
  auto engine = Engine::Create("//a", &results, options);
  ASSERT_TRUE(engine.ok());
  // A large subtree must be recorded for the output candidate, exceeding
  // the 128-byte cap.
  std::string doc = "<a>";
  for (int i = 0; i < 100; ++i) doc += "<b>some text content</b>";
  doc += "</a>";
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
}

TEST(MachineBasicTest, EmptyResultHandlerAllowed) {
  auto engine = Engine::Create("//a", nullptr);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->RunString("<a><a/></a>").ok());
  EXPECT_EQ(engine->machine().stats().results_emitted, 2u);
}

// Regression: the pre-symbol machine indexed element tests in a map keyed by
// string_views into query-owned storage, so the machine's correctness hung
// on the Query staying exactly where it was built. Name tests are now
// interned into the machine's SymbolTable at construction; only the
// heap-allocated QueryNode tree must stay alive, and the Query object itself
// may be moved freely (as BuiltMachine and container reallocation do).
TEST(MachineBasicTest, MachineSurvivesQueryMove) {
  auto compiled = xpath::ParseAndCompile("//entry[meta/@kind = 'x']/payload");
  ASSERT_TRUE(compiled.ok());
  auto original = std::make_unique<xpath::Query>(std::move(compiled).value());
  VectorResultCollector results;
  TwigMachine machine(original.get(), &results);

  // Move the Query value out of its original home. The moved-from shell is
  // destroyed; the QueryNode tree now lives in (and is kept alive by) the
  // new owner.
  xpath::Query relocated = std::move(*original);
  original.reset();

  xml::SaxParser parser(&machine);
  ASSERT_TRUE(
      parser
          .Feed("<r><entry><meta kind=\"x\"/><payload>p1</payload></entry>"
                "<entry><meta kind=\"y\"/><payload>p2</payload></entry></r>")
          .ok());
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.results()[0].fragment, "<payload>p1</payload>");
}

// The bundled form: BuiltMachine values get moved through vectors and across
// scopes; machines must keep matching afterwards.
TEST(MachineBasicTest, BuiltMachineSurvivesRelocation) {
  std::vector<BuiltMachine> fleet;
  std::vector<std::unique_ptr<VectorResultCollector>> handlers;
  for (int i = 0; i < 16; ++i) {
    handlers.push_back(std::make_unique<VectorResultCollector>());
    auto built = TwigMBuilder::Build("//tag_" + std::to_string(i),
                                     handlers.back().get());
    ASSERT_TRUE(built.ok());
    fleet.push_back(std::move(built).value());  // repeated reallocation
  }
  for (int i = 0; i < 16; ++i) {
    xml::SaxParser parser(&fleet[i].machine());
    ASSERT_TRUE(parser.Feed("<r><tag_7/><tag_7/></r>").ok());
    ASSERT_TRUE(parser.Finish().ok());
  }
  EXPECT_EQ(handlers[7]->size(), 2u);
  for (int i = 0; i < 16; ++i) {
    if (i != 7) {
      EXPECT_EQ(handlers[i]->size(), 0u);
    }
  }
}

}  // namespace
}  // namespace vitex::twigm
