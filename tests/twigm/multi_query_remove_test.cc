// RemoveQuery: the dynamic half of the subscription lifecycle. The key
// property is differential: removing queries at a document (epoch) boundary
// must leave the survivors' behaviour byte-identical to an engine that
// never saw the removed queries at all.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "twigm/multi_query.h"
#include "workload/random_generator.h"

namespace vitex::twigm {
namespace {

std::vector<std::string> Fragments(const VectorResultCollector& c) {
  return c.SortedFragments();
}

TEST(MultiQueryRemoveTest, RemoveMidStreamRejected) {
  MultiQueryEngine engine;
  auto id = engine.AddQuery("//a", nullptr);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Feed("<r><a/>").ok());
  EXPECT_TRUE(engine.RemoveQuery(id.value()).IsInvalidArgument());
  ASSERT_TRUE(engine.Feed("</r>").ok());
  ASSERT_TRUE(engine.Finish().ok());
}

TEST(MultiQueryRemoveTest, RemoveUnknownIdRejected) {
  MultiQueryEngine engine;
  EXPECT_TRUE(engine.RemoveQuery(0).IsInvalidArgument());
  auto id = engine.AddQuery("//a", nullptr);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RemoveQuery(id.value()).ok());
  EXPECT_TRUE(engine.RemoveQuery(id.value()).IsInvalidArgument());
  EXPECT_EQ(engine.query_count(), 0u);
}

TEST(MultiQueryRemoveTest, SlotReuseKeepsLiveIdsStable) {
  MultiQueryEngine engine;
  VectorResultCollector keep_results;
  auto removed = engine.AddQuery("//a", nullptr);
  auto keep = engine.AddQuery("//b/text()", &keep_results);
  ASSERT_TRUE(removed.ok());
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(engine.RemoveQuery(removed.value()).ok());
  EXPECT_FALSE(engine.has_query(removed.value()));
  EXPECT_TRUE(engine.has_query(keep.value()));

  // The freed slot is recycled; the surviving query keeps its id.
  auto added = engine.AddQuery("//c", nullptr);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), removed.value());
  EXPECT_EQ(engine.query_count(), 2u);

  ASSERT_TRUE(engine.RunString("<r><a/><b>t</b><c/></r>").ok());
  ASSERT_EQ(keep_results.size(), 1u);
  EXPECT_EQ(engine.machine(keep.value()).stats().results_emitted, 1u);
}

// The satellite differential test: K queries, a random subset removed at an
// epoch boundary mid-stream; survivors must produce byte-identical results
// to a fresh engine registered with only the survivors.
TEST(MultiQueryRemoveTest, DifferentialAgainstFreshEngineWithSurvivors) {
  constexpr int kQueries = 12;
  constexpr int kRounds = 8;
  Random rng(2005);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 80;
  workload::RandomQueryOptions query_options;

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::string> queries;
    for (int q = 0; q < kQueries; ++q) {
      queries.push_back(workload::GenerateRandomQuery(query_options, &rng));
    }
    std::string doc1 = workload::GenerateRandomDocument(doc_options, &rng);
    std::string doc2 = workload::GenerateRandomDocument(doc_options, &rng);

    // Engine A: all K queries over doc1, then remove a random subset at the
    // document boundary, then doc2.
    MultiQueryEngine full;
    std::vector<std::unique_ptr<VectorResultCollector>> full_results;
    std::vector<QueryId> ids;
    for (const std::string& q : queries) {
      full_results.push_back(std::make_unique<VectorResultCollector>());
      auto id = full.AddQuery(q, full_results.back().get());
      ASSERT_TRUE(id.ok()) << q;
      ids.push_back(id.value());
    }
    ASSERT_TRUE(full.RunString(doc1).ok());
    full.ResetStream();

    std::set<int> removed;
    for (int q = 0; q < kQueries; ++q) {
      if (rng.OneIn(0.5)) removed.insert(q);
    }
    for (int q : removed) {
      ASSERT_TRUE(full.RemoveQuery(ids[q]).ok());
      full_results[q]->Clear();  // ignore doc1 output of removed queries
    }
    for (int q = 0; q < kQueries; ++q) {
      if (removed.count(q) == 0) full_results[q]->Clear();
    }
    ASSERT_TRUE(full.RunString(doc2).ok());

    // Engine B: only the survivors, doc2 only.
    MultiQueryEngine survivors;
    std::vector<std::unique_ptr<VectorResultCollector>> survivor_results(
        kQueries);
    for (int q = 0; q < kQueries; ++q) {
      if (removed.count(q) != 0) continue;
      survivor_results[q] = std::make_unique<VectorResultCollector>();
      ASSERT_TRUE(
          survivors.AddQuery(queries[q], survivor_results[q].get()).ok());
    }
    ASSERT_TRUE(survivors.RunString(doc2).ok());

    for (int q = 0; q < kQueries; ++q) {
      if (removed.count(q) != 0) {
        EXPECT_EQ(full_results[q]->size(), 0u)
            << "removed query still delivered: " << queries[q];
        continue;
      }
      EXPECT_EQ(Fragments(*full_results[q]), Fragments(*survivor_results[q]))
          << "round " << round << " query " << queries[q] << "\ndoc2 "
          << doc2;
    }
  }
}

// Plan-cache refcounting: subscriptions sharing a skeleton share one
// machine; RemoveQuery drops the machine only when its LAST subscriber
// goes, and survivors keep delivering their own literals' results.
TEST(MultiQueryRemoveTest, SharedPlanRefcountsAcrossRemovals) {
  MultiQueryEngine engine;
  VectorResultCollector r1, r2, r3;
  auto a = engine.AddQuery("//a[b = '1']/c", &r1);
  auto b = engine.AddQuery("//a[b = '2']/c", &r2);
  auto c = engine.AddQuery("//a[b = '3']/c", &r3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(engine.machine_count(), 1u);  // one skeleton, three groups

  const std::string doc =
      "<r><a><b>1</b><c>one</c></a><a><b>2</b><c>two</c></a>"
      "<a><b>3</b><c>three</c></a></r>";
  ASSERT_TRUE(engine.RunString(doc).ok());
  EXPECT_EQ(r1.size(), 1u);
  EXPECT_EQ(r2.size(), 1u);
  EXPECT_EQ(r3.size(), 1u);

  // Remove the middle subscriber: the plan machine survives (refcount 2),
  // its group masks compact, and the other groups still deliver exactly
  // their own results.
  engine.ResetStream();
  ASSERT_TRUE(engine.RemoveQuery(b.value()).ok());
  EXPECT_EQ(engine.query_count(), 2u);
  EXPECT_EQ(engine.machine_count(), 1u);
  r1.Clear();
  r3.Clear();
  ASSERT_TRUE(engine.RunString(doc).ok());
  EXPECT_EQ(r1.SortedFragments(), (std::vector<std::string>{"<c>one</c>"}));
  EXPECT_EQ(r3.SortedFragments(),
            (std::vector<std::string>{"<c>three</c>"}));

  // Last two subscribers go: the machine goes with the last one.
  engine.ResetStream();
  ASSERT_TRUE(engine.RemoveQuery(a.value()).ok());
  EXPECT_EQ(engine.machine_count(), 1u);
  ASSERT_TRUE(engine.RemoveQuery(c.value()).ok());
  EXPECT_EQ(engine.machine_count(), 0u);
  EXPECT_EQ(engine.query_count(), 0u);

  // A fresh subscription to the same skeleton recreates the plan from
  // scratch (the cache holds no dead machines).
  VectorResultCollector r4;
  ASSERT_TRUE(engine.AddQuery("//a[b = '2']/c", &r4).ok());
  EXPECT_EQ(engine.machine_count(), 1u);
  ASSERT_TRUE(engine.RunString(doc).ok());
  EXPECT_EQ(r4.SortedFragments(), (std::vector<std::string>{"<c>two</c>"}));
}

// Removing one member of a group that has several (identical queries) must
// not disturb the co-members.
TEST(MultiQueryRemoveTest, SharedGroupMemberRemoval) {
  MultiQueryEngine engine;
  VectorResultCollector r1, r2;
  auto a = engine.AddQuery("//a[b = '1']", &r1);
  auto b = engine.AddQuery("//a[b = '1']", &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(engine.machine_count(), 1u);
  ASSERT_TRUE(engine.RemoveQuery(a.value()).ok());
  EXPECT_EQ(engine.machine_count(), 1u);
  ASSERT_TRUE(engine.RunString("<r><a><b>1</b></a></r>").ok());
  EXPECT_EQ(r1.size(), 0u);
  EXPECT_EQ(r2.size(), 1u);
}

// The churn differential, shared-skeleton edition: K subscriptions drawn
// from a handful of skeletons (so the plan cache is consing hard), a random
// subset removed at an epoch boundary; survivors must match a fresh engine
// registered with only the survivors.
TEST(MultiQueryRemoveTest, SharedSkeletonChurnDifferential) {
  constexpr int kRounds = 6;
  Random rng(42005);
  for (int round = 0; round < kRounds; ++round) {
    // 4 skeletons x 6 literals = 24 subscriptions, heavy sharing.
    std::vector<std::string> queries;
    for (int k = 0; k < 4; ++k) {
      for (int j = 0; j < 6; ++j) {
        std::string sk = std::to_string(k);
        std::string lit = "'v" + std::to_string(j) + "'";
        switch (k) {
          case 0:
            queries.push_back("//a[b = " + lit + "]/c");
            break;
          case 1:
            queries.push_back("//a[@id = " + lit + "]");
            break;
          case 2:
            queries.push_back("//d[not(b = " + lit + ")]//c");
            break;
          default:
            queries.push_back("//a[b = " + lit + " or @id = " + lit +
                              "]/c/text()");
        }
      }
    }
    auto make_doc = [&](int salt) {
      std::string doc = "<r>";
      for (int i = 0; i < 20; ++i) {
        std::string v = "v" + std::to_string(rng.Uniform(8));
        std::string id = "v" + std::to_string(rng.Uniform(8));
        doc += "<a id=\"" + id + "\"><b>" + v + "</b><c>x" +
               std::to_string(salt * 100 + i) + "</c></a>";
        if (i % 3 == 0) {
          doc += "<d><b>" + v + "</b><c>y" + std::to_string(i) + "</c></d>";
        }
      }
      return doc + "</r>";
    };
    std::string doc1 = make_doc(round * 2);
    std::string doc2 = make_doc(round * 2 + 1);

    MultiQueryEngine full;
    std::vector<std::unique_ptr<VectorResultCollector>> full_results;
    std::vector<QueryId> ids;
    for (const std::string& q : queries) {
      full_results.push_back(std::make_unique<VectorResultCollector>());
      auto id = full.AddQuery(q, full_results.back().get());
      ASSERT_TRUE(id.ok()) << q;
      ids.push_back(id.value());
    }
    EXPECT_EQ(full.machine_count(), 4u);
    ASSERT_TRUE(full.RunString(doc1).ok());
    full.ResetStream();

    std::set<int> removed;
    for (size_t q = 0; q < queries.size(); ++q) {
      if (rng.OneIn(0.5)) removed.insert(static_cast<int>(q));
    }
    for (int q : removed) ASSERT_TRUE(full.RemoveQuery(ids[q]).ok());
    for (auto& r : full_results) r->Clear();
    ASSERT_TRUE(full.RunString(doc2).ok());

    MultiQueryEngine survivors;
    std::vector<std::unique_ptr<VectorResultCollector>> survivor_results(
        queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      if (removed.count(static_cast<int>(q)) != 0) continue;
      survivor_results[q] = std::make_unique<VectorResultCollector>();
      ASSERT_TRUE(
          survivors.AddQuery(queries[q], survivor_results[q].get()).ok());
    }
    ASSERT_TRUE(survivors.RunString(doc2).ok());

    for (size_t q = 0; q < queries.size(); ++q) {
      if (removed.count(static_cast<int>(q)) != 0) {
        EXPECT_EQ(full_results[q]->size(), 0u)
            << "removed query still delivered: " << queries[q];
        continue;
      }
      EXPECT_EQ(Fragments(*full_results[q]), Fragments(*survivor_results[q]))
          << "round " << round << " query " << queries[q];
    }
  }
}

TEST(MultiQueryRemoveTest, RunEventsMidStreamRejected) {
  auto log = xml::RecordEvents("<x/>");
  ASSERT_TRUE(log.ok());
  MultiQueryEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a", nullptr).ok());
  ASSERT_TRUE(engine.Feed("<r><a>").ok());
  EXPECT_TRUE(engine.RunEvents(log.value()).IsInvalidArgument());
  ASSERT_TRUE(engine.Feed("</a></r>").ok());
  ASSERT_TRUE(engine.Finish().ok());
}

// Same lifecycle via the replay path the service uses: RunEvents documents
// with removals between them.
TEST(MultiQueryRemoveTest, RemoveBetweenReplayedDocuments) {
  auto log1 = xml::RecordEvents("<r><a>1</a><b>x</b></r>");
  auto log2 = xml::RecordEvents("<r><a>2</a><b>y</b></r>");
  ASSERT_TRUE(log1.ok());
  ASSERT_TRUE(log2.ok());

  MultiQueryEngine engine;
  VectorResultCollector a_results, b_results;
  auto a = engine.AddQuery("//a/text()", &a_results);
  auto b = engine.AddQuery("//b/text()", &b_results);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(engine.RunEvents(log1.value()).ok());
  ASSERT_TRUE(engine.RemoveQuery(b.value()).ok());
  ASSERT_TRUE(engine.RunEvents(log2.value()).ok());

  EXPECT_EQ(Fragments(a_results), (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(Fragments(b_results), (std::vector<std::string>{"x"}));
}

// Churn regression for the dispatcher's recorder bookkeeping: a wildcard
// element-output query (it joins element_broadcast_ and activates result
// recorders) is removed mid-epoch — after a completed document AND an
// aborted mid-document parse that leaves its recorder active — and then a
// small document is published. The rebuilt dispatch index must not carry a
// stale machine reference in element_broadcast_/targets_/active_recorders_/
// open_symbols_; before active_recorders_ was cleared on index rebuild,
// this interleaving unwound recorder flags against the *new* machine list
// using indices from the old one.
TEST(MultiQueryRemoveTest, RecorderChurnAcrossAbortAndRemoval) {
  MultiQueryEngine engine;
  VectorResultCollector star_results, keep_results;
  auto star = engine.AddQuery("//*[b]", &star_results);
  auto keep = engine.AddQuery("//a/c/text()", &keep_results);
  ASSERT_TRUE(star.ok());
  ASSERT_TRUE(keep.ok());

  ASSERT_TRUE(engine.RunString("<r><a><b/><c>1</c></a></r>").ok());
  EXPECT_EQ(Fragments(star_results),
            (std::vector<std::string>{"<a><b/><c>1</c></a>"}));
  EXPECT_EQ(Fragments(keep_results), (std::vector<std::string>{"1"}));

  // Abort mid-document while the wildcard's recorder is live (it is
  // recording <a> when the parse fails), poisoning the stream.
  engine.ResetStream();
  ASSERT_TRUE(engine.Feed("<r><a><b/>").ok());
  ASSERT_FALSE(engine.Feed("</mismatch>").ok());
  engine.ResetStream();

  // Remove the recorder-owning machine, then publish a small document via
  // the replay path the service uses.
  ASSERT_TRUE(engine.RemoveQuery(star.value()).ok());
  keep_results.Clear();
  auto log = xml::RecordEvents("<a><c>2</c></a>");
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(engine.RunEvents(log.value()).ok());
  EXPECT_EQ(Fragments(keep_results), (std::vector<std::string>{"2"}));

  // And the reverse interleaving: add a fresh recorder query, abort again,
  // remove the *other* query, publish.
  VectorResultCollector star2_results;
  auto star2 = engine.AddQuery("//*[c]", &star2_results);
  ASSERT_TRUE(star2.ok());
  engine.ResetStream();
  ASSERT_TRUE(engine.Feed("<r><a><c>x</c>").ok());
  ASSERT_FALSE(engine.Feed("</mismatch>").ok());
  engine.ResetStream();
  ASSERT_TRUE(engine.RemoveQuery(keep.value()).ok());
  ASSERT_TRUE(engine.RunEvents(log.value()).ok());
  EXPECT_EQ(Fragments(star2_results),
            (std::vector<std::string>{"<a><c>2</c></a>"}));
}

}  // namespace
}  // namespace vitex::twigm
