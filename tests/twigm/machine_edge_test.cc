// Edge cases and invariants of the machine that the mainline suites do not
// reach: compiler limits, same-tag multiplicity, sequence keys, and the
// zero-residue memory property over randomized inputs.

#include <gtest/gtest.h>

#include "common/random.h"
#include "twigm/engine.h"
#include "workload/random_generator.h"
#include "xpath/query.h"

namespace vitex::twigm {
namespace {

std::vector<std::string> EvalQuery(std::string_view query,
                                   std::string_view doc) {
  VectorResultCollector results;
  auto engine = Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

TEST(MachineEdgeTest, SixtyFivePredicatesRejected) {
  std::string q = "//a";
  for (int i = 0; i < 65; ++i) q += "[p" + std::to_string(i) + "]";
  auto compiled = xpath::ParseAndCompile(q);
  ASSERT_FALSE(compiled.ok());
  EXPECT_TRUE(compiled.status().IsUnsupported());
}

TEST(MachineEdgeTest, SixtyFourPredicatesAccepted) {
  std::string q = "//a";
  for (int i = 0; i < 64; ++i) q += "[p" + std::to_string(i) + "]";
  auto compiled = xpath::ParseAndCompile(q);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
}

TEST(MachineEdgeTest, SameTagInEveryRole) {
  // 'a' is simultaneously the context, the predicate and the output tag.
  auto r = EvalQuery("//a[a]//a", "<r><a><a><a/></a></a></r>");
  // Outer a has child a (predicate ok): descendants a#2, a#3 qualify.
  // Middle a has child a: descendant a#3 qualifies (already emitted).
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "<a><a/></a>");
  EXPECT_EQ(r[1], "<a/>");
}

TEST(MachineEdgeTest, ManyAttributesOnOneElement) {
  std::string doc = "<r><a";
  for (int i = 0; i < 100; ++i) {
    doc += " k" + std::to_string(i) + "=\"" + std::to_string(i) + "\"";
  }
  doc += "/></r>";
  auto r = EvalQuery("//a/@*", doc);
  EXPECT_EQ(r.size(), 100u);
  // Values must come out in document (attribute) order.
  EXPECT_EQ(r[0], "0");
  EXPECT_EQ(r[99], "99");
}

TEST(MachineEdgeTest, SequenceKeysAreDocumentOrderAndQueryIndependent) {
  // Two different queries over the same stream must assign the same key to
  // the same node (the property UnionEngine's dedup relies on).
  const char* doc = "<a k=\"v\"><b>t</b><c/></a>";
  VectorResultCollector by_wildcard, by_name;
  auto e1 = Engine::Create("//*", &by_wildcard);
  auto e2 = Engine::Create("//b", &by_name);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e1->RunString(doc).ok());
  ASSERT_TRUE(e2->RunString(doc).ok());
  ASSERT_EQ(by_wildcard.size(), 3u);
  ASSERT_EQ(by_name.size(), 1u);
  // Find b's key in the wildcard run: it must equal the //b run's key.
  uint64_t b_key_wild = 0;
  for (const auto& r : by_wildcard.results()) {
    if (r.fragment == "<b>t</b>") b_key_wild = r.sequence;
  }
  EXPECT_EQ(by_name.results()[0].sequence, b_key_wild);
  // And keys sort in document order.
  auto sorted = by_wildcard.SortedFragments();
  EXPECT_EQ(sorted[0], "<a k=\"v\"><b>t</b><c/></a>");
  EXPECT_EQ(sorted[1], "<b>t</b>");
  EXPECT_EQ(sorted[2], "<c/>");
}

TEST(MachineEdgeTest, EmptyElementsEverywhere) {
  auto r = EvalQuery("//a[b]", "<r><a><b/></a><a><b></b></a></r>");
  // <b/> and <b></b> are the same; both a's qualify.
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "<a><b/></a>");
  EXPECT_EQ(r[1], "<a><b/></a>");  // canonical form collapses
}

TEST(MachineEdgeTest, DeepDocumentShallowQuery) {
  std::string doc = "<r>";
  for (int i = 0; i < 500; ++i) doc += "<d>";
  doc += "<hit/>";
  for (int i = 0; i < 500; ++i) doc += "</d>";
  doc += "</r>";
  auto r = EvalQuery("//hit", doc);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MachineEdgeTest, WidowedPredicateTagOutsideContext) {
  // b exists in the document but never under a: predicate must not leak
  // across subtrees.
  auto r = EvalQuery("//a[b]", "<r><b/><a><c/></a><b/></r>");
  EXPECT_EQ(r.size(), 0u);
}

TEST(MachineEdgeTest, PredicateMatchInSiblingDoesNotQualify) {
  auto r = EvalQuery("//a[b]//c", "<r><a><c/></a><a><b/></a></r>");
  EXPECT_EQ(r.size(), 0u);
}

TEST(MachineEdgeTest, ZeroResidueMemoryProperty) {
  // After any complete parse, the machine must account exactly zero live
  // bytes and zero live entries — over random documents and queries.
  Random rng(909);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 80;
  workload::RandomQueryOptions query_options;
  for (int i = 0; i < 40; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string query = workload::GenerateRandomQuery(query_options, &rng);
    VectorResultCollector results;
    auto engine = Engine::Create(query, &results);
    ASSERT_TRUE(engine.ok()) << query;
    ASSERT_TRUE(engine->RunString(doc).ok());
    EXPECT_EQ(engine->machine().live_stack_entries(), 0u) << query;
    EXPECT_EQ(engine->machine().memory().live_bytes(), 0u)
        << query << "\ndoc: " << doc;
  }
}

TEST(MachineEdgeTest, WildcardRootChildAxis) {
  EXPECT_EQ(EvalQuery("/*", "<anything><b/></anything>").size(), 1u);
}

TEST(MachineEdgeTest, LongTextValuesCompared) {
  std::string big(100000, 'x');
  std::string doc = "<r><a>" + big + "</a></r>";
  auto r = EvalQuery("//a[text() != 'y']", doc);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MachineEdgeTest, UnicodeTagsAndValues) {
  auto r = EvalQuery("//caf\xc3\xa9[text() = '\xc3\xbc']",
                     "<r><caf\xc3\xa9>\xc3\xbc</caf\xc3\xa9></r>");
  EXPECT_EQ(r.size(), 1u);
}

TEST(MachineEdgeTest, ValuePredicateOnWildcardAttribute) {
  auto r = EvalQuery("//a[@* = '7']",
                     "<r><a x=\"3\" y=\"7\"/><a x=\"1\"/></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(MachineEdgeTest, CandidateInsideItsOwnPredicateSubtreeTag) {
  // Output c sits under a; the predicate also uses tag c. The predicate's
  // c machine node and the output's c machine node are distinct.
  auto r = EvalQuery("//a[c]//c", "<r><a><c><c/></c></a></r>");
  ASSERT_EQ(r.size(), 2u);
}

}  // namespace
}  // namespace vitex::twigm
