// Recursive-data behaviour: the polynomial-space encoding of exponentially
// many pattern matches (paper §1, §3.2).

#include <gtest/gtest.h>

#include "baseline/naive_matcher.h"
#include "twigm/engine.h"
#include "workload/recursive_generator.h"
#include "xml/sax_parser.h"
#include "xpath/query.h"

namespace vitex::twigm {
namespace {

std::vector<std::string> EvalQuery(std::string_view query, std::string_view doc) {
  VectorResultCollector results;
  auto engine = Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

TEST(RecursiveTest, ChainQueryOnDeepRecursion) {
  workload::RecursiveOptions options;
  options.depth = 8;
  auto doc = workload::GenerateRecursiveString(options);
  ASSERT_TRUE(doc.ok());
  // //a//a//v needs at least 2 nested a's: any chain of 2 distinct a's
  // above v works; v matches once.
  auto r = EvalQuery("//a//a//v", doc.value());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<v>leaf</v>");
}

TEST(RecursiveTest, ChainLongerThanDepthMatchesNothing) {
  workload::RecursiveOptions options;
  options.depth = 3;
  auto doc = workload::GenerateRecursiveString(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(EvalQuery(workload::RecursiveChainQuery(3, false), doc.value()).size(),
            1u);
  EXPECT_EQ(EvalQuery(workload::RecursiveChainQuery(4, false), doc.value()).size(),
            0u);
}

TEST(RecursiveTest, StackSizeLinearNotExponential) {
  // depth d, query k steps: naive match count is C(d, k); TwigM entries are
  // at most d per machine node.
  workload::RecursiveOptions options;
  options.depth = 20;
  auto doc = workload::GenerateRecursiveString(options);
  ASSERT_TRUE(doc.ok());

  VectorResultCollector results;
  auto engine = Engine::Create(workload::RecursiveChainQuery(5), &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString(doc.value()).ok());
  // 6 machine element nodes (5 a's + v) with <= 20 entries each, plus p
  // text nodes: peak must stay well under C(20,5) = 15504.
  EXPECT_LE(engine->machine().stats().peak_stack_entries, 20u * 7u);
  EXPECT_EQ(results.size(), 1u);
}

TEST(RecursiveTest, NaiveInstanceCountIsBinomial) {
  // Independent confirmation that the data/query pair really is the
  // adversary: the naive matcher materializes C(d, k) matches at the leaf.
  workload::RecursiveOptions options;
  options.depth = 12;
  auto doc = workload::GenerateRecursiveString(options);
  ASSERT_TRUE(doc.ok());

  auto query = xpath::ParseAndCompile(workload::RecursiveChainQuery(3));
  ASSERT_TRUE(query.ok());
  VectorResultCollector results;
  baseline::NaiveStreamMatcher naive(&query.value(), &results);
  ASSERT_TRUE(xml::ParseString(doc.value(), &naive).ok());
  // a-step instances: sum over prefixes; the leaf v sees C(12,3) = 220
  // three-a chains. Total created instances must exceed that.
  EXPECT_GE(naive.stats().instances_created, 220u);
  EXPECT_EQ(results.size(), 1u);
}

TEST(RecursiveTest, TwigMAndNaiveAgreeOnRecursiveData) {
  for (int depth = 2; depth <= 10; ++depth) {
    workload::RecursiveOptions options;
    options.depth = depth;
    options.marker_probability = 0.7;
    options.seed = depth * 13;
    auto doc = workload::GenerateRecursiveString(options);
    ASSERT_TRUE(doc.ok());
    for (int steps = 1; steps <= 4; ++steps) {
      std::string query = workload::RecursiveChainQuery(steps);
      auto twig_result = EvalQuery(query, doc.value());

      auto compiled = xpath::ParseAndCompile(query);
      ASSERT_TRUE(compiled.ok());
      VectorResultCollector naive_results;
      baseline::NaiveStreamMatcher naive(&compiled.value(), &naive_results);
      ASSERT_TRUE(xml::ParseString(doc.value(), &naive).ok());

      EXPECT_EQ(twig_result, naive_results.SortedFragments())
          << "depth=" << depth << " steps=" << steps;
    }
  }
}

TEST(RecursiveTest, WideRecursionManySpines) {
  workload::RecursiveOptions options;
  options.depth = 6;
  options.width = 10;
  auto doc = workload::GenerateRecursiveString(options);
  ASSERT_TRUE(doc.ok());
  auto r = EvalQuery("//a//v", doc.value());
  EXPECT_EQ(r.size(), 10u);
}

TEST(RecursiveTest, SelfNestedOutputFragmentsNested) {
  // With //a as output over nested a's, every fragment contains its inner
  // siblings — recordings must nest correctly.
  auto r = EvalQuery("//a//a", "<r><a><a><a/></a></a></r>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "<a><a/></a>");
  EXPECT_EQ(r[1], "<a/>");
}

TEST(RecursiveTest, PredicateChainOnRecursionWithSparseMarkers) {
  // Only levels with <p> count for //a[p]//a[p]//v.
  const char* doc =
      "<r>"
      "<a><p>m</p><a><a><p>m</p><v>x</v></a></a></a>"  // two marked levels
      "</r>";
  auto r = EvalQuery("//a[p]//a[p]//v", doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<v>x</v>");
}

TEST(RecursiveTest, PredicateChainUnsatisfiedWhenOnlyOneMarked) {
  const char* doc = "<r><a><p>m</p><a><a><v>x</v></a></a></a></r>";
  EXPECT_EQ(EvalQuery("//a[p]//a[p]//v", doc).size(), 0u);
}

}  // namespace
}  // namespace vitex::twigm
