// Tests for the multi-query dispatch index: per-symbol posting lists must
// route each event only to interested machines (with broadcast fallbacks for
// wildcards, unanchored attributes and open recordings), while producing
// results identical to independent per-query Engine runs.

#include "twigm/multi_query.h"

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "twigm/builder.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "workload/xmark_generator.h"

namespace vitex::twigm {
namespace {

// Feeds `doc` in chunks of `chunk` bytes.
Status FeedChunked(MultiQueryEngine& engine, std::string_view doc,
                   size_t chunk) {
  for (size_t pos = 0; pos < doc.size(); pos += chunk) {
    VITEX_RETURN_IF_ERROR(engine.Feed(doc.substr(pos, chunk)));
  }
  return engine.Finish();
}

std::vector<std::string> SingleEngineRun(std::string_view query,
                                         std::string_view doc) {
  VectorResultCollector results;
  auto engine = Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

TEST(MultiQueryDispatchTest, DisjointTagQueriesSkipUninterestedMachines) {
  // 8 queries over disjoint tags; the document mentions only two of them.
  MultiQueryEngine engine;
  std::vector<std::unique_ptr<VectorResultCollector>> handlers;
  for (const char* q : {"//alpha", "//bravo", "//charlie", "//delta",
                        "//echo", "//foxtrot", "//golf", "//hotel"}) {
    handlers.push_back(std::make_unique<VectorResultCollector>());
    ASSERT_TRUE(engine.AddQuery(q, handlers.back().get()).ok());
  }
  ASSERT_TRUE(
      engine.RunString("<r><alpha/><bravo/><alpha/><other/><other/></r>")
          .ok());
  EXPECT_EQ(handlers[0]->size(), 2u);
  EXPECT_EQ(handlers[1]->size(), 1u);
  for (size_t i = 2; i < handlers.size(); ++i) {
    EXPECT_EQ(handlers[i]->size(), 0u);
  }

  const DispatchStats& ds = engine.dispatch_stats();
  // 6 start events (r, 2×alpha, bravo, 2×other). Only the three events whose
  // tag some query names may visit machines: alpha twice, bravo once.
  EXPECT_EQ(ds.start_events, 6u);
  EXPECT_EQ(ds.start_visits, 3u);
  EXPECT_EQ(ds.end_visits, 3u);
  EXPECT_EQ(ds.broadcast_visits, 0u);
  // Naive fan-out would have been 6 events × 8 machines.
  EXPECT_LT(ds.start_visits, ds.start_events * engine.query_count());
}

TEST(MultiQueryDispatchTest, WildcardQueriesFallBackToBroadcast) {
  MultiQueryEngine engine;
  VectorResultCollector wild, named;
  ASSERT_TRUE(engine.AddQuery("//*", &wild).ok());
  ASSERT_TRUE(engine.AddQuery("//zzz", &named).ok());
  ASSERT_TRUE(engine.RunString("<r><a/><b/></r>").ok());
  EXPECT_EQ(wild.size(), 3u);
  EXPECT_EQ(named.size(), 0u);
  const DispatchStats& ds = engine.dispatch_stats();
  // The wildcard machine is visited on every element event.
  EXPECT_EQ(ds.start_visits, 3u);
  EXPECT_EQ(ds.broadcast_visits, 6u);  // 3 starts + 3 ends
}

TEST(MultiQueryDispatchTest, UnanchoredAttributesSeeEveryAttributedTag) {
  MultiQueryEngine engine;
  VectorResultCollector ids;
  ASSERT_TRUE(engine.AddQuery("//@id", &ids).ok());
  ASSERT_TRUE(
      engine.RunString("<r><x id=\"1\"/><y/><z id=\"2\" other=\"o\"/></r>")
          .ok());
  ASSERT_EQ(ids.SortedFragments(), (std::vector<std::string>{"1", "2"}));
  // Only the two attributed elements are dispatched; <r> and <y> carry none.
  EXPECT_EQ(engine.dispatch_stats().start_visits, 2u);
}

TEST(MultiQueryDispatchTest, RecordingMachineObservesForeignTags) {
  // While //keep's output fragment is open, the machine must see <other/>
  // and the text inside, even though its query never mentions them.
  MultiQueryEngine engine;
  VectorResultCollector keep;
  ASSERT_TRUE(engine.AddQuery("//keep", &keep).ok());
  ASSERT_TRUE(
      engine.RunString("<r><keep>a<other>b</other></keep><other/></r>").ok());
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep.results()[0].fragment, "<keep>a<other>b</other></keep>");
  // The trailing <other/> outside the recording is not dispatched.
  const DispatchStats& ds = engine.dispatch_stats();
  EXPECT_EQ(ds.start_events, 4u);
  EXPECT_EQ(ds.start_visits, 2u);  // <keep> + recorded <other>
}

TEST(MultiQueryDispatchTest, MixedQueriesMatchSingleEngineRunsChunked) {
  workload::ProteinOptions options;
  options.entries = 40;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  const char* queries[] = {
      "//ProteinEntry[reference]/@id",
      "//refinfo/@refid",
      "//ProteinEntry[summary/length > 300]//gene",
      "//*[year]/title",         // wildcard fallback
      "//organism//text()",      // text selection
      "//accinfo/@*",            // attribute wildcard
      "//zzz[never = 'seen']",   // matches nothing
  };
  for (size_t chunk : {1u, 7u, 4096u}) {
    MultiQueryEngine multi;
    std::vector<std::unique_ptr<VectorResultCollector>> handlers;
    for (const char* q : queries) {
      handlers.push_back(std::make_unique<VectorResultCollector>());
      ASSERT_TRUE(multi.AddQuery(q, handlers.back().get()).ok()) << q;
    }
    ASSERT_TRUE(FeedChunked(multi, doc.value(), chunk).ok());
    for (size_t i = 0; i < std::size(queries); ++i) {
      EXPECT_EQ(handlers[i]->SortedFragments(),
                SingleEngineRun(queries[i], doc.value()))
          << "query " << queries[i] << " chunk " << chunk;
    }
  }
}

TEST(MultiQueryDispatchTest, PerEventWorkSublinearInRegisteredQueries) {
  // Disjoint-tag standing queries: as registrations grow 1 -> 64, the
  // per-event machine visits must stay flat (the acceptance shape for
  // bench_multi_query's sublinear scaling).
  workload::XmarkOptions options;
  options.items_per_region = 5;
  auto doc = workload::GenerateXmarkString(options);
  ASSERT_TRUE(doc.ok());
  auto visits_with_n_queries = [&](int n) {
    MultiQueryEngine engine;
    // One real query plus n-1 queries over tags absent from the document.
    EXPECT_TRUE(engine.AddQuery("//item[incategory]/name", nullptr).ok());
    for (int i = 1; i < n; ++i) {
      EXPECT_TRUE(
          engine.AddQuery("//absent_tag_" + std::to_string(i), nullptr).ok());
    }
    EXPECT_TRUE(engine.RunString(doc.value()).ok());
    const DispatchStats& ds = engine.dispatch_stats();
    return ds.start_visits + ds.end_visits + ds.text_visits;
  };
  uint64_t v1 = visits_with_n_queries(1);
  uint64_t v64 = visits_with_n_queries(64);
  // Identical: the 63 extra machines are never visited.
  EXPECT_EQ(v64, v1);
}

TEST(MultiQueryDispatchTest, ForeignSymbolTableMachineRejected) {
  MultiQueryEngine engine;
  auto built = TwigMBuilder::Build("//a", nullptr);  // private table
  ASSERT_TRUE(built.ok());
  auto added = engine.AddBuilt(std::move(built).value());
  EXPECT_TRUE(added.status().IsInvalidArgument());

  auto shared = TwigMBuilder::Build("//a", nullptr, TwigMachine::Options(),
                                    engine.symbols());
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(engine.AddBuilt(std::move(shared).value()).ok());
  EXPECT_TRUE(engine.RunString("<a/>").ok());
}

TEST(MultiQueryDispatchTest, MemoryLimitAppliesToBufferedText) {
  // The dispatcher buffers text centrally; a machine's memory ceiling must
  // still stop a pathological text node, as per-machine buffering did.
  MultiQueryEngine engine;
  TwigMachine::Options options;
  options.memory_limit_bytes = 128;
  ASSERT_TRUE(engine.AddQuery("//a/text()", nullptr, options).ok());
  std::string doc = "<r><a>" + std::string(4096, 'x') + "</a></r>";
  Status s = engine.RunString(doc);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
}

TEST(MultiQueryDispatchTest, DocumentVocabularyDoesNotGrowSharedTable) {
  // The parser stamps symbols by lookup only: tags and attributes the
  // queries never mention must not mint ids, or a long-lived pub/sub table
  // would grow with every distinct name the stream ever carries.
  MultiQueryEngine engine;
  VectorResultCollector results;
  ASSERT_TRUE(engine.AddQuery("//a", &results).ok());
  size_t before = engine.symbols()->size();
  ASSERT_TRUE(
      engine.RunString("<r><a/><unseen1/><unseen2 attr=\"v\"/></r>").ok());
  EXPECT_EQ(engine.symbols()->size(), before);
  EXPECT_EQ(results.size(), 1u);
}

TEST(MultiQueryDispatchTest, ResetStreamAllowsLateRegistration) {
  MultiQueryEngine engine;
  VectorResultCollector first, second;
  ASSERT_TRUE(engine.AddQuery("//a", &first).ok());
  ASSERT_TRUE(engine.RunString("<r><a/><b/></r>").ok());
  EXPECT_EQ(first.size(), 1u);
  engine.ResetStream();
  // The dispatch index is rebuilt to cover the late machine.
  ASSERT_TRUE(engine.AddQuery("//b", &second).ok());
  ASSERT_TRUE(engine.RunString("<r><a/><b/></r>").ok());
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(second.size(), 1u);
}

}  // namespace
}  // namespace vitex::twigm
