#include <gtest/gtest.h>

#include "twigm/engine.h"
#include "twigm/result.h"

namespace vitex::twigm {
namespace {

std::vector<std::string> EvalQuery(std::string_view query, std::string_view doc) {
  VectorResultCollector results;
  auto engine = Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

TEST(PredicateTest, ExistencePredicateFilters) {
  auto r = EvalQuery("//a[b]", "<r><a><b/></a><a><c/></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><b/></a>");
}

TEST(PredicateTest, PredicateSeenAfterOutputChild) {
  // The predicate element (b) closes *after* the candidate (c): the
  // candidate must be buffered, then qualified late.
  auto r = EvalQuery("//a[b]//c", "<r><a><c/><b/></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<c/>");
}

TEST(PredicateTest, PredicateNeverArrivesPrunesCandidate) {
  auto r = EvalQuery("//a[b]//c", "<r><a><c/></a></r>");
  EXPECT_EQ(r.size(), 0u);
}

TEST(PredicateTest, CandidatePruneCountsInStats) {
  VectorResultCollector results;
  auto engine = Engine::Create("//a[b]//c", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString("<r><a><c/></a><a><c/><b/></a></r>").ok());
  const CandidateStats& cs = engine->machine().candidate_stats();
  EXPECT_EQ(cs.created, 2u);
  EXPECT_EQ(cs.emitted, 1u);
  EXPECT_EQ(cs.pruned, 1u);
}

TEST(PredicateTest, MultiplePredicatesAllRequired) {
  auto r = EvalQuery("//a[b][c]",
               "<r><a><b/><c/></a><a><b/></a><a><c/></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><b/><c/></a>");
}

TEST(PredicateTest, DescendantPredicate) {
  auto r = EvalQuery("//a[.//b]", "<r><a><x><b/></x></a><a><x/></a></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(PredicateTest, NestedPathPredicate) {
  auto r = EvalQuery("//a[b/c]", "<r><a><b><c/></b></a><a><b/><c/></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><b><c/></b></a>");
}

TEST(PredicateTest, AttributeExistencePredicate) {
  auto r = EvalQuery("//a[@id]", "<r><a id=\"1\"/><a/></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a id=\"1\"/>");
}

TEST(PredicateTest, AttributeValuePredicate) {
  auto r = EvalQuery("//a[@id = 'x']", "<r><a id=\"x\"/><a id=\"y\"/></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(PredicateTest, TextValuePredicate) {
  auto r = EvalQuery("//a[text() = 'hit']", "<r><a>hit</a><a>miss</a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a>hit</a>");
}

TEST(PredicateTest, ElementValuePredicateDesugared) {
  // [b = 'x'] means: some b child whose direct text is 'x'.
  auto r = EvalQuery("//a[b = 'x']", "<r><a><b>x</b></a><a><b>y</b></a></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(PredicateTest, NumericComparisons) {
  const char* doc =
      "<r><a><p>5</p></a><a><p>15</p></a><a><p>25</p></a><a><p>nan</p></a></r>";
  EXPECT_EQ(EvalQuery("//a[p < 10]", doc).size(), 1u);
  EXPECT_EQ(EvalQuery("//a[p <= 15]", doc).size(), 2u);
  EXPECT_EQ(EvalQuery("//a[p > 10]", doc).size(), 2u);
  EXPECT_EQ(EvalQuery("//a[p >= 25]", doc).size(), 1u);
  EXPECT_EQ(EvalQuery("//a[p = 15]", doc).size(), 1u);
  EXPECT_EQ(EvalQuery("//a[p != 15]", doc).size(), 3u);  // 5, 25, nan
}

TEST(PredicateTest, NumericComparisonWithWhitespace) {
  EXPECT_EQ(EvalQuery("//a[p = 7]", "<r><a><p> 7 </p></a></r>").size(), 1u);
}

TEST(PredicateTest, OrPredicate) {
  auto r = EvalQuery("//a[b or c]",
               "<r><a><b/></a><a><c/></a><a><d/></a></r>");
  EXPECT_EQ(r.size(), 2u);
}

TEST(PredicateTest, AndPredicate) {
  auto r = EvalQuery("//a[b and c]",
               "<r><a><b/><c/></a><a><b/></a></r>");
  EXPECT_EQ(r.size(), 1u);
}

TEST(PredicateTest, NotPredicate) {
  auto r = EvalQuery("//a[not(b)]", "<r><a><b/></a><a><c/></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><c/></a>");
}

TEST(PredicateTest, NotWithLateChild) {
  // b arrives after other content: not(b) must still reject.
  auto r = EvalQuery("//a[not(b)]", "<r><a><c/><c/><b/></a></r>");
  EXPECT_EQ(r.size(), 0u);
}

TEST(PredicateTest, ComplexBooleanCombination) {
  const char* doc =
      "<r>"
      "<a><b/><d/></a>"   // b and not(c) -> match
      "<a><b/><c/></a>"   // b and c -> no
      "<a><d/></a>"       // no b -> no
      "</r>";
  auto r = EvalQuery("//a[b and not(c)]", doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><b/><d/></a>");
}

TEST(PredicateTest, PredicateOnOutputNode) {
  auto r = EvalQuery("//a//c[d]", "<r><a><c><d/></c><c><e/></c></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<c><d/></c>");
}

TEST(PredicateTest, PredicatesOnEveryMainStep) {
  const char* doc =
      "<r>"
      "<a><k/><b><m/><c>win</c></b></a>"
      "<a><b><m/><c>no-k</c></b></a>"
      "<a><k/><b><c>no-m</c></b></a>"
      "</r>";
  auto r = EvalQuery("//a[k]//b[m]//c", doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<c>win</c>");
}

TEST(PredicateTest, PredicateInsidePredicate) {
  const char* doc =
      "<r><a><b><c/></b></a><a><b><d/></b></a></r>";
  auto r = EvalQuery("//a[b[c]]", doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><b><c/></b></a>");
}

TEST(PredicateTest, WildcardPredicate) {
  auto r = EvalQuery("//a[*]", "<r><a><x/></a><a>text only</a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><x/></a>");
}

TEST(PredicateTest, SharedCandidateAcrossAncestors) {
  // Candidate c qualifies via the inner a (which has b); the outer a never
  // gets b. Exactly one emission.
  auto r = EvalQuery("//a[b]//c", "<r><a><a><b/><c/></a></a></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(PredicateTest, CandidateQualifiesViaOuterAncestorOnly) {
  // Inner a lacks b; outer a has b (after the candidate closes).
  auto r = EvalQuery("//a[b]//c", "<r><a><a><c/></a><b/></a></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(PredicateTest, EmittedOnceDespiteTwoQualifyingAncestors) {
  // Both a's carry b: the same c must be emitted exactly once.
  auto r = EvalQuery("//a[b]//c", "<r><a><b/><a><b/><c/></a></a></r>");
  ASSERT_EQ(r.size(), 1u);
}

TEST(PredicateTest, ValuePredicateOnAttributeOfDescendant) {
  auto r = EvalQuery("//a[x/@k = '1']//c",
               "<r><a><x k=\"1\"/><c>yes</c></a><a><x k=\"2\"/><c>no</c></a></r>");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<c>yes</c>");
}

TEST(PredicateTest, SplitTextAcrossChunksComparedWhole) {
  // The text 'hit' arrives in three chunks; coalescing must reassemble it
  // before the comparison.
  VectorResultCollector results;
  auto engine = Engine::Create("//a[text() = 'hit']", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Feed("<r><a>h").ok());
  ASSERT_TRUE(engine->Feed("i").ok());
  ASSERT_TRUE(engine->Feed("t</a><a>hi</a></r>").ok());
  ASSERT_TRUE(engine->Finish().ok());
  EXPECT_EQ(results.size(), 1u);
}

}  // namespace
}  // namespace vitex::twigm
