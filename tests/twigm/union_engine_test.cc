#include "twigm/union_engine.h"

#include <gtest/gtest.h>

#include "baseline/dom_evaluator.h"
#include "twigm/engine.h"

namespace vitex::twigm {
namespace {

std::vector<std::string> RunUnion(std::string_view query,
                                  std::string_view doc) {
  VectorResultCollector results;
  auto engine = UnionEngine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

TEST(UnionEngineTest, TwoDisjointBranches) {
  auto r = RunUnion("//a | //b", "<r><a/><b/><c/></r>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "<a/>");
  EXPECT_EQ(r[1], "<b/>");
}

TEST(UnionEngineTest, SingleBranchBehavesLikeEngine) {
  VectorResultCollector union_results, engine_results;
  auto u = UnionEngine::Create("//a[b]", &union_results);
  auto e = Engine::Create("//a[b]", &engine_results);
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(e.ok());
  const char* doc = "<r><a><b/></a><a/></r>";
  ASSERT_TRUE(u->RunString(doc).ok());
  ASSERT_TRUE(e->RunString(doc).ok());
  EXPECT_EQ(union_results.SortedFragments(), engine_results.SortedFragments());
}

TEST(UnionEngineTest, OverlappingBranchesDeduplicated) {
  // Both //a and //*[b] select the same <a><b/></a> element.
  VectorResultCollector results;
  auto engine = UnionEngine::Create("//a | //*[b]", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString("<r><a><b/></a><a/></r>").ok());
  // Nodes: a[0] (has b, selected by both), a[1] (only //a).
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(engine->duplicates_suppressed(), 1u);
}

TEST(UnionEngineTest, SetUnionMatchesDomSemantics) {
  // DOM evaluation of the two branches, unioned by node identity, must
  // match the streaming union.
  const char* doc =
      "<r><a k=\"1\"><b/></a><c><b/></c><a/><b><a><b/></a></b></r>";
  const char* q1 = "//a[b]";
  const char* q2 = "//*[b]";
  auto streaming = RunUnion(std::string(q1) + " | " + q2, doc);

  auto dom = xml::ParseIntoDom(doc);
  ASSERT_TRUE(dom.ok());
  std::vector<const xml::DomNode*> nodes;
  for (const char* q : {q1, q2}) {
    auto compiled = xpath::ParseAndCompile(q);
    ASSERT_TRUE(compiled.ok());
    baseline::DomEvaluator eval(&dom.value());
    for (const xml::DomNode* n : eval.Evaluate(compiled.value())) {
      nodes.push_back(n);
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const xml::DomNode* a, const xml::DomNode* b) {
              return a->order < b->order;
            });
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::vector<std::string> dom_fragments;
  for (const xml::DomNode* n : nodes) {
    dom_fragments.push_back(xml::Document::Serialize(n));
  }
  EXPECT_EQ(streaming, dom_fragments);
}

TEST(UnionEngineTest, MixedOutputKinds) {
  auto r = RunUnion("//a/@id | //b/text()",
                    "<r><a id=\"x\"/><b>t</b></r>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "x");
  EXPECT_EQ(r[1], "t");
}

TEST(UnionEngineTest, ThreeBranches) {
  auto r = RunUnion("//a | //b | //c", "<r><c/><b/><a/></r>");
  ASSERT_EQ(r.size(), 3u);
  // Document order: c, b, a.
  EXPECT_EQ(r[0], "<c/>");
  EXPECT_EQ(r[2], "<a/>");
}

TEST(UnionEngineTest, BranchCountAndIntrospection) {
  auto engine = UnionEngine::Create("//a | //b[c]//d", nullptr);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->branch_count(), 2u);
  EXPECT_EQ(engine->branch(0).size(), 1u);
  EXPECT_EQ(engine->branch(1).size(), 3u);
}

TEST(UnionEngineTest, BadBranchRejected) {
  EXPECT_FALSE(UnionEngine::Create("//a | [", nullptr).ok());
  EXPECT_FALSE(UnionEngine::Create("| //a", nullptr).ok());
  EXPECT_FALSE(UnionEngine::Create("//a |", nullptr).ok());
}

TEST(UnionEngineTest, PlainParserRejectsUnion) {
  EXPECT_FALSE(Engine::Create("//a | //b", nullptr).ok());
}

// Regression (DESIGN.md §12): the dedup seen-set is per-document state. A
// fragment selected in consecutive documents must be reported in both —
// suppression never carries across a document boundary.
TEST(UnionEngineTest, CrossDocumentDuplicateReportedInBothDocs) {
  VectorResultCollector results;
  auto engine = UnionEngine::Create("//a | //*[b]", &results);
  ASSERT_TRUE(engine.ok());
  const char* doc = "<r><a><b/></a><a/></r>";
  ASSERT_TRUE(engine->RunString(doc).ok());
  EXPECT_EQ(results.size(), 2u);
  engine->ResetStream();
  ASSERT_TRUE(engine->RunString(doc).ok());
  // Identical fragments, identical sequence keys — still reported again.
  EXPECT_EQ(results.size(), 4u);
}

// The versioned seen-set keeps suppressing within-document duplicates after
// many document boundaries (the table is reused in place, never rebuilt).
TEST(UnionEngineTest, DedupStableAcrossManyDocuments) {
  VectorResultCollector results;
  auto engine = UnionEngine::Create("//a | //*", &results);
  ASSERT_TRUE(engine.ok());
  for (int doc = 0; doc < 50; ++doc) {
    results.Clear();
    ASSERT_TRUE(engine->RunString("<r><a/><a/><a/></r>").ok());
    // //* selects all 4 elements; //a re-selects the 3 <a/>s.
    EXPECT_EQ(results.size(), 4u);
    EXPECT_EQ(engine->duplicates_suppressed(), 3u);
    engine->ResetStream();
  }
}

TEST(UnionEngineTest, ResetStreamClearsDedupState) {
  VectorResultCollector results;
  auto engine = UnionEngine::Create("//a | //*", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString("<a/>").ok());
  EXPECT_EQ(results.size(), 1u);
  engine->ResetStream();
  ASSERT_TRUE(engine->RunString("<a/>").ok());
  // Same sequence numbers in the new document must not be suppressed.
  EXPECT_EQ(results.size(), 2u);
}

}  // namespace
}  // namespace vitex::twigm
